// Ablation: sharded container core — aggregate tick throughput at 1k+
// trivial sensors as a function of tick worker count (ROADMAP item 1,
// docs/CONCURRENCY.md). Each configuration runs a fresh container with
// N shards and N tick workers over the same virtual-time schedule; the
// sensors are minimal time-triggered generators so the measured cost is
// the container's dispatch/locking machinery, not pipeline work.
//
// The bench FAILS (nonzero exit) if:
//   * any configuration produces a different element count than the
//     single-worker baseline (worker interleaving must never change
//     what the sensors produce), or
//   * on a multi-core host, the best multi-worker throughput does not
//     beat the single-worker drain by at least kMinSpeedup (the whole
//     point of sharding the core).
// On a single-core host the scaling bar is skipped (printed as such):
// there is nothing for extra workers to scale onto.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/telemetry/metrics.h"

namespace {

using gsn::Timestamp;
using gsn::kMicrosPerMilli;

constexpr double kMinSpeedup = 1.25;

std::string TrivialDescriptor(const std::string& name) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "  <field name=\"value\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"1\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"10\"/>"
         "    </address>"
         "    <query>select * from wrapper</query>"
         "  </stream-source>"
         "  <query>select seq, value from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

struct RunResult {
  int workers = 0;
  long elements = 0;
  double wall_seconds = 0;
  double throughput = 0;  // elements per wall second
};

RunResult RunConfig(int workers, int sensors, int rounds) {
  auto clock = std::make_shared<gsn::VirtualClock>();
  gsn::telemetry::MetricRegistry registry;
  gsn::container::Container::Options options;
  options.node_id = "ablate-shard";
  options.clock = clock;
  options.seed = 42;
  options.metrics = &registry;
  options.sharding.shards = workers;
  options.sharding.tick_workers = workers;
  gsn::container::Container container(std::move(options));

  for (int i = 0; i < sensors; ++i) {
    auto deployed =
        container.Deploy(TrivialDescriptor("s" + std::to_string(i)));
    if (!deployed.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   deployed.status().ToString().c_str());
      return {};
    }
  }

  const Timestamp step = 10 * kMicrosPerMilli;
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    clock->Advance(step);
    (void)container.Tick();
  }
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.workers = workers;
  result.elements =
      static_cast<long>(registry.SumCounters("gsn_sensor_tuples_total"));
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  result.throughput = result.wall_seconds > 0
                          ? static_cast<double>(result.elements) /
                                result.wall_seconds
                          : 0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  const int sensors = 1024;
  const int rounds = quick ? 20 : 100;
  const int hw = std::max(1u, std::thread::hardware_concurrency());

  // 1/2/4/N workers, deduplicated (e.g. N==4 runs once).
  std::set<int> configs = {1, 2, 4, hw};
  std::printf(
      "ablate_shard: %d sensors x %d rounds, hardware_concurrency=%d\n",
      sensors, rounds, hw);
  std::printf("%8s %12s %10s %14s %9s\n", "workers", "elements", "wall_s",
              "elements/s", "speedup");

  std::vector<RunResult> results;
  for (int workers : configs) {
    results.push_back(RunConfig(workers, sensors, rounds));
  }

  const RunResult& base = results.front();
  bool ok = base.elements > 0;
  double best_speedup = 1.0;
  for (const RunResult& r : results) {
    const double speedup =
        base.throughput > 0 ? r.throughput / base.throughput : 0;
    if (r.workers > 1) best_speedup = std::max(best_speedup, speedup);
    std::printf("%8d %12ld %10.3f %14.0f %8.2fx\n", r.workers, r.elements,
                r.wall_seconds, r.throughput, speedup);
    if (r.elements != base.elements) {
      std::fprintf(stderr,
                   "FAIL: %d workers produced %ld elements, baseline %ld — "
                   "worker count changed what the sensors produced\n",
                   r.workers, r.elements, base.elements);
      ok = false;
    }
  }

  if (!ok) return 1;
  if (hw < 2) {
    std::printf(
        "scaling bar SKIPPED: single-core host (hardware_concurrency=%d), "
        "no parallelism for extra workers to exploit\n",
        hw);
    return 0;
  }
  if (best_speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: best multi-worker throughput is %.2fx the "
                 "single-worker drain (bar: %.2fx) — tick throughput does "
                 "not scale with worker count\n",
                 best_speedup, kMinSpeedup);
    return 1;
  }
  std::printf("scaling bar PASSED: best multi-worker speedup %.2fx >= %.2fx\n",
              best_speedup, kMinSpeedup);
  return 0;
}

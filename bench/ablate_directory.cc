// Ablation: discovery latency (DESIGN.md §4). Directory lookup cost by
// predicate combination as the number of published virtual sensors
// grows — the paper's "Sensor Internet" needs discovery to stay cheap
// as deployments multiply.

#include <benchmark/benchmark.h>

#include "gsn/network/directory.h"

namespace {

using gsn::network::DirectoryEntry;
using gsn::network::DirectoryService;

void FillDirectory(DirectoryService* directory, int entries) {
  static const char* kTypes[] = {"temperature", "light", "camera", "rfid"};
  for (int i = 0; i < entries; ++i) {
    DirectoryEntry entry;
    entry.sensor_name = "sensor-" + std::to_string(i);
    entry.node_id = "node-" + std::to_string(i % 16);
    entry.predicates["type"] = kTypes[i % 4];
    entry.predicates["location"] = "room-" + std::to_string(i % 50);
    entry.output_schema.AddField("v", gsn::DataType::kInt);
    directory->Upsert(std::move(entry));
  }
}

void BM_DiscoverByType(benchmark::State& state) {
  DirectoryService directory;
  FillDirectory(&directory, static_cast<int>(state.range(0)));
  const std::map<std::string, std::string> query = {{"type", "temperature"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory.Discover(query));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiscoverByType)->Arg(16)->Arg(256)->Arg(4096);

void BM_DiscoverByCombination(benchmark::State& state) {
  DirectoryService directory;
  FillDirectory(&directory, static_cast<int>(state.range(0)));
  const std::map<std::string, std::string> query = {
      {"type", "temperature"}, {"location", "room-7"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(directory.Discover(query));
  }
}
BENCHMARK(BM_DiscoverByCombination)->Arg(16)->Arg(256)->Arg(4096);

void BM_PublishEncodeDecode(benchmark::State& state) {
  DirectoryEntry entry;
  entry.sensor_name = "avg-temperature";
  entry.node_id = "node-3";
  entry.predicates = {{"type", "temperature"}, {"location", "bc143"}};
  entry.output_schema.AddField("temperature", gsn::DataType::kInt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectoryEntry::Decode(entry.Encode()));
  }
}
BENCHMARK(BM_PublishEncodeDecode);

void BM_Upsert(benchmark::State& state) {
  DirectoryService directory;
  DirectoryEntry entry;
  entry.sensor_name = "s";
  entry.node_id = "n";
  entry.predicates = {{"type", "temperature"}};
  entry.output_schema.AddField("v", gsn::DataType::kInt);
  int i = 0;
  for (auto _ : state) {
    entry.sensor_name = "s" + std::to_string(i++ % 1000);
    directory.Upsert(entry);
  }
}
BENCHMARK(BM_Upsert);

}  // namespace

BENCHMARK_MAIN();

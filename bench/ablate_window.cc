// Ablation: count- vs time-based windows (DESIGN.md §4). Measures the
// storage layer's window maintenance (Add + Snapshot) and the SQL
// aggregation cost over growing window populations — the mechanism
// behind Fig 3's interval dependence.

#include <benchmark/benchmark.h>

#include "gsn/sql/executor.h"
#include "gsn/sql/parser.h"
#include "gsn/storage/window_buffer.h"

namespace {

using gsn::StreamElement;
using gsn::Timestamp;
using gsn::Value;
using gsn::WindowSpec;
using gsn::kMicrosPerMilli;
using gsn::kMicrosPerSecond;

StreamElement Elem(Timestamp t) {
  StreamElement e;
  e.timed = t;
  e.values = {Value::Int(t / kMicrosPerMilli), Value::Double(0.5)};
  return e;
}

void BM_CountWindowAdd(benchmark::State& state) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kCount;
  spec.count = state.range(0);
  gsn::storage::WindowBuffer buffer(spec);
  Timestamp t = 0;
  for (auto _ : state) {
    buffer.Add(Elem(t));
    t += kMicrosPerMilli;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountWindowAdd)->Arg(16)->Arg(256)->Arg(4096);

void BM_TimeWindowAdd(benchmark::State& state) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kTime;
  spec.duration_micros = state.range(0) * kMicrosPerSecond;
  gsn::storage::WindowBuffer buffer(spec);
  Timestamp t = 0;
  for (auto _ : state) {
    buffer.Add(Elem(t));
    t += kMicrosPerMilli;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeWindowAdd)->Arg(1)->Arg(10)->Arg(60);

void BM_WindowSnapshot(benchmark::State& state) {
  WindowSpec spec;
  spec.kind = WindowSpec::Kind::kCount;
  spec.count = state.range(0);
  gsn::storage::WindowBuffer buffer(spec);
  for (int i = 0; i < state.range(0); ++i) {
    buffer.Add(Elem(i * kMicrosPerMilli));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.Snapshot(state.range(0) * kMicrosPerMilli));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowSnapshot)->Arg(16)->Arg(256)->Arg(4096);

/// The per-trigger SQL cost over a window of N elements — the core of
/// the virtual sensor pipeline's step 3.
void BM_AvgOverWindow(benchmark::State& state) {
  gsn::Schema schema;
  schema.AddField("seq", gsn::DataType::kInt);
  schema.AddField("value", gsn::DataType::kDouble);
  std::vector<StreamElement> elements;
  for (int i = 0; i < state.range(0); ++i) {
    elements.push_back(Elem(i * kMicrosPerMilli));
  }
  gsn::Relation window = gsn::Relation::FromElements(schema, elements);
  gsn::sql::MapResolver resolver;
  resolver.Put("wrapper", std::move(window));
  gsn::sql::Executor exec(&resolver);
  auto stmt = gsn::sql::ParseSelect("select avg(value) from wrapper");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(**stmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AvgOverWindow)->Arg(2)->Arg(20)->Arg(200)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();

// Ablation: SQL cost split — parse vs execute — and the prepared-query
// cache (DESIGN.md §4). The paper attributes part of Fig 4's latency to
// "the cost of query compiling" in MySQL; this bench quantifies the
// equivalent split in our engine.

#include <benchmark/benchmark.h>

#include "gsn/container/query_manager.h"
#include "gsn/sql/parser.h"
#include "gsn/storage/table.h"
#include "gsn/util/rng.h"

namespace {

using gsn::Timestamp;
using gsn::Value;
using gsn::kMicrosPerSecond;

constexpr char kTypicalQuery[] =
    "select count(*), avg(value), max(seq) from stream "
    "where timed > 100000 and value > 0.25 and seq % 3 = 0";

void FillStream(gsn::storage::TableManager* tables, int rows) {
  gsn::WindowSpec retention;
  retention.kind = gsn::WindowSpec::Kind::kCount;
  retention.count = rows;
  gsn::Schema schema;
  schema.AddField("seq", gsn::DataType::kInt);
  schema.AddField("value", gsn::DataType::kDouble);
  auto table = tables->CreateTable("stream", schema, retention);
  gsn::Rng rng(3);
  for (int i = 0; i < rows; ++i) {
    gsn::StreamElement e;
    e.timed = static_cast<Timestamp>(i) * kMicrosPerSecond;
    e.values = {Value::Int(i), Value::Double(rng.NextDouble(-1, 1))};
    (void)(*table)->Insert(e);
  }
}

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gsn::sql::ParseSelect(kTypicalQuery));
  }
}
BENCHMARK(BM_Parse);

void BM_ExecutePrepared(benchmark::State& state) {
  gsn::storage::TableManager tables;
  FillStream(&tables, static_cast<int>(state.range(0)));
  gsn::sql::Executor exec(&tables);
  auto stmt = gsn::sql::ParseSelect(kTypicalQuery);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(**stmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecutePrepared)->Arg(100)->Arg(1000)->Arg(10000);

void BM_QueryManagerCacheOn(benchmark::State& state) {
  gsn::storage::TableManager tables;
  FillStream(&tables, 1000);
  gsn::container::QueryManager qm(&tables);
  qm.set_cache_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.Execute(kTypicalQuery));
  }
}
BENCHMARK(BM_QueryManagerCacheOn);

void BM_QueryManagerCacheOff(benchmark::State& state) {
  gsn::storage::TableManager tables;
  FillStream(&tables, 1000);
  gsn::container::QueryManager qm(&tables);
  qm.set_cache_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qm.Execute(kTypicalQuery));
  }
}
BENCHMARK(BM_QueryManagerCacheOff);

void BM_JoinTwoStreams(benchmark::State& state) {
  gsn::storage::TableManager tables;
  FillStream(&tables, static_cast<int>(state.range(0)));
  // Second stream with matching keys.
  gsn::WindowSpec retention;
  retention.kind = gsn::WindowSpec::Kind::kCount;
  retention.count = state.range(0);
  gsn::Schema schema;
  schema.AddField("seq", gsn::DataType::kInt);
  schema.AddField("label", gsn::DataType::kString);
  auto other = tables.CreateTable("labels", schema, retention);
  for (int i = 0; i < state.range(0); ++i) {
    gsn::StreamElement e;
    e.timed = static_cast<Timestamp>(i) * kMicrosPerSecond;
    e.values = {Value::Int(i), Value::String(i % 2 ? "odd" : "even")};
    (void)(*other)->Insert(e);
  }
  gsn::sql::Executor exec(&tables);
  auto stmt = gsn::sql::ParseSelect(
      "select count(*) from stream s join labels l on s.seq = l.seq "
      "where l.label = 'even'");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(**stmt));
  }
}
BENCHMARK(BM_JoinTwoStreams)->Arg(50)->Arg(200);

}  // namespace

BENCHMARK_MAIN();

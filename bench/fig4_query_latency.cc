// Reproduces Figure 4 of the paper: "Query processing latency in a GSN
// node" — total processing time for the set of clients vs the number of
// clients (1..500), for a stream element size (SES) of 32 KB.
//
// Workload (paper §5): random queries with 3 filtering predicates in
// the WHERE clause on average, history sizes from 1 second up to 30
// minutes, and uniformly distributed sampling rates in (0.1, 1.0)
// seconds. Bursts occur with a small probability and appear as spikes.
//
// Expected shape (paper): total time grows roughly linearly with the
// client count — about 40 ms for 500 clients, i.e. < 1 ms per client —
// with occasional burst spikes.

#include <cstdio>
#include <string>
#include <vector>

#include "gsn/container/query_manager.h"
#include "gsn/storage/table.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/rng.h"

namespace {

using gsn::Timestamp;
using gsn::kMicrosPerMinute;
using gsn::kMicrosPerSecond;

/// Fills the sensor's output table with 30 minutes of 32 KB elements at
/// 1 element/second (the node's stored stream history).
void FillTable(gsn::storage::Table* table, size_t ses_bytes,
               Timestamp history, Timestamp spacing, gsn::Rng* rng) {
  std::vector<uint8_t> payload(ses_bytes);
  for (size_t i = 0; i + 8 <= payload.size(); i += 8) {
    const uint64_t r = rng->NextUint64();
    for (int b = 0; b < 8; ++b) {
      payload[i + static_cast<size_t>(b)] = static_cast<uint8_t>(r >> (8 * b));
    }
  }
  const gsn::Blob blob = gsn::MakeBlob(std::move(payload));
  int64_t seq = 0;
  for (Timestamp t = 0; t <= history; t += spacing) {
    gsn::StreamElement e;
    e.timed = t;
    e.values = {gsn::Value::Int(seq++),
                gsn::Value::Double(rng->NextDouble(-1.0, 1.0)),
                gsn::Value::Binary(blob)};
    (void)table->Insert(e);
  }
}

/// One client's random query: ~3 filtering predicates (history bound,
/// value threshold, sequence stride), as in the paper's workload.
std::string RandomQuery(Timestamp now, gsn::Rng* rng) {
  const Timestamp history = rng->NextInt(kMicrosPerSecond, 30 * kMicrosPerMinute);
  const double threshold = rng->NextDouble(-1.0, 1.0);
  const int64_t stride = rng->NextInt(2, 10);
  return "select count(*), avg(value), max(seq) from stream where timed > " +
         std::to_string(now - history) + " and value > " +
         std::to_string(threshold) + " and seq % " + std::to_string(stride) +
         " = 0";
}

/// Untraced p95 per client count measured at the commit preceding the
/// zero-copy storage layer (--quick sweep on the same machine class),
/// kept in BENCH_fig4.json so regressions against the pre-zero-copy
/// baseline are visible from the artifact alone.
struct BaselinePoint {
  int clients;
  double p95_ms;
};
constexpr BaselinePoint kPreZeroCopyBaseline[] = {
    {1, 0.692}, {50, 0.833}, {100, 1.012}, {250, 1.000}, {500, 0.990},
};

}  // namespace

int main(int argc, char** argv) {
  // --json writes the measured points (and the recorded pre-zero-copy
  // baseline) to BENCH_fig4.json.
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--json") json = true;
  }

  constexpr size_t kSesBytes = 32 * 1024;
  const Timestamp kHistory = 30 * kMicrosPerMinute;
  // 1 element/s => 1801 stored rows covering the max 30 min history.
  const Timestamp kSpacing = kMicrosPerSecond;
  const double kBurstProbability = 0.1;

  gsn::Rng rng(20060912);       // VLDB'06 dates the seed
  gsn::Rng burst_decider(1215);  // separate stream: burst points are
                                 // reproducible regardless of workload
                                 // generation order

  std::vector<int> client_counts;
  if (quick) {
    client_counts = {1, 50, 100, 250, 500};
  } else {
    for (int n = 1; n <= 500; n += (n == 1 ? 24 : 25)) {
      client_counts.push_back(n);  // 1, 25, 50, ..., 500
    }
  }

  std::printf("# Figure 4: query processing latency in a GSN node "
              "(SES = 32 KB)\n");
  std::printf("# stored history: 30 min of 32 KB elements at 1 element/s\n");
  std::printf("# trace columns: the same client batch with head sampling "
              "off / 1%% / 100%%\n");
  std::printf("%-10s %14s %14s %14s %16s %12s %14s %8s\n", "clients",
              "trace_off_ms", "trace_1pct_ms", "trace_100_ms",
              "per_client_ms", "p95_ms", "lock_wait_ms", "burst");

  struct PointResult {
    int clients = 0;
    double totals_ms[3] = {0.0, 0.0, 0.0};
    double p95_ms = 0.0;
    /// Contention-profiler columns (docs/TELEMETRY.md): wall time the
    /// untraced batch spent blocked on the instrumented query-cache
    /// lock / queued at admission. This bench drives one thread with
    /// no stream sources, so both stay ~0 — the columns exist so the
    /// artifact format matches fig3 and any future concurrent variant
    /// reports real waits.
    double lock_wait_ms = 0.0;
    double queue_wait_ms = 0.0;
    bool burst = false;
  };
  std::vector<PointResult> points;

  for (int clients : client_counts) {
    // Fresh node state per measurement so points are independent.
    gsn::storage::TableManager tables;
    gsn::WindowSpec retention;
    retention.kind = gsn::WindowSpec::Kind::kTime;
    retention.duration_micros = kHistory + kMicrosPerMinute;
    gsn::Schema element_schema;
    element_schema.AddField("seq", gsn::DataType::kInt);
    element_schema.AddField("value", gsn::DataType::kDouble);
    element_schema.AddField("payload", gsn::DataType::kBinary);
    auto table = tables.CreateTable("stream", element_schema, retention);
    if (!table.ok()) {
      std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
      return 1;
    }
    FillTable(*table, kSesBytes, kHistory, kSpacing, &rng);

    // Bursts (paper: probability ~0.05): a burst of fresh elements
    // lands right before this measurement — every live window grows,
    // producing the paper's latency spikes at burst points.
    const bool burst = burst_decider.NextBool(kBurstProbability);
    if (burst) {
      gsn::Rng burst_rng(static_cast<uint64_t>(clients) * 7 + 1);
      FillTable(*table, kSesBytes, 5 * kMicrosPerMinute, kSpacing / 4,
                &burst_rng);
    }

    // Each client issues its own random query (distinct text: no
    // cross-client cache sharing, like distinct MySQL sessions).
    std::vector<std::string> queries;
    queries.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      queries.push_back(RandomQuery(kHistory, &rng));
    }

    // Tracing overhead: the same batch at head-sampling rates 0 (off),
    // 0.01, and 1.0. Fresh registry + manager per rate so the exec
    // histogram covers exactly one configuration.
    constexpr double kRates[] = {0.0, 0.01, 1.0};
    double totals_ms[3] = {0.0, 0.0, 0.0};
    double p95_ms = 0.0;
    double lock_wait_ms = 0.0;
    double queue_wait_ms = 0.0;
    for (int r = 0; r < 3; ++r) {
      gsn::telemetry::MetricRegistry registry;
      gsn::container::QueryManager query_manager(&tables, &registry);
      gsn::telemetry::Tracer::Options trace_options;
      trace_options.sample_rate = kRates[r];
      gsn::telemetry::Tracer tracer(trace_options);
      query_manager.set_tracer(&tracer);

      for (const std::string& q : queries) {
        auto result = query_manager.Execute(q);
        if (!result.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
      }
      // Figure data comes from the query manager's own telemetry: the
      // exec-latency histogram covers parse-miss + execution per client.
      const gsn::telemetry::Histogram::Snapshot parse =
          query_manager.parse_histogram();
      const gsn::telemetry::Histogram::Snapshot exec =
          query_manager.exec_histogram();
      totals_ms[r] = static_cast<double>(parse.sum + exec.sum) / 1000.0;
      // The figure's latency series stays the untraced baseline; so do
      // the contention columns.
      if (r == 0) {
        p95_ms = exec.Quantile(0.95) / 1000.0;
        lock_wait_ms =
            static_cast<double>(
                registry.SumHistograms("gsn_lock_wait_micros").sum) /
            1000.0;
        queue_wait_ms =
            static_cast<double>(
                registry.SumHistograms("gsn_queue_wait_micros").sum) /
            1000.0;
      }
    }
    std::printf("%-10d %14.2f %14.2f %14.2f %16.4f %12.3f %14.3f %8s\n",
                clients, totals_ms[0], totals_ms[1], totals_ms[2],
                totals_ms[0] / clients, p95_ms, lock_wait_ms,
                burst ? "*" : "");
    std::fflush(stdout);
    PointResult point;
    point.clients = clients;
    for (int r = 0; r < 3; ++r) point.totals_ms[r] = totals_ms[r];
    point.p95_ms = p95_ms;
    point.lock_wait_ms = lock_wait_ms;
    point.queue_wait_ms = queue_wait_ms;
    point.burst = burst;
    points.push_back(point);
  }
  std::printf("# burst '*': a data burst landed before the measurement "
              "(paper: spikes)\n");

  if (json) {
    std::FILE* f = std::fopen("BENCH_fig4.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_fig4.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"figure\": 4,\n  \"ses_bytes\": %zu,\n"
                 "  \"points\": [\n", kSesBytes);
    for (size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      std::fprintf(f,
                   "    {\"clients\": %d, \"trace_off_ms\": %.4f, "
                   "\"trace_1pct_ms\": %.4f, \"trace_100_ms\": %.4f, "
                   "\"per_client_ms\": %.4f, \"p95_ms\": %.4f, "
                   "\"lock_wait_ms\": %.4f, \"queue_wait_ms\": %.4f, "
                   "\"burst\": %s}%s\n",
                   p.clients, p.totals_ms[0], p.totals_ms[1], p.totals_ms[2],
                   p.totals_ms[0] / p.clients, p.p95_ms, p.lock_wait_ms,
                   p.queue_wait_ms, p.burst ? "true" : "false",
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"baseline_pre_zero_copy_p95\": [\n");
    constexpr size_t kBaselineCount =
        sizeof(kPreZeroCopyBaseline) / sizeof(kPreZeroCopyBaseline[0]);
    for (size_t i = 0; i < kBaselineCount; ++i) {
      std::fprintf(f, "    {\"clients\": %d, \"p95_ms\": %.4f}%s\n",
                   kPreZeroCopyBaseline[i].clients,
                   kPreZeroCopyBaseline[i].p95_ms,
                   i + 1 < kBaselineCount ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_fig4.json\n");
  }
  return 0;
}

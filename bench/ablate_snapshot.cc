// Ablation: deep-copy vs shared-row window snapshots. Before the
// zero-copy storage layer, every pipeline trigger materialized the
// window by copying each element's values into a fresh relation
// (Snapshot + FromElements); now SnapshotRelation hands the SQL layer
// ref-count bumps of the buffered rows. This bench measures both paths
// over window populations of 10^2..10^5 and reports the speedup.
//
// Expected: the shared-row path is flat-per-row pointer copies and
// beats the deep copy by well over 5x at 10^4 rows and up.

#include <chrono>
#include <cstdio>
#include <string>

#include "gsn/storage/window_buffer.h"
#include "gsn/telemetry/metrics.h"

namespace {

using gsn::Relation;
using gsn::Schema;
using gsn::StreamElement;
using gsn::Timestamp;
using gsn::Value;
using gsn::kMicrosPerMilli;

Schema ElementSchema() {
  Schema s;
  s.AddField("seq", gsn::DataType::kInt);
  s.AddField("value", gsn::DataType::kDouble);
  s.AddField("label", gsn::DataType::kString);
  return s;
}

StreamElement Elem(Timestamp t, int64_t seq) {
  StreamElement e;
  e.timed = t;
  e.values = {Value::Int(seq), Value::Double(seq * 0.125),
              Value::String("sensor-reading-" + std::to_string(seq % 16))};
  return e;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  std::vector<long> sizes = {100, 1000, 10000, 100000};
  if (quick) sizes = {100, 1000};

  std::printf("# Ablation: window snapshot cost, deep copy vs shared rows\n");
  std::printf("# deep  = pre-zero-copy path: Snapshot() + FromElements()\n");
  std::printf("# shared = SnapshotRelation(): ref-count bump per row\n");
  std::printf("%-10s %10s %14s %14s %14s %14s %10s\n", "window", "reps",
              "deep_mean_us", "deep_p95_us", "shared_mean_us",
              "shared_p95_us", "speedup");

  const Schema schema = ElementSchema();
  bool met_bar = true;
  for (long n : sizes) {
    gsn::WindowSpec spec;
    spec.kind = gsn::WindowSpec::Kind::kCount;
    spec.count = n;
    gsn::storage::WindowBuffer buffer(spec);
    for (long i = 0; i < n; ++i) {
      buffer.Add(Elem(i * kMicrosPerMilli, i));
    }
    const Timestamp now = n * kMicrosPerMilli;

    // Enough repetitions that each cell runs ~tens of ms of work.
    const int reps = quick ? 50 : static_cast<int>(std::max(20L, 2000000L / n));

    // Latency distributions come from the telemetry subsystem, like the
    // figure benches.
    gsn::telemetry::MetricRegistry registry;
    auto deep = registry.GetHistogram("bench_snapshot_micros",
                                      {{"mode", "deep"}}, "deep copy");
    auto shared = registry.GetHistogram("bench_snapshot_micros",
                                        {{"mode", "shared"}}, "shared rows");

    size_t sink = 0;
    for (int r = 0; r < reps; ++r) {
      const int64_t start = NowMicros();
      std::vector<StreamElement> elements = buffer.Snapshot(now);
      Relation rel = Relation::FromElements(schema, elements);
      deep->Observe(NowMicros() - start);
      sink += rel.NumRows();
    }
    for (int r = 0; r < reps; ++r) {
      const int64_t start = NowMicros();
      Relation rel = buffer.SnapshotRelation(now, schema);
      shared->Observe(NowMicros() - start);
      sink += rel.NumRows();
    }
    if (sink != static_cast<size_t>(n) * 2 * static_cast<size_t>(reps)) {
      std::fprintf(stderr, "row count mismatch\n");
      return 1;
    }

    const gsn::telemetry::Histogram::Snapshot d = deep->TakeSnapshot();
    const gsn::telemetry::Histogram::Snapshot s = shared->TakeSnapshot();
    const double speedup = s.Mean() > 0 ? d.Mean() / s.Mean()
                                        : d.Mean() > 0 ? 1e9 : 1.0;
    std::printf("%-10ld %10d %14.2f %14.2f %14.2f %14.2f %9.1fx\n", n, reps,
                d.Mean(), static_cast<double>(d.Quantile(0.95)), s.Mean(),
                static_cast<double>(s.Quantile(0.95)), speedup);
    std::fflush(stdout);
    if (n >= 10000 && speedup < 5.0) met_bar = false;
  }

  if (!met_bar) {
    std::fprintf(stderr,
                 "shared-row snapshot is less than 5x faster at >=10^4 rows\n");
    return 1;
  }
  return 0;
}

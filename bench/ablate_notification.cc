// Ablation: notification fan-out (DESIGN.md §4). Per-element dispatch
// cost of the notification manager as the subscriber count grows, with
// unconditional vs predicate-filtered subscriptions.

#include <benchmark/benchmark.h>

#include "gsn/container/notification.h"

namespace {

using gsn::StreamElement;
using gsn::Value;
using gsn::container::CallbackChannel;
using gsn::container::Notification;
using gsn::container::NotificationManager;

gsn::Schema ElementSchema() {
  gsn::Schema schema;
  schema.AddField("temperature", gsn::DataType::kInt);
  schema.AddField("light", gsn::DataType::kDouble);
  return schema;
}

StreamElement MakeElement() {
  StreamElement e;
  e.timed = 1000;
  e.values = {Value::Int(25), Value::Double(420.0)};
  return e;
}

void BM_FanoutUnconditional(benchmark::State& state) {
  NotificationManager manager;
  long delivered = 0;
  auto channel = std::make_shared<CallbackChannel>(
      [&delivered](const Notification&) { ++delivered; });
  for (int i = 0; i < state.range(0); ++i) {
    (void)manager.Subscribe("sensor", "", channel);
  }
  const gsn::Schema schema = ElementSchema();
  const StreamElement element = MakeElement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.OnElement("sensor", schema, element));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FanoutUnconditional)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_FanoutConditional(benchmark::State& state) {
  NotificationManager manager;
  long delivered = 0;
  auto channel = std::make_shared<CallbackChannel>(
      [&delivered](const Notification&) { ++delivered; });
  for (int i = 0; i < state.range(0); ++i) {
    // Half the conditions match, half don't.
    const std::string condition = (i % 2 == 0)
                                      ? "temperature > 20 and light < 500"
                                      : "temperature > 100";
    (void)manager.Subscribe("sensor", condition, channel);
  }
  const gsn::Schema schema = ElementSchema();
  const StreamElement element = MakeElement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.OnElement("sensor", schema, element));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FanoutConditional)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_NonMatchingSensorFiltered(benchmark::State& state) {
  NotificationManager manager;
  auto channel = std::make_shared<CallbackChannel>([](const Notification&) {});
  for (int i = 0; i < state.range(0); ++i) {
    (void)manager.Subscribe("other-sensor", "", channel);
  }
  const gsn::Schema schema = ElementSchema();
  const StreamElement element = MakeElement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.OnElement("sensor", schema, element));
  }
}
BENCHMARK(BM_NonMatchingSensorFiltered)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();

// Ablation: zone-map-pruned segment scans vs naive full decode vs
// in-memory scan. The tiered columnar history (docs/STORAGE.md) keeps
// per-chunk min/max zone maps and per-segment [min_timed, max_timed]
// bounds so a selective predicate skips whole segments without opening
// the file and whole column chunks without decoding them. This bench
// flushes 10 time-ordered segments, queries the most recent ~1% of
// history, and measures three paths:
//
//   pruned = SegmentCatalog::Scan with the pushed-down timed bound
//   naive  = SegmentCatalog::Scan with an empty predicate (decode
//            everything), then filter the rows in memory — the cost
//            without pushdown
//   memory = the same filter over rows already resident in a RowList,
//            as a floor (what the live window tier pays)
//
// Expected: pruning skips ~9 of 10 segments at the catalog level and
// most chunks of the one it opens, so the pruned scan beats the naive
// full decode by well over 3x at every size measured here.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "gsn/sql/scan_predicate.h"
#include "gsn/storage/columnar/catalog.h"
#include "gsn/telemetry/metrics.h"

namespace {

namespace fs = std::filesystem;

using gsn::DataType;
using gsn::Relation;
using gsn::Schema;
using gsn::Timestamp;
using gsn::Value;

constexpr Timestamp kStepMicros = 1000;  // one row per millisecond

Schema RowSchema() {
  Schema schema;
  schema.AddField("timed", DataType::kTimestamp);
  schema.AddField("seq", DataType::kInt);
  schema.AddField("temp", DataType::kDouble);
  schema.AddField("site", DataType::kString);
  return schema;
}

/// Rows [timed, seq, temp, site] at a fixed cadence — the shape a
/// checkpoint evicts from a generator sensor's window.
Relation::RowList MakeRows(long n) {
  static const char* kSites[] = {"zurich", "lausanne", "geneva", "bern"};
  Relation::RowList rows;
  rows.reserve(static_cast<size_t>(n));
  for (long i = 0; i < n; ++i) {
    rows.push_back(Relation::MakeRow(
        {Value::TimestampVal(i * kStepMicros), Value::Int(i),
         Value::Double(20.0 + (i % 1000) * 0.25),
         Value::String(kSites[i % 4])}));
  }
  return rows;
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  std::vector<long> sizes = {10000, 100000};
  if (quick) sizes = {10000};

  std::printf("# Ablation: segment scan cost, zone-map pruned vs naive\n");
  std::printf("# query = most recent ~1%% of history (timed > cutoff)\n");
  std::printf("# pruned = predicate pushed into SegmentCatalog::Scan\n");
  std::printf("# naive  = full decode of every segment, filter after\n");
  std::printf("# memory = same filter over resident rows (floor)\n");
  std::printf("%-10s %8s %14s %14s %14s %10s\n", "rows", "reps",
              "pruned_mean_us", "naive_mean_us", "memory_mean_us", "speedup");

  const Schema schema = RowSchema();
  const std::string root =
      (fs::temp_directory_path() / "gsn_ablate_columnar").string();
  bool met_bar = true;

  for (long n : sizes) {
    fs::remove_all(root);
    fs::create_directories(root);

    gsn::storage::columnar::SegmentCatalog::Options options;
    options.rows_per_chunk = 1024;
    auto catalog = gsn::storage::columnar::SegmentCatalog::Open(root, options);
    if (!catalog.ok()) {
      std::fprintf(stderr, "catalog open failed: %s\n",
                   catalog.status().ToString().c_str());
      return 1;
    }

    // 10 checkpoints' worth of history: disjoint time-ordered segments,
    // like a long-running sensor under periodic checkpointing.
    const Relation::RowList rows = MakeRows(n);
    const long per_segment = n / 10;
    for (long s = 0; s < 10; ++s) {
      Relation::RowList slice(rows.begin() + s * per_segment,
                              rows.begin() + (s + 1) * per_segment);
      auto flushed = (*catalog)->Flush("bench", schema, slice);
      if (!flushed.ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.status().ToString().c_str());
        return 1;
      }
    }

    // The most recent ~1% of history: one chunk's worth at the tail.
    const Timestamp cutoff = (n - n / 100) * kStepMicros - 1;
    const size_t expected = static_cast<size_t>(n / 100);
    gsn::sql::ScanPredicate selective;
    gsn::sql::ScanBound bound;
    bound.column = "timed";
    bound.op = gsn::sql::ScanBound::Op::kGreater;
    bound.value = Value::TimestampVal(cutoff);
    selective.bounds.push_back(bound);
    const gsn::sql::ScanPredicate everything;

    auto matches = [cutoff](const Relation::SharedRow& row) {
      return (*row)[0].timestamp_value() > cutoff;
    };

    const int reps = quick ? 20 : static_cast<int>(std::max(10L, 400000L / n));
    gsn::telemetry::MetricRegistry registry;
    auto pruned = registry.GetHistogram("bench_segment_scan_micros",
                                        {{"mode", "pruned"}}, "pruned scan");
    auto naive = registry.GetHistogram("bench_segment_scan_micros",
                                       {{"mode", "naive"}}, "full decode");
    auto memory = registry.GetHistogram("bench_segment_scan_micros",
                                        {{"mode", "memory"}}, "resident scan");

    size_t sink = 0;
    for (int r = 0; r < reps; ++r) {
      Relation::RowList out;
      const int64_t start = NowMicros();
      if (!(*catalog)->Scan("bench", schema, selective, &out, nullptr).ok()) {
        std::fprintf(stderr, "pruned scan failed\n");
        return 1;
      }
      Relation::RowList kept;
      for (const Relation::SharedRow& row : out) {
        if (matches(row)) kept.push_back(row);
      }
      pruned->Observe(NowMicros() - start);
      if (kept.size() != expected) {
        std::fprintf(stderr, "pruned scan returned %zu rows, want %zu\n",
                     kept.size(), expected);
        return 1;
      }
      sink += kept.size();
    }
    for (int r = 0; r < reps; ++r) {
      Relation::RowList out;
      const int64_t start = NowMicros();
      if (!(*catalog)->Scan("bench", schema, everything, &out, nullptr).ok()) {
        std::fprintf(stderr, "naive scan failed\n");
        return 1;
      }
      Relation::RowList kept;
      for (const Relation::SharedRow& row : out) {
        if (matches(row)) kept.push_back(row);
      }
      naive->Observe(NowMicros() - start);
      if (kept.size() != expected) {
        std::fprintf(stderr, "naive scan returned %zu rows, want %zu\n",
                     kept.size(), expected);
        return 1;
      }
      sink += kept.size();
    }
    for (int r = 0; r < reps; ++r) {
      const int64_t start = NowMicros();
      Relation::RowList kept;
      for (const Relation::SharedRow& row : rows) {
        if (matches(row)) kept.push_back(row);
      }
      memory->Observe(NowMicros() - start);
      if (kept.size() != expected) {
        std::fprintf(stderr, "memory scan returned %zu rows, want %zu\n",
                     kept.size(), expected);
        return 1;
      }
      sink += kept.size();
    }
    if (sink != expected * 3 * static_cast<size_t>(reps)) {
      std::fprintf(stderr, "row count mismatch\n");
      return 1;
    }

    const gsn::telemetry::Histogram::Snapshot p = pruned->TakeSnapshot();
    const gsn::telemetry::Histogram::Snapshot f = naive->TakeSnapshot();
    const gsn::telemetry::Histogram::Snapshot m = memory->TakeSnapshot();
    const double speedup = p.Mean() > 0 ? f.Mean() / p.Mean()
                                        : f.Mean() > 0 ? 1e9 : 1.0;
    std::printf("%-10ld %8d %14.2f %14.2f %14.2f %9.1fx\n", n, reps, p.Mean(),
                f.Mean(), m.Mean(), speedup);
    std::fflush(stdout);
    if (speedup < 3.0) met_bar = false;
  }
  fs::remove_all(root);

  if (!met_bar) {
    std::fprintf(stderr,
                 "zone-map pruning is less than 3x faster than a full "
                 "segment decode\n");
    return 1;
  }
  return 0;
}

// C10k-style benchmark for the epoll HTTP plane (docs/TRANSPORT.md):
// one EpollTransport serves N concurrent keep-alive HTTP/1.1 clients,
// each issuing R sequential requests on its own persistent connection.
// The client side is a single epoll loop too, so the bench itself
// never becomes a thread-per-connection bottleneck.
//
// The headline point is clients=1000: the paper's "access via the Web"
// layer must hold a thousand live browsers/integrators on one node
// without thread-per-connection costs.
//
//   build/bench/bench_transport [--quick] [--json]
//
// --json writes BENCH_transport.json, gated in CI by
// scripts/check_bench_regression.py (mean_ms/p95_ms latency fields,
// `elements` = completed responses as the throughput count).

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gsn/network/epoll_transport.h"
#include "gsn/network/http_server.h"
#include "gsn/network/socket_ops.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One benchmark client: a persistent keep-alive connection issuing
/// `remaining` sequential GETs.
struct BenchConn {
  int fd = -1;
  bool connecting = true;
  bool request_in_flight = false;
  int remaining = 0;
  std::string inbuf;
  Clock::time_point sent_at;
};

constexpr char kRequest[] = "GET /bench HTTP/1.1\r\nHost: bench\r\n\r\n";

bool SendRequest(BenchConn* conn) {
  size_t off = 0;
  const size_t len = sizeof(kRequest) - 1;
  while (off < len) {
    const ssize_t n =
        ::send(conn->fd, kRequest + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return false;  // tiny request: EAGAIN is not expected
    off += static_cast<size_t>(n);
  }
  conn->sent_at = Clock::now();
  conn->request_in_flight = true;
  return true;
}

/// Consumes one complete HTTP response from the front of `inbuf`;
/// returns false until it is fully buffered.
bool ConsumeResponse(std::string* inbuf) {
  const size_t header_end = inbuf->find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  size_t body_len = 0;
  const size_t cl = inbuf->find("Content-Length:");
  if (cl != std::string::npos && cl < header_end) {
    body_len = static_cast<size_t>(
        std::strtoul(inbuf->c_str() + cl + 15, nullptr, 10));
  }
  const size_t total = header_end + 4 + body_len;
  if (inbuf->size() < total) return false;
  inbuf->erase(0, total);
  return true;
}

struct PointResult {
  int clients = 0;
  int64_t elements = 0;  // completed responses
  double duration_ms = 0.0;
  double mean_ms = 0.0;
  double p95_ms = 0.0;
  double rps = 0.0;
  int64_t server_overflows = 0;
};

/// Runs one measurement: `clients` keep-alive connections, each doing
/// `requests_per_client` sequential GETs against `port`.
bool RunPoint(uint16_t port, int clients, int requests_per_client,
              PointResult* out) {
  const int ep = ::epoll_create1(0);
  if (ep < 0) return false;
  std::vector<BenchConn> conns(static_cast<size_t>(clients));
  std::vector<double> latencies_ms;
  latencies_ms.reserve(
      static_cast<size_t>(clients) * static_cast<size_t>(requests_per_client));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  const auto start = Clock::now();
  for (int i = 0; i < clients; ++i) {
    BenchConn& conn = conns[static_cast<size_t>(i)];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (conn.fd < 0) {
      std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
      return false;
    }
    const int one = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn.remaining = requests_per_client;
    if (::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      conn.connecting = false;
    } else if (errno != EINPROGRESS) {
      std::fprintf(stderr, "connect: %s\n", std::strerror(errno));
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u32 = static_cast<uint32_t>(i);
    ::epoll_ctl(ep, EPOLL_CTL_ADD, conn.fd, &ev);
  }

  int open_conns = clients;
  char buf[64 * 1024];
  epoll_event events[256];
  while (open_conns > 0) {
    const int n = ::epoll_wait(ep, events, 256, 10000);
    if (n <= 0) {
      std::fprintf(stderr, "epoll_wait stalled with %d conns open\n",
                   open_conns);
      break;
    }
    for (int e = 0; e < n; ++e) {
      BenchConn& conn = conns[events[e].data.u32];
      if (conn.fd < 0) continue;
      bool dead = (events[e].events & (EPOLLERR | EPOLLHUP)) != 0;

      if (!dead && conn.connecting &&
          (events[e].events & EPOLLOUT) != 0) {
        conn.connecting = false;
      }
      if (!dead && !conn.connecting && !conn.request_in_flight &&
          conn.remaining > 0) {
        dead = !SendRequest(&conn);
        if (!dead) {
          // Only care about readability from here on.
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.u32 = events[e].data.u32;
          ::epoll_ctl(ep, EPOLL_CTL_MOD, conn.fd, &ev);
        }
      }
      if (!dead && (events[e].events & EPOLLIN) != 0) {
        for (;;) {
          const ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (r > 0) {
            conn.inbuf.append(buf, static_cast<size_t>(r));
          } else if (r == 0) {
            dead = true;
            break;
          } else {
            if (errno != EAGAIN && errno != EWOULDBLOCK) dead = true;
            break;
          }
        }
        while (conn.request_in_flight && ConsumeResponse(&conn.inbuf)) {
          latencies_ms.push_back(MillisSince(conn.sent_at));
          conn.request_in_flight = false;
          --conn.remaining;
          if (conn.remaining > 0) {
            dead = dead || !SendRequest(&conn);
          }
        }
      }
      if (dead || (conn.remaining == 0 && !conn.request_in_flight)) {
        ::epoll_ctl(ep, EPOLL_CTL_DEL, conn.fd, nullptr);
        ::close(conn.fd);
        conn.fd = -1;
        --open_conns;
      }
    }
  }
  ::close(ep);

  out->clients = clients;
  out->elements = static_cast<int64_t>(latencies_ms.size());
  out->duration_ms = MillisSince(start);
  if (!latencies_ms.empty()) {
    double sum = 0.0;
    for (double v : latencies_ms) sum += v;
    out->mean_ms = sum / static_cast<double>(latencies_ms.size());
    std::sort(latencies_ms.begin(), latencies_ms.end());
    out->p95_ms =
        latencies_ms[latencies_ms.size() * 95 / 100 == latencies_ms.size()
                         ? latencies_ms.size() - 1
                         : latencies_ms.size() * 95 / 100];
    out->rps = static_cast<double>(latencies_ms.size()) /
               (out->duration_ms / 1000.0);
  }
  // Every request must have been answered: keep-alive reuse means no
  // client ever reconnects, so a lost response is a server bug.
  const int64_t expected = static_cast<int64_t>(clients) *
                           static_cast<int64_t>(requests_per_client);
  if (out->elements != expected) {
    std::fprintf(stderr, "FAIL: %lld/%lld responses at %d clients\n",
                 static_cast<long long>(out->elements),
                 static_cast<long long>(expected), clients);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--json") json = true;
  }

  gsn::network::EpollTransport server;
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  // A small JSON payload, the shape of a typical /api/v1 response.
  const gsn::network::HttpResponse canned = gsn::network::HttpResponse::Json(
      "{\"status\":\"ok\",\"node\":\"bench\",\"payload\":\"" +
      std::string(128, 'x') + "\"}");
  if (!server
           .ListenHttp(0, [canned](const gsn::network::HttpRequest&) {
             return canned;
           })
           .ok()) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }

  const std::vector<int> client_counts = {100, 500, 1000};
  const int requests_per_client = quick ? 5 : 50;

  std::printf("# bench_transport: epoll HTTP plane, keep-alive clients\n");
  std::printf("# %d sequential requests per client, one connection each\n",
              requests_per_client);
  std::printf("%-10s %12s %12s %10s %10s %12s\n", "clients", "elements",
              "duration_ms", "mean_ms", "p95_ms", "rps");

  std::vector<PointResult> points;
  for (int clients : client_counts) {
    PointResult point;
    if (!RunPoint(server.http_port(), clients, requests_per_client, &point)) {
      return 1;
    }
    point.server_overflows = server.overflows_total();
    std::printf("%-10d %12lld %12.1f %10.3f %10.3f %12.0f\n", point.clients,
                static_cast<long long>(point.elements), point.duration_ms,
                point.mean_ms, point.p95_ms, point.rps);
    points.push_back(point);
  }
  server.Stop();

  // Healthy keep-alive clients must never be disconnected for
  // backpressure: they read every response before sending the next.
  if (points.back().server_overflows != 0) {
    std::fprintf(stderr, "FAIL: server overflowed healthy readers\n");
    return 1;
  }

  // Degraded point (docs/CHAOS.md): the same workload against a server
  // whose recv/send syscalls fail with EINTR — and truncate to short
  // writes — 1% of the time each. These are the faults a real kernel
  // can deliver to an edge-triggered loop; spurious EAGAIN is not one
  // (it would be a lost edge, which level-triggered kernels produce
  // and EPOLLET by contract never does). Every response must still
  // arrive on its keep-alive connection (the retry paths may cost
  // latency, never correctness), and the gate in
  // scripts/check_bench_regression.py bounds how much latency the
  // recovery machinery is allowed to burn.
  gsn::network::FaultInjectingSocketOps::Config fault_config;
  fault_config.seed = 42;
  fault_config.recv_eintr_rate = 0.01;
  fault_config.send_eintr_rate = 0.01;
  fault_config.short_write_rate = 0.01;
  gsn::network::FaultInjectingSocketOps faulty_ops(fault_config);
  gsn::network::EpollTransport::Options faulty_options;
  faulty_options.socket_ops = &faulty_ops;
  gsn::network::EpollTransport faulty_server(faulty_options);
  if (!faulty_server.Start().ok() ||
      !faulty_server
           .ListenHttp(0, [canned](const gsn::network::HttpRequest&) {
             return canned;
           })
           .ok()) {
    std::fprintf(stderr, "faulty server start failed\n");
    return 1;
  }
  PointResult faulty_point;
  if (!RunPoint(faulty_server.http_port(), 100, requests_per_client,
                &faulty_point)) {
    return 1;
  }
  faulty_server.Stop();
  const int64_t injected_faults = faulty_ops.injected_recv_faults() +
                                  faulty_ops.injected_send_faults() +
                                  faulty_ops.injected_short_writes();
  std::printf("%-10s %12lld %12.1f %10.3f %10.3f %12.0f  (%lld faults)\n",
              "100+1%", static_cast<long long>(faulty_point.elements),
              faulty_point.duration_ms, faulty_point.mean_ms,
              faulty_point.p95_ms, faulty_point.rps,
              static_cast<long long>(injected_faults));
  if (injected_faults == 0) {
    std::fprintf(stderr, "FAIL: fault injection armed but nothing fired\n");
    return 1;
  }

  if (json) {
    FILE* f = std::fopen("BENCH_transport.json", "w");
    if (f == nullptr) return 1;
    std::fprintf(f, "{\n  \"bench\": \"transport\",\n");
    std::fprintf(f, "  \"requests_per_client\": %d,\n", requests_per_client);
    std::fprintf(f, "  \"points\": [\n");
    for (size_t i = 0; i < points.size(); ++i) {
      const PointResult& p = points[i];
      std::fprintf(f,
                   "    {\"clients\": %d, \"elements\": %lld, "
                   "\"mean_ms\": %.4f, \"p95_ms\": %.4f, \"rps\": %.0f}%s\n",
                   p.clients, static_cast<long long>(p.elements), p.mean_ms,
                   p.p95_ms, p.rps, i + 1 < points.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"faulty\": {\"clients\": %d, \"elements\": %lld, "
                 "\"mean_ms\": %.4f, \"p95_ms\": %.4f, \"rps\": %.0f, "
                 "\"injected_faults\": %lld}\n",
                 faulty_point.clients,
                 static_cast<long long>(faulty_point.elements),
                 faulty_point.mean_ms, faulty_point.p95_ms, faulty_point.rps,
                 static_cast<long long>(injected_faults));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_transport.json\n");
  }
  return 0;
}

// Ablation: adaptive join execution (paper §4: "adaptive query
// execution plan"). Hash vs nested-loop equi-join across input sizes —
// shows the crossover that justifies runtime strategy selection: below
// it the nested loop's lower constant wins, above it the hash join's
// O(n+m) scaling wins.

#include <benchmark/benchmark.h>

#include "gsn/sql/executor.h"
#include "gsn/sql/parser.h"
#include "gsn/util/rng.h"

namespace {

using gsn::DataType;
using gsn::Relation;
using gsn::Schema;
using gsn::Value;

gsn::sql::MapResolver MakeTables(int rows) {
  gsn::Rng rng(7);
  gsn::sql::MapResolver resolver;
  for (const char* name : {"l", "r"}) {
    Schema schema;
    schema.AddField("id", DataType::kInt);
    schema.AddField("v", DataType::kInt);
    Relation rel(schema);
    for (int i = 0; i < rows; ++i) {
      (void)rel.AddRow({Value::Int(rng.NextInt(0, rows)),
                        Value::Int(rng.NextInt(0, 100))});
    }
    resolver.Put(name, std::move(rel));
  }
  return resolver;
}

void RunJoin(benchmark::State& state, size_t threshold) {
  const size_t saved = gsn::sql::GetHashJoinThreshold();
  gsn::sql::SetHashJoinThreshold(threshold);
  gsn::sql::MapResolver resolver = MakeTables(static_cast<int>(state.range(0)));
  gsn::sql::Executor exec(&resolver);
  auto stmt =
      gsn::sql::ParseSelect("select count(*) from l join r on l.id = r.id");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(**stmt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  gsn::sql::SetHashJoinThreshold(saved);
}

void BM_NestedLoopJoin(benchmark::State& state) {
  RunJoin(state, SIZE_MAX);
}
BENCHMARK(BM_NestedLoopJoin)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_HashJoin(benchmark::State& state) { RunJoin(state, 0); }
BENCHMARK(BM_HashJoin)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

void BM_AdaptiveJoin(benchmark::State& state) {
  RunJoin(state, 1024);  // the default policy
}
BENCHMARK(BM_AdaptiveJoin)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Figure 3 of the paper: "GSN node under time-triggered
// load" — mean internal processing time per stream element as a
// function of the output interval (10..1000 ms), for stream element
// sizes (SES) from 15 bytes to 75 KB.
//
// Workload (paper §5): devices produce data items every 10, 25, 50,
// 100, 250, 500, and 1000 milliseconds; we measure the in-container
// processing time per element. The paper used 22 motes and 15 cameras
// in 4 networks; here each device is a time-triggered generator wrapper
// with a configurable payload, deployed as one virtual sensor with a
// 2-second time window and permanent storage (so payload bytes flow
// through the full pipeline: window scan, SQL, storage, persistence).
//
// Expected shape (paper): processing time is highest at small
// intervals, drops sharply as the interval grows, and converges to a
// near-constant floor at >= 250 ms (about 4 readings/second); larger
// SES curves sit above smaller ones.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/telemetry/metrics.h"

namespace {

using gsn::Timestamp;
using gsn::kMicrosPerMilli;
using gsn::kMicrosPerSecond;

std::string DeviceDescriptor(const std::string& name, int interval_ms,
                             int payload_bytes) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<output-structure>"
         "  <field name=\"seq\" type=\"integer\"/>"
         "  <field name=\"value\" type=\"double\"/>"
         "  <field name=\"payload\" type=\"binary\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"true\" size=\"10s\"/>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"2s\">"
         "    <address wrapper=\"generator\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "      <predicate key=\"payload-bytes\" val=\"" +
         std::to_string(payload_bytes) + "\"/>"
         "    </address>"
         // Window scan cost grows with the window population (high
         // rates => more elements in the 2s window), like the paper's
         // node under load.
         "    <query>select * from wrapper order by timed desc limit 1"
         "    </query>"
         "  </stream-source>"
         "  <query>select seq, value, payload from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

struct CellResult {
  double mean_ms = 0;
  double p95_ms = 0;
  long elements = 0;
  /// Scheduling-profiler columns (docs/TELEMETRY.md): wall time spent
  /// blocked on instrumented locks / queued at admission, as a share
  /// of total tick time. The evidence base for ROADMAP item 1.
  double lock_wait_share = 0;
  double queue_wait_share = 0;
};

/// Runs one (interval, SES) cell: `devices` sensors on one container
/// for `duration` of virtual time; returns the processing-time
/// distribution read from the cell's telemetry registry.
CellResult RunCell(int interval_ms, int payload_bytes, int devices,
                   Timestamp duration, const std::string& storage_dir) {
  auto clock = std::make_shared<gsn::VirtualClock>();
  // A per-cell registry keeps the histograms isolated between cells.
  gsn::telemetry::MetricRegistry registry;
  gsn::container::Container::Options options;
  options.node_id = "fig3";
  options.clock = clock;
  options.seed = 1234 + static_cast<uint64_t>(interval_ms) * 131 +
                 static_cast<uint64_t>(payload_bytes);
  options.storage_dir = storage_dir;
  options.metrics = &registry;
  gsn::container::Container container(std::move(options));

  for (int d = 0; d < devices; ++d) {
    auto deployed = container.Deploy(
        DeviceDescriptor("dev-" + std::to_string(d), interval_ms,
                         payload_bytes));
    if (!deployed.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   deployed.status().ToString().c_str());
      return {};
    }
  }

  const Timestamp step = static_cast<Timestamp>(interval_ms) *
                         kMicrosPerMilli;
  for (Timestamp t = 0; t < duration; t += step) {
    clock->Advance(step);
    (void)container.Tick();
  }

  CellResult result;
  // All devices of the cell share the registry: summing the per-sensor
  // families yields the node-wide processing-time distribution.
  const gsn::telemetry::Histogram::Snapshot processing =
      registry.SumHistograms("gsn_sensor_processing_micros");
  result.mean_ms = processing.count > 0 ? processing.Mean() / 1000.0 : 0.0;
  result.p95_ms = processing.count > 0 ? processing.Quantile(0.95) / 1000.0
                                       : 0.0;
  result.elements =
      static_cast<long>(registry.SumCounters("gsn_sensor_tuples_total"));
  // Contention profile of the cell: lock-wait and queue-wait micros
  // over total tick micros (all three live in the cell's registry).
  const gsn::telemetry::Histogram::Snapshot ticks =
      registry.SumHistograms("gsn_tick_micros");
  if (ticks.sum > 0) {
    result.lock_wait_share =
        static_cast<double>(
            registry.SumHistograms("gsn_lock_wait_micros").sum) /
        static_cast<double>(ticks.sum);
    result.queue_wait_share =
        static_cast<double>(
            registry.SumHistograms("gsn_queue_wait_micros").sum) /
        static_cast<double>(ticks.sum);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick shrinks the sweep for CI runs; --json additionally writes
  // the grid to BENCH_fig3.json for machine comparison across commits.
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--json") json = true;
  }

  const std::vector<int> intervals_ms = {10, 25, 50, 100, 250, 500, 1000};
  const std::vector<int> element_sizes = {15,        50,        100,
                                          16 * 1024, 32 * 1024, 75 * 1024};
  // Paper: 37 devices (22 motes + 15 cameras) in 4 networks on one
  // node. --quick uses 6 devices and a shorter horizon.
  const int devices = quick ? 6 : 37;
  const Timestamp duration = (quick ? 3 : 6) * kMicrosPerSecond;

  const std::string storage_dir =
      (std::filesystem::temp_directory_path() / "gsn_fig3_bench").string();
  std::filesystem::remove_all(storage_dir);
  std::filesystem::create_directories(storage_dir);

  std::printf("# Figure 3: GSN node under time-triggered load\n");
  std::printf("# %d devices per cell, %lld s of stream time per cell\n",
              devices, static_cast<long long>(duration / kMicrosPerSecond));
  std::printf("# rows: output interval (ms); columns: stream element size\n");
  std::printf("%-14s", "interval_ms");
  for (int ses : element_sizes) {
    std::string label = ses >= 1024 ? std::to_string(ses / 1024) + "KB"
                                    : std::to_string(ses) + "B";
    std::printf("%12s", label.c_str());
  }
  std::printf("\n");

  std::vector<std::vector<CellResult>> grid;
  for (int interval : intervals_ms) {
    std::printf("%-14d", interval);
    grid.emplace_back();
    for (int ses : element_sizes) {
      std::filesystem::remove_all(storage_dir);
      std::filesystem::create_directories(storage_dir);
      grid.back().push_back(
          RunCell(interval, ses, devices, duration, storage_dir));
      std::printf("%12.3f", grid.back().back().mean_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("# cell = mean in-container processing time per stream "
              "element (ms)\n");
  std::printf("#\n# p95 per cell (ms), from the same telemetry "
              "histograms:\n");
  for (size_t r = 0; r < grid.size(); ++r) {
    std::printf("%-14d", intervals_ms[r]);
    for (const CellResult& cell : grid[r]) {
      std::printf("%12.3f", cell.p95_ms);
    }
    std::printf("\n");
  }
  std::printf("#\n# lock-wait share per cell (lock-wait micros / tick "
              "micros, contention profiler):\n");
  for (size_t r = 0; r < grid.size(); ++r) {
    std::printf("%-14d", intervals_ms[r]);
    for (const CellResult& cell : grid[r]) {
      std::printf("%12.4f", cell.lock_wait_share);
    }
    std::printf("\n");
  }
  std::printf("#\n# queue-wait share per cell (admission queue-wait micros "
              "/ tick micros):\n");
  for (size_t r = 0; r < grid.size(); ++r) {
    std::printf("%-14d", intervals_ms[r]);
    for (const CellResult& cell : grid[r]) {
      std::printf("%12.4f", cell.queue_wait_share);
    }
    std::printf("\n");
  }
  std::filesystem::remove_all(storage_dir);

  if (json) {
    std::FILE* f = std::fopen("BENCH_fig3.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_fig3.json\n");
      return 1;
    }
    std::fprintf(f, "{\n  \"figure\": 3,\n  \"devices\": %d,\n"
                 "  \"duration_s\": %lld,\n  \"cells\": [\n",
                 devices, static_cast<long long>(duration / kMicrosPerSecond));
    bool first = true;
    for (size_t r = 0; r < grid.size(); ++r) {
      for (size_t c = 0; c < grid[r].size(); ++c) {
        std::fprintf(f,
                     "%s    {\"interval_ms\": %d, \"ses_bytes\": %d, "
                     "\"mean_ms\": %.4f, \"p95_ms\": %.4f, \"elements\": %ld, "
                     "\"lock_wait_share\": %.6f, "
                     "\"queue_wait_share\": %.6f}",
                     first ? "" : ",\n", intervals_ms[r], element_sizes[c],
                     grid[r][c].mean_ms, grid[r][c].p95_ms,
                     grid[r][c].elements, grid[r][c].lock_wait_share,
                     grid[r][c].queue_wait_share);
        first = false;
      }
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_fig3.json\n");
  }
  return 0;
}

// gsnd: the headless GSN container daemon — the deployment shape the
// paper's §6 demo implies but never names. One process per node:
//
//   build/examples/example_gsnd --data-dir /var/lib/gsn
//       --descriptors ./virtual-sensors --port 8080 [--tick-ms 100]
//
// * --data-dir makes the node durable: the container manifest and the
//   per-sensor persistence logs live there, so a crashed or killed
//   daemon restarted over the same directory redeploys its sensors and
//   recovers every fsynced row (docs/DURABILITY.md).
// * --descriptors enables the hot-deploy directory workflow: drop a
//   .xml descriptor in, the sensor deploys; overwrite it, it redeploys
//   (invalid rewrites are rejected and the old sensor keeps running);
//   delete it, it undeploys.
// * --port serves the HTTP interface (/api/v1/...: healthz, readyz,
//   sensors, query, quarantine, metrics). 0 picks an ephemeral port;
//   the chosen port is printed either way.
// * --listen binds the framed federation peer plane (EpollTransport)
//   on 127.0.0.1:N (0 = ephemeral; the bound port is printed), and
//   --peer NAME=HOST:PORT (repeatable) adds a dial-table entry, so two
//   gsnd processes federate over real TCP sockets exactly like
//   simulator containers do in tests (docs/TRANSPORT.md).
// * --chaos-seed N wraps the peer plane in the deterministic
//   fault-injection decorator (docs/CHAOS.md); rules are then driven at
//   runtime through `chaos ...` / POST /api/v1/chaos, and the same seed
//   reproduces the same fault schedule. That is what
//   scripts/transport_chaos_soak.sh leans on.
//
// SIGTERM/SIGINT trigger a graceful drain: stop admitting wrapper
// load, flush the admission queues, checkpoint, fsync, exit 0. SIGKILL
// is the crash-recovery path — that is what the smoke test in
// scripts/crash_recovery_smoke.sh exercises.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/container/descriptor_watcher.h"
#include "gsn/container/realtime_pump.h"
#include "gsn/container/web_interface.h"
#include "gsn/network/chaos_transport.h"
#include "gsn/network/epoll_transport.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--data-dir DIR] [--descriptors DIR] [--port N]\n"
               "          [--node-id ID] [--tick-ms N] [--shards N]\n"
               "          [--listen N] [--peer NAME=HOST:PORT]...\n"
               "          [--chaos-seed N]\n"
               "       GSN_SHARDS=N in the environment sets the default\n"
               "       shard/tick-worker count (0 = hardware concurrency)\n"
               "       --listen binds the federation peer plane; --peer\n"
               "       adds a dial-table entry for a remote gsnd;\n"
               "       --chaos-seed wraps the peer plane in the\n"
               "       deterministic fault-injection decorator\n",
               argv0);
  return 2;
}

struct PeerSpec {
  std::string name;
  std::string host;
  uint16_t port = 0;
};

/// Parses "NAME=HOST:PORT" (the --peer argument shape).
bool ParsePeerSpec(const std::string& text, PeerSpec* out) {
  const size_t eq = text.find('=');
  const size_t colon = text.rfind(':');
  if (eq == std::string::npos || colon == std::string::npos || colon < eq) {
    return false;
  }
  out->name = text.substr(0, eq);
  out->host = text.substr(eq + 1, colon - eq - 1);
  const long port = std::strtol(text.c_str() + colon + 1, nullptr, 10);
  if (out->name.empty() || out->host.empty() || port <= 0 || port > 65535) {
    return false;
  }
  out->port = static_cast<uint16_t>(port);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string data_dir;
  std::string descriptors;
  std::string node_id = "gsnd";
  long port = 0;
  long tick_ms = 100;
  long listen_port = -1;  // -1 = no peer plane
  long chaos_seed = -1;   // -1 = no chaos decorator
  std::vector<PeerSpec> peers;
  // GSN_SHARDS seeds the default; --shards (parsed below) overrides.
  // 0 means "size to hardware concurrency" (the container default).
  long shards = 0;
  if (const char* env = std::getenv("GSN_SHARDS")) {
    shards = std::strtol(env, nullptr, 10);
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--data-dir" && value != nullptr) {
      data_dir = value;
      ++i;
    } else if (arg == "--descriptors" && value != nullptr) {
      descriptors = value;
      ++i;
    } else if (arg == "--node-id" && value != nullptr) {
      node_id = value;
      ++i;
    } else if (arg == "--port" && value != nullptr) {
      port = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--tick-ms" && value != nullptr) {
      tick_ms = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--shards" && value != nullptr) {
      shards = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--listen" && value != nullptr) {
      listen_port = std::strtol(value, nullptr, 10);
      ++i;
    } else if (arg == "--chaos-seed" && value != nullptr) {
      chaos_seed = std::strtol(value, nullptr, 10);
      if (chaos_seed < 0) return Usage(argv[0]);
      ++i;
    } else if (arg == "--peer" && value != nullptr) {
      PeerSpec peer;
      if (!ParsePeerSpec(value, &peer)) return Usage(argv[0]);
      peers.push_back(std::move(peer));
      ++i;
    } else {
      return Usage(argv[0]);
    }
  }
  if (tick_ms <= 0 || port < 0 || port > 65535 || shards < 0 ||
      listen_port > 65535) {
    return Usage(argv[0]);
  }

  // The peer-plane transport outlives the container (whose destructor
  // unregisters from it), so it is declared first. The chaos decorator
  // sits between them and must outlive the container too.
  std::unique_ptr<gsn::network::EpollTransport> transport;
  std::unique_ptr<gsn::network::ChaosTransport> chaos;
  if (listen_port >= 0 || !peers.empty()) {
    gsn::network::EpollTransport::Options transport_options;
    transport_options.metrics = gsn::telemetry::MetricRegistry::Default();
    transport_options.metrics_role = "peer";
    transport = std::make_unique<gsn::network::EpollTransport>(
        std::move(transport_options));
    gsn::Status status = transport->Start();
    if (status.ok() && listen_port >= 0) {
      status = transport->ListenPeer(static_cast<uint16_t>(listen_port));
    }
    if (!status.ok()) {
      std::fprintf(stderr, "gsnd: peer transport failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (listen_port >= 0) {
      std::printf("gsnd: peer plane on 127.0.0.1:%u\n",
                  transport->peer_port());
    }
    for (const PeerSpec& peer : peers) {
      transport->AddPeer(peer.name, peer.host, peer.port);
      std::printf("gsnd: peer %s at %s:%u\n", peer.name.c_str(),
                  peer.host.c_str(), peer.port);
    }
    if (chaos_seed >= 0) {
      gsn::network::ChaosTransport::Options chaos_options;
      chaos_options.seed = static_cast<uint64_t>(chaos_seed);
      chaos_options.metrics = gsn::telemetry::MetricRegistry::Default();
      chaos = std::make_unique<gsn::network::ChaosTransport>(transport.get(),
                                                             chaos_options);
      std::printf("gsnd: chaos decorator armed (seed %ld)\n", chaos_seed);
    }
  } else if (chaos_seed >= 0) {
    std::fprintf(stderr, "gsnd: --chaos-seed needs a peer plane "
                         "(--listen or --peer)\n");
    return Usage(argv[0]);
  }

  gsn::container::Container::Options options;
  options.node_id = node_id;
  options.clock = gsn::SystemClock::Shared();
  options.seed = static_cast<uint64_t>(::getpid());
  options.data_dir = data_dir;
  options.sharding.shards = static_cast<int>(shards);
  options.network = chaos != nullptr
                        ? static_cast<gsn::network::Transport*>(chaos.get())
                        : transport.get();
  gsn::container::Container container(std::move(options));

  if (!data_dir.empty()) {
    std::printf("gsnd: data-dir %s (%zu manifest records replayed, "
                "%zu sensors live, %zu failed)\n",
                data_dir.c_str(), container.recovered_records(),
                container.ListSensors().size(), container.recovery_failures());
  } else {
    std::printf("gsnd: no --data-dir, running without crash recovery\n");
  }

  std::unique_ptr<gsn::container::DescriptorWatcher> watcher;
  if (!descriptors.empty()) {
    watcher = std::make_unique<gsn::container::DescriptorWatcher>(
        &container, descriptors);
    std::printf("gsnd: watching %s for descriptors\n", descriptors.c_str());
  }

  gsn::container::WebInterface web(&container);
  const gsn::Status web_status = web.Start(static_cast<uint16_t>(port));
  if (!web_status.ok()) {
    std::fprintf(stderr, "gsnd: web interface failed: %s\n",
                 web_status.ToString().c_str());
    return 1;
  }
  std::printf("gsnd: listening on 127.0.0.1:%u\n", web.port());
  std::fflush(stdout);

  gsn::container::RealtimePump pump(&container,
                                    tick_ms * gsn::kMicrosPerMilli);
  pump.Start();

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);

  // Main loop: reconcile the descriptor directory at the tick cadence
  // until a stop signal arrives. SIGKILL never reaches this loop —
  // recovery on the next start is the contract instead.
  while (g_stop == 0) {
    if (watcher != nullptr) {
      const auto scanned = watcher->Scan();
      if (!scanned.ok()) {
        std::fprintf(stderr, "gsnd: descriptor scan failed: %s\n",
                     scanned.status().ToString().c_str());
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
  }

  std::printf("gsnd: draining...\n");
  pump.Stop();
  const gsn::Status drained = container.Shutdown();
  if (!drained.ok()) {
    std::fprintf(stderr, "gsnd: drain failed: %s\n",
                 drained.ToString().c_str());
  }
  web.Stop();
  std::printf("gsnd: bye\n");
  return drained.ok() ? 0 : 1;
}

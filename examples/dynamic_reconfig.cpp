// On-the-fly reconfiguration (paper §6, second demo item): add, remove,
// and reconfigure virtual sensors while the system is running and
// processing queries — "the plug-and-play capabilities of GSN for
// dynamically adding and removing sensors and networks", with zero
// programming effort: every change is a declarative XML descriptor.
//
//   build/examples/example_dynamic_reconfig

#include <cstdio>
#include <string>

#include "gsn/container/container.h"
#include "gsn/container/management_interface.h"

namespace {

using gsn::kMicrosPerMilli;
using gsn::kMicrosPerSecond;

/// A mote-backed sensor; `window` controls the averaging horizon so a
/// "reconfiguration" is just a changed attribute in the descriptor.
std::string Descriptor(const std::string& name, const std::string& window,
                       int interval_ms) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata><predicate key=\"type\" val=\"temperature\"/></metadata>"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"" + window + "\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"interval-ms\" val=\"" +
         std::to_string(interval_ms) + "\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// A sensor with a bounded lifetime: resources are reserved only while
/// needed (paper §3).
std::string EphemeralDescriptor(const std::string& name,
                                const std::string& lifetime) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<life-cycle pool-size=\"1\" lifetime=\"" + lifetime + "\"/>"
         "<output-structure>"
         "  <field name=\"light\" type=\"double\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"5s\">"
         "    <address wrapper=\"mote\"/>"
         "    <query>select avg(light) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

}  // namespace

int main() {
  auto clock = std::make_shared<gsn::VirtualClock>();
  gsn::container::Container::Options options;
  options.node_id = "reconfig-node";
  options.clock = clock;
  options.seed = 7;
  gsn::container::Container container(std::move(options));
  gsn::container::ManagementInterface mgmt(&container);

  auto run = [&](gsn::Timestamp duration) {
    for (gsn::Timestamp t = 0; t < duration; t += 100 * kMicrosPerMilli) {
      clock->Advance(100 * kMicrosPerMilli);
      auto s = container.Tick();
      if (!s.ok()) {
        std::fprintf(stderr, "tick: %s\n", s.status().ToString().c_str());
        std::exit(1);
      }
    }
  };

  // A standing continuous query observes the system across all
  // reconfigurations.
  long continuous_runs = 0;
  (void)container.query_manager().RegisterContinuous(
      "select count(*) from \"room-1\"",
      [&continuous_runs](const std::string&, const gsn::Relation&) {
        ++continuous_runs;
      });

  std::printf("=== step 1: system starts with one sensor ===\n");
  std::printf("%s", mgmt.Execute("deploy " + Descriptor("room-1", "5s", 200))
                        .c_str());
  run(3 * kMicrosPerSecond);
  std::printf("%s", mgmt.Execute("status room-1").c_str());

  std::printf("\n=== step 2: add a second network on the fly ===\n");
  std::printf("%s", mgmt.Execute("deploy " + Descriptor("room-2", "5s", 100))
                        .c_str());
  run(3 * kMicrosPerSecond);
  std::printf("%s", mgmt.Execute("list").c_str());
  std::printf("%s",
              mgmt.Execute("query select (select count(*) from \"room-1\") "
                           "as room1, (select count(*) from \"room-2\") as "
                           "room2")
                  .c_str());

  std::printf("\n=== step 3: define a derived sensor over the running ones "
              "===\n");
  // A new virtual sensor built purely from other virtual sensors'
  // streams — "a new sensor network based on the data produced by other
  // (heterogeneous) sensor networks ... without any software
  // programming efforts" (§6). Local virtual sensors are addressed with
  // the csv/mote-independent `remote`-free idiom: query their tables.
  long alerts = 0;
  (void)container.notification_manager().Subscribe(
      "room-2", "temperature > 0",
      std::make_shared<gsn::container::CallbackChannel>(
          [&alerts](const gsn::container::Notification&) { ++alerts; }));
  run(2 * kMicrosPerSecond);
  std::printf("derived subscription fired %ld times while running\n", alerts);

  std::printf("\n=== step 4: reconfigure room-1 (5s window -> 30s window, "
              "5x rate) ===\n");
  std::printf("%s", mgmt.Execute("undeploy room-1").c_str());
  std::printf("%s", mgmt.Execute("deploy " + Descriptor("room-1", "30s", 40))
                        .c_str());
  run(3 * kMicrosPerSecond);
  std::printf("%s", mgmt.Execute("status room-1").c_str());

  std::printf("\n=== step 5: deploy an ephemeral sensor (lifetime 2s) ===\n");
  std::printf("%s",
              mgmt.Execute("deploy " + EphemeralDescriptor("probe", "2s"))
                  .c_str());
  run(kMicrosPerSecond);
  std::printf("after 1s:  %s", mgmt.Execute("list").c_str());
  run(2 * kMicrosPerSecond);
  std::printf("after 3s:  %s", mgmt.Execute("list").c_str());

  std::printf("\n=== step 6: remove everything ===\n");
  std::printf("%s", mgmt.Execute("undeploy room-1").c_str());
  std::printf("%s", mgmt.Execute("undeploy room-2").c_str());
  std::printf("%s", mgmt.Execute("list").c_str());

  std::printf("\ncontinuous query ran %ld times across all "
              "reconfigurations\n",
              continuous_runs);
  return continuous_runs > 0 && alerts > 0 ? 0 : 1;
}

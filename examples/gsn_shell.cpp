// Interactive GSN shell: a terminal stand-in for the web interface the
// paper's demo audience used to "monitor the effective status of all
// parts of the system and how it reacts to changes in the
// configuration" (§6). Runs a live container (wall-clock, background
// pump) pre-loaded with a mote network, and drops into a REPL over the
// management interface.
//
//   build/examples/example_gsn_shell [watch-dir]     # interactive
//   echo "list" | build/examples/example_gsn_shell   # scripted
//
// With a watch-dir, .xml descriptors dropped into it hot-deploy (and
// deleting/overwriting them undeploys/redeploys) — the original GSN's
// virtual-sensors/ directory workflow.
//
// Try: help | list | status hall | query select * from hall limit 5
//      plot temperature select timed, temperature from hall
//      explain select avg(temperature) from hall | topology | quit

#include <cstdio>
#include <iostream>
#include <string>

#include "gsn/container/container.h"
#include "gsn/container/descriptor_watcher.h"
#include "gsn/container/management_interface.h"
#include "gsn/container/realtime_pump.h"
#include "gsn/container/web_interface.h"

namespace {

constexpr char kHallDescriptor[] = R"(
<virtual-sensor name="hall">
  <metadata>
    <predicate key="type" val="environment" />
    <predicate key="location" val="hall" />
  </metadata>
  <output-structure>
    <field name="temperature" type="integer" />
    <field name="light" type="double" />
  </output-structure>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1m">
      <address wrapper="mote">
        <predicate key="interval-ms" val="500" />
      </address>
      <query>select avg(temperature) as temperature, avg(light) as light
             from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
)";

constexpr char kDoorDescriptor[] = R"(
<virtual-sensor name="door">
  <metadata>
    <predicate key="type" val="rfid" />
  </metadata>
  <output-structure>
    <field name="tag_id" type="string" />
    <field name="rssi" type="integer" />
  </output-structure>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="rfid">
        <predicate key="interval-ms" val="500" />
        <predicate key="detect-probability" val="0.08" />
        <predicate key="tags" val="alice,bob,carol" />
      </address>
      <query>select tag_id, rssi from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
)";

}  // namespace

int main(int argc, char** argv) {
  gsn::container::Container::Options options;
  options.node_id = "shell-node";
  options.clock = gsn::SystemClock::Shared();
  options.seed = static_cast<uint64_t>(::getpid());
  gsn::container::Container container(std::move(options));

  for (const char* xml : {kHallDescriptor, kDoorDescriptor}) {
    auto sensor = container.Deploy(xml);
    if (!sensor.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   sensor.status().ToString().c_str());
      return 1;
    }
  }

  // RFID events print asynchronously, like the demo's live monitor.
  (void)container.notification_manager().Subscribe(
      "door", "",
      std::make_shared<gsn::container::CallbackChannel>(
          [](const gsn::container::Notification& n) {
            std::printf("\n[door] tag %s seen (rssi %s)\n> ",
                        n.element.values[0].ToString().c_str(),
                        n.element.values[1].ToString().c_str());
            std::fflush(stdout);
          }));

  // Optional hot-deploy directory, scanned by the pump cadence below.
  std::unique_ptr<gsn::container::DescriptorWatcher> watcher;
  if (argc > 1) {
    watcher = std::make_unique<gsn::container::DescriptorWatcher>(&container,
                                                                  argv[1]);
  }

  gsn::container::RealtimePump pump(&container, 100 * gsn::kMicrosPerMilli);
  pump.Start();

  // The web interface runs alongside the shell: the same node can be
  // monitored from a browser while being driven from the terminal.
  gsn::container::WebInterface web(&container);
  const gsn::Status web_status = web.Start(0);

  gsn::container::ManagementInterface mgmt(&container);
  std::printf(
      "GSN shell — container '%s' running live with sensors 'hall' and "
      "'door'.\n",
      container.node_id().c_str());
  if (web_status.ok()) {
    std::printf("web interface: http://127.0.0.1:%u/ (try /sensors, "
                "/query?sql=...)\n",
                web.port());
  }
  std::printf("Type 'help' for commands, 'quit' to exit.\n");

  if (watcher != nullptr) {
    std::printf("hot-deploy: watching %s for .xml descriptors\n",
                watcher->directory().c_str());
  }

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (watcher != nullptr) {
      (void)watcher->Scan();
    }
    const std::string trimmed = gsn::StrTrim(line);
    if (trimmed == "quit" || trimmed == "exit") break;
    if (!trimmed.empty()) {
      std::printf("%s", mgmt.Execute(trimmed).c_str());
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("\nshutting down...\n");
  web.Stop();
  pump.Stop();
  return 0;
}

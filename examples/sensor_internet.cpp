// A small "Sensor Internet" (paper §1): many heterogeneous sensor
// networks deployed by different organizations, integrated purely
// through logical addressing — the exact Figure 1 descriptor with
// wrapper="remote" resolving type/location predicates against the
// peer-to-peer directory, over links with latency, jitter, and loss.
//
//   build/examples/example_sensor_internet

#include <cstdio>
#include <string>
#include <vector>

#include "gsn/container/federation.h"
#include "gsn/container/management_interface.h"

namespace {

using gsn::kMicrosPerMilli;
using gsn::kMicrosPerSecond;

std::string SiteDescriptor(const std::string& name,
                           const std::string& location, int node_id) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata>"
         "  <predicate key=\"type\" val=\"temperature\"/>"
         "  <predicate key=\"location\" val=\"" + location + "\"/>"
         "</metadata>"
         "<output-structure>"
         "  <field name=\"temperature\" type=\"integer\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"src\" storage-size=\"10s\">"
         "    <address wrapper=\"mote\">"
         "      <predicate key=\"node-id\" val=\"" +
         std::to_string(node_id) + "\"/>"
         "      <predicate key=\"interval-ms\" val=\"500\"/>"
         "      <predicate key=\"temp-base\" val=\"" +
         std::to_string(15 + node_id * 3) + "\"/>"
         "    </address>"
         "    <query>select avg(temperature) from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from src</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

/// Figure 1 of the paper, verbatim semantics: averaged temperature
/// obtained from the Internet through GSN by logical address.
std::string Figure1Descriptor(const std::string& location) {
  return "<virtual-sensor name=\"fig1-" + location + "\">"
         "<life-cycle pool-size=\"10\" />"
         "<output-structure>"
         "  <field name=\"TEMPERATURE\" type=\"integer\"/>"
         "</output-structure>"
         "<storage permanent-storage=\"false\" size=\"10s\" />"
         "<input-stream name=\"dummy\" rate=\"100\">"
         "  <stream-source alias=\"src1\" sampling-rate=\"1\""
         "                 storage-size=\"1h\" disconnect-buffer=\"10\">"
         "    <address wrapper=\"remote\">"
         "      <predicate key=\"type\" val=\"temperature\" />"
         "      <predicate key=\"location\" val=\"" + location + "\" />"
         "    </address>"
         "    <query>select avg(temperature) from WRAPPER</query>"
         "  </stream-source>"
         "  <query>select * from src1</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

}  // namespace

int main() {
  gsn::container::Federation fed(/*seed=*/4242);
  // Wide-area links: 20ms +- 10ms, 1% loss.
  gsn::network::NetworkSimulator::LinkConfig wan;
  wan.base_latency_micros = 20 * kMicrosPerMilli;
  wan.jitter_micros = 10 * kMicrosPerMilli;
  wan.loss_probability = 0.01;
  fed.network().SetDefaultLink(wan);

  // Five organizations deploy their own sensor networks.
  const std::vector<std::pair<std::string, std::string>> sites = {
      {"epfl", "bc143"},   {"ethz", "hci-d7"},   {"city-hall", "roof"},
      {"airport", "gate3"}, {"vineyard", "row12"},
  };
  std::printf("=== organizations bring up their GSN nodes ===\n");
  int node_id = 0;
  for (const auto& [org, location] : sites) {
    auto node = fed.AddNode(org);
    if (!node.ok()) return 1;
    auto sensor = (*node)->Deploy(SiteDescriptor(org + "-temp", location,
                                                 ++node_id));
    if (!sensor.ok()) {
      std::fprintf(stderr, "%s: %s\n", org.c_str(),
                   sensor.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-10s publishes %s (location=%s)\n", org.c_str(),
                (*sensor)->name().c_str(), location.c_str());
  }

  // An aggregator node joins later, with no sensors of its own.
  auto aggregator = fed.AddNode("aggregator");
  if (!aggregator.ok()) return 1;
  (void)fed.RunFor(kMicrosPerSecond, 50 * kMicrosPerMilli);

  std::printf("\n=== discovery from the aggregator (directory replica) "
              "===\n");
  gsn::container::ManagementInterface mgmt(*aggregator);
  std::printf("%s", mgmt.Execute("discover type=temperature").c_str());

  std::printf("\n=== Fig 1 descriptors: mirror two sites by logical address "
              "===\n");
  for (const char* location : {"bc143", "gate3"}) {
    auto sensor = (*aggregator)->Deploy(Figure1Descriptor(location));
    if (!sensor.ok()) {
      std::fprintf(stderr, "mirror %s: %s\n", location,
                   sensor.status().ToString().c_str());
      return 1;
    }
    std::printf("  deployed %s\n", (*sensor)->name().c_str());
  }

  // Run half a minute of stream time over the lossy WAN.
  (void)fed.RunFor(30 * kMicrosPerSecond, 100 * kMicrosPerMilli);

  std::printf("\n=== global query on the aggregator: joined view of two "
              "sites ===\n%s",
              mgmt.Execute(
                      "query select a.temperature as bc143, b.temperature as "
                      "gate3, a.temperature - b.temperature as delta "
                      "from \"fig1-bc143\" a join \"fig1-gate3\" b "
                      "on a.timed = b.timed "
                      "order by a.timed desc limit 5")
                  .c_str());

  std::printf("\n=== per-mirror statistics ===\n");
  for (const char* name : {"fig1-bc143", "fig1-gate3"}) {
    auto count = (*aggregator)
                     ->Query(std::string("select count(*), "
                                         "avg(temperature) from \"") +
                             name + "\"");
    if (count.ok() && !count->empty()) {
      std::printf("  %-12s rows=%-5s avg-temp=%s\n", name,
                  count->rows()[0][0].ToString().c_str(),
                  count->rows()[0][1].ToString().c_str());
    }
  }

  const auto net = fed.network().stats();
  std::printf("\nWAN: %lld msgs sent, %lld delivered, %lld lost "
              "(loss rate %.2f%%), %.1f KB transferred\n",
              static_cast<long long>(net.sent),
              static_cast<long long>(net.delivered),
              static_cast<long long>(net.dropped),
              100.0 * static_cast<double>(net.dropped) /
                  static_cast<double>(net.sent > 0 ? net.sent : 1),
              static_cast<double>(net.bytes_sent) / 1024.0);

  // Success: both mirrors hold a live window despite loss. The Fig 1
  // descriptor keeps 10 s of history (storage size="10s"), i.e. ~20
  // rows at the producer's 500 ms rate.
  auto check = (*aggregator)->Query("select count(*) from \"fig1-bc143\"");
  return check.ok() && check->rows()[0][0].int_value() >= 15 ? 0 : 1;
}

// The paper's §6 demonstration, end to end: four sensor networks on
// three GSN nodes (Fig 5) — an RFID reader network and a mote network
// sharing one node, a camera network and a second mote network each on
// their own node — connected by the peer-to-peer fabric.
//
// Walks through the demo script:
//   1. pre-configured setup queried through the management interface
//      (single networks and cross-network integration queries);
//   2. the event scenario: an RFID badge swipe triggers a notification
//      that joins the latest camera frame with current light and
//      temperature from the other networks.
//
//   build/examples/example_demo_deployment

#include <cstdio>
#include <string>

#include "gsn/container/federation.h"
#include "gsn/container/management_interface.h"
#include "gsn/wrappers/rfid_wrapper.h"

namespace {

using gsn::kMicrosPerMilli;
using gsn::kMicrosPerSecond;

std::string MoteNetworkDescriptor(const std::string& name,
                                  const std::string& location, int motes) {
  // One virtual sensor joining `motes` simulated Mica2 motes: average
  // light and temperature over the last 10 seconds across the network.
  std::string sources;
  std::string aliases;
  for (int i = 0; i < motes; ++i) {
    const std::string alias = "m" + std::to_string(i);
    sources += "<stream-source alias=\"" + alias +
               "\" storage-size=\"10s\">"
               "  <address wrapper=\"mote\">"
               "    <predicate key=\"node-id\" val=\"" +
               std::to_string(i + 1) +
               "\"/>"
               "    <predicate key=\"interval-ms\" val=\"500\"/>"
               "  </address>"
               "  <query>select avg(light) as light, avg(temperature) as "
               "temperature from wrapper</query>"
               "</stream-source>";
    aliases += (i ? " union all select * from " : "select * from ") + alias;
  }
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata>"
         "  <predicate key=\"type\" val=\"environment\"/>"
         "  <predicate key=\"location\" val=\"" + location + "\"/>"
         "</metadata>"
         "<output-structure>"
         "  <field name=\"light\" type=\"double\"/>"
         "  <field name=\"temperature\" type=\"double\"/>"
         "</output-structure>" +
         "<input-stream name=\"motes\">" + sources +
         "<query>select avg(light) as light, avg(temperature) as temperature "
         "from (" + aliases + ") all_motes</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

std::string CameraDescriptor(const std::string& name, int camera_id) {
  return "<virtual-sensor name=\"" + name + "\">"
         "<metadata>"
         "  <predicate key=\"type\" val=\"camera\"/>"
         "  <predicate key=\"location\" val=\"entrance\"/>"
         "</metadata>"
         "<output-structure>"
         "  <field name=\"camera_id\" type=\"integer\"/>"
         "  <field name=\"image\" type=\"binary\"/>"
         "</output-structure>"
         "<input-stream name=\"in\">"
         "  <stream-source alias=\"cam\" storage-size=\"5\">"
         "    <address wrapper=\"camera\">"
         "      <predicate key=\"camera-id\" val=\"" +
         std::to_string(camera_id) + "\"/>"
         "      <predicate key=\"interval-ms\" val=\"1000\"/>"
         "      <predicate key=\"image-bytes\" val=\"16384\"/>"
         "    </address>"
         "    <query>select camera_id, image from wrapper</query>"
         "  </stream-source>"
         "  <query>select * from cam</query>"
         "</input-stream>"
         "</virtual-sensor>";
}

constexpr char kRfidDescriptor[] =
    "<virtual-sensor name=\"door-rfid\">"
    "<metadata>"
    "  <predicate key=\"type\" val=\"rfid\"/>"
    "  <predicate key=\"location\" val=\"entrance\"/>"
    "</metadata>"
    "<output-structure>"
    "  <field name=\"tag_id\" type=\"string\"/>"
    "  <field name=\"rssi\" type=\"integer\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    // Window of exactly one event: each trigger sees only the newest
    // detection (a wider window would re-emit older events per trigger).
    "  <stream-source alias=\"reader\" storage-size=\"1\">"
    "    <address wrapper=\"rfid\">"
    "      <predicate key=\"interval-ms\" val=\"250\"/>"
    "      <predicate key=\"detect-probability\" val=\"0\"/>"
    "      <predicate key=\"tags\" val=\"alice,bob\"/>"
    "    </address>"
    "    <query>select tag_id, rssi from wrapper</query>"
    "  </stream-source>"
    "  <query>select * from reader</query>"
    "</input-stream>"
    "</virtual-sensor>";

/// Camera mirror on the hub node via logical addressing, so the event
/// handler can join camera frames with local sensors.
constexpr char kCameraMirror[] =
    "<virtual-sensor name=\"entrance-camera\">"
    "<output-structure>"
    "  <field name=\"camera_id\" type=\"integer\"/>"
    "  <field name=\"image\" type=\"binary\"/>"
    "</output-structure>"
    "<input-stream name=\"in\">"
    "  <stream-source alias=\"remote_cam\" storage-size=\"5\">"
    "    <address wrapper=\"remote\">"
    "      <predicate key=\"type\" val=\"camera\"/>"
    "      <predicate key=\"location\" val=\"entrance\"/>"
    "    </address>"
    "    <query>select * from wrapper</query>"
    "  </stream-source>"
    "  <query>select camera_id, image from remote_cam</query>"
    "</input-stream>"
    "</virtual-sensor>";

}  // namespace

int main() {
  gsn::container::Federation fed(/*seed=*/65);
  // Realistic link parameters between the demo machines.
  gsn::network::NetworkSimulator::LinkConfig link;
  link.base_latency_micros = 2 * kMicrosPerMilli;
  link.jitter_micros = 1 * kMicrosPerMilli;
  fed.network().SetDefaultLink(link);

  auto hub = fed.AddNode("hub-node");        // RFID + mote network A
  auto camera_node = fed.AddNode("cam-node");  // camera network
  auto mote_node = fed.AddNode("mote-node");   // mote network B
  if (!hub.ok() || !camera_node.ok() || !mote_node.ok()) return 1;

  std::printf("=== Fig 5 deployment: 4 sensor networks on 3 GSN nodes ===\n");
  auto deploy = [](gsn::container::Container* node, const std::string& xml) {
    auto sensor = node->Deploy(xml);
    if (!sensor.ok()) {
      std::fprintf(stderr, "deploy on %s failed: %s\n",
                   node->node_id().c_str(),
                   sensor.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("  %-10s <- %s\n", node->node_id().c_str(),
                (*sensor)->name().c_str());
  };
  deploy(*hub, MoteNetworkDescriptor("hall-env", "hall", 4));
  deploy(*hub, kRfidDescriptor);
  deploy(*camera_node, CameraDescriptor("entrance-cam", 1));
  deploy(*mote_node, MoteNetworkDescriptor("lab-env", "lab", 3));

  // Let directory gossip settle, then wire the cross-node mirror.
  (void)fed.RunFor(100 * kMicrosPerMilli, 10 * kMicrosPerMilli);
  deploy(*hub, kCameraMirror);

  // Warm up: 15 seconds of stream time.
  (void)fed.RunFor(15 * kMicrosPerSecond, 100 * kMicrosPerMilli);

  std::printf("\n=== Part 1: querying the pre-configured setup ===\n");
  gsn::container::ManagementInterface hub_mgmt(*hub);
  gsn::container::ManagementInterface mote_mgmt(*mote_node);

  std::printf("\n> discover (whole Sensor Internet, from the hub)\n%s",
              hub_mgmt.Execute("discover").c_str());

  std::printf(
      "\n> average light & temperature in the hall over the stored "
      "history (active query)\n%s",
      hub_mgmt
          .Execute("query select count(*) as readings, avg(light) as light, "
                   "avg(temperature) as temp from \"hall-env\"")
          .c_str());

  std::printf("\n> same for the lab network on its own node\n%s",
              mote_mgmt
                  .Execute("query select count(*) as readings, avg(light) as "
                           "light, avg(temperature) as temp from \"lab-env\"")
                  .c_str());

  std::printf("\n> cross-network integration on the hub: hall vs entrance "
              "camera activity\n%s",
              hub_mgmt
                  .Execute("query select e.temperature, c.camera_id "
                           "from \"hall-env\" e, \"entrance-camera\" c "
                           "where c.timed > e.timed order by e.timed desc "
                           "limit 3")
                  .c_str());

  std::printf("\n=== Part 2: the RFID event scenario ===\n");
  int events = 0;
  (void)(*hub)->notification_manager().Subscribe(
      "door-rfid", "rssi > -71",
      std::make_shared<gsn::container::CallbackChannel>(
          [&](const gsn::container::Notification& n) {
            ++events;
            const std::string tag = n.element.values[0].ToString();
            auto snapshot = (*hub)->Query(
                "select c.image, e.light, e.temperature "
                "from \"entrance-camera\" c, \"hall-env\" e "
                "order by c.timed desc, e.timed desc limit 1");
            std::printf("  [event] tag '%s' recognized (rssi %s)\n",
                        tag.c_str(), n.element.values[1].ToString().c_str());
            if (snapshot.ok() && !snapshot->empty()) {
              const auto& row = snapshot->rows()[0];
              std::printf(
                  "          picture: %zu bytes | light: %.1f lux | "
                  "temperature: %.1f C\n",
                  row[0].is_binary() ? row[0].binary_value()->size() : 0,
                  row[1].double_value(), row[2].double_value());
            }
          }));

  // Two people swipe badges at the entrance.
  auto* rfid = static_cast<gsn::wrappers::RfidWrapper*>(
      (*hub)->FindSensor("door-rfid")->FindSource("in", "reader")
          ->mutable_wrapper());
  rfid->InjectDetection("alice");
  (void)fed.RunFor(500 * kMicrosPerMilli, 50 * kMicrosPerMilli);
  rfid->InjectDetection("bob");
  (void)fed.RunFor(500 * kMicrosPerMilli, 50 * kMicrosPerMilli);

  std::printf("\n%d RFID events handled\n", events);
  std::printf("\n=== Node status (hub) ===\n%s",
              hub_mgmt.Execute("status hall-env").c_str());
  const auto net = fed.network().stats();
  std::printf("\nnetwork: %lld messages sent, %lld delivered, %lld bytes\n",
              static_cast<long long>(net.sent),
              static_cast<long long>(net.delivered),
              static_cast<long long>(net.bytes_sent));
  return events == 2 ? 0 : 1;
}

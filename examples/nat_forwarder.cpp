// A deliberately dumb TCP port forwarder that stands in for a NAT
// gateway / sensd relay between two gsnd daemons: the consumer dials
// the forwarder, the forwarder dials the real producer, and bytes are
// copied both ways until either side closes. The producer never learns
// the consumer's address — replies must ride the live inbound
// connection, which is exactly the topology EpollTransport's reply
// routing exists for (docs/TRANSPORT.md).
//
//   build/examples/example_nat_forwarder --listen 0 --target 127.0.0.1:9090
//
// Prints "nat_forwarder: listening on 127.0.0.1:<port>" so scripts can
// parse the bound port. Each accepted connection gets its own upstream
// dial and a pair of copy threads; a dead upstream simply closes the
// client, and the client's next dial starts over — the same drop/redial
// behaviour a real middlebox gives you.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

namespace {

void CopyUntilEof(int from_fd, int to_fd) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(from_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    size_t off = 0;
    while (off < static_cast<size_t>(n)) {
      const ssize_t w =
          ::send(to_fd, buf + off, static_cast<size_t>(n) - off, MSG_NOSIGNAL);
      if (w <= 0) return;
      off += static_cast<size_t>(w);
    }
  }
  // Propagate the half-close so the other direction can drain.
  ::shutdown(to_fd, SHUT_WR);
}

int DialTarget(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t listen_port = 0;
  std::string target_host = "127.0.0.1";
  uint16_t target_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--listen" && value != nullptr) {
      listen_port = static_cast<uint16_t>(std::atoi(value));
      ++i;
    } else if (arg == "--target" && value != nullptr) {
      const std::string spec = value;
      const size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad --target %s (want HOST:PORT)\n", value);
        return 2;
      }
      target_host = spec.substr(0, colon);
      target_port = static_cast<uint16_t>(std::atoi(spec.c_str() + colon + 1));
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--listen N] --target HOST:PORT\n", argv[0]);
      return 2;
    }
  }
  if (target_port == 0) {
    std::fprintf(stderr, "missing --target HOST:PORT\n");
    return 2;
  }

  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(listen_port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd, 64) != 0) {
    std::perror("bind/listen");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  std::printf("nat_forwarder: listening on 127.0.0.1:%u -> %s:%u\n",
              ntohs(addr.sin_port), target_host.c_str(), target_port);
  std::fflush(stdout);

  for (;;) {
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    std::thread([client, target_host, target_port] {
      const int upstream = DialTarget(target_host, target_port);
      if (upstream < 0) {
        ::close(client);
        return;
      }
      std::thread down([client, upstream] { CopyUntilEof(upstream, client); });
      CopyUntilEof(client, upstream);
      down.join();
      ::close(client);
      ::close(upstream);
    }).detach();
  }
}

// Quickstart: deploy the paper's Figure 1 virtual sensor (an averaged
// temperature stream) on one GSN container, let it run, and query it.
//
//   build/examples/example_quickstart
//
// Everything is driven by a virtual clock, so the run is deterministic.

#include <cstdio>
#include <memory>

#include "gsn/container/container.h"
#include "gsn/container/management_interface.h"

// The deployment descriptor from Figure 1 of the paper, completed with
// a simulated Mica2 mote as the data source (the original fragment used
// wrapper="remote"; see examples/sensor_internet.cpp for that variant).
constexpr char kDescriptor[] = R"(
<virtual-sensor name="avg-temperature">
  <metadata>
    <predicate key="type" val="temperature" />
    <predicate key="location" val="bc143" />
  </metadata>
  <life-cycle pool-size="10" />
  <output-structure>
    <field name="TEMPERATURE" type="integer"/>
  </output-structure>
  <storage permanent-storage="false" size="10m" />
  <input-stream name="dummy" rate="100">
    <stream-source alias="src1" sampling-rate="1"
                   storage-size="1h" disconnect-buffer="10">
      <address wrapper="mote">
        <predicate key="interval-ms" val="250" />
        <predicate key="node-id" val="143" />
      </address>
      <query>select avg(temperature) from WRAPPER</query>
    </stream-source>
    <query>select * from src1</query>
  </input-stream>
</virtual-sensor>
)";

int main() {
  // 1. Bring up a container on a virtual clock.
  auto clock = std::make_shared<gsn::VirtualClock>();
  gsn::container::Container::Options options;
  options.node_id = "quickstart-node";
  options.clock = clock;
  options.seed = 2006;
  gsn::container::Container container(std::move(options));

  // 2. Deploy the virtual sensor from its XML descriptor — no code.
  auto sensor = container.Deploy(kDescriptor);
  if (!sensor.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 sensor.status().ToString().c_str());
    return 1;
  }
  std::printf("deployed '%s' (output: %s)\n\n", (*sensor)->name().c_str(),
              (*sensor)->output_schema().ToString().c_str());

  // 3. Subscribe to the output stream (notification manager).
  int notifications = 0;
  (void)container.notification_manager().Subscribe(
      "avg-temperature", "temperature >= 20",
      std::make_shared<gsn::container::CallbackChannel>(
          [&notifications](const gsn::container::Notification& n) {
            if (++notifications <= 3) {
              std::printf("  [notify] %s = %s at t=%lldus\n",
                          n.schema.field(0).name.c_str(),
                          n.element.values[0].ToString().c_str(),
                          static_cast<long long>(n.element.timed));
            }
          }));

  // 4. Run 30 seconds of stream time.
  for (int i = 0; i < 300; ++i) {
    clock->Advance(100 * gsn::kMicrosPerMilli);
    auto produced = container.Tick();
    if (!produced.ok()) {
      std::fprintf(stderr, "tick failed: %s\n",
                   produced.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("\n%d notifications fired (first 3 shown)\n\n", notifications);

  // 5. Query the stored stream with plain SQL.
  gsn::container::ManagementInterface mgmt(&container);
  std::printf("> query select count(*), min(temperature), avg(temperature), "
              "max(temperature) from \"avg-temperature\"\n%s\n",
              mgmt.Execute("query select count(*), min(temperature), "
                           "avg(temperature), max(temperature) from "
                           "\"avg-temperature\"")
                  .c_str());

  std::printf("> status avg-temperature\n%s",
              mgmt.Execute("status avg-temperature").c_str());
  return 0;
}

#!/usr/bin/env python3
"""Gross-regression gate for the committed bench baselines.

Compares a fresh BENCH_fig3.json / BENCH_fig4.json against the copy
tracked in git and fails when a latency measurement regressed by more
than a generous factor. The committed baselines and the CI run use the
same --quick parameters, but not the same machine, so the bar is tuned
to catch order-of-magnitude regressions (an accidental O(n^2) path, a
lost fast path), not scheduling noise.

Rules, per matching measurement:
  - latency fields (mean_ms, p95_ms, trace_*_ms, per_client_ms) fail
    when fresh > baseline * FACTOR and fresh > FLOOR_MS (tiny absolute
    values are all noise);
  - throughput-ish counts (elements) fail when fresh < baseline / FACTOR;
  - contention shares (lock_wait_share, queue_wait_share) are
    direction-aware: they gate only *upward* movement, failing when
    fresh > baseline + SHARE_SLACK. Shares are ratios in [0, 1], so an
    absolute slack (not a factor) is the meaningful bar, and dropping
    to zero — the goal of the sharding work — can never fail;
  - identity fields (interval_ms, ses_bytes, clients, figure, devices,
    duration_s) must be equal — a mismatch means the bench grid changed
    and the baseline needs regenerating, which is an error, not a skip;
  - fields present only in the fresh output (a newer bench emitting new
    columns, e.g. the contention-profiler shares) are reported as notes
    and never fail the gate, so adding telemetry to a bench does not
    require regenerating every baseline in the same change.

usage: check_bench_regression.py <baseline.json> <fresh.json> [factor]
"""

import json
import sys

FACTOR = 4.0
FLOOR_MS = 5.0

LATENCY_FIELDS = {
    "mean_ms", "p95_ms", "trace_off_ms", "trace_1pct_ms", "trace_100_ms",
    "per_client_ms",
}
COUNT_FIELDS = {"elements"}
SHARE_FIELDS = {"lock_wait_share", "queue_wait_share"}
SHARE_SLACK = 0.02
IDENTITY_FIELDS = {
    "interval_ms", "ses_bytes", "clients", "figure", "devices", "duration_s",
}


def flatten(node, path, out):
    """Flattens nested dicts/lists into {path_tuple: leaf_value}."""
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(value, path + (key,), out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            flatten(value, path + (i,), out)
    else:
        out[path] = node


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    factor = float(sys.argv[3]) if len(sys.argv) == 4 else FACTOR
    with open(sys.argv[1]) as f:
        baseline = {}
        flatten(json.load(f), (), baseline)
    with open(sys.argv[2]) as f:
        fresh = {}
        flatten(json.load(f), (), fresh)

    errors = []
    compared = 0
    for path, base_value in sorted(baseline.items()):
        field = path[-1]
        label = "/".join(str(p) for p in path)
        if path not in fresh:
            if field in IDENTITY_FIELDS:
                errors.append(f"{label}: missing from fresh output "
                              f"(bench grid changed? regenerate baseline)")
            continue
        new_value = fresh[path]
        if field in IDENTITY_FIELDS:
            if new_value != base_value:
                errors.append(f"{label}: grid changed ({base_value} -> "
                              f"{new_value}); regenerate the baseline")
        elif field in LATENCY_FIELDS:
            compared += 1
            if new_value > base_value * factor and new_value > FLOOR_MS:
                errors.append(f"{label}: {base_value:.3f} -> {new_value:.3f} "
                              f"ms (> {factor:.1f}x regression)")
        elif field in COUNT_FIELDS:
            compared += 1
            if new_value < base_value / factor:
                errors.append(f"{label}: {base_value} -> {new_value} "
                              f"(> {factor:.1f}x fewer elements)")
        elif field in SHARE_FIELDS:
            compared += 1
            if new_value > base_value + SHARE_SLACK:
                errors.append(
                    f"{label}: {base_value:.4f} -> {new_value:.4f} "
                    f"(contention share regressed upward by more than "
                    f"{SHARE_SLACK})")

    # New fields only the fresh bench emits are informational: they are
    # measurements without a baseline, not regressions.
    fresh_only = sorted(
        {str(path[-1]) for path in fresh if path not in baseline})
    if fresh_only:
        print(f"note: {sys.argv[2]} has new fields with no baseline "
              f"(ignored): {', '.join(fresh_only)}")

    if compared == 0:
        errors.append("no comparable measurements found "
                      "(wrong file, or the schema changed completely)")
    for error in errors:
        print(f"REGRESSION {sys.argv[2]}: {error}", file=sys.stderr)
    if errors:
        sys.exit(1)
    print(f"ok: {sys.argv[2]} within {factor:.1f}x of {sys.argv[1]} "
          f"({compared} measurements)")


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# Crash-recovery smoke test (docs/DURABILITY.md): start a gsnd daemon
# over a fresh --data-dir, hot-deploy a generator sensor, let it
# stream, kill -9 mid-stream, restart over the same --data-dir, and
# assert that the sensor redeployed and every fsynced row came back
# exactly once (count == distinct count > 0), then that the recovered
# node keeps streaming.
#
# Phase 3 exercises the tiered columnar history (docs/STORAGE.md): a
# second sensor with a 5-row retention window checkpoints its evicted
# history into segment files, survives another kill -9, and still
# serves its full history exactly once across the window/segment seam.
#
# Phase 4 exercises the sharded core (docs/CONCURRENCY.md): the same
# data dir recovers under GSN_SHARDS=4, survives a kill -9, and
# recovers again under GSN_SHARDS=2 — shard count is tuning, not state.
#
# usage: scripts/crash_recovery_smoke.sh [path-to-example_gsnd]
set -euo pipefail

GSND="${1:-build/examples/example_gsnd}"
[ -x "$GSND" ] || { echo "FAIL: $GSND not built"; exit 1; }

WORK="$(mktemp -d "${TMPDIR:-/tmp}/gsn_smoke.XXXXXX")"
DATA="$WORK/data"
DESC="$WORK/descriptors"
LOG="$WORK/gsnd.log"
mkdir -p "$DATA" "$DESC"
GSND_PID=""
cleanup() { [ -n "$GSND_PID" ] && kill -9 "$GSND_PID" 2>/dev/null || true
            rm -rf "$WORK"; }
trap cleanup EXIT

cat > "$DESC/smoke.xml" <<'XML'
<virtual-sensor name="smoke">
  <output-structure>
    <field name="seq" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="10m"/>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="generator">
        <predicate key="interval-ms" val="10"/>
        <predicate key="payload-bytes" val="0"/>
      </address>
      <query>select seq from wrapper order by seq desc limit 1</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
XML

# 5-row retention window: everything older is evicted to the columnar
# history tier at each checkpoint.
cat > "$DESC/cold.xml" <<'XML'
<virtual-sensor name="cold">
  <output-structure>
    <field name="seq" type="integer"/>
  </output-structure>
  <storage permanent-storage="true" size="5"/>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="generator">
        <predicate key="interval-ms" val="10"/>
        <predicate key="payload-bytes" val="0"/>
      </address>
      <query>select seq from wrapper order by seq desc limit 1</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
XML

start_gsnd() {
  "$GSND" --data-dir "$DATA" --descriptors "$DESC" --port 0 \
      --tick-ms 20 > "$LOG" 2>&1 &
  GSND_PID=$!
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")"
    [ -n "$PORT" ] && return 0
    kill -0 "$GSND_PID" 2>/dev/null || { echo "FAIL: gsnd died:"; cat "$LOG"; exit 1; }
    sleep 0.1
  done
  echo "FAIL: gsnd never reported its port"; cat "$LOG"; exit 1
}

api() { curl -fsS "http://127.0.0.1:$PORT/api/v1/$1"; }
# Exactly-once check keys on `timed`, not seq: the generator restarts
# its sequence from 0 after a crash, but every element's timestamp is
# unique — replayed duplicates would collide on it.
count_rows() {
  local table="${1:-smoke}"
  api "query?sql=select%20count(*)%20as%20n%2C%20count(distinct%20timed)%20as%20d%20from%20$table" |
      sed -n 's/.*"n":\([0-9]*\),"d":\([0-9]*\).*/\1 \2/p'
}

# --- Phase 1: stream, then die hard ----------------------------------
start_gsnd
api healthz | grep -q '"status":"ok"' || { echo "FAIL: healthz"; exit 1; }
api readyz  | grep -q '"ready":true'  || { echo "FAIL: readyz"; exit 1; }

# Wait until the hot-deployed sensor has produced some rows.
ROWS=0
for _ in $(seq 1 100); do
  set -- $(count_rows || echo "0 0"); ROWS=$1
  [ "$ROWS" -ge 20 ] && break
  sleep 0.1
done
[ "$ROWS" -ge 20 ] || { echo "FAIL: sensor produced only $ROWS rows"; cat "$LOG"; exit 1; }
echo "ok: streamed $ROWS rows; kill -9 mid-stream"
kill -9 "$GSND_PID"
wait "$GSND_PID" 2>/dev/null || true
GSND_PID=""

# --- Phase 2: restart over the same --data-dir -----------------------
start_gsnd
grep -q "manifest records replayed" "$LOG" || { echo "FAIL: no recovery banner"; cat "$LOG"; exit 1; }
api sensors | grep -q '"name":"smoke"' || { echo "FAIL: sensor not redeployed"; cat "$LOG"; exit 1; }

set -- $(count_rows); RECOVERED=$1; DISTINCT=$2
[ "$RECOVERED" -gt 0 ] || { echo "FAIL: no rows recovered"; exit 1; }
[ "$RECOVERED" -eq "$DISTINCT" ] || {
  echo "FAIL: duplicate rows after recovery ($RECOVERED vs $DISTINCT distinct)"; exit 1; }
echo "ok: recovered $RECOVERED rows, no duplicates"

# The recovered node keeps streaming.
for _ in $(seq 1 100); do
  set -- $(count_rows); NOW=$1
  [ "$NOW" -gt "$RECOVERED" ] && break
  sleep 0.1
done
[ "$NOW" -gt "$RECOVERED" ] || { echo "FAIL: recovered node is not streaming"; exit 1; }

# --- Phase 3: segment tier survives another hard kill -----------------
# The "cold" sensor's 5-row window has evicted most of its history by
# now; a checkpoint flushes the evicted rows into columnar segments.
COLD=0
for _ in $(seq 1 100); do
  set -- $(count_rows cold || echo "0 0"); COLD=$1
  [ "$COLD" -ge 20 ] && break
  sleep 0.1
done
[ "$COLD" -ge 20 ] || { echo "FAIL: cold sensor produced only $COLD rows"; cat "$LOG"; exit 1; }
curl -fsS -X POST "http://127.0.0.1:$PORT/api/v1/checkpoint" > /dev/null ||
    { echo "FAIL: checkpoint"; exit 1; }
SEGMENTS="$(api segments)"
echo "$SEGMENTS" | grep -q '"enabled":true' || { echo "FAIL: segments disabled: $SEGMENTS"; exit 1; }
echo "$SEGMENTS" | grep -q '"table":"cold"' || { echo "FAIL: no cold segment: $SEGMENTS"; exit 1; }
set -- $(count_rows cold); COLD_N=$1; COLD_D=$2
[ "$COLD_N" -eq "$COLD_D" ] || { echo "FAIL: seam duplicated rows ($COLD_N vs $COLD_D)"; exit 1; }
[ "$COLD_N" -gt 5 ] || { echo "FAIL: history lost at checkpoint ($COLD_N rows)"; exit 1; }
echo "ok: $COLD_N cold rows tiered into segments; kill -9 again"

kill -9 "$GSND_PID"
wait "$GSND_PID" 2>/dev/null || true
GSND_PID=""
start_gsnd
SEGMENTS="$(api segments)"
echo "$SEGMENTS" | grep -q '"table":"cold"' || { echo "FAIL: segments lost in crash: $SEGMENTS"; exit 1; }
set -- $(count_rows cold); COLD_AFTER=$1; COLD_AFTER_D=$2
[ "$COLD_AFTER" -eq "$COLD_AFTER_D" ] || {
  echo "FAIL: duplicates across window/segment seam ($COLD_AFTER vs $COLD_AFTER_D)"; exit 1; }
# Rows appended after the checkpoint may not have been fsynced before
# the kill, but the flushed segments + the rewritten 5-row WAL are
# durable: far more history than the live window alone could hold.
[ "$COLD_AFTER" -gt 5 ] || {
  echo "FAIL: segment history lost in crash ($COLD_AFTER rows)"; exit 1; }
echo "ok: segment tier intact after kill -9 ($COLD_AFTER rows, no duplicates)"

# --- Phase 4: sharded recovery (GSN_SHARDS) ---------------------------
# The shard count is a runtime tuning knob, not durable state
# (docs/CONCURRENCY.md): the same data dir must recover under a 4-shard
# core, and a 4-shard node killed mid-stream must recover under 2
# shards — the FNV placement just re-buckets the sensors.
kill -TERM "$GSND_PID"
for _ in $(seq 1 100); do
  kill -0 "$GSND_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$GSND_PID" 2>/dev/null && { echo "FAIL: gsnd did not drain before phase 4"; exit 1; }
GSND_PID=""

GSN_SHARDS=4 start_gsnd
api status | grep -q '"index":3' || { echo "FAIL: not running 4 shards"; cat "$LOG"; exit 1; }
api sensors | grep -q '"name":"smoke"' || { echo "FAIL: sensor lost under 4 shards"; exit 1; }
set -- $(count_rows); SHARDED=$1; SHARDED_D=$2
[ "$SHARDED" -gt 0 ] || { echo "FAIL: no rows under 4 shards"; exit 1; }
[ "$SHARDED" -eq "$SHARDED_D" ] || {
  echo "FAIL: duplicates under 4 shards ($SHARDED vs $SHARDED_D)"; exit 1; }
for _ in $(seq 1 100); do
  set -- $(count_rows); NOW=$1
  [ "$NOW" -gt "$SHARDED" ] && break
  sleep 0.1
done
[ "$NOW" -gt "$SHARDED" ] || { echo "FAIL: 4-shard node is not streaming"; exit 1; }
echo "ok: 4-shard recovery streamed $NOW rows; kill -9 the sharded node"

kill -9 "$GSND_PID"
wait "$GSND_PID" 2>/dev/null || true
GSND_PID=""
GSN_SHARDS=2 start_gsnd
api sensors | grep -q '"name":"smoke"' || { echo "FAIL: sensor lost re-bucketing 4->2 shards"; exit 1; }
set -- $(count_rows); REBUCKET=$1; REBUCKET_D=$2
[ "$REBUCKET" -gt 0 ] || { echo "FAIL: no rows after 4->2 re-bucket"; exit 1; }
[ "$REBUCKET" -eq "$REBUCKET_D" ] || {
  echo "FAIL: duplicates after 4->2 re-bucket ($REBUCKET vs $REBUCKET_D)"; exit 1; }
echo "ok: crashed 4-shard node recovered under 2 shards ($REBUCKET rows, no duplicates)"

# Graceful path: SIGTERM drains and exits 0.
kill -TERM "$GSND_PID"
for _ in $(seq 1 100); do
  kill -0 "$GSND_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$GSND_PID" 2>/dev/null; then
  echo "FAIL: gsnd did not drain on SIGTERM"; exit 1
fi
GSND_PID=""
grep -q "gsnd: bye" "$LOG" || { echo "FAIL: no clean shutdown"; cat "$LOG"; exit 1; }

echo "PASS: crash recovery smoke"

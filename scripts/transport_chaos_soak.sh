#!/usr/bin/env bash
# Real-TCP chaos soak (docs/CHAOS.md): two gsnd daemons federate over
# the epoll peer plane with the consumer side wrapped in the
# deterministic ChaosTransport decorator (--chaos-seed). The soak then
# scripts the fault plane over live traffic:
#
#   1. 20% frame loss in both directions       (repair must keep up)
#   2. a full partition, later healed          (stream must resume)
#   3. a forced connection reset               (redial must reconnect)
#   4. kill -9 of the producer + restart       (crash-recovery path)
#
# and asserts exactly-once admission at the consumer throughout: the
# mirror's row count equals its distinct-timestamp count (no gaps are
# abandoned, no duplicates are admitted). It also pins the determinism
# contract across processes: a twin daemon started with the same seed
# and the same rules must report the same schedule digest, and a
# different seed must not.
#
# usage: scripts/transport_chaos_soak.sh [gsnd]
set -euo pipefail

GSND="${1:-build/examples/example_gsnd}"
CHAOS_SEED=42
[ -x "$GSND" ] || { echo "FAIL: $GSND not built"; exit 1; }

WORK="$(mktemp -d "${TMPDIR:-/tmp}/gsn_chaos_soak.XXXXXX")"
PROD_DATA="$WORK/producer-data"
PROD_DESC="$WORK/producer-descriptors"
CONS_DATA="$WORK/consumer-data"
CONS_DESC="$WORK/consumer-descriptors"
mkdir -p "$PROD_DATA" "$PROD_DESC" "$CONS_DATA" "$CONS_DESC"
PROD_PID=""; CONS_PID=""; TWIN_PID=""
cleanup() {
  for pid in "$PROD_PID" "$CONS_PID" "$TWIN_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$PROD_DESC/feed.xml" <<'XML'
<virtual-sensor name="feed">
  <metadata><predicate key="type" val="chaos-feed"/></metadata>
  <output-structure>
    <field name="seq" type="integer"/>
    <field name="value" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="generator">
        <predicate key="interval-ms" val="20"/>
        <predicate key="payload-bytes" val="0"/>
      </address>
      <query>select seq, value from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
XML

CONSUMER_XML='<virtual-sensor name="mirror">
  <output-structure>
    <field name="seq" type="integer"/>
    <field name="value" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="remote">
        <predicate key="type" val="chaos-feed"/>
        <predicate key="retry-max-attempts" val="64"/>
        <predicate key="retry-max-backoff" val="1s"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>'

# start_gsnd NAME LOG DATA DESC ARGS... — parses the HTTP port into
# $PORT and (with --listen) the peer port into $PEER_PORT.
start_gsnd() {
  local name="$1" log="$2" data="$3" desc="$4"; shift 4
  "$GSND" --node-id "$name" --data-dir "$data" --descriptors "$desc" \
      --port 0 --tick-ms 20 "$@" > "$log" 2>&1 &
  local pid=$!
  disown "$pid"
  local port="" peer_port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    peer_port="$(sed -n 's/.*peer plane on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "FAIL: $name died:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  [ -n "$port" ] || { echo "FAIL: $name never reported its port"; cat "$log"; exit 1; }
  PORT="$port"; PEER_PORT="$peer_port"; STARTED_PID="$pid"
}

api() { curl -fsS "http://127.0.0.1:$1/api/v1/$2"; }
chaos() {  # chaos PORT "command words"
  curl -fsS -X POST --data-binary "$2" "http://127.0.0.1:$1/api/v1/chaos"
}
digest_of() { api "$1" chaos | sed -n 's/.*"schedule_digest":"\([0-9a-f]*\)".*/\1/p'; }
metric_of() {  # metric_of PORT NAME -> summed value across label sets
  api "$1" metrics | awk -v name="$2" \
      '$1 ~ "^"name"([{]|$)" { sum += $NF } END { printf "%d\n", sum }'
}
# Exactly-once keys on `timed`: the generator restarts seq from 0 after
# the kill -9, but producer timestamps are unique — duplicates collide.
mirror_rows() {
  api "$CONS_PORT" \
      "query?sql=select%20count(*)%20as%20n%2C%20count(distinct%20timed)%20as%20d%20from%20mirror" |
      sed -n 's/.*"n":\([0-9]*\),"d":\([0-9]*\).*/\1 \2/p'
}
assert_no_dups() {  # assert_no_dups LABEL N D
  [ "$2" -eq "$3" ] || { echo "FAIL: duplicates $1 ($2 rows, $3 distinct)"; exit 1; }
}
wait_rows_past() {  # wait_rows_past THRESHOLD TRIES -> sets N, D
  local threshold="$1" tries="$2"
  for _ in $(seq 1 "$tries"); do
    set -- $(mirror_rows || echo "0 0"); N=$1; D=$2
    [ "$N" -gt "$threshold" ] && return 0
    sleep 0.1
  done
  return 1
}

# --- Bring up producer and chaos-wrapped consumer ---------------------
start_gsnd producer "$WORK/producer.log" "$PROD_DATA" "$PROD_DESC" --listen 0
PROD_PID="$STARTED_PID"; PROD_PORT="$PORT"; PROD_PEER_PORT="$PEER_PORT"
[ -n "$PROD_PEER_PORT" ] || { echo "FAIL: no peer plane banner"; cat "$WORK/producer.log"; exit 1; }
echo "ok: producer http=$PROD_PORT peer=$PROD_PEER_PORT"

start_gsnd consumer "$WORK/consumer.log" "$CONS_DATA" "$CONS_DESC" \
    --peer "producer=127.0.0.1:$PROD_PEER_PORT" --chaos-seed "$CHAOS_SEED"
CONS_PID="$STARTED_PID"; CONS_PORT="$PORT"
grep -q "chaos decorator armed (seed $CHAOS_SEED)" "$WORK/consumer.log" ||
    { echo "FAIL: consumer did not arm the chaos decorator"; cat "$WORK/consumer.log"; exit 1; }
echo "ok: consumer http=$CONS_PORT chaos seed=$CHAOS_SEED"

# --- Discovery + subscribe over the (still clean) chaos link ----------
FOUND=""
for _ in $(seq 1 100); do
  FOUND="$(api "$CONS_PORT" "discover?type=chaos-feed" | grep -o '"sensor":"feed"' || true)"
  [ -n "$FOUND" ] && break
  sleep 0.1
done
[ -n "$FOUND" ] || { echo "FAIL: consumer never discovered the feed";
                     cat "$WORK/consumer.log"; exit 1; }
curl -fsS -X POST --data-binary "$CONSUMER_XML" \
    "http://127.0.0.1:$CONS_PORT/api/v1/deploy" > /dev/null ||
    { echo "FAIL: consumer deploy"; cat "$WORK/consumer.log"; exit 1; }
wait_rows_past 20 150 || { echo "FAIL: stream never warmed up";
                           cat "$WORK/consumer.log"; exit 1; }
assert_no_dups "before chaos" "$N" "$D"
echo "ok: $N rows mirrored before chaos"

# --- Determinism: same seed + same rules => same digest ---------------
chaos "$CONS_PORT" "loss producer 0.2 both" | grep -q "loss producer = 0.2" ||
    { echo "FAIL: loss rule rejected"; exit 1; }
DIGEST="$(digest_of "$CONS_PORT")"
[ -n "$DIGEST" ] || { echo "FAIL: no schedule digest reported"; exit 1; }

start_gsnd twin "$WORK/twin.log" "$WORK/twin-data" "$WORK/twin-desc" \
    --peer "producer=127.0.0.1:$PROD_PEER_PORT" --chaos-seed "$CHAOS_SEED"
TWIN_PID="$STARTED_PID"; TWIN_PORT="$PORT"
chaos "$TWIN_PORT" "loss producer 0.2 both" > /dev/null
TWIN_DIGEST="$(digest_of "$TWIN_PORT")"
[ "$DIGEST" = "$TWIN_DIGEST" ] ||
    { echo "FAIL: same seed+rules, different digests ($DIGEST vs $TWIN_DIGEST)"; exit 1; }
chaos "$TWIN_PORT" "seed $((CHAOS_SEED + 1))" > /dev/null
RESEEDED="$(digest_of "$TWIN_PORT")"
[ "$DIGEST" != "$RESEEDED" ] ||
    { echo "FAIL: reseeding did not change the schedule digest"; exit 1; }
kill -9 "$TWIN_PID" 2>/dev/null || true
TWIN_PID=""
echo "ok: schedule digest $DIGEST reproduced by a twin daemon, reseed diverges"

# --- Soak under 20% loss: the repair protocol must keep up ------------
BEFORE="$N"
wait_rows_past $((BEFORE + 20)) 300 ||
    { echo "FAIL: stream stalled under 20% loss"; cat "$WORK/consumer.log"; exit 1; }
assert_no_dups "under loss" "$N" "$D"
DROPPED="$(api "$CONS_PORT" chaos | sed -n 's/.*"dropped":\([0-9]*\).*/\1/p')"
[ "$DROPPED" -gt 0 ] || { echo "FAIL: chaos injected no drops"; exit 1; }
echo "ok: grew $BEFORE -> $N rows under loss ($DROPPED frames dropped)"

# --- Partition, then heal ---------------------------------------------
chaos "$CONS_PORT" "partition producer" | grep -q "partitioned producer" ||
    { echo "FAIL: partition rejected"; exit 1; }
sleep 2
chaos "$CONS_PORT" "heal producer" > /dev/null
chaos "$CONS_PORT" "loss producer 0.2 both" > /dev/null  # keep residual loss
BEFORE="$N"
wait_rows_past $((BEFORE + 10)) 300 ||
    { echo "FAIL: stream did not resume after partition healed";
      cat "$WORK/consumer.log"; exit 1; }
assert_no_dups "after partition" "$N" "$D"
echo "ok: stream resumed after partition ($BEFORE -> $N rows)"

# --- Forced connection reset: redial must bring the link back ---------
RECONNECTS_BEFORE="$(metric_of "$CONS_PORT" gsn_transport_reconnects_total)"
chaos "$CONS_PORT" "reset producer" | grep -q "reset producer" ||
    { echo "FAIL: forced reset rejected"; exit 1; }
BEFORE="$N"
wait_rows_past $((BEFORE + 10)) 300 ||
    { echo "FAIL: stream did not survive a forced reset";
      cat "$WORK/consumer.log"; exit 1; }
assert_no_dups "after reset" "$N" "$D"
RESETS="$(metric_of "$CONS_PORT" gsn_transport_resets_total)"
[ "$RESETS" -ge 1 ] || { echo "FAIL: resets_total did not count"; exit 1; }
echo "ok: stream survived a forced reset ($BEFORE -> $N rows, resets=$RESETS)"

# --- kill -9 the producer mid-stream, restart on the same port --------
kill -9 "$PROD_PID"
wait "$PROD_PID" 2>/dev/null || true
PROD_PID=""
BEFORE="$N"
echo "ok: producer killed -9 at $BEFORE rows; restarting on the same port"
start_gsnd producer "$WORK/producer2.log" "$PROD_DATA" "$PROD_DESC" \
    --listen "$PROD_PEER_PORT"
PROD_PID="$STARTED_PID"
# Recovery rides the consumer's subscription restart detector: the
# redialed link looks healthy, so ~subscription_silence_timeout (10s)
# passes before the resubscribe, then streaming resumes at full rate.
wait_rows_past $((BEFORE + 20)) 400 ||
    { echo "FAIL: stream did not resume after producer restart";
      cat "$WORK/consumer.log"; exit 1; }
assert_no_dups "after producer restart" "$N" "$D"
RECONNECTS="$(metric_of "$CONS_PORT" gsn_transport_reconnects_total)"
[ "$RECONNECTS" -gt "$RECONNECTS_BEFORE" ] ||
    { echo "FAIL: reconnects_total never advanced ($RECONNECTS_BEFORE -> $RECONNECTS)"; exit 1; }
echo "ok: stream resumed after kill -9 ($BEFORE -> $N rows, reconnects=$RECONNECTS)"

# --- Final exactly-once sweep with the fault plane cleared ------------
chaos "$CONS_PORT" "heal" > /dev/null
BEFORE="$N"
wait_rows_past $((BEFORE + 20)) 200 ||
    { echo "FAIL: stream stalled after heal"; exit 1; }
assert_no_dups "final" "$N" "$D"
echo "PASS: transport chaos soak ($N rows, exactly once, seed $CHAOS_SEED)"

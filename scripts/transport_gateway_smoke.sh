#!/usr/bin/env bash
# Federation-over-real-sockets smoke test (docs/TRANSPORT.md): two gsnd
# daemons federate through a NAT-style TCP forwarder, then the producer
# is killed -9 mid-stream and restarted, and the consumer's mirror must
# keep growing with every admitted row exactly once.
#
# Topology (the paper's sensd gateway scenario):
#
#   consumer gsnd --peer producer=<forwarder>   (never listens)
#        |  dials
#   example_nat_forwarder                        (dumb byte relay)
#        |  dials
#   producer gsnd --listen <peer-port>           (never dials back)
#
# The producer cannot reach the consumer; directory gossip, subscribe
# acks, and the stream itself all ride the consumer-initiated
# connection (EpollTransport reply routing + announce-on-first-contact).
#
# usage: scripts/transport_gateway_smoke.sh [gsnd] [nat_forwarder]
set -euo pipefail

GSND="${1:-build/examples/example_gsnd}"
FWD="${2:-build/examples/example_nat_forwarder}"
[ -x "$GSND" ] || { echo "FAIL: $GSND not built"; exit 1; }
[ -x "$FWD" ] || { echo "FAIL: $FWD not built"; exit 1; }

WORK="$(mktemp -d "${TMPDIR:-/tmp}/gsn_gateway.XXXXXX")"
PROD_DATA="$WORK/producer-data"
PROD_DESC="$WORK/producer-descriptors"
CONS_DATA="$WORK/consumer-data"
CONS_DESC="$WORK/consumer-descriptors"
mkdir -p "$PROD_DATA" "$PROD_DESC" "$CONS_DATA" "$CONS_DESC"
PROD_PID=""; CONS_PID=""; FWD_PID=""
cleanup() {
  for pid in "$PROD_PID" "$CONS_PID" "$FWD_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Producer: a generator stream published with discovery metadata.
cat > "$PROD_DESC/feed.xml" <<'XML'
<virtual-sensor name="feed">
  <metadata><predicate key="type" val="gateway-feed"/></metadata>
  <output-structure>
    <field name="seq" type="integer"/>
    <field name="value" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="generator">
        <predicate key="interval-ms" val="20"/>
        <predicate key="payload-bytes" val="0"/>
      </address>
      <query>select seq, value from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>
XML

CONSUMER_XML='<virtual-sensor name="mirror">
  <output-structure>
    <field name="seq" type="integer"/>
    <field name="value" type="double"/>
  </output-structure>
  <input-stream name="in">
    <stream-source alias="src" storage-size="1">
      <address wrapper="remote">
        <predicate key="type" val="gateway-feed"/>
      </address>
      <query>select * from wrapper</query>
    </stream-source>
    <query>select * from src</query>
  </input-stream>
</virtual-sensor>'

# start_gsnd NAME LOG DATA DESC LISTEN_ARGS... — parses the HTTP port
# into $PORT and (when --listen is used) the peer port into $PEER_PORT.
start_gsnd() {
  local name="$1" log="$2" data="$3" desc="$4"; shift 4
  "$GSND" --node-id "$name" --data-dir "$data" --descriptors "$desc" \
      --port 0 --tick-ms 20 "$@" > "$log" 2>&1 &
  local pid=$!
  disown "$pid"
  local port="" peer_port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    peer_port="$(sed -n 's/.*peer plane on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")"
    [ -n "$port" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "FAIL: $name died:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  [ -n "$port" ] || { echo "FAIL: $name never reported its port"; cat "$log"; exit 1; }
  PORT="$port"; PEER_PORT="$peer_port"; STARTED_PID="$pid"
}

api() { curl -fsS "http://127.0.0.1:$1/api/v1/$2"; }
# Exactly-once keys on `timed`: the generator restarts seq from 0 after
# the kill, but producer timestamps are unique — duplicates collide.
mirror_rows() {
  api "$CONS_PORT" \
      "query?sql=select%20count(*)%20as%20n%2C%20count(distinct%20timed)%20as%20d%20from%20mirror" |
      sed -n 's/.*"n":\([0-9]*\),"d":\([0-9]*\).*/\1 \2/p'
}

# --- Bring up producer, forwarder, consumer ---------------------------
start_gsnd producer "$WORK/producer.log" "$PROD_DATA" "$PROD_DESC" --listen 0
PROD_PID="$STARTED_PID"; PROD_PORT="$PORT"; PROD_PEER_PORT="$PEER_PORT"
[ -n "$PROD_PEER_PORT" ] || { echo "FAIL: no peer plane banner"; cat "$WORK/producer.log"; exit 1; }
echo "ok: producer http=$PROD_PORT peer=$PROD_PEER_PORT"

"$FWD" --listen 0 --target "127.0.0.1:$PROD_PEER_PORT" > "$WORK/fwd.log" 2>&1 &
FWD_PID=$!
disown "$FWD_PID"
FWD_PORT=""
for _ in $(seq 1 100); do
  FWD_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$WORK/fwd.log")"
  [ -n "$FWD_PORT" ] && break
  sleep 0.1
done
[ -n "$FWD_PORT" ] || { echo "FAIL: forwarder never bound"; cat "$WORK/fwd.log"; exit 1; }
echo "ok: forwarder on $FWD_PORT -> $PROD_PEER_PORT"

# The consumer only knows the forwarder's address and never listens.
start_gsnd consumer "$WORK/consumer.log" "$CONS_DATA" "$CONS_DESC" \
    --peer "producer=127.0.0.1:$FWD_PORT"
CONS_PID="$STARTED_PID"; CONS_PORT="$PORT"
echo "ok: consumer http=$CONS_PORT dialing through forwarder"

# --- Discovery across the gateway -------------------------------------
# The consumer's first heartbeat through the forwarder makes the
# producer announce its directory back over the same connection.
FOUND=""
for _ in $(seq 1 100); do
  FOUND="$(api "$CONS_PORT" "discover?type=gateway-feed" | grep -o '"sensor":"feed"' || true)"
  [ -n "$FOUND" ] && break
  sleep 0.1
done
[ -n "$FOUND" ] || { echo "FAIL: consumer never discovered the feed";
                     cat "$WORK/consumer.log"; exit 1; }
echo "ok: feed discovered across the gateway"

curl -fsS -X POST --data-binary "$CONSUMER_XML" \
    "http://127.0.0.1:$CONS_PORT/api/v1/deploy" > /dev/null ||
    { echo "FAIL: consumer deploy"; cat "$WORK/consumer.log"; exit 1; }

# --- Stream across real sockets ---------------------------------------
ROWS=0
for _ in $(seq 1 150); do
  set -- $(mirror_rows || echo "0 0"); ROWS=$1
  [ "$ROWS" -ge 20 ] && break
  sleep 0.1
done
[ "$ROWS" -ge 20 ] || { echo "FAIL: only $ROWS rows crossed the gateway";
                        cat "$WORK/consumer.log"; exit 1; }
set -- $(mirror_rows); N=$1; D=$2
[ "$N" -eq "$D" ] || { echo "FAIL: duplicates before crash ($N vs $D)"; exit 1; }
echo "ok: $N rows mirrored across the gateway, no duplicates"

# The transport surfaces the live peer link on both sides.
api "$CONS_PORT" transport | grep -q '"kind":"peer-out"' ||
    { echo "FAIL: consumer transport shows no outbound peer link"; exit 1; }
api "$PROD_PORT" transport | grep -q '"kind":"peer-in"' ||
    { echo "FAIL: producer transport shows no inbound peer link"; exit 1; }

# --- kill -9 the producer mid-stream ----------------------------------
kill -9 "$PROD_PID"
wait "$PROD_PID" 2>/dev/null || true
PROD_PID=""
BEFORE="$N"
echo "ok: producer killed -9 at $BEFORE rows; restarting on the same port"

# Same peer port so the forwarder's target stays valid.
start_gsnd producer "$WORK/producer2.log" "$PROD_DATA" "$PROD_DESC" \
    --listen "$PROD_PEER_PORT"
PROD_PID="$STARTED_PID"; PROD_PORT="$PORT"

# The consumer must re-attach (redial through the forwarder, then its
# restart detector resubscribes once the old subscription goes silent)
# and the mirror must properly resume — a trickle row from late repair
# does not count, real streaming does.
NOW="$BEFORE"
for _ in $(seq 1 300); do
  set -- $(mirror_rows || echo "0 0"); NOW=$1; D=$2
  [ "$NOW" -gt $((BEFORE + 10)) ] && break
  sleep 0.1
done
[ "$NOW" -gt $((BEFORE + 10)) ] || { echo "FAIL: stream did not resume after restart";
                                     cat "$WORK/consumer.log"; exit 1; }
[ "$NOW" -eq "$D" ] || { echo "FAIL: duplicates after producer crash ($NOW vs $D)"; exit 1; }
echo "ok: stream resumed after kill -9 ($BEFORE -> $NOW rows, no duplicates)"

echo "PASS: transport gateway smoke"

file(REMOVE_RECURSE
  "CMakeFiles/ablate_sql.dir/ablate_sql.cc.o"
  "CMakeFiles/ablate_sql.dir/ablate_sql.cc.o.d"
  "ablate_sql"
  "ablate_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablate_sql.
# This may be replaced when dependencies are built.

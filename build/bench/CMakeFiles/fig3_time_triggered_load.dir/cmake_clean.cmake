file(REMOVE_RECURSE
  "CMakeFiles/fig3_time_triggered_load.dir/fig3_time_triggered_load.cc.o"
  "CMakeFiles/fig3_time_triggered_load.dir/fig3_time_triggered_load.cc.o.d"
  "fig3_time_triggered_load"
  "fig3_time_triggered_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_time_triggered_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_time_triggered_load.
# This may be replaced when dependencies are built.

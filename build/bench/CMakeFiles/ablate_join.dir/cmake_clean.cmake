file(REMOVE_RECURSE
  "CMakeFiles/ablate_join.dir/ablate_join.cc.o"
  "CMakeFiles/ablate_join.dir/ablate_join.cc.o.d"
  "ablate_join"
  "ablate_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

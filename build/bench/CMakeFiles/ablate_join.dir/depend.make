# Empty dependencies file for ablate_join.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablate_window.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablate_directory.dir/ablate_directory.cc.o"
  "CMakeFiles/ablate_directory.dir/ablate_directory.cc.o.d"
  "ablate_directory"
  "ablate_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/gsn_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/codec_property_test.cc" "tests/CMakeFiles/gsn_tests.dir/codec_property_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/codec_property_test.cc.o.d"
  "/root/repo/tests/container_test.cc" "tests/CMakeFiles/gsn_tests.dir/container_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/container_test.cc.o.d"
  "/root/repo/tests/descriptor_property_test.cc" "tests/CMakeFiles/gsn_tests.dir/descriptor_property_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/descriptor_property_test.cc.o.d"
  "/root/repo/tests/descriptor_watcher_test.cc" "tests/CMakeFiles/gsn_tests.dir/descriptor_watcher_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/descriptor_watcher_test.cc.o.d"
  "/root/repo/tests/export_test.cc" "tests/CMakeFiles/gsn_tests.dir/export_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/export_test.cc.o.d"
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/gsn_tests.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/failure_injection_test.cc.o.d"
  "/root/repo/tests/federation_test.cc" "tests/CMakeFiles/gsn_tests.dir/federation_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/federation_test.cc.o.d"
  "/root/repo/tests/local_chaining_test.cc" "tests/CMakeFiles/gsn_tests.dir/local_chaining_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/local_chaining_test.cc.o.d"
  "/root/repo/tests/main_test.cc" "tests/CMakeFiles/gsn_tests.dir/main_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/main_test.cc.o.d"
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/gsn_tests.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/network_test.cc.o.d"
  "/root/repo/tests/sql_executor_test.cc" "tests/CMakeFiles/gsn_tests.dir/sql_executor_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/sql_executor_test.cc.o.d"
  "/root/repo/tests/sql_join_test.cc" "tests/CMakeFiles/gsn_tests.dir/sql_join_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/sql_join_test.cc.o.d"
  "/root/repo/tests/sql_lexer_parser_test.cc" "tests/CMakeFiles/gsn_tests.dir/sql_lexer_parser_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/sql_lexer_parser_test.cc.o.d"
  "/root/repo/tests/sql_optimizer_test.cc" "tests/CMakeFiles/gsn_tests.dir/sql_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/sql_optimizer_test.cc.o.d"
  "/root/repo/tests/sql_property_test.cc" "tests/CMakeFiles/gsn_tests.dir/sql_property_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/sql_property_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/gsn_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/stream_quality_test.cc" "tests/CMakeFiles/gsn_tests.dir/stream_quality_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/stream_quality_test.cc.o.d"
  "/root/repo/tests/tinyos_test.cc" "tests/CMakeFiles/gsn_tests.dir/tinyos_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/tinyos_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/gsn_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/vsensor_test.cc" "tests/CMakeFiles/gsn_tests.dir/vsensor_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/vsensor_test.cc.o.d"
  "/root/repo/tests/web_interface_test.cc" "tests/CMakeFiles/gsn_tests.dir/web_interface_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/web_interface_test.cc.o.d"
  "/root/repo/tests/window_property_test.cc" "tests/CMakeFiles/gsn_tests.dir/window_property_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/window_property_test.cc.o.d"
  "/root/repo/tests/wrappers_test.cc" "tests/CMakeFiles/gsn_tests.dir/wrappers_test.cc.o" "gcc" "tests/CMakeFiles/gsn_tests.dir/wrappers_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gsn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

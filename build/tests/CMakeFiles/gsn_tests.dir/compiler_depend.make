# Empty compiler generated dependencies file for gsn_tests.
# This may be replaced when dependencies are built.

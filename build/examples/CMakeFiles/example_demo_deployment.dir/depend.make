# Empty dependencies file for example_demo_deployment.
# This may be replaced when dependencies are built.

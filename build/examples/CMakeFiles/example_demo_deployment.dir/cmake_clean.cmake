file(REMOVE_RECURSE
  "CMakeFiles/example_demo_deployment.dir/demo_deployment.cpp.o"
  "CMakeFiles/example_demo_deployment.dir/demo_deployment.cpp.o.d"
  "example_demo_deployment"
  "example_demo_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_demo_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

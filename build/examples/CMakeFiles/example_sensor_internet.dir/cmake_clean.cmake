file(REMOVE_RECURSE
  "CMakeFiles/example_sensor_internet.dir/sensor_internet.cpp.o"
  "CMakeFiles/example_sensor_internet.dir/sensor_internet.cpp.o.d"
  "example_sensor_internet"
  "example_sensor_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sensor_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

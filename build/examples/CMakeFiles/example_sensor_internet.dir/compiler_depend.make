# Empty compiler generated dependencies file for example_sensor_internet.
# This may be replaced when dependencies are built.

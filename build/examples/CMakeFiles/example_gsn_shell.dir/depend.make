# Empty dependencies file for example_gsn_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_gsn_shell.dir/gsn_shell.cpp.o"
  "CMakeFiles/example_gsn_shell.dir/gsn_shell.cpp.o.d"
  "example_gsn_shell"
  "example_gsn_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gsn_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_reconfig.dir/dynamic_reconfig.cpp.o"
  "CMakeFiles/example_dynamic_reconfig.dir/dynamic_reconfig.cpp.o.d"
  "example_dynamic_reconfig"
  "example_dynamic_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_dynamic_reconfig.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gsn/container/access_control.cc" "src/CMakeFiles/gsn.dir/gsn/container/access_control.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/access_control.cc.o.d"
  "/root/repo/src/gsn/container/container.cc" "src/CMakeFiles/gsn.dir/gsn/container/container.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/container.cc.o.d"
  "/root/repo/src/gsn/container/descriptor_watcher.cc" "src/CMakeFiles/gsn.dir/gsn/container/descriptor_watcher.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/descriptor_watcher.cc.o.d"
  "/root/repo/src/gsn/container/federation.cc" "src/CMakeFiles/gsn.dir/gsn/container/federation.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/federation.cc.o.d"
  "/root/repo/src/gsn/container/integrity.cc" "src/CMakeFiles/gsn.dir/gsn/container/integrity.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/integrity.cc.o.d"
  "/root/repo/src/gsn/container/local_stream_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/container/local_stream_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/local_stream_wrapper.cc.o.d"
  "/root/repo/src/gsn/container/management_interface.cc" "src/CMakeFiles/gsn.dir/gsn/container/management_interface.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/management_interface.cc.o.d"
  "/root/repo/src/gsn/container/notification.cc" "src/CMakeFiles/gsn.dir/gsn/container/notification.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/notification.cc.o.d"
  "/root/repo/src/gsn/container/query_manager.cc" "src/CMakeFiles/gsn.dir/gsn/container/query_manager.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/query_manager.cc.o.d"
  "/root/repo/src/gsn/container/realtime_pump.cc" "src/CMakeFiles/gsn.dir/gsn/container/realtime_pump.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/realtime_pump.cc.o.d"
  "/root/repo/src/gsn/container/web_interface.cc" "src/CMakeFiles/gsn.dir/gsn/container/web_interface.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/container/web_interface.cc.o.d"
  "/root/repo/src/gsn/network/directory.cc" "src/CMakeFiles/gsn.dir/gsn/network/directory.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/network/directory.cc.o.d"
  "/root/repo/src/gsn/network/http_server.cc" "src/CMakeFiles/gsn.dir/gsn/network/http_server.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/network/http_server.cc.o.d"
  "/root/repo/src/gsn/network/protocol.cc" "src/CMakeFiles/gsn.dir/gsn/network/protocol.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/network/protocol.cc.o.d"
  "/root/repo/src/gsn/network/remote_stream_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/network/remote_stream_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/network/remote_stream_wrapper.cc.o.d"
  "/root/repo/src/gsn/network/simulator.cc" "src/CMakeFiles/gsn.dir/gsn/network/simulator.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/network/simulator.cc.o.d"
  "/root/repo/src/gsn/sql/ast.cc" "src/CMakeFiles/gsn.dir/gsn/sql/ast.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/sql/ast.cc.o.d"
  "/root/repo/src/gsn/sql/executor.cc" "src/CMakeFiles/gsn.dir/gsn/sql/executor.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/sql/executor.cc.o.d"
  "/root/repo/src/gsn/sql/lexer.cc" "src/CMakeFiles/gsn.dir/gsn/sql/lexer.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/sql/lexer.cc.o.d"
  "/root/repo/src/gsn/sql/optimizer.cc" "src/CMakeFiles/gsn.dir/gsn/sql/optimizer.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/sql/optimizer.cc.o.d"
  "/root/repo/src/gsn/sql/parser.cc" "src/CMakeFiles/gsn.dir/gsn/sql/parser.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/sql/parser.cc.o.d"
  "/root/repo/src/gsn/storage/persistence_log.cc" "src/CMakeFiles/gsn.dir/gsn/storage/persistence_log.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/storage/persistence_log.cc.o.d"
  "/root/repo/src/gsn/storage/table.cc" "src/CMakeFiles/gsn.dir/gsn/storage/table.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/storage/table.cc.o.d"
  "/root/repo/src/gsn/storage/window_buffer.cc" "src/CMakeFiles/gsn.dir/gsn/storage/window_buffer.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/storage/window_buffer.cc.o.d"
  "/root/repo/src/gsn/types/codec.cc" "src/CMakeFiles/gsn.dir/gsn/types/codec.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/types/codec.cc.o.d"
  "/root/repo/src/gsn/types/schema.cc" "src/CMakeFiles/gsn.dir/gsn/types/schema.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/types/schema.cc.o.d"
  "/root/repo/src/gsn/types/value.cc" "src/CMakeFiles/gsn.dir/gsn/types/value.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/types/value.cc.o.d"
  "/root/repo/src/gsn/util/clock.cc" "src/CMakeFiles/gsn.dir/gsn/util/clock.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/clock.cc.o.d"
  "/root/repo/src/gsn/util/export.cc" "src/CMakeFiles/gsn.dir/gsn/util/export.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/export.cc.o.d"
  "/root/repo/src/gsn/util/hash.cc" "src/CMakeFiles/gsn.dir/gsn/util/hash.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/hash.cc.o.d"
  "/root/repo/src/gsn/util/logging.cc" "src/CMakeFiles/gsn.dir/gsn/util/logging.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/logging.cc.o.d"
  "/root/repo/src/gsn/util/rng.cc" "src/CMakeFiles/gsn.dir/gsn/util/rng.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/rng.cc.o.d"
  "/root/repo/src/gsn/util/status.cc" "src/CMakeFiles/gsn.dir/gsn/util/status.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/status.cc.o.d"
  "/root/repo/src/gsn/util/strings.cc" "src/CMakeFiles/gsn.dir/gsn/util/strings.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/strings.cc.o.d"
  "/root/repo/src/gsn/util/thread_pool.cc" "src/CMakeFiles/gsn.dir/gsn/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/util/thread_pool.cc.o.d"
  "/root/repo/src/gsn/vsensor/descriptor_parser.cc" "src/CMakeFiles/gsn.dir/gsn/vsensor/descriptor_parser.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/vsensor/descriptor_parser.cc.o.d"
  "/root/repo/src/gsn/vsensor/spec.cc" "src/CMakeFiles/gsn.dir/gsn/vsensor/spec.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/vsensor/spec.cc.o.d"
  "/root/repo/src/gsn/vsensor/stream_source.cc" "src/CMakeFiles/gsn.dir/gsn/vsensor/stream_source.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/vsensor/stream_source.cc.o.d"
  "/root/repo/src/gsn/vsensor/virtual_sensor.cc" "src/CMakeFiles/gsn.dir/gsn/vsensor/virtual_sensor.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/vsensor/virtual_sensor.cc.o.d"
  "/root/repo/src/gsn/wrappers/camera_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/camera_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/camera_wrapper.cc.o.d"
  "/root/repo/src/gsn/wrappers/csv_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/csv_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/csv_wrapper.cc.o.d"
  "/root/repo/src/gsn/wrappers/generator_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/generator_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/generator_wrapper.cc.o.d"
  "/root/repo/src/gsn/wrappers/mote_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/mote_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/mote_wrapper.cc.o.d"
  "/root/repo/src/gsn/wrappers/rfid_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/rfid_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/rfid_wrapper.cc.o.d"
  "/root/repo/src/gsn/wrappers/tinyos_wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/tinyos_wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/tinyos_wrapper.cc.o.d"
  "/root/repo/src/gsn/wrappers/wrapper.cc" "src/CMakeFiles/gsn.dir/gsn/wrappers/wrapper.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/wrappers/wrapper.cc.o.d"
  "/root/repo/src/gsn/xml/xml.cc" "src/CMakeFiles/gsn.dir/gsn/xml/xml.cc.o" "gcc" "src/CMakeFiles/gsn.dir/gsn/xml/xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libgsn.a"
)

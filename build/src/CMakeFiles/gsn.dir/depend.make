# Empty dependencies file for gsn.
# This may be replaced when dependencies are built.

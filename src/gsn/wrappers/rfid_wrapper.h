#ifndef GSN_WRAPPERS_RFID_WRAPPER_H_
#define GSN_WRAPPERS_RFID_WRAPPER_H_

#include <memory>
#include <string>
#include <vector>

#include "gsn/util/rng.h"
#include "gsn/wrappers/periodic_wrapper.h"

namespace gsn::wrappers {

/// Simulated RFID reader (paper §5: "several RFID readers (e.g., Texas
/// Instruments)"). The reader polls its antenna on a fixed interval;
/// on each poll a tag from the configured population is detected with
/// probability `detect-probability`, yielding an event-style stream
/// (most polls produce nothing — unlike the periodic motes/cameras).
///
/// Tests and demos can also force a specific detection with
/// InjectDetection(), which models a person swiping a badge.
///
/// Parameters:
///   reader-id            integer id                       (default 1)
///   interval-ms          antenna poll period              (default 250)
///   interval             poll period with unit suffix ("250ms");
///                        overrides interval-ms when present
///   detect-probability   per-poll detection chance        (default 0.05)
///   tags                 comma-separated tag ids          (default "tag-1")
///
/// Output schema: reader_id:int, tag_id:string, rssi:int
class RfidWrapper : public PeriodicWrapper {
 public:
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "rfid"; }

  /// Queues a deterministic detection of `tag_id`, reported on the next
  /// antenna poll.
  void InjectDetection(const std::string& tag_id);

 protected:
  Result<std::vector<StreamElement>> EmitAt(Timestamp t) override;

 private:
  RfidWrapper(int64_t reader_id, Timestamp interval, double detect_probability,
              std::vector<std::string> tags, uint64_t seed);

  const int64_t reader_id_;
  const double detect_probability_;
  const std::vector<std::string> tags_;
  Schema schema_;
  Rng rng_;
  std::vector<std::string> injected_;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_RFID_WRAPPER_H_

#ifndef GSN_WRAPPERS_CAMERA_WRAPPER_H_
#define GSN_WRAPPERS_CAMERA_WRAPPER_H_

#include <memory>
#include <vector>

#include "gsn/util/rng.h"
#include "gsn/wrappers/periodic_wrapper.h"

namespace gsn::wrappers {

/// Simulated HTTP/USB camera (paper §5: "USB and wireless (HTTP-based)
/// cameras (e.g., AXIS 206W camera)"). Emits an opaque image blob per
/// frame; the blob size is configurable so the Fig 3 workload can sweep
/// stream element sizes from 15 bytes to 75 KB.
///
/// Parameters:
///   camera-id     integer id                              (default 1)
///   interval-ms   frame period                            (default 5000)
///   interval      frame period with unit suffix ("2s"); overrides
///                 interval-ms when present
///   image-bytes   payload size per frame                  (default 32768)
///   width,height  reported frame geometry                 (default 640x480)
///
/// Output schema: camera_id:int, image:binary, width:int, height:int
class CameraWrapper : public PeriodicWrapper {
 public:
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "camera"; }

 protected:
  Result<std::vector<StreamElement>> EmitAt(Timestamp t) override;

 private:
  CameraWrapper(int64_t camera_id, Timestamp interval, size_t image_bytes,
                int64_t width, int64_t height, uint64_t seed);

  const int64_t camera_id_;
  const size_t image_bytes_;
  const int64_t width_;
  const int64_t height_;
  Schema schema_;
  Rng rng_;
  int64_t frame_counter_ = 0;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_CAMERA_WRAPPER_H_

#ifndef GSN_WRAPPERS_GENERATOR_WRAPPER_H_
#define GSN_WRAPPERS_GENERATOR_WRAPPER_H_

#include <memory>
#include <vector>

#include "gsn/util/rng.h"
#include "gsn/wrappers/periodic_wrapper.h"

namespace gsn::wrappers {

/// Time-triggered load generator: the workload driver behind the
/// paper's Fig 3 experiment ("the devices produced data items every
/// 10, 25, 50, 100, 250, 500, and 1000 milliseconds ... for various
/// sizes of produced data items"). Each element carries a sequence
/// number, a sine-wave value (so filtering predicates select stable
/// fractions), and an opaque payload of exactly `payload-bytes`.
///
/// Parameters:
///   interval-ms     emission period                       (default 100)
///   interval        emission period with unit suffix ("250ms");
///                   overrides interval-ms when present
///   payload-bytes   opaque payload size per element       (default 15)
///   value-period    elements per sine period              (default 100)
///
/// Output schema: seq:int, value:double, payload:binary
class GeneratorWrapper : public PeriodicWrapper {
 public:
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "generator"; }

  int64_t produced_count() const { return seq_; }

 protected:
  Result<std::vector<StreamElement>> EmitAt(Timestamp t) override;

 private:
  GeneratorWrapper(Timestamp interval, size_t payload_bytes,
                   int64_t value_period, uint64_t seed);

  const size_t payload_bytes_;
  const int64_t value_period_;
  Schema schema_;
  Rng rng_;
  int64_t seq_ = 0;
  Blob payload_template_;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_GENERATOR_WRAPPER_H_

#include "gsn/wrappers/mote_wrapper.h"

#include <algorithm>

namespace gsn::wrappers {

Result<std::unique_ptr<Wrapper>> MoteWrapper::Make(
    const WrapperConfig& config) {
  GSN_ASSIGN_OR_RETURN(int64_t node_id, config.GetInt("node-id", 1));
  GSN_ASSIGN_OR_RETURN(int64_t interval_ms, config.GetInt("interval-ms", 1000));
  GSN_ASSIGN_OR_RETURN(
      Timestamp interval,
      config.GetDuration("interval", interval_ms * kMicrosPerMilli));
  GSN_ASSIGN_OR_RETURN(double temp_base, config.GetDouble("temp-base", 22.0));
  GSN_ASSIGN_OR_RETURN(double light_base,
                       config.GetDouble("light-base", 400.0));
  return std::unique_ptr<Wrapper>(new MoteWrapper(
      node_id, interval, temp_base, light_base, config.seed));
}

MoteWrapper::MoteWrapper(int64_t node_id, Timestamp interval, double temp_base,
                         double light_base, uint64_t seed)
    : PeriodicWrapper(interval),
      node_id_(node_id),
      rng_(seed),
      temperature_(temp_base),
      light_(light_base) {
  schema_.AddField("node_id", DataType::kInt);
  schema_.AddField("light", DataType::kDouble);
  schema_.AddField("temperature", DataType::kInt);
  schema_.AddField("accel_x", DataType::kDouble);
  schema_.AddField("accel_y", DataType::kDouble);
}

Result<std::vector<StreamElement>> MoteWrapper::EmitAt(Timestamp t) {
  // Bounded random walks: temperature drifts slowly, light more, the
  // accelerometer is zero-mean noise (the demo mote sits on a table
  // until someone shakes it).
  temperature_ += rng_.NextGaussian() * 0.2;
  temperature_ = std::clamp(temperature_, -20.0, 60.0);
  light_ += rng_.NextGaussian() * 8.0;
  light_ = std::clamp(light_, 0.0, 2000.0);

  StreamElement e;
  e.timed = t;
  e.values = {
      Value::Int(node_id_),
      Value::Double(light_),
      Value::Int(static_cast<int64_t>(temperature_ + 0.5)),
      Value::Double(rng_.NextGaussian() * 0.05),
      Value::Double(rng_.NextGaussian() * 0.05),
  };
  return std::vector<StreamElement>{std::move(e)};
}

}  // namespace gsn::wrappers

#include "gsn/wrappers/csv_wrapper.h"

#include <fstream>
#include <sstream>

#include "gsn/util/strings.h"

namespace gsn::wrappers {

namespace {

/// Splits one CSV line honoring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

Value ParseCell(const std::string& cell, DataType type) {
  const std::string trimmed = StrTrim(cell);
  if (trimmed.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt: {
      Result<int64_t> v = ParseInt64(trimmed);
      return v.ok() ? Value::Int(*v) : Value::Null();
    }
    case DataType::kDouble: {
      Result<double> v = ParseDouble(trimmed);
      return v.ok() ? Value::Double(*v) : Value::Null();
    }
    default:
      return Value::String(trimmed);
  }
}

DataType InferCellType(const std::string& cell) {
  const std::string trimmed = StrTrim(cell);
  if (ParseInt64(trimmed).ok()) return DataType::kInt;
  if (ParseDouble(trimmed).ok()) return DataType::kDouble;
  return DataType::kString;
}

}  // namespace

Result<std::unique_ptr<Wrapper>> CsvWrapper::Make(const WrapperConfig& config) {
  const std::string path = config.Get("file", "");
  if (path.empty()) {
    return Status::InvalidArgument("csv wrapper requires a 'file' parameter");
  }
  GSN_ASSIGN_OR_RETURN(int64_t interval_ms, config.GetInt("interval-ms", 1000));
  GSN_ASSIGN_OR_RETURN(
      Timestamp interval,
      config.GetDuration("interval", interval_ms * kMicrosPerMilli));
  GSN_ASSIGN_OR_RETURN(bool loop, config.GetBool("loop", false));

  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open csv file: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("csv file has no header: " + path);
  }
  const std::vector<std::string> header = SplitCsvLine(StrTrim(line));

  // Locate the timestamp column, if any.
  size_t timed_col = header.size();
  for (size_t i = 0; i < header.size(); ++i) {
    if (StrEqualsIgnoreCase(StrTrim(header[i]), kTimedField)) timed_col = i;
  }

  // Read raw rows.
  std::vector<std::vector<std::string>> raw;
  while (std::getline(in, line)) {
    if (StrTrim(line).empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != header.size()) {
      return Status::ParseError("csv row has " + std::to_string(cells.size()) +
                                " cells, header has " +
                                std::to_string(header.size()) + ": " + line);
    }
    raw.push_back(std::move(cells));
  }

  // Infer column types from the first data row (string if empty file).
  Schema schema;
  std::vector<DataType> col_types;
  for (size_t i = 0; i < header.size(); ++i) {
    if (i == timed_col) continue;
    const DataType t =
        raw.empty() ? DataType::kString : InferCellType(raw[0][i]);
    col_types.push_back(t);
    schema.AddField(StrTrim(header[i]), t);
  }

  std::vector<StreamElement> rows;
  rows.reserve(raw.size());
  for (const auto& cells : raw) {
    StreamElement e;
    size_t out_col = 0;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i == timed_col) {
        GSN_ASSIGN_OR_RETURN(e.timed, ParseInt64(cells[i]));
        continue;
      }
      e.values.push_back(ParseCell(cells[i], col_types[out_col++]));
    }
    rows.push_back(std::move(e));
  }

  return std::unique_ptr<Wrapper>(
      new CsvWrapper(std::move(schema), std::move(rows), interval, loop,
                     timed_col != header.size()));
}

CsvWrapper::CsvWrapper(Schema schema, std::vector<StreamElement> rows,
                       Timestamp interval, bool loop, bool has_explicit_times)
    : schema_(std::move(schema)),
      rows_(std::move(rows)),
      interval_(interval > 0 ? interval : kMicrosPerSecond),
      loop_(loop),
      has_explicit_times_(has_explicit_times) {}

Result<std::vector<StreamElement>> CsvWrapper::Poll(Timestamp now) {
  std::vector<StreamElement> out;
  if (rows_.empty()) return out;
  if (base_time_ < 0) base_time_ = now;

  for (;;) {
    if (next_row_ >= rows_.size()) {
      if (!loop_) break;
      // Restart the replay, shifting subsequent rows after `now`.
      next_row_ = 0;
      base_time_ = now;
      break;  // next poll picks up the new cycle
    }
    const StreamElement& row = rows_[next_row_];
    const Timestamp due =
        has_explicit_times_
            ? base_time_ + row.timed
            : base_time_ + static_cast<Timestamp>(next_row_ + 1) * interval_;
    if (due > now) break;
    StreamElement e = row;
    e.timed = due;
    out.push_back(std::move(e));
    ++next_row_;
  }
  return out;
}

}  // namespace gsn::wrappers

#include "gsn/wrappers/rfid_wrapper.h"

#include "gsn/util/strings.h"

namespace gsn::wrappers {

Result<std::unique_ptr<Wrapper>> RfidWrapper::Make(
    const WrapperConfig& config) {
  GSN_ASSIGN_OR_RETURN(int64_t reader_id, config.GetInt("reader-id", 1));
  GSN_ASSIGN_OR_RETURN(int64_t interval_ms, config.GetInt("interval-ms", 250));
  GSN_ASSIGN_OR_RETURN(
      Timestamp interval,
      config.GetDuration("interval", interval_ms * kMicrosPerMilli));
  GSN_ASSIGN_OR_RETURN(double p, config.GetDouble("detect-probability", 0.05));
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("detect-probability must be in [0,1]");
  }
  std::vector<std::string> tags;
  for (const std::string& tag : StrSplit(config.Get("tags", "tag-1"), ',')) {
    const std::string trimmed = StrTrim(tag);
    if (!trimmed.empty()) tags.push_back(trimmed);
  }
  if (tags.empty()) {
    return Status::InvalidArgument("rfid wrapper requires at least one tag");
  }
  return std::unique_ptr<Wrapper>(
      new RfidWrapper(reader_id, interval, p, std::move(tags), config.seed));
}

RfidWrapper::RfidWrapper(int64_t reader_id, Timestamp interval,
                         double detect_probability,
                         std::vector<std::string> tags, uint64_t seed)
    : PeriodicWrapper(interval),
      reader_id_(reader_id),
      detect_probability_(detect_probability),
      tags_(std::move(tags)),
      rng_(seed) {
  schema_.AddField("reader_id", DataType::kInt);
  schema_.AddField("tag_id", DataType::kString);
  schema_.AddField("rssi", DataType::kInt);
}

void RfidWrapper::InjectDetection(const std::string& tag_id) {
  injected_.push_back(tag_id);
}

Result<std::vector<StreamElement>> RfidWrapper::EmitAt(Timestamp t) {
  std::vector<StreamElement> out;
  auto emit = [&](const std::string& tag) {
    StreamElement e;
    e.timed = t;
    e.values = {
        Value::Int(reader_id_),
        Value::String(tag),
        // RSSI of a tag in range: -70..-30 dBm.
        Value::Int(rng_.NextInt(-70, -30)),
    };
    out.push_back(std::move(e));
  };
  for (const std::string& tag : injected_) emit(tag);
  injected_.clear();
  if (rng_.NextBool(detect_probability_)) {
    emit(tags_[static_cast<size_t>(rng_.NextUint64(tags_.size()))]);
  }
  return out;
}

}  // namespace gsn::wrappers

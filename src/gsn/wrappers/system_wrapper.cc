#include "gsn/wrappers/system_wrapper.h"

#include <utility>

namespace gsn::wrappers {

Result<std::unique_ptr<Wrapper>> SystemWrapper::Make(
    const WrapperConfig& config, SystemSnapshotFn snapshot) {
  GSN_ASSIGN_OR_RETURN(Timestamp interval,
                       config.GetDuration("interval", kMicrosPerSecond));
  if (snapshot == nullptr) {
    return Status::InvalidArgument(
        "system wrapper needs a snapshot provider (deploy it inside a "
        "container)");
  }
  return std::unique_ptr<Wrapper>(
      new SystemWrapper(interval, std::move(snapshot)));
}

SystemWrapper::SystemWrapper(Timestamp interval, SystemSnapshotFn snapshot)
    : PeriodicWrapper(interval), snapshot_(std::move(snapshot)) {
  schema_.AddField("uptime_s", DataType::kInt);
  schema_.AddField("sensors", DataType::kInt);
  schema_.AddField("running", DataType::kInt);
  schema_.AddField("restarting", DataType::kInt);
  schema_.AddField("failed", DataType::kInt);
  schema_.AddField("queue_depth", DataType::kInt);
  schema_.AddField("shed_total", DataType::kInt);
  schema_.AddField("quarantined", DataType::kInt);
  schema_.AddField("replay_bytes", DataType::kInt);
  schema_.AddField("open_circuits", DataType::kInt);
  schema_.AddField("peers", DataType::kInt);
  schema_.AddField("segments", DataType::kInt);
  schema_.AddField("segment_bytes", DataType::kInt);
  schema_.AddField("tuples_total", DataType::kInt);
  schema_.AddField("errors_total", DataType::kInt);
  schema_.AddField("metric_series", DataType::kInt);
  schema_.AddField("tick_mean_ms", DataType::kDouble);
  schema_.AddField("tick_p95_ms", DataType::kDouble);
  schema_.AddField("lock_wait_share", DataType::kDouble);
  schema_.AddField("queue_wait_p95_ms", DataType::kDouble);
  schema_.AddField("rss_bytes", DataType::kInt);
  schema_.AddField("cpu_seconds", DataType::kDouble);
}

Result<std::vector<StreamElement>> SystemWrapper::EmitAt(Timestamp t) {
  const SystemSnapshot snap = snapshot_();
  StreamElement e;
  e.timed = t;
  e.values = {
      Value::Int(snap.uptime_seconds),
      Value::Int(snap.sensors),
      Value::Int(snap.running),
      Value::Int(snap.restarting),
      Value::Int(snap.failed),
      Value::Int(snap.queue_depth),
      Value::Int(snap.shed_total),
      Value::Int(snap.quarantined),
      Value::Int(snap.replay_bytes),
      Value::Int(snap.open_circuits),
      Value::Int(snap.peers),
      Value::Int(snap.segments),
      Value::Int(snap.segment_bytes),
      Value::Int(snap.tuples_total),
      Value::Int(snap.errors_total),
      Value::Int(snap.metric_series),
      Value::Double(snap.tick_mean_ms),
      Value::Double(snap.tick_p95_ms),
      Value::Double(snap.lock_wait_share),
      Value::Double(snap.queue_wait_p95_ms),
      Value::Int(snap.rss_bytes),
      Value::Double(snap.cpu_seconds),
  };
  return std::vector<StreamElement>{std::move(e)};
}

}  // namespace gsn::wrappers

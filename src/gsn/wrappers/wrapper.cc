#include "gsn/wrappers/wrapper.h"

#include "gsn/util/strings.h"
#include "gsn/wrappers/camera_wrapper.h"
#include "gsn/wrappers/csv_wrapper.h"
#include "gsn/wrappers/generator_wrapper.h"
#include "gsn/wrappers/mote_wrapper.h"
#include "gsn/wrappers/rfid_wrapper.h"
#include "gsn/wrappers/tinyos_wrapper.h"

namespace gsn::wrappers {

namespace {
/// Wraps a parse failure so the error names the offending parameter.
template <typename T>
Result<T> NameKey(const std::string& key, Result<T> parsed) {
  if (parsed.ok()) return parsed;
  return Status::ParseError("param '" + key + "': " +
                            parsed.status().message());
}
}  // namespace

std::string WrapperConfig::Get(const std::string& key,
                               const std::string& fallback) const {
  auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

Result<int64_t> WrapperConfig::GetInt(const std::string& key,
                                      int64_t fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return NameKey(key, ParseInt64(it->second));
}

Result<double> WrapperConfig::GetDouble(const std::string& key,
                                        double fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return NameKey(key, ParseDouble(it->second));
}

Result<bool> WrapperConfig::GetBool(const std::string& key,
                                    bool fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return NameKey(key, ParseBool(it->second));
}

Result<Timestamp> WrapperConfig::GetDuration(const std::string& key,
                                             Timestamp fallback) const {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return NameKey(key, ParseDurationMicros(it->second));
}

void WrapperRegistry::Register(const std::string& name,
                               WrapperFactory factory) {
  factories_[StrToLower(name)] = std::move(factory);
}

Result<std::unique_ptr<Wrapper>> WrapperRegistry::Create(
    const std::string& name, const WrapperConfig& config) const {
  auto it = factories_.find(StrToLower(name));
  if (it == factories_.end()) {
    return Status::NotFound("no wrapper registered for '" + name + "'");
  }
  return it->second(config);
}

bool WrapperRegistry::Has(const std::string& name) const {
  return factories_.count(StrToLower(name)) > 0;
}

std::vector<std::string> WrapperRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

void WrapperRegistry::RegisterBuiltins(WrapperRegistry* registry) {
  registry->Register("mote", MoteWrapper::Make);
  registry->Register("camera", CameraWrapper::Make);
  registry->Register("rfid", RfidWrapper::Make);
  registry->Register("generator", GeneratorWrapper::Make);
  registry->Register("csv", CsvWrapper::Make);
  registry->Register("tinyos", TinyOsWrapper::Make);
}

}  // namespace gsn::wrappers

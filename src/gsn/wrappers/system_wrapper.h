#ifndef GSN_WRAPPERS_SYSTEM_WRAPPER_H_
#define GSN_WRAPPERS_SYSTEM_WRAPPER_H_

#include <functional>
#include <memory>
#include <vector>

#include "gsn/wrappers/periodic_wrapper.h"

namespace gsn::wrappers {

/// Point-in-time health snapshot of the hosting container, produced by
/// the container itself (see Container::SystemSnapshotNow). Declared
/// here so the wrapper layer never depends on the container layer: the
/// container hands SystemWrapper a provider function at deploy time.
///
/// The snapshot is computed outside the container/tick locks (from a
/// cache the container refreshes once per tick), so a sensor that
/// monitors its own container can never deadlock or recursively
/// amplify the telemetry it observes.
struct SystemSnapshot {
  int64_t uptime_seconds = 0;
  // Supervisor view.
  int64_t sensors = 0;
  int64_t running = 0;
  int64_t restarting = 0;
  int64_t failed = 0;
  // Admission / overload view.
  int64_t queue_depth = 0;  // sum across admission queues
  int64_t shed_total = 0;
  int64_t quarantined = 0;
  // Federation view.
  int64_t replay_bytes = 0;
  int64_t open_circuits = 0;
  int64_t peers = 0;
  // Storage view.
  int64_t segments = 0;
  int64_t segment_bytes = 0;
  // Throughput totals.
  int64_t tuples_total = 0;
  int64_t errors_total = 0;
  int64_t metric_series = 0;
  // Scheduling / contention view (profiler).
  double tick_mean_ms = 0;
  double tick_p95_ms = 0;
  double lock_wait_share = 0;  // lock-wait time / total tick time
  double queue_wait_p95_ms = 0;
  // Process view.
  int64_t rss_bytes = 0;
  double cpu_seconds = 0;
};

using SystemSnapshotFn = std::function<SystemSnapshot()>;

/// The paper's "anything producing data can be wrapped" applied to the
/// middleware itself: `wrapper="system"` periodically scrapes the
/// hosting container's health snapshot into typed stream elements, so
/// ordinary virtual sensors provide windowed SQL dashboards,
/// notification alerting, and `wrapper="remote"` federation of health
/// data upstream.
///
/// Parameters:
///   interval   scrape period with unit suffix ("500ms"; default 1s)
///
/// Output schema (ints unless noted): uptime_s, sensors, running,
/// restarting, failed, queue_depth, shed_total, quarantined,
/// replay_bytes, open_circuits, peers, segments, segment_bytes,
/// tuples_total, errors_total, metric_series, tick_mean_ms (double),
/// tick_p95_ms (double), lock_wait_share (double), queue_wait_p95_ms
/// (double), rss_bytes, cpu_seconds (double)
class SystemWrapper : public PeriodicWrapper {
 public:
  /// `snapshot` is supplied by the container at deploy time; the
  /// wrapper cannot be created through the plain WrapperRegistry.
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config,
                                               SystemSnapshotFn snapshot);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "system"; }

 protected:
  Result<std::vector<StreamElement>> EmitAt(Timestamp t) override;

 private:
  SystemWrapper(Timestamp interval, SystemSnapshotFn snapshot);

  Schema schema_;
  SystemSnapshotFn snapshot_;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_SYSTEM_WRAPPER_H_

#include "gsn/wrappers/camera_wrapper.h"

namespace gsn::wrappers {

Result<std::unique_ptr<Wrapper>> CameraWrapper::Make(
    const WrapperConfig& config) {
  GSN_ASSIGN_OR_RETURN(int64_t camera_id, config.GetInt("camera-id", 1));
  GSN_ASSIGN_OR_RETURN(int64_t interval_ms, config.GetInt("interval-ms", 5000));
  GSN_ASSIGN_OR_RETURN(
      Timestamp interval,
      config.GetDuration("interval", interval_ms * kMicrosPerMilli));
  GSN_ASSIGN_OR_RETURN(int64_t image_bytes,
                       config.GetInt("image-bytes", 32 * 1024));
  GSN_ASSIGN_OR_RETURN(int64_t width, config.GetInt("width", 640));
  GSN_ASSIGN_OR_RETURN(int64_t height, config.GetInt("height", 480));
  if (image_bytes < 0) {
    return Status::InvalidArgument("camera image-bytes must be >= 0");
  }
  return std::unique_ptr<Wrapper>(
      new CameraWrapper(camera_id, interval,
                        static_cast<size_t>(image_bytes), width, height,
                        config.seed));
}

CameraWrapper::CameraWrapper(int64_t camera_id, Timestamp interval,
                             size_t image_bytes, int64_t width, int64_t height,
                             uint64_t seed)
    : PeriodicWrapper(interval),
      camera_id_(camera_id),
      image_bytes_(image_bytes),
      width_(width),
      height_(height),
      rng_(seed) {
  schema_.AddField("camera_id", DataType::kInt);
  schema_.AddField("image", DataType::kBinary);
  schema_.AddField("width", DataType::kInt);
  schema_.AddField("height", DataType::kInt);
}

Result<std::vector<StreamElement>> CameraWrapper::EmitAt(Timestamp t) {
  // A cheap stand-in for a JPEG: an 8-byte frame header followed by
  // per-frame pseudo-random content (incompressible like real JPEG).
  std::vector<uint8_t> image(image_bytes_);
  const int64_t frame = frame_counter_++;
  for (size_t i = 0; i < image.size() && i < 8; ++i) {
    image[i] = static_cast<uint8_t>((frame >> (8 * i)) & 0xff);
  }
  // Fill in 8-byte strides from the RNG; the exact pixels don't matter,
  // only that the payload has the configured size and is unique.
  for (size_t i = 8; i + 8 <= image.size(); i += 8) {
    const uint64_t r = rng_.NextUint64();
    for (int b = 0; b < 8; ++b) {
      image[i + static_cast<size_t>(b)] = static_cast<uint8_t>(r >> (8 * b));
    }
  }

  StreamElement e;
  e.timed = t;
  e.values = {
      Value::Int(camera_id_),
      Value::Binary(MakeBlob(std::move(image))),
      Value::Int(width_),
      Value::Int(height_),
  };
  return std::vector<StreamElement>{std::move(e)};
}

}  // namespace gsn::wrappers

#include "gsn/wrappers/tinyos_wrapper.h"

#include <algorithm>

namespace gsn::wrappers {

namespace tinyos {

uint16_t Crc16(const uint8_t* data, size_t len) {
  uint16_t crc = 0;
  for (size_t i = 0; i < len; ++i) {
    crc ^= static_cast<uint16_t>(data[i]) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? static_cast<uint16_t>((crc << 1) ^ 0x1021)
                           : static_cast<uint16_t>(crc << 1);
    }
  }
  return crc;
}

namespace {
void StuffByte(uint8_t b, std::vector<uint8_t>* out) {
  if (b == kSyncByte || b == kEscapeByte) {
    out->push_back(kEscapeByte);
    out->push_back(b ^ 0x20);
  } else {
    out->push_back(b);
  }
}
}  // namespace

std::vector<uint8_t> EncodeFrame(const Packet& packet) {
  // Raw (unstuffed) packet bytes.
  std::vector<uint8_t> raw;
  raw.push_back(static_cast<uint8_t>(packet.dest & 0xff));
  raw.push_back(static_cast<uint8_t>(packet.dest >> 8));
  raw.push_back(packet.am_type);
  raw.push_back(packet.group);
  raw.push_back(static_cast<uint8_t>(packet.payload.size()));
  raw.insert(raw.end(), packet.payload.begin(), packet.payload.end());
  const uint16_t crc = Crc16(raw.data(), raw.size());
  raw.push_back(static_cast<uint8_t>(crc & 0xff));
  raw.push_back(static_cast<uint8_t>(crc >> 8));

  std::vector<uint8_t> frame;
  frame.push_back(kSyncByte);
  for (uint8_t b : raw) StuffByte(b, &frame);
  frame.push_back(kSyncByte);
  return frame;
}

std::vector<Packet> DecodeFrames(std::vector<uint8_t>* stream,
                                 int* bad_frames) {
  std::vector<Packet> packets;
  size_t consumed_until = 0;
  size_t i = 0;
  const std::vector<uint8_t>& bytes = *stream;

  auto report_bad = [&] {
    if (bad_frames != nullptr) ++(*bad_frames);
  };

  while (i < bytes.size()) {
    // Seek the opening sync byte.
    while (i < bytes.size() && bytes[i] != kSyncByte) ++i;
    if (i >= bytes.size()) {
      consumed_until = bytes.size();
      break;
    }
    // Collect unstuffed bytes until the closing sync.
    size_t j = i + 1;
    std::vector<uint8_t> raw;
    bool closed = false;
    bool malformed = false;
    while (j < bytes.size()) {
      const uint8_t b = bytes[j];
      if (b == kSyncByte) {
        closed = true;
        break;
      }
      if (b == kEscapeByte) {
        if (j + 1 >= bytes.size()) break;  // split escape: wait for more
        raw.push_back(bytes[j + 1] ^ 0x20);
        j += 2;
        continue;
      }
      raw.push_back(b);
      ++j;
    }
    if (!closed) break;  // partial frame: keep for the next read

    if (raw.empty()) {
      // Back-to-back sync bytes (idle line); skip one sync.
      i = j;
      consumed_until = i;
      continue;
    }

    // Validate structure and CRC.
    if (raw.size() < 7) {
      malformed = true;
    } else {
      const uint8_t length = raw[4];
      if (raw.size() != static_cast<size_t>(7 + length)) {
        malformed = true;
      } else {
        const uint16_t stored_crc =
            static_cast<uint16_t>(raw[raw.size() - 2]) |
            (static_cast<uint16_t>(raw[raw.size() - 1]) << 8);
        if (Crc16(raw.data(), raw.size() - 2) != stored_crc) {
          malformed = true;
        }
      }
    }
    if (malformed) {
      report_bad();
    } else {
      Packet packet;
      packet.dest = static_cast<uint16_t>(raw[0]) |
                    (static_cast<uint16_t>(raw[1]) << 8);
      packet.am_type = raw[2];
      packet.group = raw[3];
      packet.payload.assign(raw.begin() + 5, raw.end() - 2);
      packets.push_back(std::move(packet));
    }
    i = j + 1;
    consumed_until = j;  // leave the closing sync as the next opener
  }

  stream->erase(stream->begin(),
                stream->begin() + static_cast<long>(consumed_until));
  return packets;
}

}  // namespace tinyos

Result<std::unique_ptr<Wrapper>> TinyOsWrapper::Make(
    const WrapperConfig& config) {
  GSN_ASSIGN_OR_RETURN(int64_t node_id, config.GetInt("node-id", 1));
  GSN_ASSIGN_OR_RETURN(int64_t interval_ms, config.GetInt("interval-ms", 1000));
  GSN_ASSIGN_OR_RETURN(
      Timestamp interval,
      config.GetDuration("interval", interval_ms * kMicrosPerMilli));
  GSN_ASSIGN_OR_RETURN(int64_t group, config.GetInt("group", 125));
  GSN_ASSIGN_OR_RETURN(double corrupt,
                       config.GetDouble("corrupt-probability", 0.0));
  if (node_id < 0 || node_id > 0xFFFF) {
    return Status::InvalidArgument("tinyos node-id must fit in 16 bits");
  }
  if (group < 0 || group > 0xFF) {
    return Status::InvalidArgument("tinyos group must fit in 8 bits");
  }
  if (corrupt < 0.0 || corrupt > 1.0) {
    return Status::InvalidArgument("corrupt-probability must be in [0,1]");
  }
  return std::unique_ptr<Wrapper>(
      new TinyOsWrapper(node_id, interval, static_cast<uint8_t>(group),
                        corrupt, config.seed));
}

TinyOsWrapper::TinyOsWrapper(int64_t node_id, Timestamp interval,
                             uint8_t group, double corrupt_probability,
                             uint64_t seed)
    : PeriodicWrapper(interval),
      node_id_(static_cast<uint16_t>(node_id)),
      group_(group),
      corrupt_probability_(corrupt_probability),
      rng_(seed) {
  schema_.AddField("node_id", DataType::kInt);
  schema_.AddField("counter", DataType::kInt);
  schema_.AddField("light", DataType::kInt);
  schema_.AddField("temperature", DataType::kInt);
  schema_.AddField("accel_x", DataType::kInt);
  schema_.AddField("accel_y", DataType::kInt);
}

Result<std::vector<StreamElement>> TinyOsWrapper::EmitAt(Timestamp t) {
  // -- Device model: the mote samples and writes a frame to the UART.
  temperature_ = std::clamp(temperature_ + rng_.NextGaussian() * 0.2, -20.0,
                            60.0);
  light_ = std::clamp(light_ + rng_.NextGaussian() * 8.0, 0.0, 2000.0);
  const uint16_t readings[6] = {
      node_id_,
      counter_++,
      static_cast<uint16_t>(light_),
      static_cast<uint16_t>(temperature_ + 40.0),  // sensor offset encoding
      static_cast<uint16_t>(512 + rng_.NextInt(-20, 20)),
      static_cast<uint16_t>(512 + rng_.NextInt(-20, 20)),
  };
  tinyos::Packet packet;
  packet.am_type = 10;  // OscopeMsg-style telemetry
  packet.group = group_;
  for (uint16_t r : readings) {
    packet.payload.push_back(static_cast<uint8_t>(r & 0xff));
    packet.payload.push_back(static_cast<uint8_t>(r >> 8));
  }
  std::vector<uint8_t> frame = tinyos::EncodeFrame(packet);
  // Serial-line damage: flip one inner byte of the frame.
  if (corrupt_probability_ > 0 && rng_.NextBool(corrupt_probability_) &&
      frame.size() > 4) {
    const size_t pos = 2 + static_cast<size_t>(
                               rng_.NextUint64(frame.size() - 4));
    frame[pos] ^= 0x55;
  }
  serial_buffer_.insert(serial_buffer_.end(), frame.begin(), frame.end());

  // -- Wrapper: parse whatever is on the line into stream elements.
  std::vector<StreamElement> out;
  for (const tinyos::Packet& parsed :
       tinyos::DecodeFrames(&serial_buffer_, &bad_frames_)) {
    if (parsed.group != group_ || parsed.payload.size() != 12) continue;
    auto u16 = [&parsed](size_t idx) {
      return static_cast<int64_t>(parsed.payload[idx * 2]) |
             (static_cast<int64_t>(parsed.payload[idx * 2 + 1]) << 8);
    };
    StreamElement e;
    e.timed = t;
    e.values = {Value::Int(u16(0)), Value::Int(u16(1)), Value::Int(u16(2)),
                Value::Int(u16(3) - 40),  // undo sensor offset
                Value::Int(u16(4) - 512), Value::Int(u16(5) - 512)};
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace gsn::wrappers

#ifndef GSN_WRAPPERS_WRAPPER_H_
#define GSN_WRAPPERS_WRAPPER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/clock.h"
#include "gsn/util/result.h"

namespace gsn::wrappers {

/// Key/value parameters from the `<address>` element of a stream source
/// (paper Fig 1: `<predicate key="type" val="temperature"/>`), plus the
/// wrapper-specific attributes.
using ParamMap = std::map<std::string, std::string>;

/// Configuration handed to a wrapper factory at deployment time.
///
/// The typed accessors are uniform: every Get* returns the fallback
/// when the key is absent, and a typed parse error *naming the key*
/// when the value is present but malformed — so a descriptor typo
/// surfaces as `param 'interval': not a number ...` instead of a bare
/// parse failure with no context.
struct WrapperConfig {
  std::string instance_name;
  ParamMap params;
  std::shared_ptr<Clock> clock;
  uint64_t seed = 1;

  /// Returns params[key] or `fallback` (strings never fail to parse).
  std::string Get(const std::string& key, const std::string& fallback) const;
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  /// Accepts true/false, 1/0, yes/no, on/off (case-insensitive).
  Result<bool> GetBool(const std::string& key, bool fallback) const;
  /// Duration with unit suffix ("250ms", "10s", "5m", "1h"); a bare
  /// integer means seconds. `fallback` is in microseconds.
  Result<Timestamp> GetDuration(const std::string& key,
                                Timestamp fallback) const;
};

/// Platform abstraction for one data source (paper §5: "Adding a new
/// type of sensor or sensor network can be done by supplying a ...
/// wrapper conforming to the GSN API"). A wrapper owns its output
/// schema and produces timestamped stream elements.
///
/// Wrappers are pull-based in this implementation: the input stream
/// manager calls Poll(now) and the wrapper emits every element due at
/// or before `now`. This keeps the whole pipeline deterministic under a
/// VirtualClock; live deployments drive Poll from a pump thread.
class Wrapper {
 public:
  virtual ~Wrapper() = default;

  Wrapper(const Wrapper&) = delete;
  Wrapper& operator=(const Wrapper&) = delete;

  /// The schema of elements this wrapper produces (without `timed`).
  virtual const Schema& output_schema() const = 0;

  /// Called once before the first Poll. Default: no-op.
  virtual Status Start() { return Status::OK(); }
  /// Called once after the last Poll. Default: no-op.
  virtual void Stop() {}

  /// Emits all elements due at or before `now`, in timestamp order.
  virtual Result<std::vector<StreamElement>> Poll(Timestamp now) = 0;

  /// Human-readable wrapper type (for the management interface).
  virtual std::string type_name() const = 0;

 protected:
  Wrapper() = default;
};

/// Factory signature: builds a wrapper from its deployment parameters.
using WrapperFactory =
    std::function<Result<std::unique_ptr<Wrapper>>(const WrapperConfig&)>;

/// Registry mapping descriptor wrapper names ("mote", "camera", "rfid",
/// "generator", "csv", "remote") to factories.
///
/// Substitution note (DESIGN.md §3): the Java GSN loads wrapper classes
/// dynamically at runtime; C++ has no portable equivalent, so wrappers
/// self-describe here and are selected by name — deployment descriptors
/// are unchanged, but adding a brand-new wrapper type requires relinking.
class WrapperRegistry {
 public:
  WrapperRegistry() = default;

  WrapperRegistry(const WrapperRegistry&) = delete;
  WrapperRegistry& operator=(const WrapperRegistry&) = delete;

  /// Registers a factory; later registrations replace earlier ones so
  /// tests can stub device wrappers.
  void Register(const std::string& name, WrapperFactory factory);

  /// Instantiates the wrapper `name` (case-insensitive).
  Result<std::unique_ptr<Wrapper>> Create(const std::string& name,
                                          const WrapperConfig& config) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Registers every built-in device wrapper (mote, camera, rfid,
  /// generator, csv).
  static void RegisterBuiltins(WrapperRegistry* registry);

 private:
  std::map<std::string, WrapperFactory> factories_;  // lowercased names
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_WRAPPER_H_

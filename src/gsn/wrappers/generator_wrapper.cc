#include "gsn/wrappers/generator_wrapper.h"

#include <cmath>

namespace gsn::wrappers {

Result<std::unique_ptr<Wrapper>> GeneratorWrapper::Make(
    const WrapperConfig& config) {
  GSN_ASSIGN_OR_RETURN(int64_t interval_ms, config.GetInt("interval-ms", 100));
  GSN_ASSIGN_OR_RETURN(
      Timestamp interval,
      config.GetDuration("interval", interval_ms * kMicrosPerMilli));
  GSN_ASSIGN_OR_RETURN(int64_t payload_bytes,
                       config.GetInt("payload-bytes", 15));
  GSN_ASSIGN_OR_RETURN(int64_t value_period, config.GetInt("value-period", 100));
  if (payload_bytes < 0) {
    return Status::InvalidArgument("generator payload-bytes must be >= 0");
  }
  if (value_period <= 0) {
    return Status::InvalidArgument("generator value-period must be > 0");
  }
  return std::unique_ptr<Wrapper>(
      new GeneratorWrapper(interval, static_cast<size_t>(payload_bytes),
                           value_period, config.seed));
}

GeneratorWrapper::GeneratorWrapper(Timestamp interval, size_t payload_bytes,
                                   int64_t value_period, uint64_t seed)
    : PeriodicWrapper(interval),
      payload_bytes_(payload_bytes),
      value_period_(value_period),
      rng_(seed) {
  schema_.AddField("seq", DataType::kInt);
  schema_.AddField("value", DataType::kDouble);
  schema_.AddField("payload", DataType::kBinary);
  // The payload content never changes, only its identity matters for
  // sizing experiments — share one buffer across all elements so a
  // 75 KB x 100 Hz stream does not drown the generator itself.
  std::vector<uint8_t> payload(payload_bytes_);
  for (size_t i = 0; i + 8 <= payload.size(); i += 8) {
    const uint64_t r = rng_.NextUint64();
    for (int b = 0; b < 8; ++b) {
      payload[i + static_cast<size_t>(b)] = static_cast<uint8_t>(r >> (8 * b));
    }
  }
  payload_template_ = MakeBlob(std::move(payload));
}

Result<std::vector<StreamElement>> GeneratorWrapper::EmitAt(Timestamp t) {
  StreamElement e;
  e.timed = t;
  const double phase = 2.0 * M_PI * static_cast<double>(seq_ % value_period_) /
                       static_cast<double>(value_period_);
  e.values = {
      Value::Int(seq_++),
      Value::Double(std::sin(phase)),
      Value::Binary(payload_template_),
  };
  return std::vector<StreamElement>{std::move(e)};
}

}  // namespace gsn::wrappers

#ifndef GSN_WRAPPERS_CSV_WRAPPER_H_
#define GSN_WRAPPERS_CSV_WRAPPER_H_

#include <memory>
#include <string>
#include <vector>

#include "gsn/wrappers/wrapper.h"

namespace gsn::wrappers {

/// Replays a CSV file as a data stream — the standard way to feed
/// recorded deployments (or any external data set) through GSN without
/// hardware. The first line is the header; a column named `timed`
/// (case-insensitive) provides element timestamps in microseconds,
/// otherwise rows are spaced `interval-ms` apart starting at the first
/// poll. Column types are inferred from the first data row
/// (int → double → string).
///
/// Parameters:
///   file          path to the CSV file                   (required)
///   interval-ms   spacing when no `timed` column exists  (default 1000)
///   interval      spacing with unit suffix ("500ms"); overrides
///                 interval-ms when present
///   loop          restart from the top when exhausted    (default false)
///
/// Output schema: inferred from the header (minus `timed`).
class CsvWrapper : public Wrapper {
 public:
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "csv"; }

  Result<std::vector<StreamElement>> Poll(Timestamp now) override;

  size_t total_rows() const { return rows_.size(); }

 private:
  CsvWrapper(Schema schema, std::vector<StreamElement> rows,
             Timestamp interval, bool loop, bool has_explicit_times);

  Schema schema_;
  std::vector<StreamElement> rows_;  // timed==relative offset or explicit
  const Timestamp interval_;
  const bool loop_;
  const bool has_explicit_times_;

  size_t next_row_ = 0;
  Timestamp base_time_ = -1;  // set at first poll
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_CSV_WRAPPER_H_

#ifndef GSN_WRAPPERS_TINYOS_WRAPPER_H_
#define GSN_WRAPPERS_TINYOS_WRAPPER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "gsn/util/result.h"
#include "gsn/util/rng.h"
#include "gsn/wrappers/periodic_wrapper.h"

namespace gsn::wrappers {

/// TinyOS 1.x serial framing (the packet format Mica/Mica2 motes write
/// to the UART): HDLC-style frames delimited by 0x7E with 0x7D
/// byte-stuffing, carrying an Active Message packet
///
///   dest:u16le  am_type:u8  group:u8  length:u8  payload  crc:u16le
///
/// where the CRC-16 (CCITT, init 0) covers everything before it.
/// Exposed separately from the wrapper so tests can exercise the codec
/// against corrupted and fragmented byte streams.
namespace tinyos {

constexpr uint8_t kSyncByte = 0x7E;
constexpr uint8_t kEscapeByte = 0x7D;

struct Packet {
  uint16_t dest = 0xFFFF;  // broadcast
  uint8_t am_type = 0;
  uint8_t group = 0x7D;
  std::vector<uint8_t> payload;
};

/// CRC-16/CCITT (polynomial 0x1021, init 0x0000) as used by TinyOS.
uint16_t Crc16(const uint8_t* data, size_t len);

/// Serializes a packet into a byte-stuffed frame (with sync bytes).
std::vector<uint8_t> EncodeFrame(const Packet& packet);

/// Extracts every complete, CRC-valid packet from `stream`, consuming
/// parsed bytes; `*bad_frames` (optional) counts frames dropped for
/// bad CRC or malformed structure. Partial trailing data is left in
/// `stream` for the next read.
std::vector<Packet> DecodeFrames(std::vector<uint8_t>* stream,
                                 int* bad_frames);

}  // namespace tinyos

/// Simulated TinyOS mote attached over a serial port: the device model
/// emits sensor readings as TinyOS Active Message frames onto a byte
/// stream (optionally corrupting some, as real serial links do) and
/// the wrapper parses them back — the full path the paper's 150-line
/// Java TinyOS wrapper implements.
///
/// Parameters:
///   node-id              mote address                     (default 1)
///   interval-ms          sampling period                  (default 1000)
///   interval             sampling period with unit suffix ("1s");
///                        overrides interval-ms when present
///   group                AM group id                      (default 125)
///   corrupt-probability  chance a frame is damaged        (default 0)
///
/// Payload layout (little-endian u16 each): node_id, counter, light,
/// temperature, accel_x, accel_y.
///
/// Output schema: node_id:int, counter:int, light:int, temperature:int,
///                accel_x:int, accel_y:int
class TinyOsWrapper : public PeriodicWrapper {
 public:
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "tinyos"; }

  /// Frames dropped due to CRC/framing damage since Start.
  int bad_frame_count() const { return bad_frames_; }

 protected:
  Result<std::vector<StreamElement>> EmitAt(Timestamp t) override;

 private:
  TinyOsWrapper(int64_t node_id, Timestamp interval, uint8_t group,
                double corrupt_probability, uint64_t seed);

  const uint16_t node_id_;
  const uint8_t group_;
  const double corrupt_probability_;
  Schema schema_;
  Rng rng_;
  uint16_t counter_ = 0;
  double light_ = 400.0;
  double temperature_ = 22.0;
  std::vector<uint8_t> serial_buffer_;  // bytes "on the wire"
  int bad_frames_ = 0;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_TINYOS_WRAPPER_H_

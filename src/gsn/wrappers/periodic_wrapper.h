#ifndef GSN_WRAPPERS_PERIODIC_WRAPPER_H_
#define GSN_WRAPPERS_PERIODIC_WRAPPER_H_

#include <vector>

#include "gsn/wrappers/wrapper.h"

namespace gsn::wrappers {

/// Base class for devices that sample on a fixed interval. Subclasses
/// implement EmitAt(t) to produce the reading due at time t; Poll
/// handles the schedule, emitting one element per elapsed interval
/// (catching up if polled late, as a real serial-port reader would
/// drain its buffer).
class PeriodicWrapper : public Wrapper {
 public:
  Result<std::vector<StreamElement>> Poll(Timestamp now) override {
    std::vector<StreamElement> out;
    if (!started_) {
      // First poll anchors the schedule: first sample one interval in.
      next_due_ = now + interval_micros_;
      started_ = true;
      return out;
    }
    while (next_due_ <= now) {
      GSN_ASSIGN_OR_RETURN(std::vector<StreamElement> produced,
                           EmitAt(next_due_));
      for (StreamElement& e : produced) out.push_back(std::move(e));
      next_due_ += interval_micros_;
    }
    return out;
  }

 protected:
  explicit PeriodicWrapper(Timestamp interval_micros)
      : interval_micros_(interval_micros > 0 ? interval_micros
                                             : kMicrosPerSecond) {}

  /// Produces the element(s) due at exactly time `t` (may be empty for
  /// event-style devices like RFID readers that poll and see nothing).
  virtual Result<std::vector<StreamElement>> EmitAt(Timestamp t) = 0;

  Timestamp interval_micros() const { return interval_micros_; }

 private:
  const Timestamp interval_micros_;
  Timestamp next_due_ = 0;
  bool started_ = false;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_PERIODIC_WRAPPER_H_

#ifndef GSN_WRAPPERS_MOTE_WRAPPER_H_
#define GSN_WRAPPERS_MOTE_WRAPPER_H_

#include <memory>
#include <vector>

#include "gsn/util/rng.h"
#include "gsn/wrappers/periodic_wrapper.h"

namespace gsn::wrappers {

/// Simulated TinyOS mote (Mica2 family) with light, temperature, and 2D
/// acceleration sensors — the sensor board used in the paper's demo
/// (§6: "MICA2 motes equipped with light, temperature, and 2D
/// acceleration sensors"). Readings follow bounded random walks so
/// windowed averages are stable and joins across motes are meaningful.
///
/// Parameters:
///   node-id       integer id reported in each element   (default 1)
///   interval-ms   sampling period                       (default 1000)
///   interval      sampling period with unit suffix ("1s"); overrides
///                 interval-ms when present
///   temp-base     initial temperature, degrees C        (default 22)
///   light-base    initial light level, lux              (default 400)
///
/// Output schema: node_id:int, light:double, temperature:int,
///                accel_x:double, accel_y:double
class MoteWrapper : public PeriodicWrapper {
 public:
  static Result<std::unique_ptr<Wrapper>> Make(const WrapperConfig& config);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "mote"; }

 protected:
  Result<std::vector<StreamElement>> EmitAt(Timestamp t) override;

 private:
  MoteWrapper(int64_t node_id, Timestamp interval, double temp_base,
              double light_base, uint64_t seed);

  const int64_t node_id_;
  Schema schema_;
  Rng rng_;
  double temperature_;
  double light_;
};

}  // namespace gsn::wrappers

#endif  // GSN_WRAPPERS_MOTE_WRAPPER_H_

#ifndef GSN_TYPES_VALUE_H_
#define GSN_TYPES_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "gsn/util/clock.h"
#include "gsn/util/result.h"

namespace gsn {

/// Column data types available in virtual sensor output structures
/// (paper Fig 1: `<field name="TEMPERATURE" type="integer"/>`). Binary
/// carries opaque payloads such as camera images.
enum class DataType {
  kBool,
  kInt,
  kDouble,
  kString,
  kBinary,
  kTimestamp,
};

/// Stable lowercase name ("integer", "double", ...), as used in
/// deployment descriptors.
const char* DataTypeName(DataType type);

/// Parses a descriptor type name. Accepts GSN-style aliases
/// ("int"/"integer"/"bigint", "double"/"float"/"numeric",
/// "string"/"varchar", "binary"/"blob"/"image", "timestamp"/"time",
/// "bool"/"boolean"). Case-insensitive.
Result<DataType> ParseDataType(std::string_view name);

/// Shared immutable byte payload. Camera images in the Fig 3 workload
/// are tens of KB; sharing avoids copying them through the pipeline.
using Blob = std::shared_ptr<const std::vector<uint8_t>>;

/// Creates a Blob from raw bytes.
Blob MakeBlob(std::vector<uint8_t> bytes);
Blob MakeBlob(std::string_view bytes);

/// A dynamically typed SQL value. Any Value may be NULL. Cheap to copy
/// (strings are small in practice; blobs are shared).
class Value {
 public:
  /// NULL of unspecified type.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  static Value Binary(Blob v) { return Value(Data(std::move(v))); }
  static Value TimestampVal(Timestamp micros) {
    return Value(Data(Ts{micros}));
  }

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_binary() const { return std::holds_alternative<Blob>(data_); }
  bool is_timestamp() const { return std::holds_alternative<Ts>(data_); }
  /// Int, double, or bool (bool coerces to 0/1 in arithmetic).
  bool is_numeric() const { return is_int() || is_double() || is_bool(); }

  /// Accessors; undefined behaviour if the type does not match (check
  /// first or use the As* coercions).
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }
  const Blob& binary_value() const { return std::get<Blob>(data_); }
  Timestamp timestamp_value() const { return std::get<Ts>(data_).micros; }

  /// Numeric coercions. Fail on non-numeric or NULL.
  Result<double> AsDouble() const;
  Result<int64_t> AsInt() const;

  /// The runtime type, if not NULL.
  Result<DataType> type() const;

  /// Converts this value to `target`, applying numeric widening/
  /// narrowing and string formatting/parsing where sensible.
  Result<Value> CastTo(DataType target) const;

  /// SQL-style three-valued comparison is handled by the expression
  /// evaluator; this is a total ordering used for ORDER BY and testing:
  /// NULL < everything; numerics compare by value across int/double/bool;
  /// strings lexicographic; binaries bytewise; timestamps by instant.
  /// Cross-kind comparisons order by type tag. Returns -1/0/+1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// Human-readable rendering (used by logs and the CLI examples).
  std::string ToString() const;

  /// Approximate in-memory size in bytes (payload only), used for
  /// stream-element-size accounting in the Fig 3/Fig 4 workloads.
  size_t PayloadBytes() const;

 private:
  struct Ts {
    Timestamp micros;
  };
  using Data = std::variant<std::monostate, bool, int64_t, double,
                            std::string, Blob, Ts>;
  explicit Value(Data d) : data_(std::move(d)) {}

  Data data_;
};

}  // namespace gsn

#endif  // GSN_TYPES_VALUE_H_

#include "gsn/types/schema.h"

#include <sstream>

#include "gsn/util/strings.h"

namespace gsn {

Result<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (StrEqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return Status::NotFound("no column named '" + std::string(name) + "' in (" +
                          ToString() + ")");
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name).ok();
}

Schema Schema::WithTimedField() const {
  if (Contains(kTimedField)) return *this;
  Schema out;
  out.AddField(std::string(kTimedField), DataType::kTimestamp);
  for (const Field& f : fields_) out.fields_.push_back(f);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  return out;
}

Relation::Relation(Schema schema, std::vector<Row> rows)
    : schema_(std::move(schema)) {
  rows_.reserve(rows.size());
  for (Row& row : rows) {
    rows_.push_back(std::make_shared<Row>(std::move(row)));
  }
}

Status Relation::AddRow(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.size()));
  }
  rows_.push_back(std::make_shared<Row>(std::move(row)));
  return Status::OK();
}

Relation::Row& Relation::MutableRow(size_t i) {
  SharedRow& slot = rows_[i];
  if (slot.use_count() != 1) {
    slot = std::make_shared<Row>(*slot);
  }
  // The allocation is uniquely owned here, so dropping const is safe.
  return const_cast<Row&>(*slot);
}

Relation::SharedRow Relation::RowFromElement(const StreamElement& e) {
  Row row;
  row.reserve(e.values.size() + 1);
  row.push_back(Value::TimestampVal(e.timed));
  for (const Value& v : e.values) row.push_back(v);
  return std::make_shared<Row>(std::move(row));
}

Relation Relation::FromElements(const Schema& element_schema,
                                const std::vector<StreamElement>& elements) {
  Relation rel(element_schema.WithTimedField());
  rel.rows_.reserve(elements.size());
  for (const StreamElement& e : elements) {
    rel.rows_.push_back(RowFromElement(e));
  }
  return rel;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i > 0) os << " | ";
    os << schema_.field(i).name;
  }
  os << "\n";
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (i > 0) os << "-+-";
    os << std::string(schema_.field(i).name.size(), '-');
  }
  os << "\n";
  size_t shown = 0;
  for (const SharedRow& shared : rows_) {
    const Row& row = *shared;
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() - max_rows << " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << " | ";
      os << row[i].ToString();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gsn

#ifndef GSN_TYPES_SCHEMA_H_
#define GSN_TYPES_SCHEMA_H_

#include <cstddef>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gsn/types/value.h"
#include "gsn/util/result.h"
#include "gsn/util/trace_context.h"

namespace gsn {

/// One column in a stream or relation schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Name of the implicit timestamp attribute every stream element
/// carries (paper §3: "implicit management of a timestamp attribute").
/// SQL queries can reference it like any other column.
inline constexpr std::string_view kTimedField = "timed";

/// An ordered list of named, typed columns. Column lookup is
/// case-insensitive, matching SQL identifier semantics.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  Schema(const Schema&) = default;
  Schema& operator=(const Schema&) = default;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  const std::vector<Field>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  const Field& field(size_t i) const { return fields_[i]; }

  void AddField(std::string name, DataType type) {
    fields_.push_back(Field{std::move(name), type});
  }

  /// Index of the column named `name` (case-insensitive), or error.
  Result<size_t> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const;

  /// A schema identical to this one but with `timed` prepended if it is
  /// not already present. Used when materializing stream elements into
  /// SQL-visible windows.
  Schema WithTimedField() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A stream element: the paper's "timestamped tuple" (§3). `values`
/// align positionally with the producing sensor's output schema.
struct StreamElement {
  Timestamp timed = 0;
  std::vector<Value> values;
  /// End-to-end trace identity, stamped by the stream source that
  /// admits the element and carried (not persisted, not signed) through
  /// the pipeline and across remote delivery. Invalid = untraced.
  TraceContext trace;

  /// Sum of payload bytes across values (stream element size, SES).
  size_t PayloadBytes() const {
    size_t n = 0;
    for (const Value& v : values) n += v.PayloadBytes();
    return n;
  }
};

/// A materialized relation: the unit the SQL executor consumes and
/// produces ("the resulting sets of relations are unnested into flat
/// relations", paper §3).
///
/// Rows are stored as `shared_ptr<const Row>` so that snapshots of
/// window buffers and storage tables are ref-count bumps rather than
/// deep copies; copying a Relation shares the underlying rows.
/// Mutation of a stored row goes through MutableRow(), which clones
/// only when the row is shared (copy-on-write).
class Relation {
 public:
  using Row = std::vector<Value>;
  using SharedRow = std::shared_ptr<const Row>;
  using RowList = std::vector<SharedRow>;

  /// Read-only random-access view over the shared rows, yielding
  /// `const Row&` so call sites iterate and index exactly as they did
  /// when rows were stored by value. References and row addresses stay
  /// stable for the lifetime of the underlying shared allocations.
  class RowsView {
   public:
    class const_iterator {
     public:
      using iterator_category = std::random_access_iterator_tag;
      using value_type = Row;
      using difference_type = std::ptrdiff_t;
      using pointer = const Row*;
      using reference = const Row&;

      const_iterator() = default;
      explicit const_iterator(const SharedRow* p) : p_(p) {}

      reference operator*() const { return **p_; }
      pointer operator->() const { return p_->get(); }
      reference operator[](difference_type n) const { return *p_[n]; }

      const_iterator& operator++() { ++p_; return *this; }
      const_iterator operator++(int) { const_iterator t = *this; ++p_; return t; }
      const_iterator& operator--() { --p_; return *this; }
      const_iterator operator--(int) { const_iterator t = *this; --p_; return t; }
      const_iterator& operator+=(difference_type n) { p_ += n; return *this; }
      const_iterator& operator-=(difference_type n) { p_ -= n; return *this; }
      friend const_iterator operator+(const_iterator it, difference_type n) {
        it += n; return it;
      }
      friend const_iterator operator+(difference_type n, const_iterator it) {
        it += n; return it;
      }
      friend const_iterator operator-(const_iterator it, difference_type n) {
        it -= n; return it;
      }
      friend difference_type operator-(const const_iterator& a,
                                       const const_iterator& b) {
        return a.p_ - b.p_;
      }
      friend bool operator==(const const_iterator& a, const const_iterator& b) {
        return a.p_ == b.p_;
      }
      friend bool operator!=(const const_iterator& a, const const_iterator& b) {
        return a.p_ != b.p_;
      }
      friend bool operator<(const const_iterator& a, const const_iterator& b) {
        return a.p_ < b.p_;
      }
      friend bool operator>(const const_iterator& a, const const_iterator& b) {
        return a.p_ > b.p_;
      }
      friend bool operator<=(const const_iterator& a, const const_iterator& b) {
        return a.p_ <= b.p_;
      }
      friend bool operator>=(const const_iterator& a, const const_iterator& b) {
        return a.p_ >= b.p_;
      }

     private:
      const SharedRow* p_ = nullptr;
    };

    using iterator = const_iterator;
    using value_type = Row;
    using size_type = size_t;

    explicit RowsView(const RowList* rows) : rows_(rows) {}

    const_iterator begin() const { return const_iterator(rows_->data()); }
    const_iterator end() const {
      return const_iterator(rows_->data() + rows_->size());
    }
    size_t size() const { return rows_->size(); }
    bool empty() const { return rows_->empty(); }
    const Row& operator[](size_t i) const { return *(*rows_)[i]; }
    const Row& front() const { return *rows_->front(); }
    const Row& back() const { return *rows_->back(); }

   private:
    const RowList* rows_;
  };

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Row> rows);
  Relation(Schema schema, RowList rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const Schema& schema() const { return schema_; }
  RowsView rows() const { return RowsView(&rows_); }
  const RowList& shared_rows() const { return rows_; }
  RowList& mutable_shared_rows() { return rows_; }
  const Row& row(size_t i) const { return *rows_[i]; }
  const SharedRow& shared_row(size_t i) const { return rows_[i]; }
  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; must match the schema arity.
  Status AddRow(Row row);

  /// Appends without the arity check (executor-internal fast path).
  void AppendRow(Row row) {
    rows_.push_back(std::make_shared<Row>(std::move(row)));
  }
  void AppendSharedRow(SharedRow row) { rows_.push_back(std::move(row)); }

  /// Mutable access to row `i`: clones the row iff it is shared with
  /// another relation, window, or table (copy-on-write).
  Row& MutableRow(size_t i);

  static SharedRow MakeRow(Row row) {
    return std::make_shared<Row>(std::move(row));
  }

  /// Converts a stream element (with its timestamp) into a shared row:
  /// [TimestampVal(timed), values...].
  static SharedRow RowFromElement(const StreamElement& e);

  /// Converts stream elements (with timestamps) into rows of this
  /// relation, whose schema must be element-schema prefixed by `timed`.
  static Relation FromElements(const Schema& element_schema,
                               const std::vector<StreamElement>& elements);

  /// Renders an ASCII table for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  RowList rows_;
};

}  // namespace gsn

#endif  // GSN_TYPES_SCHEMA_H_

#ifndef GSN_TYPES_SCHEMA_H_
#define GSN_TYPES_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "gsn/types/value.h"
#include "gsn/util/result.h"
#include "gsn/util/trace_context.h"

namespace gsn {

/// One column in a stream or relation schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Name of the implicit timestamp attribute every stream element
/// carries (paper §3: "implicit management of a timestamp attribute").
/// SQL queries can reference it like any other column.
inline constexpr std::string_view kTimedField = "timed";

/// An ordered list of named, typed columns. Column lookup is
/// case-insensitive, matching SQL identifier semantics.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  Schema(const Schema&) = default;
  Schema& operator=(const Schema&) = default;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  const std::vector<Field>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  const Field& field(size_t i) const { return fields_[i]; }

  void AddField(std::string name, DataType type) {
    fields_.push_back(Field{std::move(name), type});
  }

  /// Index of the column named `name` (case-insensitive), or error.
  Result<size_t> IndexOf(std::string_view name) const;
  bool Contains(std::string_view name) const;

  /// A schema identical to this one but with `timed` prepended if it is
  /// not already present. Used when materializing stream elements into
  /// SQL-visible windows.
  Schema WithTimedField() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A stream element: the paper's "timestamped tuple" (§3). `values`
/// align positionally with the producing sensor's output schema.
struct StreamElement {
  Timestamp timed = 0;
  std::vector<Value> values;
  /// End-to-end trace identity, stamped by the stream source that
  /// admits the element and carried (not persisted, not signed) through
  /// the pipeline and across remote delivery. Invalid = untraced.
  TraceContext trace;

  /// Sum of payload bytes across values (stream element size, SES).
  size_t PayloadBytes() const {
    size_t n = 0;
    for (const Value& v : values) n += v.PayloadBytes();
    return n;
  }
};

/// A materialized relation: the unit the SQL executor consumes and
/// produces ("the resulting sets of relations are unnested into flat
/// relations", paper §3).
class Relation {
 public:
  using Row = std::vector<Value>;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row; must match the schema arity.
  Status AddRow(Row row);

  /// Converts a stream element (with its timestamp) into a row of this
  /// relation, whose schema must be element-schema prefixed by `timed`.
  static Relation FromElements(const Schema& element_schema,
                               const std::vector<StreamElement>& elements);

  /// Renders an ASCII table for examples and debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace gsn

#endif  // GSN_TYPES_SCHEMA_H_

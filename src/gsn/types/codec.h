#ifndef GSN_TYPES_CODEC_H_
#define GSN_TYPES_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn {

/// Self-describing binary encoding for values, stream elements,
/// schemas, and relations. Used by the persistence log (storage layer)
/// and by inter-container messages in the network simulator — the two
/// places the Java GSN relied on JDBC serialization and Java RMI.
///
/// Wire format (little-endian):
///   value    := tag:u8 payload
///   tag      := 0 null | 1 bool | 2 int | 3 double | 4 string
///             | 5 binary | 6 timestamp
///   string   := len:u32 bytes
///   element  := timed:i64 count:u32 value*
///   schema   := count:u32 (name:string type:u8)*
///   relation := schema nrows:u32 (count:u32 value*)*
class Codec {
 public:
  // -- Encoding (appends to `out`) ----------------------------------------
  static void EncodeValue(const Value& v, std::string* out);
  static void EncodeElement(const StreamElement& e, std::string* out);
  static void EncodeSchema(const Schema& s, std::string* out);
  static void EncodeRelation(const Relation& r, std::string* out);

  // -- Decoding (advances `*pos`) ------------------------------------------
  static Result<Value> DecodeValue(std::string_view data, size_t* pos);
  static Result<StreamElement> DecodeElement(std::string_view data,
                                             size_t* pos);
  static Result<Schema> DecodeSchema(std::string_view data, size_t* pos);
  static Result<Relation> DecodeRelation(std::string_view data, size_t* pos);

  // -- Primitives (exposed for protocol messages in gsn/network) -----------
  static void EncodeU32(uint32_t v, std::string* out);
  static void EncodeI64(int64_t v, std::string* out);
  static void EncodeString(std::string_view s, std::string* out);
  static Result<uint32_t> DecodeU32(std::string_view data, size_t* pos);
  static Result<int64_t> DecodeI64(std::string_view data, size_t* pos);
  static Result<std::string> DecodeString(std::string_view data, size_t* pos);

  // -- One-shot helpers -----------------------------------------------------
  static std::string EncodeElementToString(const StreamElement& e);
  static Result<StreamElement> DecodeElementFromString(std::string_view data);
  static std::string EncodeRelationToString(const Relation& r);
  static Result<Relation> DecodeRelationFromString(std::string_view data);
};

}  // namespace gsn

#endif  // GSN_TYPES_CODEC_H_

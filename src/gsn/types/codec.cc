#include "gsn/types/codec.h"

#include <cstring>

namespace gsn {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;
constexpr uint8_t kTagBinary = 5;
constexpr uint8_t kTagTimestamp = 6;

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(int64_t v, std::string* out) {
  const uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((u >> (8 * i)) & 0xff));
  }
}

void PutDouble(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutI64(static_cast<int64_t>(bits), out);
}

void PutBytes(const void* data, size_t len, std::string* out) {
  PutU32(static_cast<uint32_t>(len), out);
  out->append(static_cast<const char*>(data), len);
}

Status Truncated() { return Status::ParseError("codec: truncated input"); }

/// Validates a decoded repetition count against the bytes actually
/// remaining: every encoded item needs at least one byte, so a count
/// larger than the remaining input is corrupt. Prevents adversarial
/// counts from triggering huge allocations before decoding fails.
Status CheckCount(uint32_t count, std::string_view data, size_t pos) {
  if (static_cast<size_t>(count) > data.size() - pos) {
    return Status::ParseError("codec: implausible count " +
                              std::to_string(count));
  }
  return Status::OK();
}

Result<uint8_t> GetU8(std::string_view data, size_t* pos) {
  if (*pos + 1 > data.size()) return Truncated();
  return static_cast<uint8_t>(data[(*pos)++]);
}

Result<uint32_t> GetU32(std::string_view data, size_t* pos) {
  if (*pos + 4 > data.size()) return Truncated();
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  return v;
}

Result<int64_t> GetI64(std::string_view data, size_t* pos) {
  if (*pos + 8 > data.size()) return Truncated();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  return static_cast<int64_t>(v);
}

Result<double> GetDouble(std::string_view data, size_t* pos) {
  GSN_ASSIGN_OR_RETURN(int64_t bits, GetI64(data, pos));
  double v;
  const uint64_t u = static_cast<uint64_t>(bits);
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

Result<std::string> GetString(std::string_view data, size_t* pos) {
  GSN_ASSIGN_OR_RETURN(uint32_t len, GetU32(data, pos));
  if (*pos + len > data.size()) return Truncated();
  std::string out(data.substr(*pos, len));
  *pos += len;
  return out;
}

}  // namespace

void Codec::EncodeU32(uint32_t v, std::string* out) { PutU32(v, out); }
void Codec::EncodeI64(int64_t v, std::string* out) { PutI64(v, out); }
void Codec::EncodeString(std::string_view s, std::string* out) {
  PutBytes(s.data(), s.size(), out);
}
Result<uint32_t> Codec::DecodeU32(std::string_view data, size_t* pos) {
  return GetU32(data, pos);
}
Result<int64_t> Codec::DecodeI64(std::string_view data, size_t* pos) {
  return GetI64(data, pos);
}
Result<std::string> Codec::DecodeString(std::string_view data, size_t* pos) {
  return GetString(data, pos);
}

void Codec::EncodeValue(const Value& v, std::string* out) {
  if (v.is_null()) {
    PutU8(kTagNull, out);
  } else if (v.is_bool()) {
    PutU8(kTagBool, out);
    PutU8(v.bool_value() ? 1 : 0, out);
  } else if (v.is_int()) {
    PutU8(kTagInt, out);
    PutI64(v.int_value(), out);
  } else if (v.is_double()) {
    PutU8(kTagDouble, out);
    PutDouble(v.double_value(), out);
  } else if (v.is_string()) {
    PutU8(kTagString, out);
    PutBytes(v.string_value().data(), v.string_value().size(), out);
  } else if (v.is_binary()) {
    PutU8(kTagBinary, out);
    PutBytes(v.binary_value()->data(), v.binary_value()->size(), out);
  } else {
    PutU8(kTagTimestamp, out);
    PutI64(v.timestamp_value(), out);
  }
}

Result<Value> Codec::DecodeValue(std::string_view data, size_t* pos) {
  GSN_ASSIGN_OR_RETURN(uint8_t tag, GetU8(data, pos));
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      GSN_ASSIGN_OR_RETURN(uint8_t b, GetU8(data, pos));
      return Value::Bool(b != 0);
    }
    case kTagInt: {
      GSN_ASSIGN_OR_RETURN(int64_t v, GetI64(data, pos));
      return Value::Int(v);
    }
    case kTagDouble: {
      GSN_ASSIGN_OR_RETURN(double v, GetDouble(data, pos));
      return Value::Double(v);
    }
    case kTagString: {
      GSN_ASSIGN_OR_RETURN(std::string s, GetString(data, pos));
      return Value::String(std::move(s));
    }
    case kTagBinary: {
      GSN_ASSIGN_OR_RETURN(std::string s, GetString(data, pos));
      return Value::Binary(MakeBlob(s));
    }
    case kTagTimestamp: {
      GSN_ASSIGN_OR_RETURN(int64_t v, GetI64(data, pos));
      return Value::TimestampVal(v);
    }
    default:
      return Status::ParseError("codec: unknown value tag " +
                                std::to_string(tag));
  }
}

void Codec::EncodeElement(const StreamElement& e, std::string* out) {
  PutI64(e.timed, out);
  PutU32(static_cast<uint32_t>(e.values.size()), out);
  for (const Value& v : e.values) EncodeValue(v, out);
}

Result<StreamElement> Codec::DecodeElement(std::string_view data,
                                           size_t* pos) {
  StreamElement e;
  GSN_ASSIGN_OR_RETURN(e.timed, GetI64(data, pos));
  GSN_ASSIGN_OR_RETURN(uint32_t count, GetU32(data, pos));
  GSN_RETURN_IF_ERROR(CheckCount(count, data, *pos));
  e.values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    GSN_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
    e.values.push_back(std::move(v));
  }
  return e;
}

void Codec::EncodeSchema(const Schema& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  for (const Field& f : s.fields()) {
    PutBytes(f.name.data(), f.name.size(), out);
    PutU8(static_cast<uint8_t>(f.type), out);
  }
}

Result<Schema> Codec::DecodeSchema(std::string_view data, size_t* pos) {
  GSN_ASSIGN_OR_RETURN(uint32_t count, GetU32(data, pos));
  GSN_RETURN_IF_ERROR(CheckCount(count, data, *pos));
  Schema s;
  for (uint32_t i = 0; i < count; ++i) {
    GSN_ASSIGN_OR_RETURN(std::string name, GetString(data, pos));
    GSN_ASSIGN_OR_RETURN(uint8_t type, GetU8(data, pos));
    if (type > static_cast<uint8_t>(DataType::kTimestamp)) {
      return Status::ParseError("codec: bad data type " +
                                std::to_string(type));
    }
    s.AddField(std::move(name), static_cast<DataType>(type));
  }
  return s;
}

void Codec::EncodeRelation(const Relation& r, std::string* out) {
  EncodeSchema(r.schema(), out);
  PutU32(static_cast<uint32_t>(r.NumRows()), out);
  for (const auto& row : r.rows()) {
    PutU32(static_cast<uint32_t>(row.size()), out);
    for (const Value& v : row) EncodeValue(v, out);
  }
}

Result<Relation> Codec::DecodeRelation(std::string_view data, size_t* pos) {
  GSN_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(data, pos));
  GSN_ASSIGN_OR_RETURN(uint32_t nrows, GetU32(data, pos));
  GSN_RETURN_IF_ERROR(CheckCount(nrows, data, *pos));
  Relation rel(std::move(schema));
  for (uint32_t i = 0; i < nrows; ++i) {
    GSN_ASSIGN_OR_RETURN(uint32_t count, GetU32(data, pos));
    GSN_RETURN_IF_ERROR(CheckCount(count, data, *pos));
    Relation::Row row;
    row.reserve(count);
    for (uint32_t j = 0; j < count; ++j) {
      GSN_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
      row.push_back(std::move(v));
    }
    GSN_RETURN_IF_ERROR(rel.AddRow(std::move(row)));
  }
  return rel;
}

std::string Codec::EncodeElementToString(const StreamElement& e) {
  std::string out;
  EncodeElement(e, &out);
  return out;
}

Result<StreamElement> Codec::DecodeElementFromString(std::string_view data) {
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(StreamElement e, DecodeElement(data, &pos));
  if (pos != data.size()) {
    return Status::ParseError("codec: trailing bytes after element");
  }
  return e;
}

std::string Codec::EncodeRelationToString(const Relation& r) {
  std::string out;
  EncodeRelation(r, &out);
  return out;
}

Result<Relation> Codec::DecodeRelationFromString(std::string_view data) {
  size_t pos = 0;
  GSN_ASSIGN_OR_RETURN(Relation r, DecodeRelation(data, &pos));
  if (pos != data.size()) {
    return Status::ParseError("codec: trailing bytes after relation");
  }
  return r;
}

}  // namespace gsn

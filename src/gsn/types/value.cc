#include "gsn/types/value.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "gsn/util/strings.h"

namespace gsn {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "boolean";
    case DataType::kInt:
      return "integer";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kBinary:
      return "binary";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Result<DataType> ParseDataType(std::string_view name) {
  const std::string n = StrToLower(StrTrim(name));
  if (n == "bool" || n == "boolean") return DataType::kBool;
  if (n == "int" || n == "integer" || n == "bigint" || n == "smallint" ||
      n == "tinyint") {
    return DataType::kInt;
  }
  if (n == "double" || n == "float" || n == "numeric" || n == "real" ||
      n == "decimal") {
    return DataType::kDouble;
  }
  if (n == "string" || n == "varchar" || n == "char" || n == "text") {
    return DataType::kString;
  }
  if (n == "binary" || n == "blob" || n == "image" || n == "bytes") {
    return DataType::kBinary;
  }
  if (n == "timestamp" || n == "time" || n == "timed") {
    return DataType::kTimestamp;
  }
  return Status::ParseError("unknown data type: " + std::string(name));
}

Blob MakeBlob(std::vector<uint8_t> bytes) {
  return std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
}

Blob MakeBlob(std::string_view bytes) {
  return std::make_shared<const std::vector<uint8_t>>(bytes.begin(),
                                                      bytes.end());
}

Result<double> Value::AsDouble() const {
  if (is_double()) return double_value();
  if (is_int()) return static_cast<double>(int_value());
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  if (is_timestamp()) return static_cast<double>(timestamp_value());
  return Status::ExecutionError("value is not numeric: " + ToString());
}

Result<int64_t> Value::AsInt() const {
  if (is_int()) return int_value();
  if (is_double()) return static_cast<int64_t>(double_value());
  if (is_bool()) return static_cast<int64_t>(bool_value() ? 1 : 0);
  if (is_timestamp()) return timestamp_value();
  return Status::ExecutionError("value is not numeric: " + ToString());
}

Result<DataType> Value::type() const {
  if (is_bool()) return DataType::kBool;
  if (is_int()) return DataType::kInt;
  if (is_double()) return DataType::kDouble;
  if (is_string()) return DataType::kString;
  if (is_binary()) return DataType::kBinary;
  if (is_timestamp()) return DataType::kTimestamp;
  return Status::ExecutionError("NULL value has no type");
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Null();
  switch (target) {
    case DataType::kBool: {
      if (is_bool()) return *this;
      if (is_string()) {
        GSN_ASSIGN_OR_RETURN(bool b, ParseBool(string_value()));
        return Bool(b);
      }
      GSN_ASSIGN_OR_RETURN(int64_t i, AsInt());
      return Bool(i != 0);
    }
    case DataType::kInt: {
      if (is_int()) return *this;
      if (is_string()) {
        GSN_ASSIGN_OR_RETURN(int64_t i, ParseInt64(string_value()));
        return Int(i);
      }
      GSN_ASSIGN_OR_RETURN(int64_t i, AsInt());
      return Int(i);
    }
    case DataType::kDouble: {
      if (is_double()) return *this;
      if (is_string()) {
        GSN_ASSIGN_OR_RETURN(double d, ParseDouble(string_value()));
        return Double(d);
      }
      GSN_ASSIGN_OR_RETURN(double d, AsDouble());
      return Double(d);
    }
    case DataType::kString:
      if (is_string()) return *this;
      return String(ToString());
    case DataType::kBinary:
      if (is_binary()) return *this;
      if (is_string()) return Binary(MakeBlob(string_value()));
      return Status::ExecutionError("cannot cast " + ToString() + " to binary");
    case DataType::kTimestamp: {
      if (is_timestamp()) return *this;
      GSN_ASSIGN_OR_RETURN(int64_t i, AsInt());
      return TimestampVal(i);
    }
  }
  return Status::Internal("unhandled cast target");
}

namespace {
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_numeric()) return 1;
  if (v.is_timestamp()) return 2;
  if (v.is_string()) return 3;
  return 4;  // binary
}
}  // namespace

int Value::Compare(const Value& other) const {
  const int ra = TypeRank(*this);
  const int rb = TypeRank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      // Compare ints exactly when both are ints to avoid precision loss.
      if (is_int() && other.is_int()) {
        const int64_t a = int_value();
        const int64_t b = other.int_value();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = AsDouble().value_or(0.0);
      const double b = other.AsDouble().value_or(0.0);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case 2: {
      const Timestamp a = timestamp_value();
      const Timestamp b = other.timestamp_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case 3: {
      const int c = string_value().compare(other.string_value());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default: {
      const auto& a = *binary_value();
      const auto& b = *other.binary_value();
      if (a == b) return 0;
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end())
                 ? -1
                 : 1;
    }
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) {
    std::ostringstream os;
    os << double_value();
    return os.str();
  }
  if (is_string()) return string_value();
  if (is_timestamp()) return "@" + std::to_string(timestamp_value());
  return "<binary:" + std::to_string(binary_value()->size()) + "B>";
}

size_t Value::PayloadBytes() const {
  if (is_null()) return 0;
  if (is_bool()) return 1;
  if (is_int() || is_double() || is_timestamp()) return 8;
  if (is_string()) return string_value().size();
  return binary_value()->size();
}

}  // namespace gsn

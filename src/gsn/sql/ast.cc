#include "gsn/sql/ast.h"

#include "gsn/util/strings.h"

namespace gsn::sql {

namespace {
const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kConcat:
      return "||";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLess:
      return "<";
    case BinaryOp::kLessEq:
      return "<=";
    case BinaryOp::kGreater:
      return ">";
    case BinaryOp::kGreaterEq:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kNotLike:
      return "NOT LIKE";
  }
  return "?";
}
}  // namespace

std::unique_ptr<Expr> MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> MakeColumnRef(std::string qualifier,
                                    std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

bool IsAggregateFunction(std::string_view upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX" ||
         upper_name == "STDDEV" || upper_name == "VARIANCE";
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall && IsAggregateFunction(e.function)) {
    return true;
  }
  for (const auto& child : e.children) {
    if (child && ContainsAggregate(*child)) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_string()) return "'" + literal.ToString() + "'";
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kBetween:
      return children[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kInList: {
      std::string out =
          children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kInSubquery:
      return children[0]->ToString() + (negated ? " NOT IN (" : " IN (") +
             subquery->ToString() + ")";
    case ExprKind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" +
             subquery->ToString() + ")";
    case ExprKind::kScalarSubquery:
      return "(" + subquery->ToString() + ")";
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t idx = 0;
      if (case_has_operand) out += " " + children[idx++]->ToString();
      for (size_t w = 0; w < case_num_whens; ++w) {
        out += " WHEN " + children[idx]->ToString();
        out += " THEN " + children[idx + 1]->ToString();
        idx += 2;
      }
      if (case_has_else) out += " ELSE " + children[idx]->ToString();
      return out + " END";
    }
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             DataTypeName(cast_type) + ")";
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

std::string TableRef::ToString() const {
  switch (kind) {
    case Kind::kTable:
      return alias.empty() ? table_name : table_name + " AS " + alias;
    case Kind::kSubquery:
      return "(" + subquery->ToString() + ") AS " + alias;
    case Kind::kJoin: {
      const char* jt = join_type == JoinType::kInner  ? " JOIN "
                       : join_type == JoinType::kLeft ? " LEFT JOIN "
                                                      : " CROSS JOIN ";
      std::string out = left->ToString() + jt + right->ToString();
      if (join_condition) out += " ON " + join_condition->ToString();
      return out;
    }
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = items[i];
    if (item.is_star) {
      out += item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*";
    } else {
      out += item.expr->ToString();
      if (!item.alias.empty()) out += " AS " + item.alias;
    }
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i]->ToString();
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  if (offset.has_value()) out += " OFFSET " + std::to_string(*offset);
  if (set_op != SetOp::kNone && set_rhs) {
    const char* op = set_op == SetOp::kUnion      ? " UNION "
                     : set_op == SetOp::kUnionAll ? " UNION ALL "
                     : set_op == SetOp::kIntersect ? " INTERSECT "
                                                   : " EXCEPT ";
    out += op + set_rhs->ToString();
  }
  return out;
}

}  // namespace gsn::sql

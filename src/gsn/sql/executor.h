#ifndef GSN_SQL_EXECUTOR_H_
#define GSN_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "gsn/sql/ast.h"
#include "gsn/sql/scan_predicate.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::sql {

/// Supplies base relations to the executor. The storage layer's table
/// manager implements this; virtual sensors also use a lightweight map
/// resolver to expose their per-source temporary relations (paper §3
/// step 3: "input stream queries are evaluated and stored into
/// temporary relations").
class TableResolver {
 public:
  virtual ~TableResolver() = default;
  /// Returns a snapshot of the named table (case-insensitive name).
  virtual Result<Relation> GetTable(const std::string& name) const = 0;

  /// Snapshot with predicate pushdown: resolvers backed by tiered
  /// storage may use `predicate` to zone-map-prune column chunks and
  /// report what they skipped in `stats` (may be null). The predicate
  /// is advisory — returning rows that fail it is fine, the executor
  /// re-applies the full WHERE. Defaults to an unpruned GetTable.
  virtual Result<Relation> GetTableFiltered(const std::string& name,
                                            const ScanPredicate& predicate,
                                            ScanStats* stats) const {
    (void)predicate;
    (void)stats;
    return GetTable(name);
  }
};

/// Simple in-memory resolver backed by a name → Relation map.
class MapResolver : public TableResolver {
 public:
  MapResolver() = default;

  void Put(const std::string& name, Relation relation);
  Result<Relation> GetTable(const std::string& name) const override;

 private:
  std::map<std::string, Relation> tables_;  // lowercased names
};

// ---------------------------------------------------------------------------
// Value-level operator semantics (exposed for unit tests)
// ---------------------------------------------------------------------------

/// SQL three-valued binary operator. NULL operands propagate (except
/// for AND/OR which use Kleene logic). Integer division/modulo by zero
/// is an execution error.
Result<Value> EvalBinaryValues(BinaryOp op, const Value& lhs,
                               const Value& rhs);

/// SQL LIKE with '%' and '_' wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Best-effort static type inference of `expr` against `input`; used to
/// type executor output columns and validate descriptor output
/// structures. Returns error only for malformed expressions.
Result<DataType> InferType(const Expr& expr, const Schema& input);

// ---------------------------------------------------------------------------
// Adaptive join execution (paper §4: "an adaptive query execution plan")
// ---------------------------------------------------------------------------

/// Joins pick their algorithm at runtime from the actual input
/// cardinalities: equi-joins whose cross product exceeds the threshold
/// build a hash table on the smaller-cost side; everything else runs as
/// a nested loop. The threshold is settable for tests and ablations
/// (0 = always hash when possible; SIZE_MAX = never).
void SetHashJoinThreshold(size_t cross_product_threshold);
size_t GetHashJoinThreshold();

/// Process-wide strategy counters (reset with ResetJoinCounters); used
/// by tests and the ablate_join bench to observe adaptivity.
struct JoinCounters {
  int64_t hash_joins = 0;
  int64_t nested_loop_joins = 0;
};
JoinCounters GetJoinCounters();
void ResetJoinCounters();

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE instrumentation
// ---------------------------------------------------------------------------

/// Collects per-operator runtime statistics during one execution, keyed
/// by AST node so the optimizer's EXPLAIN renderer can annotate the
/// plan tree it walks. Operators that run repeatedly (correlated
/// subqueries, per-row condition checks) accumulate rows across
/// invocations. Not thread-safe: one collector observes one execution.
class AnalyzeCollector {
 public:
  /// Which logical operator of an AST node a sample belongs to (one
  /// node can host several, e.g. a SelectStmt has filter + aggregate +
  /// output).
  enum class Op { kScan, kJoin, kFilter, kAggregate, kOutput };

  struct OperatorStats {
    int64_t rows = 0;            ///< rows produced, summed over invocations
    int64_t elapsed_micros = 0;  ///< wall time, summed over invocations
    int64_t invocations = 0;
    std::string note;  ///< operator detail, e.g. join algorithm picked
  };

  void Add(const void* node, Op op, int64_t rows, int64_t elapsed_micros,
           const std::string& note = "");
  /// Stats for (node, op), or nullptr if that operator never ran.
  const OperatorStats* Find(const void* node, Op op) const;
  bool empty() const { return stats_.empty(); }

 private:
  std::map<std::pair<const void*, Op>, OperatorStats> stats_;
};

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Executes SELECT statements against a TableResolver, fully
/// materializing results. Supports joins (inner/left/cross), grouping
/// and aggregates (COUNT/SUM/AVG/MIN/MAX/STDDEV/VARIANCE, DISTINCT
/// variants), HAVING, DISTINCT, ORDER BY, LIMIT/OFFSET, set operations,
/// scalar/IN/EXISTS subqueries (correlated via outer-scope name
/// resolution), CASE, CAST, LIKE, and the scalar function library.
///
/// Grouped queries evaluate non-aggregate expressions against a
/// representative (first) row of each group, matching the permissive
/// MySQL behaviour GSN's original implementation ran on.
class Executor {
 public:
  explicit Executor(const TableResolver* resolver) : resolver_(resolver) {}

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Runs the statement and returns the result relation.
  Result<Relation> Execute(const SelectStmt& stmt) const;

  /// Convenience: parse + execute.
  Result<Relation> Query(const std::string& sql) const;

  /// Routes per-operator row counts and timings of subsequent
  /// Execute() calls into `collector` (EXPLAIN ANALYZE). The collector
  /// is installed thread-locally for the duration of each Execute, so
  /// shared AST nodes (prepared-statement cache) stay safe to execute
  /// concurrently from other threads. Null detaches. The collector must
  /// outlive the Execute calls it observes.
  void set_analyze(AnalyzeCollector* collector) { analyze_ = collector; }

 private:
  friend class EvalContext;
  const TableResolver* resolver_;
  AnalyzeCollector* analyze_ = nullptr;
};

}  // namespace gsn::sql

#endif  // GSN_SQL_EXECUTOR_H_

#ifndef GSN_SQL_TOKEN_H_
#define GSN_SQL_TOKEN_H_

#include <string>

namespace gsn::sql {

/// Lexical token kinds. Keywords are recognized case-insensitively and
/// carry their uppercase text.
enum class TokenType {
  kEof,
  kIdentifier,       // temperature, src1, WRAPPER
  kQuotedIdentifier, // "order"
  kStringLiteral,    // 'bc143'
  kIntegerLiteral,   // 42
  kDoubleLiteral,    // 3.14
  kKeyword,          // SELECT, FROM, ...
  // Punctuation / operators.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNotEq,     // <> or !=
  kLess,      // <
  kLessEq,    // <=
  kGreater,   // >
  kGreaterEq, // >=
  kConcat,    // ||
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;       // normalized: keywords uppercased
  int64_t int_value = 0;  // valid for kIntegerLiteral
  double double_value = 0.0;  // valid for kDoubleLiteral
  size_t position = 0;    // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace gsn::sql

#endif  // GSN_SQL_TOKEN_H_

#ifndef GSN_SQL_SCAN_PREDICATE_H_
#define GSN_SQL_SCAN_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gsn/sql/ast.h"
#include "gsn/types/value.h"

namespace gsn::sql {

/// One pushable comparison against a base-table column: `column op
/// literal`. Extracted from top-level WHERE conjuncts so storage can
/// skip column chunks whose zone map (min/max) cannot satisfy the
/// bound. Pruning on a conjunct is NULL-safe: a chunk is skipped only
/// when no non-null value can satisfy the bound, and rows where the
/// conjunct evaluates to NULL are dropped by WHERE anyway.
struct ScanBound {
  enum class Op { kEq, kLess, kLessEq, kGreater, kGreaterEq };

  std::string column;  ///< lowercased, unqualified
  Op op = Op::kEq;
  Value value;  ///< non-null literal

  std::string ToString() const;
};

/// The conjunction of pushable bounds for one base-table scan. Empty
/// means "scan everything". Bounds are conservative: storage may
/// ignore any of them; the executor re-applies the full WHERE.
struct ScanPredicate {
  std::vector<ScanBound> bounds;

  bool empty() const { return bounds.empty(); }
  std::string ToString() const;
};

/// Counters a storage tier fills in while serving one pruned scan;
/// surfaced through EXPLAIN ANALYZE and the gsn_segment_* metrics.
struct ScanStats {
  int64_t segments_total = 0;    ///< live segments for the table
  int64_t segments_scanned = 0;  ///< segments actually opened
  int64_t chunks_total = 0;      ///< column chunks in consulted segments
  int64_t chunks_pruned = 0;     ///< chunks skipped via zone maps
  int64_t segment_rows = 0;      ///< rows decoded out of segments
  int64_t pending_rows = 0;      ///< evicted-but-unflushed rows served
  int64_t memory_rows = 0;       ///< live window rows served

  bool FromSegments() const { return segments_total > 0; }
};

/// Extracts the pushable bounds of `where` for the base table bound to
/// `alias` (the effective FROM alias, lowercased by the caller's
/// convention). Only top-level AND conjuncts of the forms
/// `col <cmp> literal`, `literal <cmp> col`, and non-negated
/// `col BETWEEN lo AND hi` qualify. Unqualified column references are
/// used only when `sole_table` is true (single-table FROM, where every
/// unqualified name must bind to this table); qualified references
/// must match `alias` case-insensitively. Returns an empty predicate
/// when nothing is pushable (including `where == nullptr`).
ScanPredicate ExtractScanPredicate(const Expr* where, const std::string& alias,
                                   bool sole_table);

/// True when a chunk with non-null values in [min_value, max_value]
/// may contain a row satisfying `bound`, under the executor's SQL
/// comparison semantics (numeric/timestamp compare as numbers, strings
/// within kind). Conservatively true whenever the comparison is not
/// decidable (cross-kind, invalid zone, errors).
bool RangeMayMatch(const Value& min_value, const Value& max_value,
                   const ScanBound& bound);

}  // namespace gsn::sql

#endif  // GSN_SQL_SCAN_PREDICATE_H_

#ifndef GSN_SQL_LEXER_H_
#define GSN_SQL_LEXER_H_

#include <string_view>
#include <vector>

#include "gsn/sql/token.h"
#include "gsn/util/result.h"

namespace gsn::sql {

/// Tokenizes a SQL string. Supports line comments (`-- ...`), block
/// comments (`/* ... */`), single-quoted string literals with ''
/// escaping, double-quoted identifiers, and the operator set in
/// TokenType. Returns the token stream terminated by kEof.
Result<std::vector<Token>> Lex(std::string_view input);

/// True if `word` (already uppercased) is a reserved SQL keyword.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace gsn::sql

#endif  // GSN_SQL_LEXER_H_

#include "gsn/sql/parser.h"

#include "gsn/sql/lexer.h"
#include "gsn/util/strings.h"

namespace gsn::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectStmt());
    if (!At(TokenType::kEof)) {
      return Error("unexpected trailing tokens starting with '" +
                   Current().text + "'");
    }
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseLoneExpression() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
    if (!At(TokenType::kEof)) {
      return Error("unexpected trailing tokens starting with '" +
                   Current().text + "'");
    }
    return e;
  }

 private:
  // ------------------------------------------------------------- plumbing

  const Token& Current() const { return tokens_[pos_]; }
  const Token& Next() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  bool At(TokenType type) const { return Current().type == type; }
  bool AtKeyword(const char* kw) const { return Current().IsKeyword(kw); }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool ConsumeIf(TokenType type) {
    if (At(type)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeKeywordIf(const char* kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("SQL parse error near offset " +
                              std::to_string(Current().position) + ": " + msg);
  }
  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeywordIf(kw)) {
      return Error(std::string("expected ") + kw + ", got '" +
                   Current().text + "'");
    }
    return Status::OK();
  }
  Status Expect(TokenType type, const char* what) {
    if (!ConsumeIf(type)) {
      return Error(std::string("expected ") + what + ", got '" +
                   Current().text + "'");
    }
    return Status::OK();
  }

  /// Identifier or quoted identifier.
  Result<std::string> ParseIdentifier(const char* what) {
    if (At(TokenType::kIdentifier) || At(TokenType::kQuotedIdentifier)) {
      std::string name = Current().text;
      Advance();
      return name;
    }
    return Error(std::string("expected ") + what + ", got '" +
                 Current().text + "'");
  }

  // ------------------------------------------------------------ statements

  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectCore());

    // Set operations chain right-associatively; ORDER BY / LIMIT after
    // a set chain apply to the combined result (held on the head stmt).
    if (AtKeyword("UNION") || AtKeyword("INTERSECT") || AtKeyword("EXCEPT")) {
      if (ConsumeKeywordIf("UNION")) {
        stmt->set_op = ConsumeKeywordIf("ALL") ? SetOp::kUnionAll : SetOp::kUnion;
      } else if (ConsumeKeywordIf("INTERSECT")) {
        stmt->set_op = SetOp::kIntersect;
      } else {
        GSN_RETURN_IF_ERROR(ExpectKeyword("EXCEPT"));
        stmt->set_op = SetOp::kExcept;
      }
      GSN_ASSIGN_OR_RETURN(stmt->set_rhs, ParseSelectStmt());
      // The rhs may have captured ORDER BY/LIMIT meant for the chain;
      // that matches common right-recursive parser behaviour and is
      // documented. Continue to also allow them here if rhs didn't.
    }

    GSN_RETURN_IF_ERROR(ParseOrderLimit(stmt.get()));
    return stmt;
  }

  Status ParseOrderLimit(SelectStmt* stmt) {
    if (ConsumeKeywordIf("ORDER")) {
      GSN_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderByItem item;
        GSN_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeywordIf("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeywordIf("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (ConsumeIf(TokenType::kComma));
    }
    if (ConsumeKeywordIf("LIMIT")) {
      if (!At(TokenType::kIntegerLiteral)) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Current().int_value;
      Advance();
      if (ConsumeKeywordIf("OFFSET")) {
        if (!At(TokenType::kIntegerLiteral)) {
          return Error("expected integer after OFFSET");
        }
        stmt->offset = Current().int_value;
        Advance();
      }
    }
    return Status::OK();
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectCore() {
    GSN_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    if (ConsumeKeywordIf("DISTINCT")) {
      stmt->distinct = true;
    } else {
      ConsumeKeywordIf("ALL");
    }

    // Select list.
    do {
      SelectItem item;
      if (At(TokenType::kStar)) {
        Advance();
        item.is_star = true;
      } else if ((At(TokenType::kIdentifier) ||
                  At(TokenType::kQuotedIdentifier)) &&
                 Next().type == TokenType::kDot &&
                 tokens_[std::min(pos_ + 2, tokens_.size() - 1)].type ==
                     TokenType::kStar) {
        item.is_star = true;
        item.star_qualifier = Current().text;
        Advance();  // ident
        Advance();  // dot
        Advance();  // star
      } else {
        GSN_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        GSN_ASSIGN_OR_RETURN(item.alias, ParseOptionalAlias());
      }
      stmt->items.push_back(std::move(item));
    } while (ConsumeIf(TokenType::kComma));

    // FROM.
    if (ConsumeKeywordIf("FROM")) {
      do {
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
      } while (ConsumeIf(TokenType::kComma));
    }

    // WHERE / GROUP BY / HAVING.
    if (ConsumeKeywordIf("WHERE")) {
      GSN_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (ConsumeKeywordIf("GROUP")) {
      GSN_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (ConsumeIf(TokenType::kComma));
    }
    if (ConsumeKeywordIf("HAVING")) {
      GSN_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  /// Alias: [AS] identifier. A bare identifier is taken as an alias
  /// only if it is not a keyword.
  Result<std::string> ParseOptionalAlias() {
    if (ConsumeKeywordIf("AS")) {
      return ParseIdentifier("alias after AS");
    }
    if (At(TokenType::kIdentifier) || At(TokenType::kQuotedIdentifier)) {
      std::string alias = Current().text;
      Advance();
      return alias;
    }
    return std::string();
  }

  // ------------------------------------------------------------ FROM items

  Result<std::unique_ptr<TableRef>> ParseTableRef() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> left, ParseTablePrimary());
    for (;;) {
      TableRef::JoinType jt;
      bool has_condition = true;
      if (ConsumeKeywordIf("CROSS")) {
        GSN_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kCross;
        has_condition = false;
      } else if (ConsumeKeywordIf("INNER")) {
        GSN_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kInner;
      } else if (ConsumeKeywordIf("LEFT")) {
        ConsumeKeywordIf("OUTER");
        GSN_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = TableRef::JoinType::kLeft;
      } else if (ConsumeKeywordIf("JOIN")) {
        jt = TableRef::JoinType::kInner;
      } else {
        return left;
      }
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<TableRef> right,
                           ParseTablePrimary());
      auto join = std::make_unique<TableRef>();
      join->kind = TableRef::Kind::kJoin;
      join->join_type = jt;
      join->left = std::move(left);
      join->right = std::move(right);
      if (has_condition) {
        GSN_RETURN_IF_ERROR(ExpectKeyword("ON"));
        GSN_ASSIGN_OR_RETURN(join->join_condition, ParseExpr());
      }
      left = std::move(join);
    }
  }

  Result<std::unique_ptr<TableRef>> ParseTablePrimary() {
    auto ref = std::make_unique<TableRef>();
    if (ConsumeIf(TokenType::kLParen)) {
      ref->kind = TableRef::Kind::kSubquery;
      GSN_ASSIGN_OR_RETURN(ref->subquery, ParseSelectStmt());
      GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      GSN_ASSIGN_OR_RETURN(ref->alias, ParseOptionalAlias());
      if (ref->alias.empty()) {
        return Error("derived table requires an alias");
      }
      return ref;
    }
    ref->kind = TableRef::Kind::kTable;
    GSN_ASSIGN_OR_RETURN(ref->table_name, ParseIdentifier("table name"));
    GSN_ASSIGN_OR_RETURN(ref->alias, ParseOptionalAlias());
    return ref;
  }

  // ----------------------------------------------------------- expressions

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (ConsumeKeywordIf("OR")) {
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
    while (ConsumeKeywordIf("AND")) {
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (ConsumeKeywordIf("NOT")) {
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  Result<std::unique_ptr<Expr>> ParsePredicate() {
    if (AtKeyword("EXISTS") ||
        (AtKeyword("NOT") && Next().IsKeyword("EXISTS"))) {
      const bool negated = ConsumeKeywordIf("NOT");
      GSN_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      GSN_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kExists;
      e->negated = negated;
      GSN_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }

    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());

    // Comparison operators.
    struct CmpMap {
      TokenType token;
      BinaryOp op;
    };
    static constexpr CmpMap kCmps[] = {
        {TokenType::kEq, BinaryOp::kEq},
        {TokenType::kNotEq, BinaryOp::kNotEq},
        {TokenType::kLess, BinaryOp::kLess},
        {TokenType::kLessEq, BinaryOp::kLessEq},
        {TokenType::kGreater, BinaryOp::kGreater},
        {TokenType::kGreaterEq, BinaryOp::kGreaterEq},
    };
    for (const CmpMap& m : kCmps) {
      if (At(m.token)) {
        Advance();
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
        return MakeBinary(m.op, std::move(lhs), std::move(rhs));
      }
    }

    // IS [NOT] NULL.
    if (ConsumeKeywordIf("IS")) {
      const bool negated = ConsumeKeywordIf("NOT");
      GSN_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      return e;
    }

    // [NOT] BETWEEN / IN / LIKE.
    bool negated = false;
    if (AtKeyword("NOT") && (Next().IsKeyword("BETWEEN") ||
                             Next().IsKeyword("IN") || Next().IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeywordIf("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lo, ParseAdditive());
      GSN_RETURN_IF_ERROR(ExpectKeyword("AND"));
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> hi, ParseAdditive());
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      return e;
    }
    if (ConsumeKeywordIf("IN")) {
      GSN_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after IN"));
      auto e = std::make_unique<Expr>();
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      if (AtKeyword("SELECT")) {
        e->kind = ExprKind::kInSubquery;
        GSN_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
      } else {
        e->kind = ExprKind::kInList;
        do {
          GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> item, ParseExpr());
          e->children.push_back(std::move(item));
        } while (ConsumeIf(TokenType::kComma));
      }
      GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    if (ConsumeKeywordIf("LIKE")) {
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> pattern, ParseAdditive());
      return MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike,
                        std::move(lhs), std::move(pattern));
    }
    if (negated) return Error("expected BETWEEN, IN, or LIKE after NOT");
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (At(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (At(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else if (At(TokenType::kConcat)) {
        op = BinaryOp::kConcat;
      } else {
        return lhs;
      }
      Advance();
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (At(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (At(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (At(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (ConsumeIf(TokenType::kMinus)) {
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseUnary());
      return MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    if (ConsumeIf(TokenType::kPlus)) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    // Literals.
    if (At(TokenType::kIntegerLiteral)) {
      auto e = MakeLiteral(Value::Int(Current().int_value));
      Advance();
      return e;
    }
    if (At(TokenType::kDoubleLiteral)) {
      auto e = MakeLiteral(Value::Double(Current().double_value));
      Advance();
      return e;
    }
    if (At(TokenType::kStringLiteral)) {
      auto e = MakeLiteral(Value::String(Current().text));
      Advance();
      return e;
    }
    if (ConsumeKeywordIf("NULL")) return MakeLiteral(Value::Null());
    if (ConsumeKeywordIf("TRUE")) return MakeLiteral(Value::Bool(true));
    if (ConsumeKeywordIf("FALSE")) return MakeLiteral(Value::Bool(false));

    // CAST(expr AS type).
    if (ConsumeKeywordIf("CAST")) {
      GSN_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after CAST"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseExpr());
      e->children.push_back(std::move(operand));
      GSN_RETURN_IF_ERROR(ExpectKeyword("AS"));
      GSN_ASSIGN_OR_RETURN(std::string type_name,
                           ParseIdentifier("type name"));
      GSN_ASSIGN_OR_RETURN(e->cast_type, ParseDataType(type_name));
      GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }

    // CASE.
    if (ConsumeKeywordIf("CASE")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCase;
      if (!AtKeyword("WHEN")) {
        e->case_has_operand = true;
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseExpr());
        e->children.push_back(std::move(operand));
      }
      while (ConsumeKeywordIf("WHEN")) {
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> when, ParseExpr());
        GSN_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> then, ParseExpr());
        e->children.push_back(std::move(when));
        e->children.push_back(std::move(then));
        ++e->case_num_whens;
      }
      if (e->case_num_whens == 0) return Error("CASE requires WHEN");
      if (ConsumeKeywordIf("ELSE")) {
        e->case_has_else = true;
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> els, ParseExpr());
        e->children.push_back(std::move(els));
      }
      GSN_RETURN_IF_ERROR(ExpectKeyword("END"));
      return e;
    }

    // Parenthesized expression or scalar subquery.
    if (ConsumeIf(TokenType::kLParen)) {
      if (AtKeyword("SELECT")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kScalarSubquery;
        GSN_ASSIGN_OR_RETURN(e->subquery, ParseSelectStmt());
        GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return e;
    }

    // Identifier: column ref or function call.
    if (At(TokenType::kIdentifier) || At(TokenType::kQuotedIdentifier)) {
      std::string name = Current().text;
      Advance();
      if (ConsumeIf(TokenType::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFunctionCall;
        e->function = StrToUpper(name);
        if (ConsumeKeywordIf("DISTINCT")) e->distinct = true;
        if (At(TokenType::kStar)) {
          Advance();
          auto star = std::make_unique<Expr>();
          star->kind = ExprKind::kStar;
          e->children.push_back(std::move(star));
        } else if (!At(TokenType::kRParen)) {
          do {
            GSN_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseExpr());
            e->children.push_back(std::move(arg));
          } while (ConsumeIf(TokenType::kComma));
        }
        GSN_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      if (ConsumeIf(TokenType::kDot)) {
        GSN_ASSIGN_OR_RETURN(std::string column,
                             ParseIdentifier("column name after '.'"));
        return MakeColumnRef(std::move(name), std::move(column));
      }
      return MakeColumnRef("", std::move(name));
    }

    return Error("expected expression, got '" + Current().text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql) {
  GSN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::unique_ptr<Expr>> ParseExpression(std::string_view sql) {
  GSN_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseLoneExpression();
}

}  // namespace gsn::sql

#ifndef GSN_SQL_OPTIMIZER_H_
#define GSN_SQL_OPTIMIZER_H_

#include <memory>
#include <string>

#include "gsn/sql/ast.h"
#include "gsn/util/result.h"

namespace gsn::sql {

/// Rule-based rewrite pass run between parse and execute (the "query
/// planning" stage of the paper's query processor). Current rules:
///
///   * constant folding — literal-only subtrees collapse to literals
///     (`1 + 2*3` → `7`, `'a' || 'b'` → `'ab'`, `NOT TRUE` → `FALSE`);
///   * boolean short-circuits — `x AND FALSE` → `FALSE`,
///     `x AND TRUE` → `x`, `x OR TRUE` → `TRUE`, `x OR FALSE` → `x`
///     (only when `x` cannot error: column refs and literals);
///   * trivial-predicate elimination — a WHERE/HAVING that folds to
///     TRUE is dropped; one that folds to FALSE/NULL is preserved (the
///     executor then filters everything, keeping semantics).
///
/// Folding never performs an operation that could fail at runtime:
/// division by zero and type errors are left in place so the executor
/// reports them exactly as the unoptimized query would.
Status Optimize(SelectStmt* stmt);

/// Folds constants within one expression tree (exposed for tests).
/// Returns true if the tree changed.
Result<bool> FoldConstants(Expr* expr);

/// Renders the execution pipeline for a statement — GSN's EXPLAIN.
/// The output shows the FROM tree (scans, joins, derived tables), the
/// filter, aggregation, set operations, ordering, and limits, one
/// node per line with two-space indentation.
std::string ExplainString(const SelectStmt& stmt);

class AnalyzeCollector;

/// EXPLAIN ANALYZE rendering: the same plan tree annotated with the
/// per-operator row counts, timings, and algorithm choices `analyze`
/// observed while the executor ran the statement (e.g.
/// `Scan readings AS r (rows=120 time=14us)`, and joins print the
/// algorithm the adaptive planner actually picked). Operators with no
/// recorded stats render `(never executed)`.
std::string ExplainAnalyzeString(const SelectStmt& stmt,
                                 const AnalyzeCollector& analyze);

}  // namespace gsn::sql

#endif  // GSN_SQL_OPTIMIZER_H_

#include "gsn/sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "gsn/util/strings.h"

namespace gsn::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "FROM",   "WHERE",    "GROUP",     "BY",       "HAVING",
      "ORDER",  "ASC",    "DESC",     "LIMIT",     "OFFSET",   "AS",
      "AND",    "OR",     "NOT",      "NULL",      "TRUE",     "FALSE",
      "IN",     "IS",     "LIKE",     "BETWEEN",   "EXISTS",   "DISTINCT",
      "ALL",    "UNION",  "INTERSECT","EXCEPT",    "JOIN",     "INNER",
      "LEFT",   "RIGHT",  "FULL",     "OUTER",     "CROSS",    "ON",
      "CASE",   "WHEN",   "THEN",     "ELSE",      "END",      "CAST",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  return Keywords().count(std::string(upper_word)) > 0;
}

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  auto error = [&](const std::string& msg) {
    return Status::ParseError("SQL lex error at offset " + std::to_string(i) +
                              ": " + msg);
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input[i + 1] == '*') {
      const size_t end = input.find("*/", i + 2);
      if (end == std::string_view::npos) return error("unterminated comment");
      i = end + 2;
      continue;
    }

    Token tok;
    tok.position = i;

    // Identifiers and keywords.
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      const std::string word(input.substr(start, i - start));
      const std::string upper = StrToUpper(word);
      if (Keywords().count(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = upper;
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = word;
      }
      tokens.push_back(std::move(tok));
      continue;
    }

    // Numbers: integer or double (with '.', exponent).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      const size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (input[j] == '+' || input[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          is_double = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i])))
            ++i;
        }
      }
      const std::string num(input.substr(start, i - start));
      if (is_double) {
        GSN_ASSIGN_OR_RETURN(tok.double_value, ParseDouble(num));
        tok.type = TokenType::kDoubleLiteral;
      } else {
        GSN_ASSIGN_OR_RETURN(tok.int_value, ParseInt64(num));
        tok.type = TokenType::kIntegerLiteral;
      }
      tok.text = num;
      tokens.push_back(std::move(tok));
      continue;
    }

    // String literal with '' escaping.
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) return error("unterminated string literal");
      tok.type = TokenType::kStringLiteral;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Quoted identifier.
    if (c == '"') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (input[i] == '"') {
          if (i + 1 < n && input[i + 1] == '"') {
            value.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i]);
        ++i;
      }
      if (!closed) return error("unterminated quoted identifier");
      tok.type = TokenType::kQuotedIdentifier;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }

    // Operators and punctuation.
    auto push1 = [&](TokenType type) {
      tok.type = type;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(tok);
    };
    switch (c) {
      case ',':
        push1(TokenType::kComma);
        break;
      case '.':
        push1(TokenType::kDot);
        break;
      case '(':
        push1(TokenType::kLParen);
        break;
      case ')':
        push1(TokenType::kRParen);
        break;
      case '*':
        push1(TokenType::kStar);
        break;
      case '+':
        push1(TokenType::kPlus);
        break;
      case '-':
        push1(TokenType::kMinus);
        break;
      case '/':
        push1(TokenType::kSlash);
        break;
      case '%':
        push1(TokenType::kPercent);
        break;
      case '=':
        push1(TokenType::kEq);
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kNotEq;
          tok.text = "!=";
          i += 2;
          tokens.push_back(tok);
        } else {
          return error("unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '>') {
          tok.type = TokenType::kNotEq;
          tok.text = "<>";
          i += 2;
          tokens.push_back(tok);
        } else if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kLessEq;
          tok.text = "<=";
          i += 2;
          tokens.push_back(tok);
        } else {
          push1(TokenType::kLess);
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          tok.type = TokenType::kGreaterEq;
          tok.text = ">=";
          i += 2;
          tokens.push_back(tok);
        } else {
          push1(TokenType::kGreater);
        }
        break;
      case '|':
        if (i + 1 < n && input[i + 1] == '|') {
          tok.type = TokenType::kConcat;
          tok.text = "||";
          i += 2;
          tokens.push_back(tok);
        } else {
          return error("unexpected '|'");
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  Token eof;
  eof.type = TokenType::kEof;
  eof.position = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace gsn::sql

#ifndef GSN_SQL_PARSER_H_
#define GSN_SQL_PARSER_H_

#include <memory>
#include <string_view>

#include "gsn/sql/ast.h"
#include "gsn/util/result.h"

namespace gsn::sql {

/// Parses a single SELECT statement (the only statement kind GSN's
/// stream processing uses; inserts happen through the storage API).
/// Supported surface, per paper §3: joins, subqueries (scalar, IN,
/// EXISTS, derived tables), ordering, grouping/HAVING, set operations
/// (UNION [ALL], INTERSECT, EXCEPT), DISTINCT, LIMIT/OFFSET, CASE,
/// CAST, LIKE, BETWEEN, and the usual operator set.
Result<std::unique_ptr<SelectStmt>> ParseSelect(std::string_view sql);

/// Parses an expression in isolation (used by tests and by descriptor
/// validation of filter predicates).
Result<std::unique_ptr<Expr>> ParseExpression(std::string_view sql);

}  // namespace gsn::sql

#endif  // GSN_SQL_PARSER_H_

#include "gsn/sql/scan_predicate.h"

#include <optional>
#include <utility>

#include "gsn/sql/executor.h"
#include "gsn/util/strings.h"

namespace gsn::sql {
namespace {

/// Decides `lhs op rhs` under executor comparison semantics; nullopt
/// when the comparison is not decidable (NULL, cross-kind error).
std::optional<bool> Truth(BinaryOp op, const Value& lhs, const Value& rhs) {
  Result<Value> v = EvalBinaryValues(op, lhs, rhs);
  if (!v.ok() || v->is_null()) return std::nullopt;
  Result<Value> b = v->CastTo(DataType::kBool);
  if (!b.ok()) return std::nullopt;
  return b->bool_value();
}

void SplitTopLevelConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    SplitTopLevelConjuncts(e->children[0].get(), out);
    SplitTopLevelConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// True when `e` is a column reference that binds to the scanned table.
bool BindsToScan(const Expr& e, const std::string& alias, bool sole_table) {
  if (e.kind != ExprKind::kColumnRef) return false;
  if (e.qualifier.empty()) return sole_table;
  return StrToLower(e.qualifier) == StrToLower(alias);
}

bool IsNonNullLiteral(const Expr& e) {
  return e.kind == ExprKind::kLiteral && !e.literal.is_null();
}

ScanBound::Op FlipOp(ScanBound::Op op) {
  switch (op) {
    case ScanBound::Op::kLess: return ScanBound::Op::kGreater;
    case ScanBound::Op::kLessEq: return ScanBound::Op::kGreaterEq;
    case ScanBound::Op::kGreater: return ScanBound::Op::kLess;
    case ScanBound::Op::kGreaterEq: return ScanBound::Op::kLessEq;
    case ScanBound::Op::kEq: return ScanBound::Op::kEq;
  }
  return op;
}

bool ComparisonOp(BinaryOp op, ScanBound::Op* out) {
  switch (op) {
    case BinaryOp::kEq: *out = ScanBound::Op::kEq; return true;
    case BinaryOp::kLess: *out = ScanBound::Op::kLess; return true;
    case BinaryOp::kLessEq: *out = ScanBound::Op::kLessEq; return true;
    case BinaryOp::kGreater: *out = ScanBound::Op::kGreater; return true;
    case BinaryOp::kGreaterEq: *out = ScanBound::Op::kGreaterEq; return true;
    default: return false;
  }
}

const char* OpName(ScanBound::Op op) {
  switch (op) {
    case ScanBound::Op::kEq: return "=";
    case ScanBound::Op::kLess: return "<";
    case ScanBound::Op::kLessEq: return "<=";
    case ScanBound::Op::kGreater: return ">";
    case ScanBound::Op::kGreaterEq: return ">=";
  }
  return "?";
}

}  // namespace

std::string ScanBound::ToString() const {
  return column + " " + OpName(op) + " " + value.ToString();
}

std::string ScanPredicate::ToString() const {
  std::string out;
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (i > 0) out += " AND ";
    out += bounds[i].ToString();
  }
  return out;
}

ScanPredicate ExtractScanPredicate(const Expr* where, const std::string& alias,
                                   bool sole_table) {
  ScanPredicate pred;
  std::vector<const Expr*> conjuncts;
  SplitTopLevelConjuncts(where, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind == ExprKind::kBinary) {
      ScanBound::Op op;
      if (!ComparisonOp(c->binary_op, &op)) continue;
      const Expr& lhs = *c->children[0];
      const Expr& rhs = *c->children[1];
      if (BindsToScan(lhs, alias, sole_table) && IsNonNullLiteral(rhs)) {
        pred.bounds.push_back(
            ScanBound{StrToLower(lhs.column), op, rhs.literal});
      } else if (BindsToScan(rhs, alias, sole_table) &&
                 IsNonNullLiteral(lhs)) {
        pred.bounds.push_back(
            ScanBound{StrToLower(rhs.column), FlipOp(op), lhs.literal});
      }
    } else if (c->kind == ExprKind::kBetween && !c->negated) {
      // children: [value, lo, hi]
      const Expr& v = *c->children[0];
      if (!BindsToScan(v, alias, sole_table)) continue;
      const std::string column = StrToLower(v.column);
      if (IsNonNullLiteral(*c->children[1])) {
        pred.bounds.push_back(ScanBound{column, ScanBound::Op::kGreaterEq,
                                        c->children[1]->literal});
      }
      if (IsNonNullLiteral(*c->children[2])) {
        pred.bounds.push_back(ScanBound{column, ScanBound::Op::kLessEq,
                                        c->children[2]->literal});
      }
    }
  }
  return pred;
}

bool RangeMayMatch(const Value& min_value, const Value& max_value,
                   const ScanBound& bound) {
  if (min_value.is_null() || max_value.is_null()) return true;
  std::optional<bool> t;
  switch (bound.op) {
    case ScanBound::Op::kEq:
      // value inside [min, max]?
      t = Truth(BinaryOp::kLess, bound.value, min_value);
      if (t.has_value() && *t) return false;
      t = Truth(BinaryOp::kGreater, bound.value, max_value);
      if (t.has_value() && *t) return false;
      return true;
    case ScanBound::Op::kLess:
      t = Truth(BinaryOp::kLess, min_value, bound.value);
      break;
    case ScanBound::Op::kLessEq:
      t = Truth(BinaryOp::kLessEq, min_value, bound.value);
      break;
    case ScanBound::Op::kGreater:
      t = Truth(BinaryOp::kGreater, max_value, bound.value);
      break;
    case ScanBound::Op::kGreaterEq:
      t = Truth(BinaryOp::kGreaterEq, max_value, bound.value);
      break;
  }
  // Undecidable comparisons keep the chunk (conservative).
  return !t.has_value() || *t;
}

}  // namespace gsn::sql

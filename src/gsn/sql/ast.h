#ifndef GSN_SQL_AST_H_
#define GSN_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gsn/types/value.h"

namespace gsn::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct SelectStmt;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,
  kIsNull,     // expr IS [NOT] NULL
  kBetween,    // expr [NOT] BETWEEN lo AND hi
  kInList,     // expr [NOT] IN (e1, e2, ...)
  kInSubquery, // expr [NOT] IN (SELECT ...)
  kExists,     // [NOT] EXISTS (SELECT ...)
  kScalarSubquery,
  kCase,       // CASE [operand] WHEN .. THEN .. [ELSE ..] END
  kCast,       // CAST(expr AS type)
  kStar,       // only valid inside COUNT(*)
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kConcat,
  kEq,
  kNotEq,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kAnd,
  kOr,
  kLike,
  kNotLike,
};

/// One node of an expression tree. A single struct with a kind tag (the
/// classic interpreter layout) keeps the evaluator a single switch.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  // optional: "src1" in src1.temperature
  std::string column;

  // kUnary
  UnaryOp unary_op = UnaryOp::kNot;

  // kBinary
  BinaryOp binary_op = BinaryOp::kEq;

  // kFunctionCall
  std::string function;   // uppercased: AVG, COUNT, ABS, ...
  bool distinct = false;  // COUNT(DISTINCT x)

  // kIsNull / kBetween / kInList / kInSubquery / kExists
  bool negated = false;

  // kCast
  DataType cast_type = DataType::kInt;

  // kCase
  // children layout: [operand?] then (when, then) pairs, else? — tracked
  // by the flags below.
  bool case_has_operand = false;
  bool case_has_else = false;
  size_t case_num_whens = 0;

  // Subtree: operands / arguments / subquery.
  std::vector<std::unique_ptr<Expr>> children;
  std::unique_ptr<SelectStmt> subquery;

  /// Reconstructs an approximate SQL rendering (diagnostics, plan dumps).
  std::string ToString() const;
};

std::unique_ptr<Expr> MakeLiteral(Value v);
std::unique_ptr<Expr> MakeColumnRef(std::string qualifier, std::string column);
std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs);
std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand);

/// True for AVG/COUNT/SUM/MIN/MAX/STDDEV (uppercased name).
bool IsAggregateFunction(std::string_view upper_name);
/// True if any node in the tree is an aggregate call.
bool ContainsAggregate(const Expr& e);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

/// An item in the SELECT list: expression with optional alias, or a
/// star (optionally qualified: `src1.*`).
struct SelectItem {
  bool is_star = false;
  std::string star_qualifier;  // for src1.*
  std::unique_ptr<Expr> expr;  // null iff is_star
  std::string alias;           // empty if none
};

/// A FROM-clause item: base table, derived table, or join.
struct TableRef {
  enum class Kind { kTable, kSubquery, kJoin };
  enum class JoinType { kInner, kLeft, kCross };

  Kind kind = Kind::kTable;

  // kTable
  std::string table_name;

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  // common: alias (required for subqueries, optional for tables)
  std::string alias;

  // kJoin
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  std::unique_ptr<Expr> join_condition;  // null for CROSS JOIN

  std::string ToString() const;
};

struct OrderByItem {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

enum class SetOp { kNone, kUnion, kUnionAll, kIntersect, kExcept };

/// A full SELECT statement, possibly chained with set operations
/// (`lhs UNION rhs` is represented as lhs.set_op/set_rhs).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<std::unique_ptr<TableRef>> from;  // comma-list; may be empty
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  SetOp set_op = SetOp::kNone;
  std::unique_ptr<SelectStmt> set_rhs;

  std::string ToString() const;
};

}  // namespace gsn::sql

#endif  // GSN_SQL_AST_H_

#include "gsn/sql/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>

#include "gsn/sql/parser.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/strings.h"

namespace gsn::sql {

// ---------------------------------------------------------------------------
// MapResolver
// ---------------------------------------------------------------------------

void MapResolver::Put(const std::string& name, Relation relation) {
  tables_[StrToLower(name)] = std::move(relation);
}

Result<Relation> MapResolver::GetTable(const std::string& name) const {
  auto it = tables_.find(StrToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Column resolution
// ---------------------------------------------------------------------------

namespace {

/// Thread-local EXPLAIN ANALYZE sink, installed by Executor::Execute
/// for its dynamic extent. The recursive execution functions report
/// into it without threading a parameter through every signature, and
/// concurrent executions of shared AST nodes (prepared-statement cache)
/// each see only their own thread's collector. Null — the common case —
/// costs one thread-local load per operator.
thread_local AnalyzeCollector* t_analyze = nullptr;

/// Wall micros for analyze timings; only called when a collector is
/// installed.
int64_t AnalyzeNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Splits a (possibly qualified) field name into qualifier and base.
void SplitFieldName(std::string_view field, std::string_view* qualifier,
                    std::string_view* base) {
  const size_t dot = field.rfind('.');
  if (dot == std::string_view::npos) {
    *qualifier = std::string_view();
    *base = field;
  } else {
    *qualifier = field.substr(0, dot);
    *base = field.substr(dot + 1);
  }
}

/// Finds the index of column `qualifier.column` in `schema`.
/// Returns NotFound if absent, InvalidArgument if ambiguous.
Result<size_t> ResolveColumn(const Schema& schema, std::string_view qualifier,
                             std::string_view column) {
  size_t found = schema.size();
  int matches = 0;
  for (size_t i = 0; i < schema.size(); ++i) {
    std::string_view fq, base;
    SplitFieldName(schema.field(i).name, &fq, &base);
    bool match;
    if (qualifier.empty()) {
      match = StrEqualsIgnoreCase(base, column) ||
              StrEqualsIgnoreCase(schema.field(i).name, column);
    } else {
      match = StrEqualsIgnoreCase(fq, qualifier) &&
              StrEqualsIgnoreCase(base, column);
    }
    if (match) {
      // The same physical column can match twice via base/full name.
      if (found == i) continue;
      found = i;
      ++matches;
    }
  }
  if (matches == 0) {
    const std::string full = qualifier.empty()
                                 ? std::string(column)
                                 : std::string(qualifier) + "." +
                                       std::string(column);
    return Status::NotFound("column not found: " + full);
  }
  if (matches > 1) {
    return Status::InvalidArgument("ambiguous column: " + std::string(column));
  }
  return found;
}

/// A row being evaluated, with an optional outer scope chain (for
/// correlated subqueries) and an aggregate environment (for grouped
/// evaluation).
struct RowBinding {
  const Schema* schema = nullptr;
  const Relation::Row* row = nullptr;
  const RowBinding* outer = nullptr;
  const std::map<const Expr*, Value>* agg_env = nullptr;
};

}  // namespace

// ---------------------------------------------------------------------------
// Value-level operator semantics
// ---------------------------------------------------------------------------

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' ||
         std::tolower(static_cast<unsigned char>(pattern[p])) ==
             std::tolower(static_cast<unsigned char>(text[t])))) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> CompareValues(BinaryOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // Numeric (incl. bool) and timestamp values compare numerically;
  // strings and binaries compare within their kind.
  int cmp;
  const bool lhs_num = lhs.is_numeric() || lhs.is_timestamp();
  const bool rhs_num = rhs.is_numeric() || rhs.is_timestamp();
  if (lhs_num && rhs_num) {
    GSN_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
    GSN_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (lhs.is_string() && rhs.is_string()) {
    cmp = lhs.string_value().compare(rhs.string_value());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else if (lhs.is_binary() && rhs.is_binary()) {
    cmp = lhs.Compare(rhs);
  } else {
    return Status::ExecutionError("cannot compare " + lhs.ToString() +
                                  " with " + rhs.ToString());
  }
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(cmp == 0);
    case BinaryOp::kNotEq:
      return Value::Bool(cmp != 0);
    case BinaryOp::kLess:
      return Value::Bool(cmp < 0);
    case BinaryOp::kLessEq:
      return Value::Bool(cmp <= 0);
    case BinaryOp::kGreater:
      return Value::Bool(cmp > 0);
    case BinaryOp::kGreaterEq:
      return Value::Bool(cmp >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Value> ArithmeticValues(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  // Timestamp +/- integer stays a timestamp (paper §3: time attributes
  // "can be manipulated through SQL queries").
  const bool ts_result = (lhs.is_timestamp() || rhs.is_timestamp()) &&
                         (op == BinaryOp::kAdd || op == BinaryOp::kSub);
  const bool both_integral =
      (lhs.is_int() || lhs.is_bool() || lhs.is_timestamp()) &&
      (rhs.is_int() || rhs.is_bool() || rhs.is_timestamp());
  if (both_integral) {
    GSN_ASSIGN_OR_RETURN(int64_t a, lhs.AsInt());
    GSN_ASSIGN_OR_RETURN(int64_t b, rhs.AsInt());
    int64_t r = 0;
    switch (op) {
      case BinaryOp::kAdd:
        r = a + b;
        break;
      case BinaryOp::kSub:
        r = a - b;
        break;
      case BinaryOp::kMul:
        r = a * b;
        break;
      case BinaryOp::kDiv:
        if (b == 0) return Status::ExecutionError("division by zero");
        r = a / b;
        break;
      case BinaryOp::kMod:
        if (b == 0) return Status::ExecutionError("modulo by zero");
        r = a % b;
        break;
      default:
        return Status::Internal("not an arithmetic op");
    }
    return ts_result ? Value::TimestampVal(r) : Value::Int(r);
  }
  GSN_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
  GSN_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0) return Status::ExecutionError("division by zero");
      return Value::Double(a / b);
    case BinaryOp::kMod:
      if (b == 0) return Status::ExecutionError("modulo by zero");
      return Value::Double(std::fmod(a, b));
    default:
      return Status::Internal("not an arithmetic op");
  }
}

}  // namespace

Result<Value> EvalBinaryValues(BinaryOp op, const Value& lhs,
                               const Value& rhs) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return ArithmeticValues(op, lhs, rhs);
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLess:
    case BinaryOp::kLessEq:
    case BinaryOp::kGreater:
    case BinaryOp::kGreaterEq:
      return CompareValues(op, lhs, rhs);
    case BinaryOp::kConcat: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      return Value::String(lhs.ToString() + rhs.ToString());
    }
    case BinaryOp::kLike:
    case BinaryOp::kNotLike: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      if (!lhs.is_string() || !rhs.is_string()) {
        return Status::ExecutionError("LIKE requires string operands");
      }
      const bool m = LikeMatch(lhs.string_value(), rhs.string_value());
      return Value::Bool(op == BinaryOp::kLike ? m : !m);
    }
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      return Status::Internal("AND/OR handled by evaluator");
  }
  return Status::Internal("unhandled binary op");
}

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

namespace {

class Evaluator;

/// Internal executor entry point that threads the outer binding for
/// correlated subqueries.
Result<Relation> ExecuteStmt(const TableResolver* resolver,
                             const SelectStmt& stmt, const RowBinding* outer);

class Evaluator {
 public:
  explicit Evaluator(const TableResolver* resolver) : resolver_(resolver) {}

  Result<Value> Eval(const Expr& e, const RowBinding& binding) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef:
        return EvalColumnRef(e, binding);
      case ExprKind::kUnary:
        return EvalUnary(e, binding);
      case ExprKind::kBinary:
        return EvalBinary(e, binding);
      case ExprKind::kFunctionCall:
        return EvalFunction(e, binding);
      case ExprKind::kIsNull: {
        GSN_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], binding));
        return Value::Bool(v.is_null() != e.negated);
      }
      case ExprKind::kBetween:
        return EvalBetween(e, binding);
      case ExprKind::kInList:
        return EvalInList(e, binding);
      case ExprKind::kInSubquery:
        return EvalInSubquery(e, binding);
      case ExprKind::kExists: {
        GSN_ASSIGN_OR_RETURN(
            Relation rel, ExecuteStmt(resolver_, *e.subquery, &binding));
        return Value::Bool(!rel.empty() != e.negated ? true : false);
      }
      case ExprKind::kScalarSubquery: {
        GSN_ASSIGN_OR_RETURN(
            Relation rel, ExecuteStmt(resolver_, *e.subquery, &binding));
        if (rel.empty()) return Value::Null();
        if (rel.NumRows() > 1) {
          return Status::ExecutionError(
              "scalar subquery returned more than one row");
        }
        if (rel.schema().size() != 1) {
          return Status::ExecutionError(
              "scalar subquery must return one column");
        }
        return rel.rows()[0][0];
      }
      case ExprKind::kCase:
        return EvalCase(e, binding);
      case ExprKind::kCast: {
        GSN_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], binding));
        return v.CastTo(e.cast_type);
      }
      case ExprKind::kStar:
        return Status::ExecutionError("'*' is only valid inside COUNT(*)");
    }
    return Status::Internal("unhandled expression kind");
  }

 private:
  Result<Value> EvalColumnRef(const Expr& e, const RowBinding& binding) const {
    for (const RowBinding* b = &binding; b != nullptr; b = b->outer) {
      if (b->schema == nullptr) continue;
      Result<size_t> idx = ResolveColumn(*b->schema, e.qualifier, e.column);
      if (idx.ok()) return (*b->row)[*idx];
      if (idx.status().code() == StatusCode::kInvalidArgument) {
        return idx.status();  // ambiguous — report, don't mask
      }
    }
    const std::string full =
        e.qualifier.empty() ? e.column : e.qualifier + "." + e.column;
    return Status::NotFound("column not found: " + full);
  }

  Result<Value> EvalUnary(const Expr& e, const RowBinding& binding) const {
    GSN_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], binding));
    if (e.unary_op == UnaryOp::kNot) {
      if (v.is_null()) return Value::Null();
      GSN_ASSIGN_OR_RETURN(Value b, v.CastTo(DataType::kBool));
      return Value::Bool(!b.bool_value());
    }
    // Negation.
    if (v.is_null()) return Value::Null();
    if (v.is_int()) return Value::Int(-v.int_value());
    if (v.is_double()) return Value::Double(-v.double_value());
    return Status::ExecutionError("cannot negate " + v.ToString());
  }

  Result<Value> EvalBinary(const Expr& e, const RowBinding& binding) const {
    // Kleene logic with short-circuiting for AND/OR.
    if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
      GSN_ASSIGN_OR_RETURN(Value lv, Eval(*e.children[0], binding));
      Result<Value> lb =
          lv.is_null() ? Result<Value>(Value::Null()) : lv.CastTo(DataType::kBool);
      GSN_RETURN_IF_ERROR(lb.status());
      const bool l_known = !lb->is_null();
      if (e.binary_op == BinaryOp::kAnd) {
        if (l_known && !lb->bool_value()) return Value::Bool(false);
      } else {
        if (l_known && lb->bool_value()) return Value::Bool(true);
      }
      GSN_ASSIGN_OR_RETURN(Value rv, Eval(*e.children[1], binding));
      Result<Value> rb =
          rv.is_null() ? Result<Value>(Value::Null()) : rv.CastTo(DataType::kBool);
      GSN_RETURN_IF_ERROR(rb.status());
      const bool r_known = !rb->is_null();
      if (e.binary_op == BinaryOp::kAnd) {
        if (r_known && !rb->bool_value()) return Value::Bool(false);
        if (l_known && r_known) return Value::Bool(true);
      } else {
        if (r_known && rb->bool_value()) return Value::Bool(true);
        if (l_known && r_known) return Value::Bool(false);
      }
      return Value::Null();
    }
    GSN_ASSIGN_OR_RETURN(Value lhs, Eval(*e.children[0], binding));
    GSN_ASSIGN_OR_RETURN(Value rhs, Eval(*e.children[1], binding));
    return EvalBinaryValues(e.binary_op, lhs, rhs);
  }

  Result<Value> EvalBetween(const Expr& e, const RowBinding& binding) const {
    GSN_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], binding));
    GSN_ASSIGN_OR_RETURN(Value lo, Eval(*e.children[1], binding));
    GSN_ASSIGN_OR_RETURN(Value hi, Eval(*e.children[2], binding));
    GSN_ASSIGN_OR_RETURN(Value ge, CompareValues(BinaryOp::kGreaterEq, v, lo));
    GSN_ASSIGN_OR_RETURN(Value le, CompareValues(BinaryOp::kLessEq, v, hi));
    if (ge.is_null() || le.is_null()) return Value::Null();
    const bool in = ge.bool_value() && le.bool_value();
    return Value::Bool(in != e.negated);
  }

  Result<Value> EvalInList(const Expr& e, const RowBinding& binding) const {
    GSN_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], binding));
    if (v.is_null()) return Value::Null();
    bool saw_null = false;
    for (size_t i = 1; i < e.children.size(); ++i) {
      GSN_ASSIGN_OR_RETURN(Value item, Eval(*e.children[i], binding));
      GSN_ASSIGN_OR_RETURN(Value eq, CompareValues(BinaryOp::kEq, v, item));
      if (eq.is_null()) {
        saw_null = true;
      } else if (eq.bool_value()) {
        return Value::Bool(!e.negated);
      }
    }
    if (saw_null) return Value::Null();
    return Value::Bool(e.negated);
  }

  Result<Value> EvalInSubquery(const Expr& e,
                               const RowBinding& binding) const {
    GSN_ASSIGN_OR_RETURN(Value v, Eval(*e.children[0], binding));
    if (v.is_null()) return Value::Null();
    GSN_ASSIGN_OR_RETURN(Relation rel,
                         ExecuteStmt(resolver_, *e.subquery, &binding));
    if (rel.schema().size() != 1) {
      return Status::ExecutionError("IN subquery must return one column");
    }
    bool saw_null = false;
    for (const auto& row : rel.rows()) {
      GSN_ASSIGN_OR_RETURN(Value eq, CompareValues(BinaryOp::kEq, v, row[0]));
      if (eq.is_null()) {
        saw_null = true;
      } else if (eq.bool_value()) {
        return Value::Bool(!e.negated);
      }
    }
    if (saw_null) return Value::Null();
    return Value::Bool(e.negated);
  }

  Result<Value> EvalCase(const Expr& e, const RowBinding& binding) const {
    size_t idx = 0;
    Value operand;
    if (e.case_has_operand) {
      GSN_ASSIGN_OR_RETURN(operand, Eval(*e.children[idx++], binding));
    }
    for (size_t w = 0; w < e.case_num_whens; ++w) {
      GSN_ASSIGN_OR_RETURN(Value when, Eval(*e.children[idx], binding));
      bool hit = false;
      if (e.case_has_operand) {
        GSN_ASSIGN_OR_RETURN(Value eq,
                             CompareValues(BinaryOp::kEq, operand, when));
        hit = !eq.is_null() && eq.bool_value();
      } else if (!when.is_null()) {
        GSN_ASSIGN_OR_RETURN(Value b, when.CastTo(DataType::kBool));
        hit = b.bool_value();
      }
      if (hit) return Eval(*e.children[idx + 1], binding);
      idx += 2;
    }
    if (e.case_has_else) return Eval(*e.children[idx], binding);
    return Value::Null();
  }

  Result<Value> EvalFunction(const Expr& e, const RowBinding& binding) const {
    if (IsAggregateFunction(e.function)) {
      for (const RowBinding* b = &binding; b != nullptr; b = b->outer) {
        if (b->agg_env != nullptr) {
          auto it = b->agg_env->find(&e);
          if (it != b->agg_env->end()) return it->second;
        }
      }
      return Status::ExecutionError("aggregate " + e.function +
                                    " not allowed in this context");
    }
    std::vector<Value> args;
    args.reserve(e.children.size());
    for (const auto& child : e.children) {
      GSN_ASSIGN_OR_RETURN(Value v, Eval(*child, binding));
      args.push_back(std::move(v));
    }
    return EvalScalarFunction(e.function, args);
  }

  Result<Value> EvalScalarFunction(const std::string& name,
                                   const std::vector<Value>& args) const {
    auto require_args = [&](size_t lo, size_t hi) -> Status {
      if (args.size() < lo || args.size() > hi) {
        return Status::ExecutionError(name + ": wrong number of arguments");
      }
      return Status::OK();
    };
    // NULL-propagating numeric helpers.
    if (name == "ABS" || name == "SIGN" || name == "FLOOR" ||
        name == "CEIL" || name == "CEILING" || name == "SQRT") {
      GSN_RETURN_IF_ERROR(require_args(1, 1));
      if (args[0].is_null()) return Value::Null();
      if (name == "ABS") {
        if (args[0].is_int()) return Value::Int(std::abs(args[0].int_value()));
        GSN_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
        return Value::Double(std::fabs(d));
      }
      GSN_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
      if (name == "SIGN") return Value::Int(d > 0 ? 1 : (d < 0 ? -1 : 0));
      if (name == "FLOOR") return Value::Int(static_cast<int64_t>(std::floor(d)));
      if (name == "SQRT") {
        if (d < 0) return Status::ExecutionError("SQRT of negative value");
        return Value::Double(std::sqrt(d));
      }
      return Value::Int(static_cast<int64_t>(std::ceil(d)));
    }
    if (name == "ROUND") {
      GSN_RETURN_IF_ERROR(require_args(1, 2));
      if (args[0].is_null()) return Value::Null();
      GSN_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
      int64_t digits = 0;
      if (args.size() == 2) {
        if (args[1].is_null()) return Value::Null();
        GSN_ASSIGN_OR_RETURN(digits, args[1].AsInt());
      }
      const double scale = std::pow(10.0, static_cast<double>(digits));
      const double r = std::round(d * scale) / scale;
      if (args.size() == 1 && args[0].is_int()) return Value::Int(args[0].int_value());
      return args.size() == 1 ? Value::Int(static_cast<int64_t>(r))
                              : Value::Double(r);
    }
    if (name == "POWER" || name == "POW") {
      GSN_RETURN_IF_ERROR(require_args(2, 2));
      if (args[0].is_null() || args[1].is_null()) return Value::Null();
      GSN_ASSIGN_OR_RETURN(double a, args[0].AsDouble());
      GSN_ASSIGN_OR_RETURN(double b, args[1].AsDouble());
      return Value::Double(std::pow(a, b));
    }
    if (name == "MOD") {
      GSN_RETURN_IF_ERROR(require_args(2, 2));
      return ArithmeticValues(BinaryOp::kMod, args[0], args[1]);
    }
    if (name == "LENGTH" || name == "OCTET_LENGTH") {
      GSN_RETURN_IF_ERROR(require_args(1, 1));
      if (args[0].is_null()) return Value::Null();
      if (args[0].is_string()) {
        return Value::Int(static_cast<int64_t>(args[0].string_value().size()));
      }
      if (args[0].is_binary()) {
        return Value::Int(static_cast<int64_t>(args[0].binary_value()->size()));
      }
      return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
    }
    if (name == "UPPER" || name == "LOWER") {
      GSN_RETURN_IF_ERROR(require_args(1, 1));
      if (args[0].is_null()) return Value::Null();
      const std::string s =
          args[0].is_string() ? args[0].string_value() : args[0].ToString();
      return Value::String(name == "UPPER" ? StrToUpper(s) : StrToLower(s));
    }
    if (name == "TRIM") {
      GSN_RETURN_IF_ERROR(require_args(1, 1));
      if (args[0].is_null()) return Value::Null();
      return Value::String(StrTrim(args[0].ToString()));
    }
    if (name == "SUBSTR" || name == "SUBSTRING") {
      GSN_RETURN_IF_ERROR(require_args(2, 3));
      if (args[0].is_null() || args[1].is_null()) return Value::Null();
      const std::string s =
          args[0].is_string() ? args[0].string_value() : args[0].ToString();
      GSN_ASSIGN_OR_RETURN(int64_t start, args[1].AsInt());
      int64_t len = static_cast<int64_t>(s.size());
      if (args.size() == 3) {
        if (args[2].is_null()) return Value::Null();
        GSN_ASSIGN_OR_RETURN(len, args[2].AsInt());
      }
      if (start < 1) start = 1;  // SQL is 1-based
      if (start > static_cast<int64_t>(s.size()) || len <= 0) {
        return Value::String("");
      }
      return Value::String(
          s.substr(static_cast<size_t>(start - 1),
                   static_cast<size_t>(len)));
    }
    if (name == "CONCAT") {
      std::string out;
      for (const Value& v : args) {
        if (v.is_null()) return Value::Null();
        out += v.ToString();
      }
      return Value::String(std::move(out));
    }
    if (name == "COALESCE") {
      for (const Value& v : args) {
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    if (name == "NULLIF") {
      GSN_RETURN_IF_ERROR(require_args(2, 2));
      GSN_ASSIGN_OR_RETURN(Value eq,
                           CompareValues(BinaryOp::kEq, args[0], args[1]));
      if (!eq.is_null() && eq.bool_value()) return Value::Null();
      return args[0];
    }
    if (name == "LEAST" || name == "GREATEST") {
      if (args.empty()) return Status::ExecutionError(name + ": no arguments");
      Value best;
      for (const Value& v : args) {
        if (v.is_null()) return Value::Null();
        if (best.is_null()) {
          best = v;
          continue;
        }
        GSN_ASSIGN_OR_RETURN(
            Value cmp, CompareValues(name == "LEAST" ? BinaryOp::kLess
                                                     : BinaryOp::kGreater,
                                     v, best));
        if (!cmp.is_null() && cmp.bool_value()) best = v;
      }
      return best;
    }
    return Status::ExecutionError("unknown function: " + name);
  }

  const TableResolver* resolver_;
};

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

/// Collects aggregate calls in an expression tree, not descending into
/// subqueries (those compute their own aggregates).
void CollectAggregates(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kFunctionCall && IsAggregateFunction(e.function)) {
    out->push_back(&e);
    return;  // nested aggregates are invalid; treat args as opaque
  }
  for (const auto& child : e.children) {
    if (child) CollectAggregates(*child, out);
  }
}

struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// Computes one aggregate over the rows of a group.
Result<Value> ComputeAggregate(const Evaluator& eval, const Expr& agg,
                               const Schema& schema,
                               const Relation::RowList& rows,
                               const RowBinding* outer) {
  const std::string& fn = agg.function;
  if (fn == "COUNT" && !agg.children.empty() &&
      agg.children[0]->kind == ExprKind::kStar) {
    return Value::Int(static_cast<int64_t>(rows.size()));
  }
  if (agg.children.size() != 1) {
    return Status::ExecutionError(fn + " takes exactly one argument");
  }
  // Gather non-NULL argument values.
  std::vector<Value> values;
  values.reserve(rows.size());
  for (const Relation::SharedRow& row : rows) {
    RowBinding binding{&schema, row.get(), outer, nullptr};
    GSN_ASSIGN_OR_RETURN(Value v, eval.Eval(*agg.children[0], binding));
    if (!v.is_null()) values.push_back(std::move(v));
  }
  if (agg.distinct) {
    std::set<Value, ValueLess> uniq(values.begin(), values.end());
    values.assign(uniq.begin(), uniq.end());
  }
  if (fn == "COUNT") return Value::Int(static_cast<int64_t>(values.size()));
  if (values.empty()) return Value::Null();

  if (fn == "MIN" || fn == "MAX") {
    Value best = values[0];
    for (size_t i = 1; i < values.size(); ++i) {
      const int c = values[i].Compare(best);
      if ((fn == "MIN" && c < 0) || (fn == "MAX" && c > 0)) best = values[i];
    }
    return best;
  }
  if (fn == "SUM") {
    bool all_int = true;
    for (const Value& v : values) {
      if (!v.is_int() && !v.is_bool()) {
        all_int = false;
        break;
      }
    }
    if (all_int) {
      int64_t sum = 0;
      for (const Value& v : values) {
        GSN_ASSIGN_OR_RETURN(int64_t i, v.AsInt());
        sum += i;
      }
      return Value::Int(sum);
    }
    double sum = 0;
    for (const Value& v : values) {
      GSN_ASSIGN_OR_RETURN(double d, v.AsDouble());
      sum += d;
    }
    return Value::Double(sum);
  }
  if (fn == "AVG" || fn == "STDDEV" || fn == "VARIANCE") {
    double sum = 0;
    for (const Value& v : values) {
      GSN_ASSIGN_OR_RETURN(double d, v.AsDouble());
      sum += d;
    }
    const double mean = sum / static_cast<double>(values.size());
    if (fn == "AVG") return Value::Double(mean);
    double sq = 0;
    for (const Value& v : values) {
      GSN_ASSIGN_OR_RETURN(double d, v.AsDouble());
      sq += (d - mean) * (d - mean);
    }
    // Sample variance (n-1), matching MySQL's STDDEV_SAMP family used
    // by GSN deployments; single-element groups yield 0.
    const double var = values.size() > 1
                           ? sq / static_cast<double>(values.size() - 1)
                           : 0.0;
    return fn == "VARIANCE" ? Value::Double(var)
                            : Value::Double(std::sqrt(var));
  }
  return Status::ExecutionError("unknown aggregate: " + fn);
}

// ---------------------------------------------------------------------------
// Type inference
// ---------------------------------------------------------------------------

DataType InferTypeOrDefault(const Expr& e, const Schema& input);

DataType InferFunctionType(const Expr& e, const Schema& input) {
  const std::string& fn = e.function;
  if (fn == "COUNT" || fn == "LENGTH" || fn == "OCTET_LENGTH" ||
      fn == "SIGN" || fn == "FLOOR" || fn == "CEIL" || fn == "CEILING") {
    return DataType::kInt;
  }
  if (fn == "AVG" || fn == "STDDEV" || fn == "VARIANCE" || fn == "SQRT" ||
      fn == "POWER" || fn == "POW") {
    return DataType::kDouble;
  }
  if (fn == "UPPER" || fn == "LOWER" || fn == "TRIM" || fn == "SUBSTR" ||
      fn == "SUBSTRING" || fn == "CONCAT") {
    return DataType::kString;
  }
  if (!e.children.empty() && e.children[0]->kind != ExprKind::kStar) {
    return InferTypeOrDefault(*e.children[0], input);
  }
  return DataType::kString;
}

DataType InferTypeOrDefault(const Expr& e, const Schema& input) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      Result<DataType> t = e.literal.type();
      return t.ok() ? *t : DataType::kString;
    }
    case ExprKind::kColumnRef: {
      Result<size_t> idx = ResolveColumn(input, e.qualifier, e.column);
      if (idx.ok()) return input.field(*idx).type;
      return DataType::kString;  // outer-scope ref; resolved at runtime
    }
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kNot) return DataType::kBool;
      return InferTypeOrDefault(*e.children[0], input);
    case ExprKind::kBinary: {
      switch (e.binary_op) {
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLess:
        case BinaryOp::kLessEq:
        case BinaryOp::kGreater:
        case BinaryOp::kGreaterEq:
        case BinaryOp::kLike:
        case BinaryOp::kNotLike:
          return DataType::kBool;
        case BinaryOp::kConcat:
          return DataType::kString;
        default: {
          const DataType l = InferTypeOrDefault(*e.children[0], input);
          const DataType r = InferTypeOrDefault(*e.children[1], input);
          if ((l == DataType::kTimestamp || r == DataType::kTimestamp) &&
              (e.binary_op == BinaryOp::kAdd || e.binary_op == BinaryOp::kSub)) {
            return DataType::kTimestamp;
          }
          if (l == DataType::kDouble || r == DataType::kDouble) {
            return DataType::kDouble;
          }
          return DataType::kInt;
        }
      }
    }
    case ExprKind::kFunctionCall:
      return InferFunctionType(e, input);
    case ExprKind::kIsNull:
    case ExprKind::kBetween:
    case ExprKind::kInList:
    case ExprKind::kInSubquery:
    case ExprKind::kExists:
      return DataType::kBool;
    case ExprKind::kScalarSubquery: {
      if (e.subquery && e.subquery->items.size() == 1 &&
          !e.subquery->items[0].is_star) {
        return InferTypeOrDefault(*e.subquery->items[0].expr, Schema());
      }
      return DataType::kString;
    }
    case ExprKind::kCase: {
      const size_t first_then = e.case_has_operand ? 2 : 1;
      if (first_then < e.children.size()) {
        return InferTypeOrDefault(*e.children[first_then], input);
      }
      return DataType::kString;
    }
    case ExprKind::kCast:
      return e.cast_type;
    case ExprKind::kStar:
      return DataType::kInt;
  }
  return DataType::kString;
}

}  // namespace

Result<DataType> InferType(const Expr& expr, const Schema& input) {
  return InferTypeOrDefault(expr, input);
}

// ---------------------------------------------------------------------------
// Execution pipeline
// ---------------------------------------------------------------------------

namespace {

/// Output column name for a select item: alias > column name > rendered
/// expression.
std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return StrToLower(item.expr->ToString());
}

/// Prefixes every field of `schema` with `alias.` (stripping any
/// existing qualifier so aliases rebind cleanly).
Schema QualifySchema(const Schema& schema, const std::string& alias) {
  Schema out;
  for (const Field& f : schema.fields()) {
    std::string_view fq, base;
    SplitFieldName(f.name, &fq, &base);
    out.AddField(alias + "." + std::string(base), f.type);
  }
  return out;
}

Result<Relation> EvalTableRef(const TableResolver* resolver,
                              const TableRef& ref, const RowBinding* outer,
                              const Expr* where, bool sole_table);

// -- Adaptive join machinery ------------------------------------------------

// Crossover measured by bench/ablate_join: per-pair expression
// evaluation makes the nested loop lose to the hash build beyond tiny
// inputs.
std::atomic<size_t> g_hash_join_threshold{64};

// Strategy counters live in the process-wide registry so /metrics on
// any node exposes them; GetJoinCounters()/ResetJoinCounters() below
// stay as views. Function-local statics keep the shared_ptr lookup off
// the per-join path.
telemetry::Counter* HashJoinCounter() {
  static const auto counter =
      new std::shared_ptr<telemetry::Counter>(
          telemetry::MetricRegistry::Default()->GetCounter(
              "gsn_sql_hash_joins_total", {},
              "Joins executed with the hash strategy"));
  return counter->get();
}

telemetry::Counter* NestedLoopJoinCounter() {
  static const auto counter =
      new std::shared_ptr<telemetry::Counter>(
          telemetry::MetricRegistry::Default()->GetCounter(
              "gsn_sql_nested_loop_joins_total", {},
              "Joins executed with the nested-loop strategy"));
  return counter->get();
}

/// Flattens a conjunction tree (AND chains) into its conjuncts.
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(e->children[0].get(), out);
    SplitConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

struct EquiKey {
  size_t left_idx;
  size_t right_idx;
};

/// Classifies `conjunct` as an equi-join key (column = column with one
/// side in each input) if possible.
bool AsEquiKey(const Expr& conjunct, const Schema& left, const Schema& right,
               EquiKey* key) {
  if (conjunct.kind != ExprKind::kBinary ||
      conjunct.binary_op != BinaryOp::kEq) {
    return false;
  }
  const Expr& a = *conjunct.children[0];
  const Expr& b = *conjunct.children[1];
  if (a.kind != ExprKind::kColumnRef || b.kind != ExprKind::kColumnRef) {
    return false;
  }
  const Result<size_t> a_left = ResolveColumn(left, a.qualifier, a.column);
  const Result<size_t> b_right = ResolveColumn(right, b.qualifier, b.column);
  if (a_left.ok() && b_right.ok()) {
    *key = {*a_left, *b_right};
    return true;
  }
  const Result<size_t> b_left = ResolveColumn(left, b.qualifier, b.column);
  const Result<size_t> a_right = ResolveColumn(right, a.qualifier, a.column);
  if (b_left.ok() && a_right.ok()) {
    *key = {*b_left, *a_right};
    return true;
  }
  return false;
}

/// Evaluates the residual conjuncts over a joined row; true iff all
/// pass (SQL three-valued: NULL filters out).
Result<bool> ResidualPasses(const Evaluator& eval,
                            const std::vector<const Expr*>& residual,
                            const Schema& combined, const Relation::Row& row,
                            const RowBinding* outer) {
  for (const Expr* conjunct : residual) {
    RowBinding binding{&combined, &row, outer, nullptr};
    GSN_ASSIGN_OR_RETURN(Value v, eval.Eval(*conjunct, binding));
    if (v.is_null()) return false;
    GSN_ASSIGN_OR_RETURN(Value b, v.CastTo(DataType::kBool));
    if (!b.bool_value()) return false;
  }
  return true;
}

/// Inner/left equi-join via a hash table on the right input. NULL keys
/// never match (SQL equality semantics).
Result<Relation> HashJoin(const Evaluator& eval, const TableRef& ref,
                          const Relation& left, const Relation& right,
                          const Schema& combined,
                          const std::vector<EquiKey>& keys,
                          const std::vector<const Expr*>& residual,
                          const RowBinding* outer) {
  std::map<std::vector<Value>, std::vector<const Relation::Row*>,
           ValueVectorLess>
      build;
  for (const auto& rrow : right.rows()) {
    std::vector<Value> key;
    key.reserve(keys.size());
    bool has_null = false;
    for (const EquiKey& k : keys) {
      if (rrow[k.right_idx].is_null()) {
        has_null = true;
        break;
      }
      key.push_back(rrow[k.right_idx]);
    }
    if (!has_null) build[std::move(key)].push_back(&rrow);
  }

  Relation out(combined);
  for (const auto& lrow : left.rows()) {
    bool matched = false;
    std::vector<Value> key;
    key.reserve(keys.size());
    bool has_null = false;
    for (const EquiKey& k : keys) {
      if (lrow[k.left_idx].is_null()) {
        has_null = true;
        break;
      }
      key.push_back(lrow[k.left_idx]);
    }
    if (!has_null) {
      auto it = build.find(key);
      if (it != build.end()) {
        for (const Relation::Row* rrow : it->second) {
          Relation::Row joined = lrow;
          joined.insert(joined.end(), rrow->begin(), rrow->end());
          GSN_ASSIGN_OR_RETURN(
              bool keep,
              ResidualPasses(eval, residual, combined, joined, outer));
          if (keep) {
            matched = true;
            out.AppendRow(std::move(joined));
          }
        }
      }
    }
    if (!matched && ref.join_type == TableRef::JoinType::kLeft) {
      Relation::Row padded = lrow;
      padded.resize(combined.size(), Value::Null());
      out.AppendRow(std::move(padded));
    }
  }
  return out;
}

/// Cross/inner/left join with runtime algorithm selection: equi-joins
/// over large inputs hash, everything else nested-loops (the adaptive
/// execution plan of paper §4).
Result<Relation> EvalJoin(const TableResolver* resolver, const TableRef& ref,
                          const RowBinding* outer, const Expr* where) {
  // Leaf scans under a join only push qualifier-matched bounds: an
  // unqualified WHERE column could bind to either side.
  GSN_ASSIGN_OR_RETURN(
      Relation left,
      EvalTableRef(resolver, *ref.left, outer, where, /*sole_table=*/false));
  GSN_ASSIGN_OR_RETURN(
      Relation right,
      EvalTableRef(resolver, *ref.right, outer, where, /*sole_table=*/false));
  Schema combined;
  for (const Field& f : left.schema().fields()) {
    combined.AddField(f.name, f.type);
  }
  for (const Field& f : right.schema().fields()) {
    combined.AddField(f.name, f.type);
  }
  Evaluator eval(resolver);

  // Classify the condition for the hash path.
  std::vector<EquiKey> keys;
  std::vector<const Expr*> residual;
  if (ref.join_condition) {
    std::vector<const Expr*> conjuncts;
    SplitConjuncts(ref.join_condition.get(), &conjuncts);
    for (const Expr* conjunct : conjuncts) {
      EquiKey key;
      if (AsEquiKey(*conjunct, left.schema(), right.schema(), &key)) {
        keys.push_back(key);
      } else {
        residual.push_back(conjunct);
      }
    }
  }
  const size_t cross = left.NumRows() * right.NumRows();
  // Join timing excludes the child scans (they record themselves); it
  // covers the algorithm the adaptive planner picked.
  const int64_t join_start = t_analyze != nullptr ? AnalyzeNowMicros() : 0;
  if (!keys.empty() && cross >= g_hash_join_threshold.load()) {
    HashJoinCounter()->Increment();
    Result<Relation> joined =
        HashJoin(eval, ref, left, right, combined, keys, residual, outer);
    if (t_analyze != nullptr && joined.ok()) {
      t_analyze->Add(&ref, AnalyzeCollector::Op::kJoin,
                     static_cast<int64_t>(joined->NumRows()),
                     AnalyzeNowMicros() - join_start, "HashJoin");
    }
    return joined;
  }

  NestedLoopJoinCounter()->Increment();
  Relation out(combined);
  for (const auto& lrow : left.rows()) {
    bool matched = false;
    for (const auto& rrow : right.rows()) {
      Relation::Row joined = lrow;
      joined.insert(joined.end(), rrow.begin(), rrow.end());
      bool keep = true;
      if (ref.join_condition) {
        RowBinding binding{&combined, &joined, outer, nullptr};
        GSN_ASSIGN_OR_RETURN(Value v,
                             eval.Eval(*ref.join_condition, binding));
        if (v.is_null()) {
          keep = false;
        } else {
          GSN_ASSIGN_OR_RETURN(Value b, v.CastTo(DataType::kBool));
          keep = b.bool_value();
        }
      }
      if (keep) {
        matched = true;
        out.AppendRow(std::move(joined));
      }
    }
    if (!matched && ref.join_type == TableRef::JoinType::kLeft) {
      Relation::Row padded = lrow;
      padded.resize(combined.size(), Value::Null());
      out.AppendRow(std::move(padded));
    }
  }
  if (t_analyze != nullptr) {
    t_analyze->Add(&ref, AnalyzeCollector::Op::kJoin,
                   static_cast<int64_t>(out.NumRows()),
                   AnalyzeNowMicros() - join_start, "NestedLoopJoin");
  }
  return out;
}

Result<Relation> EvalTableRef(const TableResolver* resolver,
                              const TableRef& ref, const RowBinding* outer,
                              const Expr* where, bool sole_table) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      if (resolver == nullptr) {
        return Status::ExecutionError("no table resolver for " +
                                      ref.table_name);
      }
      const int64_t scan_start =
          t_analyze != nullptr ? AnalyzeNowMicros() : 0;
      const std::string alias =
          ref.alias.empty() ? StrToLower(ref.table_name) : ref.alias;
      // Bounds from the WHERE clause flow into the storage tier, which
      // prunes segment chunks by zone map; the full WHERE still runs
      // over whatever comes back.
      const ScanPredicate predicate =
          ExtractScanPredicate(where, alias, sole_table);
      ScanStats scan_stats;
      GSN_ASSIGN_OR_RETURN(
          Relation rel,
          resolver->GetTableFiltered(ref.table_name, predicate, &scan_stats));
      Relation scanned(QualifySchema(rel.schema(), alias),
                       std::move(rel.mutable_shared_rows()));
      if (t_analyze != nullptr) {
        std::string note;
        if (scan_stats.FromSegments()) {
          note = "segments=" +
                 std::to_string(scan_stats.segments_scanned) + "/" +
                 std::to_string(scan_stats.segments_total) +
                 " chunks_pruned=" +
                 std::to_string(scan_stats.chunks_pruned) + "/" +
                 std::to_string(scan_stats.chunks_total);
        }
        t_analyze->Add(&ref, AnalyzeCollector::Op::kScan,
                       static_cast<int64_t>(scanned.NumRows()),
                       AnalyzeNowMicros() - scan_start, note);
      }
      return scanned;
    }
    case TableRef::Kind::kSubquery: {
      const int64_t scan_start =
          t_analyze != nullptr ? AnalyzeNowMicros() : 0;
      GSN_ASSIGN_OR_RETURN(Relation rel,
                           ExecuteStmt(resolver, *ref.subquery, outer));
      Relation derived(QualifySchema(rel.schema(), ref.alias),
                       std::move(rel.mutable_shared_rows()));
      if (t_analyze != nullptr) {
        t_analyze->Add(&ref, AnalyzeCollector::Op::kScan,
                       static_cast<int64_t>(derived.NumRows()),
                       AnalyzeNowMicros() - scan_start);
      }
      return derived;
    }
    case TableRef::Kind::kJoin:
      return EvalJoin(resolver, ref, outer, where);
  }
  return Status::Internal("unhandled table ref kind");
}

/// Materializes the FROM clause (comma-list = cross product).
Result<Relation> EvalFrom(const TableResolver* resolver,
                          const SelectStmt& stmt, const RowBinding* outer) {
  if (stmt.from.empty()) {
    // SELECT without FROM: one empty row.
    Relation rel{Schema()};
    rel.AppendRow({});
    return rel;
  }
  // Unqualified WHERE columns are only pushable when the FROM clause
  // has exactly one base table; otherwise qualified bounds still flow.
  const bool sole_table =
      stmt.from.size() == 1 && stmt.from[0]->kind == TableRef::Kind::kTable;
  GSN_ASSIGN_OR_RETURN(Relation acc,
                       EvalTableRef(resolver, *stmt.from[0], outer,
                                    stmt.where.get(), sole_table));
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    GSN_ASSIGN_OR_RETURN(Relation next,
                         EvalTableRef(resolver, *stmt.from[i], outer,
                                      stmt.where.get(), /*sole_table=*/false));
    Schema combined;
    for (const Field& f : acc.schema().fields()) {
      combined.AddField(f.name, f.type);
    }
    for (const Field& f : next.schema().fields()) {
      combined.AddField(f.name, f.type);
    }
    Relation out(combined);
    for (const auto& lrow : acc.rows()) {
      for (const auto& rrow : next.rows()) {
        Relation::Row joined = lrow;
        joined.insert(joined.end(), rrow.begin(), rrow.end());
        out.AppendRow(std::move(joined));
      }
    }
    acc = std::move(out);
  }
  return acc;
}

/// Intermediate result carrying, for each projected row, the source row
/// it came from (group representative for grouped queries) so ORDER BY
/// can reference non-projected columns.
struct CoreResult {
  Relation projected;
  Schema source_schema;
  Relation::RowList source_rows;  // parallel to projected rows
};

bool IsAggregateQuery(const SelectStmt& stmt) {
  if (!stmt.group_by.empty()) return true;
  for (const SelectItem& item : stmt.items) {
    if (!item.is_star && ContainsAggregate(*item.expr)) return true;
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) return true;
  return false;
}

Result<CoreResult> ExecuteCore(const TableResolver* resolver,
                               const SelectStmt& stmt,
                               const RowBinding* outer) {
  Evaluator eval(resolver);
  GSN_ASSIGN_OR_RETURN(Relation input, EvalFrom(resolver, stmt, outer));
  const Schema& in_schema = input.schema();

  // WHERE. Surviving rows are shared with the input relation.
  Relation::RowList rows;
  rows.reserve(input.NumRows());
  for (size_t i = 0; i < input.NumRows(); ++i) {
    if (stmt.where) {
      const Relation::Row& row = input.row(i);
      RowBinding binding{&in_schema, &row, outer, nullptr};
      GSN_ASSIGN_OR_RETURN(Value v, eval.Eval(*stmt.where, binding));
      if (v.is_null()) continue;
      GSN_ASSIGN_OR_RETURN(Value b, v.CastTo(DataType::kBool));
      if (!b.bool_value()) continue;
    }
    rows.push_back(input.shared_row(i));
  }
  if (t_analyze != nullptr && stmt.where != nullptr) {
    t_analyze->Add(&stmt, AnalyzeCollector::Op::kFilter,
                   static_cast<int64_t>(rows.size()), 0);
  }

  // Build output schema from select items.
  Schema out_schema;
  for (const SelectItem& item : stmt.items) {
    if (item.is_star) {
      for (const Field& f : in_schema.fields()) {
        std::string_view fq, base;
        SplitFieldName(f.name, &fq, &base);
        if (!item.star_qualifier.empty() &&
            !StrEqualsIgnoreCase(fq, item.star_qualifier)) {
          continue;
        }
        out_schema.AddField(std::string(base), f.type);
      }
      if (!item.star_qualifier.empty() &&
          out_schema.empty()) {
        return Status::ExecutionError("unknown table in " +
                                      item.star_qualifier + ".*");
      }
    } else {
      out_schema.AddField(OutputName(item),
                          InferTypeOrDefault(*item.expr, in_schema));
    }
  }

  CoreResult result;
  result.projected = Relation(out_schema);
  result.source_schema = in_schema;

  // Projection of a single logical row (with optional aggregate env).
  // The source row is kept by ref-count bump, not copied.
  auto project_row =
      [&](const Relation::SharedRow& src,
          const std::map<const Expr*, Value>* agg_env) -> Status {
    Relation::Row out_row;
    out_row.reserve(out_schema.size());
    RowBinding binding{&in_schema, src.get(), outer, agg_env};
    for (const SelectItem& item : stmt.items) {
      if (item.is_star) {
        for (size_t i = 0; i < in_schema.size(); ++i) {
          std::string_view fq, base;
          SplitFieldName(in_schema.field(i).name, &fq, &base);
          if (!item.star_qualifier.empty() &&
              !StrEqualsIgnoreCase(fq, item.star_qualifier)) {
            continue;
          }
          out_row.push_back((*src)[i]);
        }
      } else {
        GSN_ASSIGN_OR_RETURN(Value v, eval.Eval(*item.expr, binding));
        out_row.push_back(std::move(v));
      }
    }
    result.projected.AppendRow(std::move(out_row));
    result.source_rows.push_back(src);
    return Status::OK();
  };

  if (!IsAggregateQuery(stmt)) {
    for (const Relation::SharedRow& row : rows) {
      GSN_RETURN_IF_ERROR(project_row(row, nullptr));
    }
  } else {
    // Collect aggregate expressions from items, HAVING, and ORDER BY.
    std::vector<const Expr*> aggs;
    for (const SelectItem& item : stmt.items) {
      if (!item.is_star) CollectAggregates(*item.expr, &aggs);
    }
    if (stmt.having) CollectAggregates(*stmt.having, &aggs);
    for (const OrderByItem& ob : stmt.order_by) {
      CollectAggregates(*ob.expr, &aggs);
    }

    // Group rows.
    std::map<std::vector<Value>, Relation::RowList, ValueVectorLess> groups;
    if (stmt.group_by.empty()) {
      groups[{}] = rows;  // single group (possibly empty)
    } else {
      for (const Relation::SharedRow& row : rows) {
        RowBinding binding{&in_schema, row.get(), outer, nullptr};
        std::vector<Value> key;
        key.reserve(stmt.group_by.size());
        for (const auto& g : stmt.group_by) {
          GSN_ASSIGN_OR_RETURN(Value v, eval.Eval(*g, binding));
          key.push_back(std::move(v));
        }
        groups[std::move(key)].push_back(row);
      }
    }
    if (t_analyze != nullptr) {
      t_analyze->Add(&stmt, AnalyzeCollector::Op::kAggregate,
                     static_cast<int64_t>(groups.size()), 0);
    }

    const Relation::SharedRow empty_row =
        Relation::MakeRow(Relation::Row(in_schema.size(), Value::Null()));
    for (const auto& [key, group_rows] : groups) {
      std::map<const Expr*, Value> agg_env;
      for (const Expr* agg : aggs) {
        GSN_ASSIGN_OR_RETURN(
            Value v,
            ComputeAggregate(eval, *agg, in_schema, group_rows, outer));
        agg_env[agg] = std::move(v);
      }
      const Relation::SharedRow& rep =
          group_rows.empty() ? empty_row : group_rows.front();
      if (stmt.having) {
        RowBinding binding{&in_schema, rep.get(), outer, &agg_env};
        GSN_ASSIGN_OR_RETURN(Value v, eval.Eval(*stmt.having, binding));
        if (v.is_null()) continue;
        GSN_ASSIGN_OR_RETURN(Value b, v.CastTo(DataType::kBool));
        if (!b.bool_value()) continue;
      }
      GSN_RETURN_IF_ERROR(project_row(rep, &agg_env));
      // ORDER BY with aggregates needs the env; stash it keyed by row
      // index via source_rows parallelism (handled below by re-binding:
      // aggregates in ORDER BY are evaluated against projected columns
      // when possible). For simplicity aggregate ORDER BY keys are
      // appended to the source row here.
    }
  }

  // DISTINCT.
  if (stmt.distinct) {
    std::set<std::vector<Value>, ValueVectorLess> seen;
    Relation deduped(result.projected.schema());
    Relation::RowList deduped_src;
    for (size_t i = 0; i < result.projected.NumRows(); ++i) {
      const auto& row = result.projected.row(i);
      if (seen.insert(row).second) {
        deduped.AppendSharedRow(result.projected.shared_row(i));
        deduped_src.push_back(result.source_rows[i]);
      }
    }
    result.projected = std::move(deduped);
    result.source_rows = std::move(deduped_src);
  }

  return result;
}

/// ORDER BY evaluation: resolve each key against the projected schema
/// first (aliases / output columns), falling back to the source row.
Status ApplyOrderBy(const TableResolver* resolver, const SelectStmt& stmt,
                    CoreResult* core, const RowBinding* outer) {
  if (stmt.order_by.empty()) return Status::OK();
  Evaluator eval(resolver);
  const size_t n = core->projected.NumRows();
  const bool have_source = core->source_rows.size() == n;

  // Resolve ordinal keys (standard SQL: ORDER BY 2 = second output
  // column) up front; -1 marks expression keys.
  std::vector<int64_t> ordinals(stmt.order_by.size(), -1);
  for (size_t k = 0; k < stmt.order_by.size(); ++k) {
    const Expr& e = *stmt.order_by[k].expr;
    if (e.kind == ExprKind::kLiteral && e.literal.is_int()) {
      const int64_t ordinal = e.literal.int_value();
      if (ordinal < 1 ||
          ordinal > static_cast<int64_t>(core->projected.schema().size())) {
        return Status::ExecutionError(
            "ORDER BY position " + std::to_string(ordinal) +
            " is out of range");
      }
      ordinals[k] = ordinal - 1;
    }
  }

  // Pre-compute sort keys.
  std::vector<std::vector<Value>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    const Relation::Row& prow = core->projected.rows()[i];
    RowBinding proj_binding{&core->projected.schema(), &prow, outer, nullptr};
    RowBinding src_binding;
    if (have_source) {
      src_binding.schema = &core->source_schema;
      src_binding.row = core->source_rows[i].get();
      src_binding.outer = outer;
      proj_binding.outer = &src_binding;  // projected first, then source
    }
    for (size_t k = 0; k < stmt.order_by.size(); ++k) {
      if (ordinals[k] >= 0) {
        keys[i].push_back(prow[static_cast<size_t>(ordinals[k])]);
        continue;
      }
      GSN_ASSIGN_OR_RETURN(Value v,
                           eval.Eval(*stmt.order_by[k].expr, proj_binding));
      keys[i].push_back(std::move(v));
    }
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t k = 0; k < stmt.order_by.size(); ++k) {
      const int c = keys[a][k].Compare(keys[b][k]);
      if (c != 0) return stmt.order_by[k].ascending ? c < 0 : c > 0;
    }
    return false;
  });
  Relation sorted(core->projected.schema());
  Relation::RowList sorted_src;
  for (size_t idx : order) {
    sorted.AppendSharedRow(core->projected.shared_row(idx));
    if (have_source) sorted_src.push_back(core->source_rows[idx]);
  }
  core->projected = std::move(sorted);
  core->source_rows = std::move(sorted_src);
  return Status::OK();
}

void ApplyLimitOffset(const SelectStmt& stmt, Relation* rel) {
  if (!stmt.limit.has_value() && !stmt.offset.has_value()) return;
  const int64_t offset = stmt.offset.value_or(0);
  const int64_t limit =
      stmt.limit.value_or(static_cast<int64_t>(rel->NumRows()));
  Relation::RowList out;
  for (int64_t i = offset;
       i < static_cast<int64_t>(rel->NumRows()) && i < offset + limit; ++i) {
    out.push_back(rel->shared_row(static_cast<size_t>(i)));
  }
  *rel = Relation(rel->schema(), std::move(out));
}

Result<Relation> ApplySetOp(SetOp op, Relation lhs, Relation rhs) {
  if (lhs.schema().size() != rhs.schema().size()) {
    return Status::ExecutionError(
        "set operation operands have different arity");
  }
  switch (op) {
    case SetOp::kUnionAll: {
      for (auto& row : rhs.mutable_shared_rows()) {
        lhs.AppendSharedRow(std::move(row));
      }
      return lhs;
    }
    case SetOp::kUnion: {
      std::set<std::vector<Value>, ValueVectorLess> seen;
      Relation out(lhs.schema());
      for (size_t i = 0; i < lhs.NumRows(); ++i) {
        if (seen.insert(lhs.row(i)).second) {
          out.AppendSharedRow(lhs.shared_row(i));
        }
      }
      for (size_t i = 0; i < rhs.NumRows(); ++i) {
        if (seen.insert(rhs.row(i)).second) {
          out.AppendSharedRow(rhs.shared_row(i));
        }
      }
      return out;
    }
    case SetOp::kIntersect: {
      std::set<std::vector<Value>, ValueVectorLess> right_set(
          rhs.rows().begin(), rhs.rows().end());
      std::set<std::vector<Value>, ValueVectorLess> emitted;
      Relation out(lhs.schema());
      for (size_t i = 0; i < lhs.NumRows(); ++i) {
        const auto& row = lhs.row(i);
        if (right_set.count(row) && emitted.insert(row).second) {
          out.AppendSharedRow(lhs.shared_row(i));
        }
      }
      return out;
    }
    case SetOp::kExcept: {
      std::set<std::vector<Value>, ValueVectorLess> right_set(
          rhs.rows().begin(), rhs.rows().end());
      std::set<std::vector<Value>, ValueVectorLess> emitted;
      Relation out(lhs.schema());
      for (size_t i = 0; i < lhs.NumRows(); ++i) {
        const auto& row = lhs.row(i);
        if (!right_set.count(row) && emitted.insert(row).second) {
          out.AppendSharedRow(lhs.shared_row(i));
        }
      }
      return out;
    }
    case SetOp::kNone:
      return lhs;
  }
  return Status::Internal("unhandled set op");
}

Result<Relation> ExecuteStmt(const TableResolver* resolver,
                             const SelectStmt& stmt, const RowBinding* outer) {
  const int64_t stmt_start = t_analyze != nullptr ? AnalyzeNowMicros() : 0;
  GSN_ASSIGN_OR_RETURN(CoreResult core, ExecuteCore(resolver, stmt, outer));

  if (stmt.set_op != SetOp::kNone && stmt.set_rhs) {
    GSN_ASSIGN_OR_RETURN(Relation rhs,
                         ExecuteStmt(resolver, *stmt.set_rhs, outer));
    GSN_ASSIGN_OR_RETURN(
        Relation combined,
        ApplySetOp(stmt.set_op, std::move(core.projected), std::move(rhs)));
    core.projected = std::move(combined);
    core.source_rows.clear();  // set result rows have no single source
  }

  GSN_RETURN_IF_ERROR(ApplyOrderBy(resolver, stmt, &core, outer));
  ApplyLimitOffset(stmt, &core.projected);
  if (t_analyze != nullptr) {
    t_analyze->Add(&stmt, AnalyzeCollector::Op::kOutput,
                   static_cast<int64_t>(core.projected.NumRows()),
                   AnalyzeNowMicros() - stmt_start);
  }
  return std::move(core.projected);
}

}  // namespace

void SetHashJoinThreshold(size_t cross_product_threshold) {
  g_hash_join_threshold.store(cross_product_threshold);
}

size_t GetHashJoinThreshold() { return g_hash_join_threshold.load(); }

JoinCounters GetJoinCounters() {
  JoinCounters counters;
  counters.hash_joins = HashJoinCounter()->Value();
  counters.nested_loop_joins = NestedLoopJoinCounter()->Value();
  return counters;
}

void ResetJoinCounters() {
  HashJoinCounter()->Reset();
  NestedLoopJoinCounter()->Reset();
}

void AnalyzeCollector::Add(const void* node, Op op, int64_t rows,
                           int64_t elapsed_micros, const std::string& note) {
  OperatorStats& stats = stats_[{node, op}];
  stats.rows += rows;
  stats.elapsed_micros += elapsed_micros;
  ++stats.invocations;
  if (!note.empty()) stats.note = note;
}

const AnalyzeCollector::OperatorStats* AnalyzeCollector::Find(const void* node,
                                                              Op op) const {
  auto it = stats_.find({node, op});
  return it == stats_.end() ? nullptr : &it->second;
}

Result<Relation> Executor::Execute(const SelectStmt& stmt) const {
  if (analyze_ == nullptr) return ExecuteStmt(resolver_, stmt, nullptr);
  // Install the collector thread-locally for this execution only, and
  // restore whatever was there (re-entrant Execute via subqueries on
  // resolver-backed views keeps its outer collector).
  AnalyzeCollector* const saved = t_analyze;
  t_analyze = analyze_;
  Result<Relation> out = ExecuteStmt(resolver_, stmt, nullptr);
  t_analyze = saved;
  return out;
}

Result<Relation> Executor::Query(const std::string& sql) const {
  GSN_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  return Execute(*stmt);
}

}  // namespace gsn::sql

#include "gsn/sql/optimizer.h"

#include <optional>

#include "gsn/sql/executor.h"

namespace gsn::sql {

namespace {

/// Evaluates an expression consisting only of literals and
/// deterministic operators. Returns nullopt when the tree references
/// columns, calls functions, contains subqueries, or when evaluation
/// would raise a runtime error (those must surface at execution time).
std::optional<Value> EvalPure(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kUnary: {
      const std::optional<Value> v = EvalPure(*e.children[0]);
      if (!v) return std::nullopt;
      if (e.unary_op == UnaryOp::kNot) {
        if (v->is_null()) return Value::Null();
        Result<Value> b = v->CastTo(DataType::kBool);
        if (!b.ok()) return std::nullopt;
        return Value::Bool(!b->bool_value());
      }
      if (v->is_null()) return Value::Null();
      if (v->is_int()) return Value::Int(-v->int_value());
      if (v->is_double()) return Value::Double(-v->double_value());
      return std::nullopt;
    }
    case ExprKind::kBinary: {
      const std::optional<Value> lhs = EvalPure(*e.children[0]);
      if (!lhs) return std::nullopt;
      if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
        const std::optional<Value> rhs = EvalPure(*e.children[1]);
        if (!rhs) return std::nullopt;
        auto as_bool = [](const Value& v) -> std::optional<std::optional<bool>> {
          if (v.is_null()) return std::optional<bool>();  // known NULL
          Result<Value> b = v.CastTo(DataType::kBool);
          if (!b.ok()) return std::nullopt;  // not foldable
          return std::optional<bool>(b->bool_value());
        };
        const auto l = as_bool(*lhs);
        const auto r = as_bool(*rhs);
        if (!l || !r) return std::nullopt;
        if (e.binary_op == BinaryOp::kAnd) {
          if ((*l && !**l) || (*r && !**r)) return Value::Bool(false);
          if (*l && *r) return Value::Bool(true);
          return Value::Null();
        }
        if ((*l && **l) || (*r && **r)) return Value::Bool(true);
        if (*l && *r) return Value::Bool(false);
        return Value::Null();
      }
      const std::optional<Value> rhs = EvalPure(*e.children[1]);
      if (!rhs) return std::nullopt;
      Result<Value> folded = EvalBinaryValues(e.binary_op, *lhs, *rhs);
      if (!folded.ok()) return std::nullopt;  // e.g. 1/0: error at runtime
      return *std::move(folded);
    }
    case ExprKind::kIsNull: {
      const std::optional<Value> v = EvalPure(*e.children[0]);
      if (!v) return std::nullopt;
      return Value::Bool(v->is_null() != e.negated);
    }
    case ExprKind::kBetween: {
      const std::optional<Value> v = EvalPure(*e.children[0]);
      const std::optional<Value> lo = EvalPure(*e.children[1]);
      const std::optional<Value> hi = EvalPure(*e.children[2]);
      if (!v || !lo || !hi) return std::nullopt;
      Result<Value> ge = EvalBinaryValues(BinaryOp::kGreaterEq, *v, *lo);
      Result<Value> le = EvalBinaryValues(BinaryOp::kLessEq, *v, *hi);
      if (!ge.ok() || !le.ok()) return std::nullopt;
      if (ge->is_null() || le->is_null()) return Value::Null();
      return Value::Bool((ge->bool_value() && le->bool_value()) != e.negated);
    }
    case ExprKind::kInList: {
      const std::optional<Value> v = EvalPure(*e.children[0]);
      if (!v) return std::nullopt;
      if (v->is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        const std::optional<Value> item = EvalPure(*e.children[i]);
        if (!item) return std::nullopt;
        Result<Value> eq = EvalBinaryValues(BinaryOp::kEq, *v, *item);
        if (!eq.ok()) return std::nullopt;
        if (eq->is_null()) {
          saw_null = true;
        } else if (eq->bool_value()) {
          return Value::Bool(!e.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Bool(e.negated);
    }
    case ExprKind::kCast: {
      const std::optional<Value> v = EvalPure(*e.children[0]);
      if (!v) return std::nullopt;
      Result<Value> cast = v->CastTo(e.cast_type);
      if (!cast.ok()) return std::nullopt;
      return *std::move(cast);
    }
    case ExprKind::kCase: {
      size_t idx = 0;
      std::optional<Value> operand;
      if (e.case_has_operand) {
        operand = EvalPure(*e.children[idx++]);
        if (!operand) return std::nullopt;
      }
      for (size_t w = 0; w < e.case_num_whens; ++w) {
        const std::optional<Value> when = EvalPure(*e.children[idx]);
        if (!when) return std::nullopt;
        bool hit = false;
        if (e.case_has_operand) {
          Result<Value> eq = EvalBinaryValues(BinaryOp::kEq, *operand, *when);
          if (!eq.ok()) return std::nullopt;
          hit = !eq->is_null() && eq->bool_value();
        } else if (!when->is_null()) {
          Result<Value> b = when->CastTo(DataType::kBool);
          if (!b.ok()) return std::nullopt;
          hit = b->bool_value();
        }
        if (hit) return EvalPure(*e.children[idx + 1]);
        idx += 2;
      }
      if (e.case_has_else) return EvalPure(*e.children[idx]);
      return Value::Null();
    }
    default:
      return std::nullopt;
  }
}

/// True if the literal is a known (non-NULL) boolean with value `want`.
bool IsBoolLiteral(const Expr& e, bool want) {
  return e.kind == ExprKind::kLiteral && e.literal.is_bool() &&
         e.literal.bool_value() == want;
}

void ReplaceWithLiteral(Expr* e, Value v) {
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  e->children.clear();
  e->subquery.reset();
  e->function.clear();
  e->case_num_whens = 0;
  e->case_has_else = false;
  e->case_has_operand = false;
}

/// Replaces `*e` with one of its children (AND/OR identity shrink).
void ReplaceWithChild(Expr* e, size_t child_index) {
  std::unique_ptr<Expr> keep = std::move(e->children[child_index]);
  *e = std::move(*keep);
}

Result<bool> FoldExpr(Expr* e);

Result<bool> FoldChildren(Expr* e) {
  bool changed = false;
  for (auto& child : e->children) {
    if (child) {
      GSN_ASSIGN_OR_RETURN(bool c, FoldExpr(child.get()));
      changed |= c;
    }
  }
  if (e->subquery) {
    GSN_RETURN_IF_ERROR(Optimize(e->subquery.get()));
  }
  return changed;
}

Result<bool> FoldExpr(Expr* e) {
  GSN_ASSIGN_OR_RETURN(bool changed, FoldChildren(e));

  if (e->kind != ExprKind::kLiteral) {
    std::optional<Value> folded = EvalPure(*e);
    if (folded) {
      ReplaceWithLiteral(e, *std::move(folded));
      return true;
    }
  }

  // Boolean identities with one literal side. `x AND FALSE` / `x OR
  // TRUE` are folded even when x is non-trivial: GSN queries are
  // machine-generated from descriptors and rely on this shrink.
  if (e->kind == ExprKind::kBinary &&
      (e->binary_op == BinaryOp::kAnd || e->binary_op == BinaryOp::kOr)) {
    const bool is_and = e->binary_op == BinaryOp::kAnd;
    for (size_t i = 0; i < 2; ++i) {
      if (IsBoolLiteral(*e->children[i], !is_and)) {
        // AND with FALSE, OR with TRUE: dominating value.
        ReplaceWithLiteral(e, Value::Bool(!is_and));
        return true;
      }
      if (IsBoolLiteral(*e->children[i], is_and)) {
        // AND with TRUE, OR with FALSE: identity — keep the other side.
        ReplaceWithChild(e, 1 - i);
        return true;
      }
    }
  }
  return changed;
}

void FoldPredicate(std::unique_ptr<Expr>* predicate) {
  if (!*predicate) return;
  Result<bool> folded = FoldExpr(predicate->get());
  (void)folded;
  // WHERE TRUE is a no-op: drop it. FALSE/NULL stay (executor filters).
  if (IsBoolLiteral(**predicate, true)) predicate->reset();
}

}  // namespace

Result<bool> FoldConstants(Expr* expr) { return FoldExpr(expr); }

Status Optimize(SelectStmt* stmt) {
  for (SelectItem& item : stmt->items) {
    if (!item.is_star) {
      GSN_RETURN_IF_ERROR(FoldExpr(item.expr.get()).status());
    }
  }
  for (auto& ref : stmt->from) {
    // Derived tables and join conditions.
    std::vector<TableRef*> stack{ref.get()};
    while (!stack.empty()) {
      TableRef* r = stack.back();
      stack.pop_back();
      if (r->subquery) GSN_RETURN_IF_ERROR(Optimize(r->subquery.get()));
      if (r->join_condition) {
        GSN_RETURN_IF_ERROR(FoldExpr(r->join_condition.get()).status());
      }
      if (r->left) stack.push_back(r->left.get());
      if (r->right) stack.push_back(r->right.get());
    }
  }
  FoldPredicate(&stmt->where);
  for (auto& g : stmt->group_by) {
    GSN_RETURN_IF_ERROR(FoldExpr(g.get()).status());
  }
  FoldPredicate(&stmt->having);
  for (OrderByItem& ob : stmt->order_by) {
    GSN_RETURN_IF_ERROR(FoldExpr(ob.expr.get()).status());
  }
  if (stmt->set_rhs) GSN_RETURN_IF_ERROR(Optimize(stmt->set_rhs.get()));
  return Status::OK();
}

// ---------------------------------------------------------------- EXPLAIN

namespace {

void Indent(std::string* out, int depth) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

/// ` (rows=N time=Xus loops=K)` annotation for one operator, empty when
/// not analyzing. `with_time` is false for operators whose stats are
/// pure counts (filter, aggregate). `with_note` appends the operator's
/// runtime note (segment/prune counters for scans); joins render their
/// note — the algorithm picked — as the node name instead.
std::string AnalyzeSuffix(const AnalyzeCollector* analyze, const void* node,
                          AnalyzeCollector::Op op, const char* rows_label,
                          bool with_time, bool with_note = false) {
  if (analyze == nullptr) return "";
  const AnalyzeCollector::OperatorStats* stats = analyze->Find(node, op);
  if (stats == nullptr) return " (never executed)";
  std::string out = std::string(" (") + rows_label + "=" +
                    std::to_string(stats->rows);
  if (with_time) out += " time=" + std::to_string(stats->elapsed_micros) + "us";
  if (stats->invocations > 1) {
    out += " loops=" + std::to_string(stats->invocations);
  }
  if (with_note && !stats->note.empty()) out += " " + stats->note;
  return out + ")";
}

void ExplainTableRef(const TableRef& ref, int depth,
                     const AnalyzeCollector* analyze, std::string* out);

void ExplainStmt(const SelectStmt& stmt, int depth,
                 const AnalyzeCollector* analyze, std::string* out) {
  Indent(out, depth);
  *out += "Select";
  if (stmt.distinct) *out += " DISTINCT";
  *out += ": ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) *out += ", ";
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      *out += item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*";
    } else {
      *out += item.expr->ToString();
      if (!item.alias.empty()) *out += " AS " + item.alias;
    }
  }
  *out += AnalyzeSuffix(analyze, &stmt, AnalyzeCollector::Op::kOutput, "rows",
                        /*with_time=*/true);
  *out += "\n";
  if (!stmt.from.empty()) {
    Indent(out, depth + 1);
    *out += "From:\n";
    for (const auto& ref : stmt.from) {
      ExplainTableRef(*ref, depth + 2, analyze, out);
    }
  }
  if (stmt.where) {
    Indent(out, depth + 1);
    *out += "Filter: " + stmt.where->ToString();
    *out += AnalyzeSuffix(analyze, &stmt, AnalyzeCollector::Op::kFilter,
                          "rows", /*with_time=*/false);
    *out += "\n";
  }
  if (!stmt.group_by.empty()) {
    Indent(out, depth + 1);
    *out += "Aggregate: group by ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += stmt.group_by[i]->ToString();
    }
    *out += AnalyzeSuffix(analyze, &stmt, AnalyzeCollector::Op::kAggregate,
                          "groups", /*with_time=*/false);
    *out += "\n";
  }
  if (stmt.having) {
    Indent(out, depth + 1);
    *out += "Having: " + stmt.having->ToString() + "\n";
  }
  if (!stmt.order_by.empty()) {
    Indent(out, depth + 1);
    *out += "OrderBy: ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) *out += ", ";
      *out += stmt.order_by[i].expr->ToString();
      if (!stmt.order_by[i].ascending) *out += " DESC";
    }
    *out += "\n";
  }
  if (stmt.limit.has_value() || stmt.offset.has_value()) {
    Indent(out, depth + 1);
    *out += "Limit: " +
            (stmt.limit ? std::to_string(*stmt.limit) : std::string("all"));
    if (stmt.offset) *out += " Offset: " + std::to_string(*stmt.offset);
    *out += "\n";
  }
  if (stmt.set_op != SetOp::kNone && stmt.set_rhs) {
    Indent(out, depth + 1);
    switch (stmt.set_op) {
      case SetOp::kUnion:
        *out += "Union:\n";
        break;
      case SetOp::kUnionAll:
        *out += "UnionAll:\n";
        break;
      case SetOp::kIntersect:
        *out += "Intersect:\n";
        break;
      case SetOp::kExcept:
        *out += "Except:\n";
        break;
      case SetOp::kNone:
        break;
    }
    ExplainStmt(*stmt.set_rhs, depth + 2, analyze, out);
  }
}

void ExplainTableRef(const TableRef& ref, int depth,
                     const AnalyzeCollector* analyze, std::string* out) {
  switch (ref.kind) {
    case TableRef::Kind::kTable:
      Indent(out, depth);
      *out += "Scan " + ref.table_name;
      if (!ref.alias.empty()) *out += " AS " + ref.alias;
      *out += AnalyzeSuffix(analyze, &ref, AnalyzeCollector::Op::kScan,
                            "rows", /*with_time=*/true, /*with_note=*/true);
      *out += "\n";
      break;
    case TableRef::Kind::kSubquery:
      Indent(out, depth);
      *out += "Derived AS " + ref.alias + ":";
      *out += AnalyzeSuffix(analyze, &ref, AnalyzeCollector::Op::kScan,
                            "rows", /*with_time=*/true);
      *out += "\n";
      ExplainStmt(*ref.subquery, depth + 1, analyze, out);
      break;
    case TableRef::Kind::kJoin: {
      Indent(out, depth);
      // Static EXPLAIN predicts the pessimistic nested loop; ANALYZE
      // reports the algorithm the adaptive planner actually picked at
      // runtime from the input cardinalities.
      const AnalyzeCollector::OperatorStats* join_stats =
          analyze != nullptr
              ? analyze->Find(&ref, AnalyzeCollector::Op::kJoin)
              : nullptr;
      const std::string algorithm =
          join_stats != nullptr && !join_stats->note.empty()
              ? join_stats->note
              : "NestedLoopJoin";
      const char* kind = ref.join_type == TableRef::JoinType::kInner
                             ? "Inner"
                             : ref.join_type == TableRef::JoinType::kLeft
                                   ? "Left"
                                   : "Cross";
      *out += algorithm + " " + kind;
      if (ref.join_condition) {
        *out += " on " + ref.join_condition->ToString();
      }
      *out += AnalyzeSuffix(analyze, &ref, AnalyzeCollector::Op::kJoin,
                            "rows", /*with_time=*/true);
      *out += "\n";
      ExplainTableRef(*ref.left, depth + 1, analyze, out);
      ExplainTableRef(*ref.right, depth + 1, analyze, out);
      break;
    }
  }
}

}  // namespace

std::string ExplainString(const SelectStmt& stmt) {
  std::string out;
  ExplainStmt(stmt, 0, /*analyze=*/nullptr, &out);
  return out;
}

std::string ExplainAnalyzeString(const SelectStmt& stmt,
                                 const AnalyzeCollector& analyze) {
  std::string out;
  ExplainStmt(stmt, 0, &analyze, &out);
  return out;
}

}  // namespace gsn::sql

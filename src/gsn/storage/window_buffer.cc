#include "gsn/storage/window_buffer.h"

#include <algorithm>

namespace gsn::storage {

void WindowBuffer::Add(StreamElement element) {
  std::lock_guard<std::mutex> lock(mu_);
  const Timestamp now = element.timed;
  Entry entry;
  entry.timed = element.timed;
  entry.trace = element.trace;
  entry.row = Relation::RowFromElement(element);
  if (entries_.empty() || entry.timed >= entries_.back().timed) {
    // In-order arrival: O(1) append.
    entries_.push_back(std::move(entry));
  } else {
    // Out-of-order arrival: binary-search the slot after any equal
    // timestamps (stable — ties keep arrival order) and shift once.
    auto at = std::upper_bound(
        entries_.begin(), entries_.end(), entry.timed,
        [](Timestamp t, const Entry& e) { return t < e.timed; });
    entries_.insert(at, std::move(entry));
  }
  EvictLocked(now);
}

void WindowBuffer::EvictLocked(Timestamp now) {
  if (spec_.kind == WindowSpec::Kind::kCount) {
    while (entries_.size() > static_cast<size_t>(spec_.count)) {
      entries_.pop_front();
    }
  } else {
    const Timestamp cutoff = now - spec_.duration_micros;
    while (!entries_.empty() && entries_.front().timed <= cutoff) {
      entries_.pop_front();
    }
  }
}

Relation::RowList WindowBuffer::SnapshotRowsLocked(Timestamp now) const {
  Relation::RowList out;
  if (spec_.kind == WindowSpec::Kind::kCount) {
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.row);
    return out;
  }
  const Timestamp cutoff = now - spec_.duration_micros;
  // Entries are kept timestamp-ordered by Add, so the live window is
  // always the suffix with timed > cutoff, found by binary search.
  auto first = std::partition_point(
      entries_.begin(), entries_.end(),
      [cutoff](const Entry& e) { return e.timed <= cutoff; });
  out.reserve(static_cast<size_t>(entries_.end() - first));
  for (auto it = first; it != entries_.end(); ++it) out.push_back(it->row);
  return out;
}

Relation::RowList WindowBuffer::SnapshotRows(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotRowsLocked(now);
}

Relation WindowBuffer::SnapshotRelation(Timestamp now,
                                        const Schema& element_schema) const {
  std::lock_guard<std::mutex> lock(mu_);
  return Relation(element_schema.WithTimedField(), SnapshotRowsLocked(now));
}

std::vector<StreamElement> WindowBuffer::Snapshot(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out;
  out.reserve(entries_.size());
  const Timestamp cutoff = now - spec_.duration_micros;
  for (const Entry& e : entries_) {
    if (spec_.kind == WindowSpec::Kind::kTime && e.timed <= cutoff) continue;
    StreamElement element;
    element.timed = e.timed;
    element.trace = e.trace;
    // Stored rows are [timed, values...]; strip the implicit column.
    element.values.assign(e.row->begin() + 1, e.row->end());
    out.push_back(std::move(element));
  }
  return out;
}

size_t WindowBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void WindowBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace gsn::storage

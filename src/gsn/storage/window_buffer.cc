#include "gsn/storage/window_buffer.h"

namespace gsn::storage {

void WindowBuffer::Add(StreamElement element) {
  std::lock_guard<std::mutex> lock(mu_);
  const Timestamp now = element.timed;
  elements_.push_back(std::move(element));
  EvictLocked(now);
}

void WindowBuffer::EvictLocked(Timestamp now) {
  if (spec_.kind == WindowSpec::Kind::kCount) {
    while (elements_.size() > static_cast<size_t>(spec_.count)) {
      elements_.pop_front();
    }
  } else {
    const Timestamp cutoff = now - spec_.duration_micros;
    while (!elements_.empty() && elements_.front().timed <= cutoff) {
      elements_.pop_front();
    }
  }
}

std::vector<StreamElement> WindowBuffer::Snapshot(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out;
  out.reserve(elements_.size());
  if (spec_.kind == WindowSpec::Kind::kCount) {
    out.assign(elements_.begin(), elements_.end());
    return out;
  }
  const Timestamp cutoff = now - spec_.duration_micros;
  for (const StreamElement& e : elements_) {
    if (e.timed > cutoff) out.push_back(e);
  }
  return out;
}

size_t WindowBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return elements_.size();
}

void WindowBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  elements_.clear();
}

}  // namespace gsn::storage

#ifndef GSN_STORAGE_TABLE_H_
#define GSN_STORAGE_TABLE_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/sql/executor.h"
#include "gsn/types/schema.h"
#include "gsn/util/strings.h"

namespace gsn::storage {

namespace columnar {
class SegmentCatalog;
}  // namespace columnar

/// A windowed stream table: the storage layer's unit of persistence
/// for one virtual sensor's output (paper §4: "the storage layer ...
/// is in charge of providing and managing persistent storage for data
/// streams"; the `<storage size=...>` element bounds retention).
/// Rows carry the implicit `timed` column first. Thread-safe.
class Table {
 public:
  /// `retention` bounds how much history is kept (`<storage size>`),
  /// element-count or time based.
  Table(std::string name, Schema element_schema, WindowSpec retention);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  /// Schema of stored rows: `timed` + the element schema.
  const Schema& row_schema() const { return row_schema_; }
  /// Schema of the sensor's elements (no `timed`).
  const Schema& element_schema() const { return element_schema_; }

  /// Appends a stream element; the element arity must match the
  /// element schema. Retention is enforced using the element's own
  /// timestamp as "now".
  Status Insert(const StreamElement& element);

  /// Appends a batch of elements under one lock acquisition. Stops at
  /// the first arity mismatch and returns that error; earlier elements
  /// stay inserted.
  Status InsertBatch(const std::vector<StreamElement>& elements);

  /// Snapshot of all live rows as a Relation (oldest first). Rows are
  /// shared with the table (ref-count bump, no Value copies).
  Relation Scan() const;
  /// Snapshot respecting time-retention relative to `now`. Rows are
  /// timestamp-ordered (retention eviction uses each element's own
  /// timestamp), so the boundary is found by binary search.
  Relation Scan(Timestamp now) const;

  /// The live rows as stream elements (oldest first) — the table's
  /// content re-expressed in persistence-log form, for checkpoint
  /// compaction of the sensor's WAL.
  std::vector<StreamElement> SnapshotElements() const;

  // -- Tiered history capture ----------------------------------------------
  // With capture enabled, rows leaving the retention window are parked
  // in a bounded pending queue instead of being dropped; the container
  // checkpoint takes them (TakeEvicted) and flushes them into columnar
  // segments. Pending rows stay query-visible through ScanUnified so
  // history never blinks out between eviction and flush.

  /// Starts capturing evicted rows, keeping at most `max_pending_rows`
  /// (oldest dropped first when the bound is hit; dropped rows are
  /// counted, not silently lost).
  void EnableHistoryCapture(size_t max_pending_rows);
  bool history_capture_enabled() const;

  /// Removes and returns the pending evicted rows (oldest first).
  Relation::RowList TakeEvicted();
  /// Returns rows taken by TakeEvicted after a failed flush; they go
  /// back in front of anything evicted meanwhile.
  void RestoreEvicted(Relation::RowList rows);
  /// Copy of the pending evicted rows (oldest first).
  Relation::RowList PendingEvictedRows() const;
  /// Drops the first `n` pending rows (recovery dedup against already
  /// flushed segments).
  void DropPendingPrefix(size_t n);
  /// Evicted rows dropped because the pending bound was hit.
  uint64_t pending_dropped() const;

  /// One relation over all three tiers, oldest first: `catalog`'s
  /// segments for this table (zone-map pruned by `predicate`), then
  /// the pending evicted rows, then the live window. `catalog` may be
  /// null and `stats` may be null.
  Relation ScanUnified(const columnar::SegmentCatalog* catalog,
                       const sql::ScanPredicate& predicate,
                       sql::ScanStats* stats) const;

  size_t NumRows() const;
  /// Total payload bytes currently held (for resource accounting).
  size_t ApproximateBytes() const;
  void Clear();

 private:
  struct Entry {
    Timestamp timed = 0;
    size_t bytes = 0;
    Relation::SharedRow row;
  };

  Status InsertLocked(const StreamElement& element);
  void EvictLocked(Timestamp now);

  const std::string name_;
  const Schema element_schema_;
  const Schema row_schema_;
  const WindowSpec retention_;

  mutable std::mutex mu_;
  std::deque<Entry> rows_;
  size_t approx_bytes_ = 0;
  /// True while rows_ is non-decreasing in timed; gates the
  /// binary-search Scan(now) path.
  bool sorted_ = true;

  bool capture_evicted_ = false;
  size_t max_pending_rows_ = 0;
  std::deque<Relation::SharedRow> pending_evicted_;
  uint64_t pending_dropped_ = 0;
};

/// Catalog of tables inside one GSN container; implements TableResolver
/// so SQL queries can read any virtual sensor's stored stream by name.
/// Thread-safe.
class TableManager : public sql::TableResolver {
 public:
  TableManager() = default;

  TableManager(const TableManager&) = delete;
  TableManager& operator=(const TableManager&) = delete;

  /// Creates a table; fails with AlreadyExists on name collision
  /// (case-insensitive).
  Result<Table*> CreateTable(const std::string& name, Schema element_schema,
                             WindowSpec retention);
  Status DropTable(const std::string& name);
  Result<Table*> GetTableHandle(const std::string& name) const;
  std::vector<std::string> ListTables() const;

  /// Attaches the columnar history tier: from here on, resolver scans
  /// serve segments + pending evicted rows + the live window as one
  /// relation. The catalog must outlive this manager.
  void AttachHistory(const columnar::SegmentCatalog* catalog);
  const columnar::SegmentCatalog* history() const;

  // sql::TableResolver:
  Result<Relation> GetTable(const std::string& name) const override;
  Result<Relation> GetTableFiltered(const std::string& name,
                                    const sql::ScanPredicate& predicate,
                                    sql::ScanStats* stats) const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // lowercased name
  const columnar::SegmentCatalog* history_ = nullptr;
};

}  // namespace gsn::storage

#endif  // GSN_STORAGE_TABLE_H_

#ifndef GSN_STORAGE_WINDOW_BUFFER_H_
#define GSN_STORAGE_WINDOW_BUFFER_H_

#include <deque>
#include <mutex>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/strings.h"

namespace gsn::storage {

/// Sliding window over a stream (paper §3 item 4: "a windowing
/// mechanism which allows the user to define count- or time-based
/// windows on data streams").
///
/// * Count windows retain the most recent N elements.
/// * Time windows retain elements with `timed > now - duration`; expiry
///   is evaluated lazily against the timestamp supplied to Snapshot()
///   (and eagerly on Add, using the new element's timestamp), so the
///   buffer works identically under virtual and wall-clock time.
///
/// Thread-safe.
class WindowBuffer {
 public:
  explicit WindowBuffer(WindowSpec spec) : spec_(spec) {}

  WindowBuffer(const WindowBuffer&) = delete;
  WindowBuffer& operator=(const WindowBuffer&) = delete;

  /// Inserts an element. Elements are expected in non-decreasing
  /// timestamp order (the input stream manager guarantees arrival
  /// order); out-of-order elements are accepted but expire based on
  /// their own timestamps.
  void Add(StreamElement element);

  /// Contents of the window as of `now` (oldest first). For count
  /// windows `now` is ignored.
  std::vector<StreamElement> Snapshot(Timestamp now) const;

  /// Number of elements currently buffered (before lazy time expiry).
  size_t size() const;
  void Clear();

  const WindowSpec& spec() const { return spec_; }

 private:
  void EvictLocked(Timestamp now);

  WindowSpec spec_;
  mutable std::mutex mu_;
  std::deque<StreamElement> elements_;
};

}  // namespace gsn::storage

#endif  // GSN_STORAGE_WINDOW_BUFFER_H_

#ifndef GSN_STORAGE_WINDOW_BUFFER_H_
#define GSN_STORAGE_WINDOW_BUFFER_H_

#include <deque>
#include <mutex>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/strings.h"

namespace gsn::storage {

/// Sliding window over a stream (paper §3 item 4: "a windowing
/// mechanism which allows the user to define count- or time-based
/// windows on data streams").
///
/// * Count windows retain the N newest elements by timestamp (equal
///   timestamps keep arrival order).
/// * Time windows retain elements with `timed > now - duration`; expiry
///   is evaluated lazily against the timestamp supplied to Snapshot()
///   (and eagerly on Add, using the new element's timestamp), so the
///   buffer works identically under virtual and wall-clock time.
///
/// Each admitted element is materialized once into a shared row
/// ([timed, values...]); SnapshotRelation() then hands the SQL layer a
/// Relation whose rows are ref-count bumps of the buffered ones, so a
/// snapshot costs O(window) pointer copies instead of a deep copy of
/// every Value. The buffer keeps its entries timestamp-ordered
/// incrementally: in-order Adds (the common case — sources admit in
/// arrival order) append in O(1), out-of-order Adds binary-search
/// their slot and pay one bounded shift, and every snapshot finds the
/// time-window boundary by binary search. Equal timestamps preserve
/// arrival order (stable insert).
///
/// Thread-safe.
class WindowBuffer {
 public:
  explicit WindowBuffer(WindowSpec spec) : spec_(spec) {}

  WindowBuffer(const WindowBuffer&) = delete;
  WindowBuffer& operator=(const WindowBuffer&) = delete;

  /// Inserts an element. Elements are expected in non-decreasing
  /// timestamp order; out-of-order elements are accepted but expire
  /// based on their own timestamps.
  void Add(StreamElement element);

  /// Contents of the window as of `now` (oldest first). For count
  /// windows `now` is ignored. Reconstructs elements from the stored
  /// rows; prefer SnapshotRelation() on hot paths.
  std::vector<StreamElement> Snapshot(Timestamp now) const;

  /// The window contents as shared rows ([timed, values...], oldest
  /// first) — a ref-count bump per row, no Value copies.
  Relation::RowList SnapshotRows(Timestamp now) const;

  /// The window contents as a Relation over `element_schema` prefixed
  /// by `timed`, sharing the buffered rows.
  Relation SnapshotRelation(Timestamp now, const Schema& element_schema) const;

  /// Number of elements currently buffered (before lazy time expiry).
  size_t size() const;
  void Clear();

  const WindowSpec& spec() const { return spec_; }

 private:
  struct Entry {
    Timestamp timed = 0;
    TraceContext trace;
    Relation::SharedRow row;
  };

  void EvictLocked(Timestamp now);
  Relation::RowList SnapshotRowsLocked(Timestamp now) const;

  WindowSpec spec_;
  mutable std::mutex mu_;
  /// Always non-decreasing in timed (maintained on Add), so the
  /// binary-search snapshot path never degrades.
  std::deque<Entry> entries_;
};

}  // namespace gsn::storage

#endif  // GSN_STORAGE_WINDOW_BUFFER_H_

#include "gsn/storage/table.h"

#include <algorithm>

namespace gsn::storage {

Table::Table(std::string name, Schema element_schema, WindowSpec retention)
    : name_(std::move(name)),
      element_schema_(std::move(element_schema)),
      row_schema_(element_schema_.WithTimedField()),
      retention_(retention) {}

Status Table::InsertLocked(const StreamElement& element) {
  if (element.values.size() != element_schema_.size()) {
    return Status::InvalidArgument(
        "element arity " + std::to_string(element.values.size()) +
        " != schema arity " + std::to_string(element_schema_.size()) +
        " for table " + name_);
  }
  Entry entry;
  entry.timed = element.timed;
  entry.bytes = 8 + element.PayloadBytes();
  entry.row = Relation::RowFromElement(element);
  if (!rows_.empty() && entry.timed < rows_.back().timed) sorted_ = false;
  approx_bytes_ += entry.bytes;
  rows_.push_back(std::move(entry));
  EvictLocked(element.timed);
  if (rows_.empty()) sorted_ = true;
  return Status::OK();
}

Status Table::Insert(const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mu_);
  return InsertLocked(element);
}

Status Table::InsertBatch(const std::vector<StreamElement>& elements) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StreamElement& element : elements) {
    GSN_RETURN_IF_ERROR(InsertLocked(element));
  }
  return Status::OK();
}

void Table::EvictLocked(Timestamp now) {
  if (retention_.kind == WindowSpec::Kind::kCount) {
    while (rows_.size() > static_cast<size_t>(retention_.count)) {
      approx_bytes_ -= std::min(approx_bytes_, rows_.front().bytes);
      rows_.pop_front();
    }
  } else {
    const Timestamp cutoff = now - retention_.duration_micros;
    while (!rows_.empty() && rows_.front().timed <= cutoff) {
      approx_bytes_ -= std::min(approx_bytes_, rows_.front().bytes);
      rows_.pop_front();
    }
  }
}

Relation Table::Scan() const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation::RowList rows;
  rows.reserve(rows_.size());
  for (const Entry& e : rows_) rows.push_back(e.row);
  return Relation(row_schema_, std::move(rows));
}

Relation Table::Scan(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation::RowList rows;
  if (retention_.kind == WindowSpec::Kind::kCount) {
    rows.reserve(rows_.size());
    for (const Entry& e : rows_) rows.push_back(e.row);
    return Relation(row_schema_, std::move(rows));
  }
  const Timestamp cutoff = now - retention_.duration_micros;
  if (sorted_) {
    auto first = std::partition_point(
        rows_.begin(), rows_.end(),
        [cutoff](const Entry& e) { return e.timed <= cutoff; });
    rows.reserve(static_cast<size_t>(rows_.end() - first));
    for (auto it = first; it != rows_.end(); ++it) rows.push_back(it->row);
  } else {
    for (const Entry& e : rows_) {
      if (e.timed > cutoff) rows.push_back(e.row);
    }
  }
  return Relation(row_schema_, std::move(rows));
}

std::vector<StreamElement> Table::SnapshotElements() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out;
  out.reserve(rows_.size());
  for (const Entry& e : rows_) {
    StreamElement element;
    element.timed = e.timed;
    // Row layout is `timed` first, then the element values.
    element.values.assign(e.row->begin() + 1, e.row->end());
    out.push_back(std::move(element));
  }
  return out;
}

size_t Table::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

size_t Table::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return approx_bytes_;
}

void Table::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  approx_bytes_ = 0;
  sorted_ = true;
}

Result<Table*> TableManager::CreateTable(const std::string& name,
                                         Schema element_schema,
                                         WindowSpec retention) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = StrToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table =
      std::make_unique<Table>(name, std::move(element_schema), retention);
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Status TableManager::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(StrToLower(name)) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

Result<Table*> TableManager::GetTableHandle(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(StrToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

std::vector<std::string> TableManager::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->name());
  return out;
}

Result<Relation> TableManager::GetTable(const std::string& name) const {
  GSN_ASSIGN_OR_RETURN(Table * table, GetTableHandle(name));
  return table->Scan();
}

}  // namespace gsn::storage

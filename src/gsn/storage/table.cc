#include "gsn/storage/table.h"

#include <algorithm>

#include "gsn/storage/columnar/catalog.h"
#include "gsn/util/logging.h"

namespace gsn::storage {

Table::Table(std::string name, Schema element_schema, WindowSpec retention)
    : name_(std::move(name)),
      element_schema_(std::move(element_schema)),
      row_schema_(element_schema_.WithTimedField()),
      retention_(retention) {}

Status Table::InsertLocked(const StreamElement& element) {
  if (element.values.size() != element_schema_.size()) {
    return Status::InvalidArgument(
        "element arity " + std::to_string(element.values.size()) +
        " != schema arity " + std::to_string(element_schema_.size()) +
        " for table " + name_);
  }
  Entry entry;
  entry.timed = element.timed;
  entry.bytes = 8 + element.PayloadBytes();
  entry.row = Relation::RowFromElement(element);
  if (!rows_.empty() && entry.timed < rows_.back().timed) sorted_ = false;
  approx_bytes_ += entry.bytes;
  rows_.push_back(std::move(entry));
  EvictLocked(element.timed);
  if (rows_.empty()) sorted_ = true;
  return Status::OK();
}

Status Table::Insert(const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mu_);
  return InsertLocked(element);
}

Status Table::InsertBatch(const std::vector<StreamElement>& elements) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StreamElement& element : elements) {
    GSN_RETURN_IF_ERROR(InsertLocked(element));
  }
  return Status::OK();
}

void Table::EvictLocked(Timestamp now) {
  const auto evict_front = [this] {
    if (capture_evicted_) {
      pending_evicted_.push_back(std::move(rows_.front().row));
      while (pending_evicted_.size() > max_pending_rows_) {
        pending_evicted_.pop_front();
        ++pending_dropped_;
      }
    }
    approx_bytes_ -= std::min(approx_bytes_, rows_.front().bytes);
    rows_.pop_front();
  };
  if (retention_.kind == WindowSpec::Kind::kCount) {
    while (rows_.size() > static_cast<size_t>(retention_.count)) {
      evict_front();
    }
  } else {
    const Timestamp cutoff = now - retention_.duration_micros;
    while (!rows_.empty() && rows_.front().timed <= cutoff) {
      evict_front();
    }
  }
}

Relation Table::Scan() const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation::RowList rows;
  rows.reserve(rows_.size());
  for (const Entry& e : rows_) rows.push_back(e.row);
  return Relation(row_schema_, std::move(rows));
}

Relation Table::Scan(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation::RowList rows;
  if (retention_.kind == WindowSpec::Kind::kCount) {
    rows.reserve(rows_.size());
    for (const Entry& e : rows_) rows.push_back(e.row);
    return Relation(row_schema_, std::move(rows));
  }
  const Timestamp cutoff = now - retention_.duration_micros;
  if (sorted_) {
    auto first = std::partition_point(
        rows_.begin(), rows_.end(),
        [cutoff](const Entry& e) { return e.timed <= cutoff; });
    rows.reserve(static_cast<size_t>(rows_.end() - first));
    for (auto it = first; it != rows_.end(); ++it) rows.push_back(it->row);
  } else {
    for (const Entry& e : rows_) {
      if (e.timed > cutoff) rows.push_back(e.row);
    }
  }
  return Relation(row_schema_, std::move(rows));
}

std::vector<StreamElement> Table::SnapshotElements() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out;
  out.reserve(rows_.size());
  for (const Entry& e : rows_) {
    StreamElement element;
    element.timed = e.timed;
    // Row layout is `timed` first, then the element values.
    element.values.assign(e.row->begin() + 1, e.row->end());
    out.push_back(std::move(element));
  }
  return out;
}

void Table::EnableHistoryCapture(size_t max_pending_rows) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_evicted_ = true;
  max_pending_rows_ = max_pending_rows == 0 ? 1 : max_pending_rows;
}

bool Table::history_capture_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capture_evicted_;
}

Relation::RowList Table::TakeEvicted() {
  std::lock_guard<std::mutex> lock(mu_);
  Relation::RowList out(pending_evicted_.begin(), pending_evicted_.end());
  pending_evicted_.clear();
  return out;
}

void Table::RestoreEvicted(Relation::RowList rows) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_evicted_.insert(pending_evicted_.begin(), rows.begin(), rows.end());
  while (pending_evicted_.size() > max_pending_rows_ &&
         max_pending_rows_ > 0) {
    pending_evicted_.pop_front();
    ++pending_dropped_;
  }
}

Relation::RowList Table::PendingEvictedRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Relation::RowList(pending_evicted_.begin(), pending_evicted_.end());
}

void Table::DropPendingPrefix(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  n = std::min(n, pending_evicted_.size());
  pending_evicted_.erase(pending_evicted_.begin(),
                         pending_evicted_.begin() + static_cast<long>(n));
}

uint64_t Table::pending_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_dropped_;
}

Relation Table::ScanUnified(const columnar::SegmentCatalog* catalog,
                            const sql::ScanPredicate& predicate,
                            sql::ScanStats* stats) const {
  Relation::RowList rows;
  if (catalog != nullptr) {
    // Cold tier first: segments are strictly older than anything still
    // pending or live, so appending tiers in order keeps the relation
    // oldest-first end to end.
    Status scanned =
        catalog->Scan(name_, row_schema_, predicate, &rows, stats);
    if (!scanned.ok()) {
      GSN_LOG(kWarn, "storage") << "segment scan failed for " << name_ << ": "
                                << scanned.ToString();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stats != nullptr) {
    stats->pending_rows += static_cast<int64_t>(pending_evicted_.size());
    stats->memory_rows += static_cast<int64_t>(rows_.size());
  }
  rows.insert(rows.end(), pending_evicted_.begin(), pending_evicted_.end());
  for (const Entry& e : rows_) rows.push_back(e.row);
  return Relation(row_schema_, std::move(rows));
}

size_t Table::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

size_t Table::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return approx_bytes_;
}

void Table::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  pending_evicted_.clear();
  approx_bytes_ = 0;
  sorted_ = true;
}

Result<Table*> TableManager::CreateTable(const std::string& name,
                                         Schema element_schema,
                                         WindowSpec retention) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = StrToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table =
      std::make_unique<Table>(name, std::move(element_schema), retention);
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Status TableManager::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(StrToLower(name)) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

Result<Table*> TableManager::GetTableHandle(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(StrToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

std::vector<std::string> TableManager::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->name());
  return out;
}

void TableManager::AttachHistory(const columnar::SegmentCatalog* catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  history_ = catalog;
}

const columnar::SegmentCatalog* TableManager::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

Result<Relation> TableManager::GetTable(const std::string& name) const {
  return GetTableFiltered(name, sql::ScanPredicate{}, nullptr);
}

Result<Relation> TableManager::GetTableFiltered(
    const std::string& name, const sql::ScanPredicate& predicate,
    sql::ScanStats* stats) const {
  Table* table = nullptr;
  const columnar::SegmentCatalog* catalog = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(StrToLower(name));
    if (it == tables_.end()) return Status::NotFound("no such table: " + name);
    table = it->second.get();
    catalog = history_;
  }
  // Without an attached history tier this degenerates to the live
  // window scan tables always served.
  if (catalog == nullptr && stats == nullptr) return table->Scan();
  return table->ScanUnified(catalog, predicate, stats);
}

}  // namespace gsn::storage

#include "gsn/storage/table.h"

namespace gsn::storage {

Table::Table(std::string name, Schema element_schema, WindowSpec retention)
    : name_(std::move(name)),
      element_schema_(std::move(element_schema)),
      row_schema_(element_schema_.WithTimedField()),
      retention_(retention) {}

Status Table::Insert(const StreamElement& element) {
  if (element.values.size() != element_schema_.size()) {
    return Status::InvalidArgument(
        "element arity " + std::to_string(element.values.size()) +
        " != schema arity " + std::to_string(element_schema_.size()) +
        " for table " + name_);
  }
  Relation::Row row;
  row.reserve(element.values.size() + 1);
  row.push_back(Value::TimestampVal(element.timed));
  size_t bytes = 8;
  for (const Value& v : element.values) {
    bytes += v.PayloadBytes();
    row.push_back(v);
  }
  std::lock_guard<std::mutex> lock(mu_);
  rows_.push_back(std::move(row));
  approx_bytes_ += bytes;
  EvictLocked(element.timed);
  return Status::OK();
}

void Table::EvictLocked(Timestamp now) {
  auto row_bytes = [](const Relation::Row& row) {
    size_t b = 0;
    for (const Value& v : row) b += v.PayloadBytes();
    return b;
  };
  if (retention_.kind == WindowSpec::Kind::kCount) {
    while (rows_.size() > static_cast<size_t>(retention_.count)) {
      approx_bytes_ -= std::min(approx_bytes_, row_bytes(rows_.front()));
      rows_.pop_front();
    }
  } else {
    const Timestamp cutoff = now - retention_.duration_micros;
    while (!rows_.empty() && rows_.front()[0].timestamp_value() <= cutoff) {
      approx_bytes_ -= std::min(approx_bytes_, row_bytes(rows_.front()));
      rows_.pop_front();
    }
  }
}

Relation Table::Scan() const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation rel(row_schema_);
  rel.mutable_rows().assign(rows_.begin(), rows_.end());
  return rel;
}

Relation Table::Scan(Timestamp now) const {
  std::lock_guard<std::mutex> lock(mu_);
  Relation rel(row_schema_);
  if (retention_.kind == WindowSpec::Kind::kCount) {
    rel.mutable_rows().assign(rows_.begin(), rows_.end());
    return rel;
  }
  const Timestamp cutoff = now - retention_.duration_micros;
  for (const auto& row : rows_) {
    if (row[0].timestamp_value() > cutoff) rel.mutable_rows().push_back(row);
  }
  return rel;
}

size_t Table::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

size_t Table::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return approx_bytes_;
}

void Table::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  approx_bytes_ = 0;
}

Result<Table*> TableManager::CreateTable(const std::string& name,
                                         Schema element_schema,
                                         WindowSpec retention) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string key = StrToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table =
      std::make_unique<Table>(name, std::move(element_schema), retention);
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Status TableManager::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.erase(StrToLower(name)) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

Result<Table*> TableManager::GetTableHandle(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(StrToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

std::vector<std::string> TableManager::ListTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->name());
  return out;
}

Result<Relation> TableManager::GetTable(const std::string& name) const {
  GSN_ASSIGN_OR_RETURN(Table * table, GetTableHandle(name));
  return table->Scan();
}

}  // namespace gsn::storage

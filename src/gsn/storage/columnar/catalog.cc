#include "gsn/storage/columnar/catalog.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <set>
#include <utility>

#include "gsn/storage/persistence_log.h"
#include "gsn/types/codec.h"
#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::storage::columnar {
namespace {

namespace fs = std::filesystem;

constexpr char kJournalName[] = "catalog.gsnlog";
constexpr char kAddRecord = 'A';
constexpr char kDropRecord = 'D';

std::string JournalRecord(char kind, const SegmentMeta& meta) {
  std::string payload;
  payload.push_back(kind);
  Codec::EncodeString(meta.table, &payload);
  if (kind == kAddRecord) {
    Codec::EncodeI64(static_cast<int64_t>(meta.id), &payload);
    Codec::EncodeI64(meta.min_timed, &payload);
    Codec::EncodeI64(meta.max_timed, &payload);
    Codec::EncodeI64(static_cast<int64_t>(meta.row_count), &payload);
    Codec::EncodeU32(meta.chunk_count, &payload);
    Codec::EncodeU32(meta.rows_crc, &payload);
    Codec::EncodeI64(static_cast<int64_t>(meta.bytes), &payload);
  }
  return payload;
}

Result<std::pair<char, SegmentMeta>> ParseJournalRecord(
    std::string_view payload) {
  size_t pos = 0;
  if (payload.empty()) return Status::IntegrityError("empty catalog record");
  const char kind = payload[pos++];
  SegmentMeta meta;
  GSN_ASSIGN_OR_RETURN(meta.table, Codec::DecodeString(payload, &pos));
  if (kind == kAddRecord) {
    GSN_ASSIGN_OR_RETURN(int64_t id, Codec::DecodeI64(payload, &pos));
    meta.id = static_cast<uint64_t>(id);
    GSN_ASSIGN_OR_RETURN(meta.min_timed, Codec::DecodeI64(payload, &pos));
    GSN_ASSIGN_OR_RETURN(meta.max_timed, Codec::DecodeI64(payload, &pos));
    GSN_ASSIGN_OR_RETURN(int64_t rows, Codec::DecodeI64(payload, &pos));
    meta.row_count = static_cast<uint64_t>(rows);
    GSN_ASSIGN_OR_RETURN(meta.chunk_count, Codec::DecodeU32(payload, &pos));
    GSN_ASSIGN_OR_RETURN(meta.rows_crc, Codec::DecodeU32(payload, &pos));
    GSN_ASSIGN_OR_RETURN(int64_t bytes, Codec::DecodeI64(payload, &pos));
    meta.bytes = static_cast<uint64_t>(bytes);
  } else if (kind != kDropRecord) {
    return Status::IntegrityError("unknown catalog record kind");
  }
  return std::make_pair(kind, std::move(meta));
}

Status WriteSegmentFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create segment file " + path + ": " +
                           std::strerror(errno));
  }
  Status status = Status::OK();
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), file) !=
          contents.size()) {
    status = Status::IoError("short write to " + path);
  }
  if (status.ok() && std::fflush(file) != 0) {
    status = Status::IoError("flush failed for " + path);
  }
  if (status.ok() && ::fsync(::fileno(file)) != 0) {
    status = Status::IoError("fsync failed for " + path + ": " +
                             std::strerror(errno));
  }
  std::fclose(file);
  if (!status.ok()) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  return status;
}

}  // namespace

SegmentCatalog::SegmentCatalog(std::string dir, Options options)
    : dir_(std::move(dir)), options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    count_gauge_ = options_.metrics->GetGauge(
        "gsn_segment_count", options_.labels,
        "Live columnar history segments");
    bytes_gauge_ = options_.metrics->GetGauge(
        "gsn_segment_bytes", options_.labels,
        "Total bytes across live columnar segments");
    pruned_chunks_ = options_.metrics->GetCounter(
        "gsn_segment_pruned_chunks", options_.labels,
        "Column chunks skipped via zone maps during segment scans");
    scanned_rows_ = options_.metrics->GetCounter(
        "gsn_segment_scanned_rows", options_.labels,
        "Rows decoded out of columnar segments by scans");
  }
}

SegmentCatalog::~SegmentCatalog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_ != nullptr) std::fclose(journal_);
}

Result<std::unique_ptr<SegmentCatalog>> SegmentCatalog::Open(
    const std::string& dir, Options options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create segment dir " + dir + ": " +
                           ec.message());
  }
  std::unique_ptr<SegmentCatalog> catalog(
      new SegmentCatalog(dir, std::move(options)));
  std::lock_guard<std::mutex> lock(catalog->mu_);
  GSN_RETURN_IF_ERROR(catalog->ReplayJournalLocked());
  GSN_RETURN_IF_ERROR(catalog->CompactJournalLocked());
  catalog->UpdateGaugesLocked();
  return catalog;
}

std::string SegmentCatalog::SegmentPath(const SegmentMeta& meta) const {
  return dir_ + "/" + meta.table + "/seg-" + std::to_string(meta.id) +
         std::string(kSegmentFileSuffix);
}

Status SegmentCatalog::ReplayJournalLocked() {
  GSN_ASSIGN_OR_RETURN(std::string contents,
                       ReadLogFile(dir_ + "/" + kJournalName));
  std::vector<std::string_view> payloads;
  bool torn = false;
  ScanLogRecords(contents, &payloads, &torn);
  if (torn) {
    GSN_LOG(kWarn, "columnar") << "segment catalog journal had a torn tail; truncating";
  }
  for (std::string_view payload : payloads) {
    Result<std::pair<char, SegmentMeta>> record = ParseJournalRecord(payload);
    if (!record.ok()) {
      GSN_LOG(kWarn, "columnar") << "skipping bad catalog record: "
                    << record.status().ToString();
      continue;
    }
    auto& [kind, meta] = *record;
    if (kind == kAddRecord) {
      next_id_ = std::max(next_id_, meta.id + 1);
      by_table_[meta.table].push_back(std::move(meta));
    } else {
      by_table_.erase(meta.table);
    }
  }

  // Reconcile against the filesystem: a journaled segment must exist
  // with the journaled size and an intact footer, else it is the relic
  // of an aborted flush and its rows are still recoverable elsewhere.
  std::set<std::string> live_paths;
  for (auto it = by_table_.begin(); it != by_table_.end();) {
    std::vector<SegmentMeta>& metas = it->second;
    for (auto m = metas.begin(); m != metas.end();) {
      const std::string path = SegmentPath(*m);
      bool intact = false;
      std::error_code ec;
      if (fs::exists(path, ec) && fs::file_size(path, ec) == m->bytes) {
        Result<std::string> contents2 = ReadLogFile(path);
        intact = contents2.ok() && ValidateSegmentContents(*contents2);
      }
      if (intact) {
        live_paths.insert(fs::weakly_canonical(path, ec).string());
        ++m;
      } else {
        GSN_LOG(kWarn, "columnar") << "discarding torn segment " << path;
        fs::remove(path, ec);
        ++discarded_on_recovery_;
        m = metas.erase(m);
      }
    }
    std::sort(metas.begin(), metas.end(),
              [](const SegmentMeta& a, const SegmentMeta& b) {
                return a.id < b.id;
              });
    if (metas.empty()) {
      it = by_table_.erase(it);
    } else {
      ++it;
    }
  }

  // Unjournaled segment files are flushes that crashed before their
  // journal append: the WAL still holds those rows, so the file must
  // go or recovery would duplicate them.
  std::error_code ec;
  for (auto entry = fs::recursive_directory_iterator(
           dir_, fs::directory_options::skip_permission_denied, ec);
       !ec && entry != fs::recursive_directory_iterator(); ++entry) {
    if (!entry->is_regular_file(ec)) continue;
    const fs::path& path = entry->path();
    if (path.extension() != std::string(kSegmentFileSuffix)) continue;
    std::error_code ec2;
    if (live_paths.count(fs::weakly_canonical(path, ec2).string())) continue;
    GSN_LOG(kWarn, "columnar") << "removing orphan segment file " << path.string();
    fs::remove(path, ec2);
    ++orphans_removed_;
  }
  return Status::OK();
}

Status SegmentCatalog::CompactJournalLocked() {
  if (journal_ != nullptr) {
    std::fclose(journal_);
    journal_ = nullptr;
  }
  std::string contents;
  for (const auto& [table, metas] : by_table_) {
    for (const SegmentMeta& meta : metas) {
      contents += FrameLogRecord(JournalRecord(kAddRecord, meta));
    }
  }
  const std::string path = dir_ + "/" + kJournalName;
  GSN_RETURN_IF_ERROR(WriteFileAtomic(path, contents));
  journal_ = std::fopen(path.c_str(), "ab");
  if (journal_ == nullptr) {
    return Status::IoError("cannot open catalog journal " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status SegmentCatalog::AppendJournalLocked(char kind, const SegmentMeta& meta) {
  if (journal_ == nullptr) {
    return Status::Internal("segment catalog journal is not open");
  }
  const std::string record = FrameLogRecord(JournalRecord(kind, meta));
  if (std::fwrite(record.data(), 1, record.size(), journal_) !=
      record.size()) {
    return Status::IoError("short write to segment catalog journal");
  }
  if (std::fflush(journal_) != 0) {
    return Status::IoError("flush failed for segment catalog journal");
  }
  // The journal append is the commit point a later WAL rewrite relies
  // on — it must be durable before the caller drops the rows' WAL copy.
  if (::fsync(::fileno(journal_)) != 0) {
    return Status::IoError("fsync failed for segment catalog journal: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

void SegmentCatalog::UpdateGaugesLocked() {
  if (count_gauge_ == nullptr) return;
  int64_t count = 0;
  int64_t bytes = 0;
  for (const auto& [table, metas] : by_table_) {
    count += static_cast<int64_t>(metas.size());
    for (const SegmentMeta& meta : metas) {
      bytes += static_cast<int64_t>(meta.bytes);
    }
  }
  count_gauge_->Set(count);
  bytes_gauge_->Set(bytes);
}

Result<SegmentMeta> SegmentCatalog::Flush(const std::string& table,
                                          const Schema& row_schema,
                                          const Relation::RowList& rows) {
  const std::string key = StrToLower(table);
  GSN_ASSIGN_OR_RETURN(
      EncodedSegment encoded,
      EncodeSegment(key, row_schema, rows, options_.rows_per_chunk));

  std::lock_guard<std::mutex> lock(mu_);
  SegmentMeta meta;
  meta.table = key;
  meta.id = next_id_++;
  meta.min_timed = encoded.min_timed;
  meta.max_timed = encoded.max_timed;
  meta.row_count = encoded.row_count;
  meta.chunk_count = encoded.chunk_count;
  meta.rows_crc = encoded.rows_crc;
  meta.bytes = encoded.contents.size();

  std::error_code ec;
  fs::create_directories(dir_ + "/" + key, ec);
  if (ec) {
    return Status::IoError("cannot create segment dir for " + key + ": " +
                           ec.message());
  }
  const std::string path = SegmentPath(meta);
  GSN_RETURN_IF_ERROR(WriteSegmentFile(path, encoded.contents));
  Status journaled = AppendJournalLocked(kAddRecord, meta);
  if (!journaled.ok()) {
    fs::remove(path, ec);
    return journaled;
  }
  by_table_[key].push_back(meta);
  UpdateGaugesLocked();
  return meta;
}

Status SegmentCatalog::Scan(const std::string& table, const Schema& row_schema,
                            const sql::ScanPredicate& predicate,
                            Relation::RowList* out,
                            sql::ScanStats* stats) const {
  std::vector<SegmentMeta> metas = SegmentsFor(table);
  if (metas.empty()) return Status::OK();

  // Bounds on the leading `timed` column prune whole segments off the
  // catalog metadata, without touching the file.
  std::vector<const sql::ScanBound*> timed_bounds;
  if (!row_schema.empty()) {
    const std::string timed_name = StrToLower(row_schema.field(0).name);
    for (const sql::ScanBound& bound : predicate.bounds) {
      if (bound.column == timed_name) timed_bounds.push_back(&bound);
    }
  }

  int64_t pruned_chunks = 0;
  int64_t scanned_rows = 0;
  for (const SegmentMeta& meta : metas) {
    if (stats != nullptr) ++stats->segments_total;
    bool prune = false;
    for (const sql::ScanBound* bound : timed_bounds) {
      if (!sql::RangeMayMatch(Value::TimestampVal(meta.min_timed),
                              Value::TimestampVal(meta.max_timed), *bound)) {
        prune = true;
        break;
      }
    }
    if (prune) {
      if (stats != nullptr) {
        stats->chunks_total += meta.chunk_count;
        stats->chunks_pruned += meta.chunk_count;
      }
      pruned_chunks += meta.chunk_count;
      continue;
    }
    if (stats != nullptr) ++stats->segments_scanned;
    Result<std::string> contents = ReadLogFile(SegmentPath(meta));
    if (!contents.ok()) {
      GSN_LOG(kWarn, "columnar") << "skipping unreadable segment " << SegmentPath(meta)
                    << ": " << contents.status().ToString();
      continue;
    }
    SegmentScanStats seg_stats;
    Status scanned = ScanSegmentContents(*contents, row_schema, predicate,
                                         out, &seg_stats);
    if (!scanned.ok()) {
      GSN_LOG(kWarn, "columnar") << "skipping corrupt segment " << SegmentPath(meta)
                    << ": " << scanned.ToString();
      continue;
    }
    if (stats != nullptr) {
      stats->chunks_total += seg_stats.chunks_total;
      stats->chunks_pruned += seg_stats.chunks_pruned;
      stats->segment_rows += seg_stats.rows_decoded;
    }
    pruned_chunks += seg_stats.chunks_pruned;
    scanned_rows += seg_stats.rows_decoded;
  }
  if (pruned_chunks > 0 && pruned_chunks_ != nullptr) {
    pruned_chunks_->Increment(pruned_chunks);
  }
  if (scanned_rows > 0 && scanned_rows_ != nullptr) {
    scanned_rows_->Increment(scanned_rows);
  }
  return Status::OK();
}

Status SegmentCatalog::DropTable(const std::string& table) {
  const std::string key = StrToLower(table);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_table_.find(key);
  if (it == by_table_.end()) return Status::OK();
  SegmentMeta drop;
  drop.table = key;
  GSN_RETURN_IF_ERROR(AppendJournalLocked(kDropRecord, drop));
  std::error_code ec;
  for (const SegmentMeta& meta : it->second) {
    fs::remove(SegmentPath(meta), ec);
  }
  fs::remove(dir_ + "/" + key, ec);  // rmdir if now empty
  by_table_.erase(it);
  UpdateGaugesLocked();
  return Status::OK();
}

std::vector<SegmentMeta> SegmentCatalog::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentMeta> out;
  for (const auto& [table, metas] : by_table_) {
    out.insert(out.end(), metas.begin(), metas.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentMeta& a, const SegmentMeta& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<SegmentMeta> SegmentCatalog::SegmentsFor(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_table_.find(StrToLower(table));
  if (it == by_table_.end()) return {};
  return it->second;
}

size_t SegmentCatalog::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [table, metas] : by_table_) n += metas.size();
  return n;
}

uint64_t SegmentCatalog::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [table, metas] : by_table_) {
    for (const SegmentMeta& meta : metas) n += meta.bytes;
  }
  return n;
}

}  // namespace gsn::storage::columnar

#ifndef GSN_STORAGE_COLUMNAR_SEGMENT_H_
#define GSN_STORAGE_COLUMNAR_SEGMENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "gsn/sql/scan_predicate.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::storage::columnar {

/// Immutable, time-partitioned columnar segment files: the cold tier
/// under each virtual sensor's live window. A segment holds the rows
/// one checkpoint evicted from the retention window, re-organized
/// column-wise so analytical scans touch only the chunks a query's
/// predicates cannot rule out.
///
/// On-disk layout: a sequence of CRC-framed records (the same
/// magic:u8 len:u32 payload crc32:u32 framing as PersistenceLog, so a
/// torn tail truncates identically on recovery):
///
///   header record  'H' version:u32 table row-schema row_count:u64
///                  min_timed:i64 max_timed:i64 group_count:u32
///   group record   'G' row_count:u32 field_count:u32 chunk*
///   footer record  'F' row_count:u64 rows_crc:u32
///
/// Each group covers up to rows_per_chunk consecutive rows; each chunk
/// is one field of that group:
///
///   chunk := encoding:u8 kind:u8 null_count:u32
///            has_zone:u8 [min:value max:value]
///            data_len:u32 data
///
/// A chunk's data starts with a null bitmap (ceil(rows/8) bytes, bit i
/// set = row i NULL) when null_count > 0, followed by the non-null
/// values in row order under `encoding`. The zone map is the min/max
/// of the non-null values under the SQL executor's comparison
/// semantics, so zone pruning agrees exactly with WHERE evaluation.
///
/// The footer doubles as the commit marker: a file without an intact
/// footer is an aborted flush and is discarded whole. `rows_crc` (a
/// CRC32 over the rows re-encoded as Codec stream elements) lets
/// recovery detect whether a WAL still holds the rows this segment
/// flushed, deduplicating the window/segment seam after a crash
/// between segment flush and WAL rewrite.
enum class ChunkEncoding : uint8_t {
  kRaw = 0,          ///< fixed-width values back to back (double, bool)
  kDeltaVarint = 1,  ///< zigzag varint deltas (int, timestamp)
  kDictionary = 2,   ///< string dictionary + RLE-compressed codes
  kGeneric = 3,      ///< Codec::EncodeValue per value (binary, mixed)
};

inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr std::string_view kSegmentFileSuffix = ".gsnseg";

/// A fully encoded segment plus the catalog-facing facts about it.
struct EncodedSegment {
  std::string contents;
  uint64_t row_count = 0;
  Timestamp min_timed = 0;
  Timestamp max_timed = 0;
  uint32_t chunk_count = 0;  ///< column chunks across all groups
  uint32_t rows_crc = 0;     ///< CRC32 over Codec-encoded source elements
};

/// The decoded header of a segment file.
struct SegmentHeader {
  uint32_t version = 0;
  std::string table;
  Schema row_schema;
  uint64_t row_count = 0;
  Timestamp min_timed = 0;
  Timestamp max_timed = 0;
  uint32_t group_count = 0;
};

/// Per-scan pruning counters for one segment.
struct SegmentScanStats {
  int64_t chunks_total = 0;
  int64_t chunks_pruned = 0;
  int64_t groups_total = 0;
  int64_t groups_pruned = 0;
  int64_t rows_decoded = 0;
};

/// Encodes `rows` (layout [timed, values...], matching `row_schema`)
/// into a segment for `table`. Rows must be non-empty; they are stored
/// in the order given (checkpoints evict oldest-first, so segments are
/// time-ordered end to end).
Result<EncodedSegment> EncodeSegment(const std::string& table,
                                     const Schema& row_schema,
                                     const Relation::RowList& rows,
                                     size_t rows_per_chunk);

/// Parses and validates the header record.
Result<SegmentHeader> ParseSegmentHeader(std::string_view contents);

/// True iff `contents` is a complete segment: intact header, every
/// group record present, and a footer whose row count matches.
bool ValidateSegmentContents(std::string_view contents);

/// Decodes the rows of `contents` whose groups survive zone-map
/// pruning under `predicate`, appending them (oldest first) to `out`.
/// `row_schema` must equal the stored schema. `stats` may be null.
Status ScanSegmentContents(std::string_view contents, const Schema& row_schema,
                           const sql::ScanPredicate& predicate,
                           Relation::RowList* out, SegmentScanStats* stats);

/// Re-encodes a stored row ([timed, values...]) as the Codec stream
/// element the WAL would hold — the unit `rows_crc` is computed over.
std::string EncodeRowAsElement(const Relation::Row& row);

/// CRC32 over `rows` re-encoded as stream elements (see rows_crc).
uint32_t RowsCrc(const Relation::RowList& rows, size_t count);

}  // namespace gsn::storage::columnar

#endif  // GSN_STORAGE_COLUMNAR_SEGMENT_H_

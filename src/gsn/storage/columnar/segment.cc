#include "gsn/storage/columnar/segment.h"

#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "gsn/sql/executor.h"
#include "gsn/storage/persistence_log.h"
#include "gsn/types/codec.h"
#include "gsn/util/strings.h"

namespace gsn::storage::columnar {
namespace {

constexpr uint8_t kHeaderRecord = 'H';
constexpr uint8_t kGroupRecord = 'G';
constexpr uint8_t kFooterRecord = 'F';

// -- varint / zigzag --------------------------------------------------------

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> GetVarint(std::string_view data, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    const uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
  return Status::IntegrityError("truncated varint in segment chunk");
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

Result<uint8_t> GetU8(std::string_view data, size_t* pos) {
  if (*pos >= data.size()) return Status::IntegrityError("truncated segment record");
  return static_cast<uint8_t>(data[(*pos)++]);
}

// -- zone maps --------------------------------------------------------------

/// Decides `lhs op rhs` under executor semantics; nullopt = undecidable.
std::optional<bool> Truth(sql::BinaryOp op, const Value& lhs,
                          const Value& rhs) {
  Result<Value> v = sql::EvalBinaryValues(op, lhs, rhs);
  if (!v.ok() || v->is_null()) return std::nullopt;
  Result<Value> b = v->CastTo(DataType::kBool);
  if (!b.ok()) return std::nullopt;
  return b->bool_value();
}

/// Running min/max over a chunk's non-null values, under the same
/// comparison semantics WHERE uses. Any undecidable comparison (mixed
/// kinds, blobs) invalidates the zone — the chunk is then never pruned.
struct ZoneBuilder {
  bool valid = true;
  bool any = false;
  Value min, max;

  void Update(const Value& v) {
    if (!valid) return;
    if (!any) {
      min = v;
      max = v;
      any = true;
      return;
    }
    std::optional<bool> lt = Truth(sql::BinaryOp::kLess, v, min);
    if (!lt.has_value()) {
      valid = false;
      return;
    }
    if (*lt) min = v;
    std::optional<bool> gt = Truth(sql::BinaryOp::kGreater, v, max);
    if (!gt.has_value()) {
      valid = false;
      return;
    }
    if (*gt) max = v;
  }

  bool has_zone() const { return valid && any; }
};

// -- chunk encode -----------------------------------------------------------

/// Picks the encoding for a column whose non-null values are `values`.
ChunkEncoding ClassifyColumn(const std::vector<const Value*>& values,
                             DataType* kind) {
  bool all_int = true, all_ts = true, all_double = true, all_bool = true,
       all_string = true;
  for (const Value* v : values) {
    all_int &= v->is_int();
    all_ts &= v->is_timestamp();
    all_double &= v->is_double();
    all_bool &= v->is_bool();
    all_string &= v->is_string();
  }
  if (!values.empty() && all_int) {
    *kind = DataType::kInt;
    return ChunkEncoding::kDeltaVarint;
  }
  if (!values.empty() && all_ts) {
    *kind = DataType::kTimestamp;
    return ChunkEncoding::kDeltaVarint;
  }
  if (!values.empty() && all_double) {
    *kind = DataType::kDouble;
    return ChunkEncoding::kRaw;
  }
  if (!values.empty() && all_bool) {
    *kind = DataType::kBool;
    return ChunkEncoding::kRaw;
  }
  if (!values.empty() && all_string) {
    *kind = DataType::kString;
    return ChunkEncoding::kDictionary;
  }
  *kind = DataType::kBinary;  // unused for kGeneric
  return ChunkEncoding::kGeneric;
}

void EncodeChunkData(ChunkEncoding encoding, DataType kind,
                     const std::vector<const Value*>& values,
                     std::string* out) {
  switch (encoding) {
    case ChunkEncoding::kDeltaVarint: {
      int64_t prev = 0;
      for (const Value* v : values) {
        const int64_t x =
            kind == DataType::kTimestamp ? v->timestamp_value()
                                         : v->int_value();
        PutVarint(ZigZag(x - prev), out);
        prev = x;
      }
      return;
    }
    case ChunkEncoding::kRaw: {
      if (kind == DataType::kBool) {
        for (const Value* v : values) {
          out->push_back(v->bool_value() ? 1 : 0);
        }
        return;
      }
      for (const Value* v : values) {
        const double d = v->double_value();
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        char buf[8];
        std::memcpy(buf, &bits, sizeof(bits));
        out->append(buf, sizeof(buf));
      }
      return;
    }
    case ChunkEncoding::kDictionary: {
      // First-occurrence dictionary, then RLE runs of codes.
      std::map<std::string_view, uint32_t> index;
      std::vector<std::string_view> dict;
      std::vector<uint32_t> codes;
      codes.reserve(values.size());
      for (const Value* v : values) {
        const std::string& s = v->string_value();
        auto [it, inserted] =
            index.emplace(s, static_cast<uint32_t>(dict.size()));
        if (inserted) dict.push_back(s);
        codes.push_back(it->second);
      }
      Codec::EncodeU32(static_cast<uint32_t>(dict.size()), out);
      for (std::string_view s : dict) Codec::EncodeString(s, out);
      for (size_t i = 0; i < codes.size();) {
        size_t run = 1;
        while (i + run < codes.size() && codes[i + run] == codes[i]) ++run;
        PutVarint(codes[i], out);
        PutVarint(run, out);
        i += run;
      }
      return;
    }
    case ChunkEncoding::kGeneric: {
      for (const Value* v : values) Codec::EncodeValue(*v, out);
      return;
    }
  }
}

Status DecodeChunkData(ChunkEncoding encoding, DataType kind,
                       std::string_view data, size_t non_null,
                       std::vector<Value>* out) {
  size_t pos = 0;
  out->clear();
  out->reserve(non_null);
  switch (encoding) {
    case ChunkEncoding::kDeltaVarint: {
      int64_t acc = 0;
      for (size_t i = 0; i < non_null; ++i) {
        GSN_ASSIGN_OR_RETURN(uint64_t raw, GetVarint(data, &pos));
        acc += UnZigZag(raw);
        out->push_back(kind == DataType::kTimestamp ? Value::TimestampVal(acc)
                                                    : Value::Int(acc));
      }
      break;
    }
    case ChunkEncoding::kRaw: {
      if (kind == DataType::kBool) {
        if (data.size() < non_null) {
          return Status::IntegrityError("truncated bool chunk");
        }
        for (size_t i = 0; i < non_null; ++i) {
          out->push_back(Value::Bool(data[i] != 0));
        }
        pos = non_null;
        break;
      }
      if (data.size() < non_null * 8) {
        return Status::IntegrityError("truncated double chunk");
      }
      for (size_t i = 0; i < non_null; ++i) {
        uint64_t bits;
        std::memcpy(&bits, data.data() + i * 8, sizeof(bits));
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        out->push_back(Value::Double(d));
      }
      pos = non_null * 8;
      break;
    }
    case ChunkEncoding::kDictionary: {
      GSN_ASSIGN_OR_RETURN(uint32_t dict_size, Codec::DecodeU32(data, &pos));
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        GSN_ASSIGN_OR_RETURN(std::string s, Codec::DecodeString(data, &pos));
        dict.push_back(std::move(s));
      }
      while (out->size() < non_null) {
        GSN_ASSIGN_OR_RETURN(uint64_t code, GetVarint(data, &pos));
        GSN_ASSIGN_OR_RETURN(uint64_t run, GetVarint(data, &pos));
        if (code >= dict.size() || run == 0 ||
            out->size() + run > non_null) {
          return Status::IntegrityError("corrupt dictionary run in segment chunk");
        }
        for (uint64_t i = 0; i < run; ++i) {
          out->push_back(Value::String(dict[code]));
        }
      }
      break;
    }
    case ChunkEncoding::kGeneric: {
      for (size_t i = 0; i < non_null; ++i) {
        GSN_ASSIGN_OR_RETURN(Value v, Codec::DecodeValue(data, &pos));
        out->push_back(std::move(v));
      }
      break;
    }
  }
  return Status::OK();
}

// -- parsed chunk header ----------------------------------------------------

struct ChunkView {
  ChunkEncoding encoding = ChunkEncoding::kGeneric;
  DataType kind = DataType::kBinary;
  uint32_t null_count = 0;
  bool has_zone = false;
  Value zone_min, zone_max;
  std::string_view data;
};

Status ParseChunk(std::string_view payload, size_t* pos, ChunkView* out) {
  GSN_ASSIGN_OR_RETURN(uint8_t encoding, GetU8(payload, pos));
  if (encoding > static_cast<uint8_t>(ChunkEncoding::kGeneric)) {
    return Status::IntegrityError("unknown chunk encoding");
  }
  out->encoding = static_cast<ChunkEncoding>(encoding);
  GSN_ASSIGN_OR_RETURN(uint8_t kind, GetU8(payload, pos));
  out->kind = static_cast<DataType>(kind);
  GSN_ASSIGN_OR_RETURN(out->null_count, Codec::DecodeU32(payload, pos));
  GSN_ASSIGN_OR_RETURN(uint8_t has_zone, GetU8(payload, pos));
  out->has_zone = has_zone != 0;
  if (out->has_zone) {
    GSN_ASSIGN_OR_RETURN(out->zone_min, Codec::DecodeValue(payload, pos));
    GSN_ASSIGN_OR_RETURN(out->zone_max, Codec::DecodeValue(payload, pos));
  }
  GSN_ASSIGN_OR_RETURN(uint32_t data_len, Codec::DecodeU32(payload, pos));
  if (*pos + data_len > payload.size()) {
    return Status::IntegrityError("truncated chunk data");
  }
  out->data = payload.substr(*pos, data_len);
  *pos += data_len;
  return Status::OK();
}

/// Field index → bounds that reference it (by lowercased column name).
std::map<size_t, std::vector<const sql::ScanBound*>> BindBounds(
    const Schema& row_schema, const sql::ScanPredicate& predicate) {
  std::map<size_t, std::vector<const sql::ScanBound*>> out;
  for (const sql::ScanBound& bound : predicate.bounds) {
    Result<size_t> idx = row_schema.IndexOf(bound.column);
    if (idx.ok()) out[*idx].push_back(&bound);
  }
  return out;
}

}  // namespace

std::string EncodeRowAsElement(const Relation::Row& row) {
  StreamElement e;
  if (!row.empty() && row[0].is_timestamp()) {
    e.timed = row[0].timestamp_value();
  }
  e.values.assign(row.begin() + (row.empty() ? 0 : 1), row.end());
  return Codec::EncodeElementToString(e);
}

uint32_t RowsCrc(const Relation::RowList& rows, size_t count) {
  std::string buf;
  for (size_t i = 0; i < count && i < rows.size(); ++i) {
    buf += EncodeRowAsElement(*rows[i]);
  }
  return Crc32(buf.data(), buf.size());
}

Result<EncodedSegment> EncodeSegment(const std::string& table,
                                     const Schema& row_schema,
                                     const Relation::RowList& rows,
                                     size_t rows_per_chunk) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot encode an empty segment");
  }
  if (rows_per_chunk == 0) rows_per_chunk = 1024;
  const size_t fields = row_schema.size();
  for (const Relation::SharedRow& row : rows) {
    if (row == nullptr || row->size() != fields) {
      return Status::InvalidArgument("row arity does not match schema for " +
                                     table);
    }
  }

  EncodedSegment seg;
  seg.row_count = rows.size();
  seg.min_timed = (*rows.front())[0].is_timestamp()
                      ? (*rows.front())[0].timestamp_value()
                      : 0;
  seg.max_timed = seg.min_timed;
  for (const Relation::SharedRow& row : rows) {
    if (!(*row)[0].is_timestamp()) continue;
    const Timestamp t = (*row)[0].timestamp_value();
    if (t < seg.min_timed) seg.min_timed = t;
    if (t > seg.max_timed) seg.max_timed = t;
  }
  seg.rows_crc = RowsCrc(rows, rows.size());

  const uint32_t group_count = static_cast<uint32_t>(
      (rows.size() + rows_per_chunk - 1) / rows_per_chunk);

  std::string header;
  header.push_back(static_cast<char>(kHeaderRecord));
  Codec::EncodeU32(kSegmentVersion, &header);
  Codec::EncodeString(table, &header);
  Codec::EncodeSchema(row_schema, &header);
  Codec::EncodeI64(static_cast<int64_t>(seg.row_count), &header);
  Codec::EncodeI64(seg.min_timed, &header);
  Codec::EncodeI64(seg.max_timed, &header);
  Codec::EncodeU32(group_count, &header);
  seg.contents += FrameLogRecord(header);

  for (size_t start = 0; start < rows.size(); start += rows_per_chunk) {
    const size_t end = std::min(rows.size(), start + rows_per_chunk);
    const size_t n = end - start;
    std::string group;
    group.push_back(static_cast<char>(kGroupRecord));
    Codec::EncodeU32(static_cast<uint32_t>(n), &group);
    Codec::EncodeU32(static_cast<uint32_t>(fields), &group);
    for (size_t f = 0; f < fields; ++f) {
      // Column-wise view of this group's field f.
      std::vector<bool> nulls(n, false);
      std::vector<const Value*> values;
      values.reserve(n);
      ZoneBuilder zone;
      for (size_t i = 0; i < n; ++i) {
        const Value& v = (*rows[start + i])[f];
        if (v.is_null()) {
          nulls[i] = true;
          continue;
        }
        values.push_back(&v);
        zone.Update(v);
      }
      DataType kind;
      const ChunkEncoding encoding = ClassifyColumn(values, &kind);
      const uint32_t null_count = static_cast<uint32_t>(n - values.size());

      group.push_back(static_cast<char>(encoding));
      group.push_back(static_cast<char>(kind));
      Codec::EncodeU32(null_count, &group);
      group.push_back(zone.has_zone() ? 1 : 0);
      if (zone.has_zone()) {
        Codec::EncodeValue(zone.min, &group);
        Codec::EncodeValue(zone.max, &group);
      }
      std::string data;
      if (null_count > 0) {
        std::string bitmap((n + 7) / 8, '\0');
        for (size_t i = 0; i < n; ++i) {
          if (nulls[i]) bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
        }
        data += bitmap;
      }
      EncodeChunkData(encoding, kind, values, &data);
      Codec::EncodeU32(static_cast<uint32_t>(data.size()), &group);
      group += data;
      ++seg.chunk_count;
    }
    seg.contents += FrameLogRecord(group);
  }

  std::string footer;
  footer.push_back(static_cast<char>(kFooterRecord));
  Codec::EncodeI64(static_cast<int64_t>(seg.row_count), &footer);
  Codec::EncodeU32(seg.rows_crc, &footer);
  seg.contents += FrameLogRecord(footer);
  return seg;
}

Result<SegmentHeader> ParseSegmentHeader(std::string_view contents) {
  std::vector<std::string_view> payloads;
  bool torn = false;
  ScanLogRecords(contents, &payloads, &torn);
  if (payloads.empty()) return Status::IntegrityError("segment has no header record");
  std::string_view payload = payloads[0];
  size_t pos = 0;
  SegmentHeader h;
  GSN_ASSIGN_OR_RETURN(uint8_t tag, GetU8(payload, &pos));
  if (tag != kHeaderRecord) return Status::IntegrityError("bad segment header tag");
  GSN_ASSIGN_OR_RETURN(h.version, Codec::DecodeU32(payload, &pos));
  if (h.version != kSegmentVersion) {
    return Status::IntegrityError("unsupported segment version " +
                            std::to_string(h.version));
  }
  GSN_ASSIGN_OR_RETURN(h.table, Codec::DecodeString(payload, &pos));
  GSN_ASSIGN_OR_RETURN(h.row_schema, Codec::DecodeSchema(payload, &pos));
  GSN_ASSIGN_OR_RETURN(int64_t row_count, Codec::DecodeI64(payload, &pos));
  h.row_count = static_cast<uint64_t>(row_count);
  GSN_ASSIGN_OR_RETURN(h.min_timed, Codec::DecodeI64(payload, &pos));
  GSN_ASSIGN_OR_RETURN(h.max_timed, Codec::DecodeI64(payload, &pos));
  GSN_ASSIGN_OR_RETURN(h.group_count, Codec::DecodeU32(payload, &pos));
  return h;
}

bool ValidateSegmentContents(std::string_view contents) {
  Result<SegmentHeader> header = ParseSegmentHeader(contents);
  if (!header.ok()) return false;
  std::vector<std::string_view> payloads;
  bool torn = false;
  ScanLogRecords(contents, &payloads, &torn);
  if (torn) return false;
  // header + groups + footer
  if (payloads.size() != static_cast<size_t>(header->group_count) + 2) {
    return false;
  }
  std::string_view footer = payloads.back();
  size_t pos = 0;
  Result<uint8_t> tag = GetU8(footer, &pos);
  if (!tag.ok() || *tag != kFooterRecord) return false;
  Result<int64_t> rows = Codec::DecodeI64(footer, &pos);
  if (!rows.ok() || static_cast<uint64_t>(*rows) != header->row_count) {
    return false;
  }
  return Codec::DecodeU32(footer, &pos).ok();
}

Status ScanSegmentContents(std::string_view contents, const Schema& row_schema,
                           const sql::ScanPredicate& predicate,
                           Relation::RowList* out, SegmentScanStats* stats) {
  GSN_ASSIGN_OR_RETURN(SegmentHeader header, ParseSegmentHeader(contents));
  if (!(header.row_schema == row_schema)) {
    return Status::IntegrityError("segment schema mismatch for table " +
                            header.table + ": stored " +
                            header.row_schema.ToString() + " vs live " +
                            row_schema.ToString());
  }
  std::vector<std::string_view> payloads;
  bool torn = false;
  ScanLogRecords(contents, &payloads, &torn);
  if (torn || payloads.size() != static_cast<size_t>(header.group_count) + 2) {
    return Status::IntegrityError("segment is torn or incomplete");
  }
  const auto bounds_by_field = BindBounds(row_schema, predicate);
  const size_t fields = row_schema.size();

  std::vector<ChunkView> chunks(fields);
  std::vector<std::vector<Value>> columns(fields);
  std::vector<std::vector<Value>> decoded(fields);
  for (uint32_t g = 0; g < header.group_count; ++g) {
    std::string_view payload = payloads[1 + g];
    size_t pos = 0;
    GSN_ASSIGN_OR_RETURN(uint8_t tag, GetU8(payload, &pos));
    if (tag != kGroupRecord) return Status::IntegrityError("bad group record tag");
    GSN_ASSIGN_OR_RETURN(uint32_t n, Codec::DecodeU32(payload, &pos));
    GSN_ASSIGN_OR_RETURN(uint32_t field_count, Codec::DecodeU32(payload, &pos));
    if (field_count != fields) {
      return Status::IntegrityError("group field count mismatch");
    }
    bool prune = false;
    for (size_t f = 0; f < fields; ++f) {
      GSN_RETURN_IF_ERROR(ParseChunk(payload, &pos, &chunks[f]));
      if (prune || !chunks[f].has_zone) continue;
      auto it = bounds_by_field.find(f);
      if (it == bounds_by_field.end()) continue;
      for (const sql::ScanBound* bound : it->second) {
        if (!sql::RangeMayMatch(chunks[f].zone_min, chunks[f].zone_max,
                                *bound)) {
          // No non-null value in this group can satisfy the conjunct,
          // and NULL rows fail it too: the whole group is dead.
          prune = true;
          break;
        }
      }
    }
    if (stats != nullptr) {
      ++stats->groups_total;
      stats->chunks_total += static_cast<int64_t>(fields);
    }
    if (prune) {
      if (stats != nullptr) {
        ++stats->groups_pruned;
        stats->chunks_pruned += static_cast<int64_t>(fields);
      }
      continue;
    }
    for (size_t f = 0; f < fields; ++f) {
      const ChunkView& chunk = chunks[f];
      const size_t non_null = n - chunk.null_count;
      std::string_view data = chunk.data;
      std::string_view bitmap;
      if (chunk.null_count > 0) {
        const size_t bitmap_len = (n + 7) / 8;
        if (data.size() < bitmap_len) {
          return Status::IntegrityError("truncated null bitmap");
        }
        bitmap = data.substr(0, bitmap_len);
        data = data.substr(bitmap_len);
      }
      GSN_RETURN_IF_ERROR(
          DecodeChunkData(chunk.encoding, chunk.kind, data, non_null,
                          &decoded[f]));
      std::vector<Value>& column = columns[f];
      column.clear();
      column.reserve(n);
      size_t next = 0;
      for (uint32_t i = 0; i < n; ++i) {
        const bool is_null =
            chunk.null_count > 0 &&
            (static_cast<uint8_t>(bitmap[i / 8]) >> (i % 8)) & 1;
        if (is_null) {
          column.push_back(Value::Null());
        } else {
          if (next >= decoded[f].size()) {
            return Status::IntegrityError("chunk value underflow");
          }
          column.push_back(std::move(decoded[f][next++]));
        }
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      Relation::Row row;
      row.reserve(fields);
      for (size_t f = 0; f < fields; ++f) row.push_back(columns[f][i]);
      out->push_back(Relation::MakeRow(std::move(row)));
    }
    if (stats != nullptr) stats->rows_decoded += n;
  }
  return Status::OK();
}

}  // namespace gsn::storage::columnar

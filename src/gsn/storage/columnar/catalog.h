#ifndef GSN_STORAGE_COLUMNAR_CATALOG_H_
#define GSN_STORAGE_COLUMNAR_CATALOG_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/sql/scan_predicate.h"
#include "gsn/storage/columnar/segment.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::storage::columnar {

/// Catalog-visible facts about one live segment file.
struct SegmentMeta {
  std::string table;  ///< lowercased table key
  uint64_t id = 0;
  Timestamp min_timed = 0;
  Timestamp max_timed = 0;
  uint64_t row_count = 0;
  uint32_t chunk_count = 0;
  uint32_t rows_crc = 0;
  uint64_t bytes = 0;  ///< segment file size
};

/// Tracks the live columnar segments of one container under
/// `<dir>/<table>/seg-<id>.gsnseg`, journaled in `<dir>/catalog.gsnlog`
/// (CRC-framed add/drop records, torn tail truncated like every GSN
/// append log).
///
/// Recovery (Open) replays the journal, then reconciles it against the
/// filesystem: journaled segments whose file is missing, truncated, or
/// footer-less are discarded (an aborted flush), and on-disk segment
/// files the journal does not know are deleted (a flush that crashed
/// before its journal append — the rows still live in the WAL, so
/// deleting the orphan is the exactly-once choice). The journal is
/// then compacted to the surviving set.
///
/// Flush durability order is the seam-correctness contract: segment
/// file write + fsync, THEN journal append + fsync, and only then may
/// the caller rewrite the WAL. A crash between the journal append and
/// the WAL rewrite leaves the flushed rows in both tiers; the caller
/// deduplicates at recovery using SegmentMeta::rows_crc (see
/// Container::DeploySpec).
///
/// Thread-safe.
class SegmentCatalog {
 public:
  struct Options {
    size_t rows_per_chunk = 1024;
    telemetry::MetricRegistry* metrics = nullptr;
    telemetry::Labels labels;  ///< e.g. {{"node", id}} for gauge labels
  };

  /// Opens (creating if needed) the catalog rooted at `dir`.
  static Result<std::unique_ptr<SegmentCatalog>> Open(const std::string& dir,
                                                      Options options);
  ~SegmentCatalog();

  SegmentCatalog(const SegmentCatalog&) = delete;
  SegmentCatalog& operator=(const SegmentCatalog&) = delete;

  /// Encodes `rows` into a new segment for `table` (lowercased key),
  /// writes + fsyncs the file, then journals it durably. On error
  /// nothing is adopted (a partial file is cleaned up by the next
  /// recovery) and the caller keeps ownership of the rows.
  Result<SegmentMeta> Flush(const std::string& table, const Schema& row_schema,
                            const Relation::RowList& rows);

  /// Scans `table`'s segments oldest-first, appending surviving rows
  /// to `out`. Segments whose [min_timed, max_timed] cannot satisfy a
  /// `timed` bound are skipped without touching the file; surviving
  /// segments are group-pruned via their chunk zone maps. `stats` may
  /// be null. Unreadable segments are skipped (they count as scanned
  /// but contribute no rows) — a query must not fail because one cold
  /// file went bad; the damage is logged once at recovery.
  Status Scan(const std::string& table, const Schema& row_schema,
              const sql::ScanPredicate& predicate, Relation::RowList* out,
              sql::ScanStats* stats) const;

  /// Drops and deletes every segment of `table` (operator undeploy).
  Status DropTable(const std::string& table);

  /// All live segments, ascending by id.
  std::vector<SegmentMeta> List() const;
  /// `table`'s live segments, ascending by id.
  std::vector<SegmentMeta> SegmentsFor(const std::string& table) const;

  size_t segment_count() const;
  uint64_t total_bytes() const;
  /// Journaled segments discarded at Open (torn/missing files).
  size_t discarded_on_recovery() const { return discarded_on_recovery_; }
  /// Unjournaled segment files deleted at Open.
  size_t orphans_removed() const { return orphans_removed_; }

  const std::string& dir() const { return dir_; }
  std::string SegmentPath(const SegmentMeta& meta) const;

 private:
  SegmentCatalog(std::string dir, Options options);

  Status ReplayJournalLocked();
  Status CompactJournalLocked();
  Status AppendJournalLocked(char kind, const SegmentMeta& meta);
  void UpdateGaugesLocked();

  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;
  std::map<std::string, std::vector<SegmentMeta>> by_table_;
  uint64_t next_id_ = 1;
  std::FILE* journal_ = nullptr;
  size_t discarded_on_recovery_ = 0;
  size_t orphans_removed_ = 0;

  std::shared_ptr<telemetry::Gauge> count_gauge_;
  std::shared_ptr<telemetry::Gauge> bytes_gauge_;
  std::shared_ptr<telemetry::Counter> pruned_chunks_;
  std::shared_ptr<telemetry::Counter> scanned_rows_;
};

}  // namespace gsn::storage::columnar

#endif  // GSN_STORAGE_COLUMNAR_CATALOG_H_

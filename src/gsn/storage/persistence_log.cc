#include "gsn/storage/persistence_log.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>

namespace gsn::storage {

namespace {
constexpr uint8_t kRecordMagic = 0xA7;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status FlushAndFsync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IoError("flush failed for " + path);
  }
  if (::fsync(::fileno(file)) != 0) {
    return Status::IoError("fsync failed for " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}
}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string FrameLogRecord(std::string_view payload) {
  std::string record;
  record.reserve(payload.size() + 9);
  record.push_back(static_cast<char>(kRecordMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  record.append(payload);
  const uint32_t crc = Crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return record;
}

size_t ScanLogRecords(std::string_view contents,
                      std::vector<std::string_view>* payloads,
                      bool* torn_tail) {
  if (torn_tail != nullptr) *torn_tail = false;
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t header_end = pos + 5;
    if (header_end > contents.size()) break;  // torn header
    if (static_cast<uint8_t>(contents[pos]) != kRecordMagic) break;
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(contents[pos + 1 + i]))
             << (8 * i);
    }
    const size_t payload_start = header_end;
    const size_t record_end = payload_start + len + 4;
    if (record_end > contents.size() || record_end < payload_start) {
      break;  // torn tail (or a length so corrupt it overflows)
    }
    uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<uint32_t>(
                        static_cast<uint8_t>(contents[payload_start + len + i]))
                    << (8 * i);
    }
    const std::string_view payload = contents.substr(payload_start, len);
    if (Crc32(payload.data(), payload.size()) != stored_crc) break;
    if (payloads != nullptr) payloads->push_back(payload);
    pos = record_end;
  }
  if (pos < contents.size() && torn_tail != nullptr) *torn_tail = true;
  return pos;
}

Result<std::string> ReadLogFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::string();  // first boot: empty history
  std::string contents;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  return contents;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open temp file: " + tmp);
  }
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), f) != contents.size()) {
    std::fclose(f);
    return Status::IoError("short write to " + tmp);
  }
  const Status synced = FlushAndFsync(f, tmp);
  std::fclose(f);
  if (!synced.ok()) return synced;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("rename " + tmp + " -> " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Result<std::unique_ptr<PersistenceLog>> PersistenceLog::Open(
    const std::string& path) {
  // Torn-tail repair: find the valid prefix and truncate anything after
  // it, so appends are never written behind a corrupt record (where
  // every future Recover would stop before them and silently lose them).
  GSN_ASSIGN_OR_RETURN(std::string contents, ReadLogFile(path));
  bool torn = false;
  const size_t valid_prefix = ScanLogRecords(contents, nullptr, &torn);
  if (torn) {
    std::error_code ec;
    std::filesystem::resize_file(path, valid_prefix, ec);
    if (ec) {
      return Status::IoError("cannot truncate torn tail of " + path + ": " +
                             ec.message());
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open persistence log: " + path);
  }
  return std::unique_ptr<PersistenceLog>(new PersistenceLog(path, f));
}

Result<std::unique_ptr<PersistenceLog>> PersistenceLog::Rewrite(
    const std::string& path, const std::vector<StreamElement>& elements) {
  std::string contents;
  for (const StreamElement& element : elements) {
    std::string payload;
    Codec::EncodeElement(element, &payload);
    contents += FrameLogRecord(payload);
  }
  GSN_RETURN_IF_ERROR(WriteFileAtomic(path, contents));
  return Open(path);
}

PersistenceLog::~PersistenceLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PersistenceLog::Append(const StreamElement& element) {
  std::string payload;
  Codec::EncodeElement(element, &payload);
  const std::string record = FrameLogRecord(payload);
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IoError("short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for " + path_);
  }
  ++appended_;
  return Status::OK();
}

Status PersistenceLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushAndFsync(file_, path_);
}

size_t PersistenceLog::appended_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

Result<std::vector<StreamElement>> PersistenceLog::Recover(
    const std::string& path, bool* truncated_tail) {
  GSN_ASSIGN_OR_RETURN(std::string contents, ReadLogFile(path));
  std::vector<std::string_view> payloads;
  ScanLogRecords(contents, &payloads, truncated_tail);
  std::vector<StreamElement> out;
  out.reserve(payloads.size());
  for (const std::string_view payload : payloads) {
    Result<StreamElement> elem = Codec::DecodeElementFromString(payload);
    if (!elem.ok()) {
      // An intact frame around an undecodable payload is corruption the
      // CRC missed; treat like a torn tail.
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    out.push_back(*std::move(elem));
  }
  return out;
}

}  // namespace gsn::storage

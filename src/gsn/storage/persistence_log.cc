#include "gsn/storage/persistence_log.h"

#include <array>
#include <memory>

namespace gsn::storage {

namespace {
constexpr uint8_t kRecordMagic = 0xA7;

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

uint32_t Crc32(const void* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<PersistenceLog>> PersistenceLog::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open persistence log: " + path);
  }
  return std::unique_ptr<PersistenceLog>(new PersistenceLog(path, f));
}

PersistenceLog::~PersistenceLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status PersistenceLog::Append(const StreamElement& element) {
  std::string payload;
  Codec::EncodeElement(element, &payload);
  std::string record;
  record.reserve(payload.size() + 9);
  record.push_back(static_cast<char>(kRecordMagic));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  record += payload;
  const uint32_t crc = Crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    record.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IoError("short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for " + path_);
  }
  ++appended_;
  return Status::OK();
}

size_t PersistenceLog::appended_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

Result<std::vector<StreamElement>> PersistenceLog::Recover(
    const std::string& path, bool* truncated_tail) {
  if (truncated_tail != nullptr) *truncated_tail = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // A missing log is an empty history, not an error: first boot.
    return std::vector<StreamElement>();
  }
  std::string contents;
  char buf[64 * 1024];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);

  std::vector<StreamElement> out;
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t header_end = pos + 5;
    if (header_end > contents.size()) break;  // torn header
    if (static_cast<uint8_t>(contents[pos]) != kRecordMagic) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(
                 static_cast<uint8_t>(contents[pos + 1 + i]))
             << (8 * i);
    }
    const size_t payload_start = header_end;
    const size_t record_end = payload_start + len + 4;
    if (record_end > contents.size()) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;  // torn tail
    }
    uint32_t stored_crc = 0;
    for (int i = 0; i < 4; ++i) {
      stored_crc |= static_cast<uint32_t>(static_cast<uint8_t>(
                        contents[payload_start + len + i]))
                    << (8 * i);
    }
    const std::string_view payload(contents.data() + payload_start, len);
    if (Crc32(payload.data(), payload.size()) != stored_crc) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    Result<StreamElement> elem = Codec::DecodeElementFromString(payload);
    if (!elem.ok()) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    out.push_back(*std::move(elem));
    pos = record_end;
  }
  if (pos < contents.size() && truncated_tail != nullptr) {
    *truncated_tail = true;
  }
  return out;
}

}  // namespace gsn::storage

#ifndef GSN_STORAGE_PERSISTENCE_LOG_H_
#define GSN_STORAGE_PERSISTENCE_LOG_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "gsn/types/codec.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::storage {

/// Append-only on-disk log of stream elements for one virtual sensor
/// with `<storage permanent-storage="true">`. The Java GSN delegated
/// durability to MySQL; here each permanent table owns one log file.
///
/// Record format: magic:u8 len:u32 payload crc32:u32, where payload is
/// Codec::EncodeElement. Recovery stops at the first corrupt or
/// truncated record (a torn tail write is expected after a crash) and
/// reports how many records were recovered. Open truncates such a torn
/// tail before appending, so post-crash appends land after the last
/// intact record instead of behind garbage that every future Recover
/// would stop at.
class PersistenceLog {
 public:
  /// Opens (creating if needed) the log at `path` for appending. A torn
  /// or corrupt tail left by a crash is truncated to the last intact
  /// record first.
  static Result<std::unique_ptr<PersistenceLog>> Open(const std::string& path);

  /// Atomically replaces the log at `path` with exactly `elements`
  /// (write temp file, fsync, rename) and returns a fresh append
  /// handle. This is the checkpoint/compaction primitive: rewriting
  /// with the rows still inside the table's retention window bounds the
  /// log — and therefore recovery — to O(window). Any prior handle on
  /// `path` must be destroyed before calling.
  static Result<std::unique_ptr<PersistenceLog>> Rewrite(
      const std::string& path, const std::vector<StreamElement>& elements);

  ~PersistenceLog();

  PersistenceLog(const PersistenceLog&) = delete;
  PersistenceLog& operator=(const PersistenceLog&) = delete;

  /// Appends one element and flushes it to the OS.
  Status Append(const StreamElement& element);

  /// Flushes and fsyncs the log to durable storage (drain shutdown).
  Status Sync();

  /// Reads every intact record from `path` (static: usable before
  /// opening for append). `truncated_tail` reports whether recovery
  /// stopped early due to a torn/corrupt record.
  static Result<std::vector<StreamElement>> Recover(const std::string& path,
                                                    bool* truncated_tail);

  const std::string& path() const { return path_; }
  /// Records appended through this handle.
  size_t appended_count() const;

 private:
  PersistenceLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  const std::string path_;
  std::FILE* file_;
  mutable std::mutex mu_;
  size_t appended_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) used for log records.
uint32_t Crc32(const void* data, size_t len);

// -- Record framing shared by every GSN append-log ------------------------
// (the per-sensor persistence logs above and the container manifest).

/// Frames one payload as magic:u8 len:u32 payload crc32:u32.
std::string FrameLogRecord(std::string_view payload);

/// Scans `contents` for intact records, appending each payload to
/// `payloads`. Returns the byte length of the valid prefix; anything
/// past it is a torn or corrupt tail (`torn_tail` is set when the
/// prefix does not cover the whole buffer).
size_t ScanLogRecords(std::string_view contents,
                      std::vector<std::string_view>* payloads,
                      bool* torn_tail);

/// Reads a whole file into `contents`. Missing file = empty contents
/// (first boot), not an error.
Result<std::string> ReadLogFile(const std::string& path);

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, flush + fsync, rename over the target.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace gsn::storage

#endif  // GSN_STORAGE_PERSISTENCE_LOG_H_

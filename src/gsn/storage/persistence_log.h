#ifndef GSN_STORAGE_PERSISTENCE_LOG_H_
#define GSN_STORAGE_PERSISTENCE_LOG_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/types/codec.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::storage {

/// Append-only on-disk log of stream elements for one virtual sensor
/// with `<storage permanent-storage="true">`. The Java GSN delegated
/// durability to MySQL; here each permanent table owns one log file.
///
/// Record format: magic:u8 len:u32 payload crc32:u32, where payload is
/// Codec::EncodeElement. Recovery stops at the first corrupt or
/// truncated record (a torn tail write is expected after a crash) and
/// reports how many records were recovered.
class PersistenceLog {
 public:
  /// Opens (creating if needed) the log at `path` for appending.
  static Result<std::unique_ptr<PersistenceLog>> Open(const std::string& path);

  ~PersistenceLog();

  PersistenceLog(const PersistenceLog&) = delete;
  PersistenceLog& operator=(const PersistenceLog&) = delete;

  /// Appends one element and flushes it to the OS.
  Status Append(const StreamElement& element);

  /// Reads every intact record from `path` (static: usable before
  /// opening for append). `truncated_tail` reports whether recovery
  /// stopped early due to a torn/corrupt record.
  static Result<std::vector<StreamElement>> Recover(const std::string& path,
                                                    bool* truncated_tail);

  const std::string& path() const { return path_; }
  /// Records appended through this handle.
  size_t appended_count() const;

 private:
  PersistenceLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  const std::string path_;
  std::FILE* file_;
  mutable std::mutex mu_;
  size_t appended_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) used for log records.
uint32_t Crc32(const void* data, size_t len);

}  // namespace gsn::storage

#endif  // GSN_STORAGE_PERSISTENCE_LOG_H_

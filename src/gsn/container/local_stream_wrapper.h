#ifndef GSN_CONTAINER_LOCAL_STREAM_WRAPPER_H_
#define GSN_CONTAINER_LOCAL_STREAM_WRAPPER_H_

#include <deque>
#include <mutex>
#include <string>

#include "gsn/wrappers/wrapper.h"

namespace gsn::container {

/// The `wrapper="local"` data source: feeds one virtual sensor from
/// another sensor *on the same container* (paper §2: "a virtual sensor
/// corresponds either to a data stream received directly from sensors
/// or to a data stream derived from other virtual sensors"). The
/// container resolves the address predicates against its own
/// deployments and registers a listener on the producer; elements are
/// queued here and drained by the consumer's stream source on Poll.
///
/// Unlike `remote`, no network hop or signature is involved — delivery
/// is the producer's in-process listener fan-out.
class LocalStreamWrapper : public wrappers::Wrapper {
 public:
  LocalStreamWrapper(Schema schema, std::string producer_name);

  const Schema& output_schema() const override { return schema_; }
  std::string type_name() const override { return "local"; }

  Result<std::vector<StreamElement>> Poll(Timestamp now) override;

  /// Called from the producer's output listener.
  void Push(StreamElement element);
  /// Enqueues a whole output batch under one lock acquisition.
  void PushBatch(const std::vector<StreamElement>& batch);
  /// After the producer is undeployed the wrapper keeps draining its
  /// queue but receives nothing new.
  void MarkProducerGone();

  const std::string& producer_name() const { return producer_name_; }
  bool producer_gone() const;
  int64_t received_count() const;

 private:
  const Schema schema_;
  const std::string producer_name_;

  mutable std::mutex mu_;
  std::deque<StreamElement> queue_;
  int64_t received_ = 0;
  bool producer_gone_ = false;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_LOCAL_STREAM_WRAPPER_H_

#ifndef GSN_CONTAINER_QUARANTINE_H_
#define GSN_CONTAINER_QUARANTINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "gsn/telemetry/metrics.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::container {

/// Bounded dead-letter store for poison tuples: when a virtual sensor's
/// processing step fails on a trigger, the offending elements land here
/// instead of being retried forever or silently dropped. Entries are
/// inspectable (web /api/v1/quarantine, management `quarantine`) and can
/// be taken back out for requeue into the originating stream source once
/// the operator has fixed the cause. At capacity the oldest entry is
/// evicted — quarantine protects the container's memory, not the tuple.
/// Thread-safe.
class QuarantineStore {
 public:
  struct Entry {
    uint64_t id = 0;            // monotonically increasing, never reused
    std::string sensor;         // virtual sensor whose processing failed
    std::string stream;         // input stream whose trigger failed
    std::string source_alias;   // requeue target source inside the stream
    std::string error;          // the Status message that condemned it
    Timestamp quarantined_at = 0;
    StreamElement element;
  };

  QuarantineStore(size_t capacity, telemetry::MetricRegistry* metrics);

  QuarantineStore(const QuarantineStore&) = delete;
  QuarantineStore& operator=(const QuarantineStore&) = delete;

  /// Adds one poison tuple; evicts the oldest entry when full. Returns
  /// the assigned id.
  uint64_t Add(const std::string& sensor, const std::string& stream,
               const std::string& source_alias, const std::string& error,
               Timestamp now, const StreamElement& element);

  /// Snapshot of all entries, oldest first.
  std::vector<Entry> List() const;

  /// Removes and returns entry `id` (for requeue). NotFound if it was
  /// never added or already evicted/taken.
  Result<Entry> Take(uint64_t id);

  /// Drops everything; returns how many entries were discarded.
  size_t Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::shared_ptr<telemetry::Counter> tuples_total_;
  std::shared_ptr<telemetry::Gauge> size_gauge_;

  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_QUARANTINE_H_

#include "gsn/container/descriptor_watcher.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::container {

namespace fs = std::filesystem;

DescriptorWatcher::DescriptorWatcher(Container* container,
                                     std::string directory)
    : container_(container), directory_(std::move(directory)) {}

Result<int> DescriptorWatcher::Scan() {
  std::error_code ec;
  if (!fs::is_directory(directory_, ec)) {
    return Status::IoError("descriptor directory missing: " + directory_);
  }

  // Fingerprint the current .xml files.
  std::map<std::string, int64_t> current;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(directory_, ec)) {
    if (ec) return Status::IoError("cannot list " + directory_);
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (StrToLower(path.extension().string()) != ".xml") continue;
    const auto mtime = fs::last_write_time(path, ec).time_since_epoch();
    const int64_t fingerprint =
        static_cast<int64_t>(mtime.count()) ^
        (static_cast<int64_t>(fs::file_size(path, ec)) << 1);
    current[path.filename().string()] = fingerprint;
  }

  int actions = 0;

  // Removed files: undeploy their sensors.
  for (auto it = files_.begin(); it != files_.end();) {
    if (current.count(it->first)) {
      ++it;
      continue;
    }
    if (!it->second.sensor_name.empty()) {
      const Status s = container_->Undeploy(it->second.sensor_name);
      if (s.ok()) {
        ++stats_.undeployed;
        ++actions;
        GSN_LOG(kInfo, "watcher")
            << it->first << " removed: undeployed '" << it->second.sensor_name
            << "'";
      }
    }
    it = files_.erase(it);
  }

  // New or changed files: (re)deploy.
  for (const auto& [filename, fingerprint] : current) {
    auto it = files_.find(filename);
    const bool is_new = it == files_.end();
    if (!is_new && it->second.mtime_and_size == fingerprint) continue;

    std::ifstream in(fs::path(directory_) / filename);
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string xml_text = ss.str();

    // Changed file whose old version was deployed: redeploy — but
    // validate the rewrite BEFORE undeploying anything, so an invalid
    // descriptor can never take down a running sensor.
    const bool was_deployed = !is_new && !it->second.sensor_name.empty();
    Result<vsensor::VirtualSensorSpec> parsed =
        vsensor::ParseDescriptor(xml_text);
    const Status valid = parsed.ok() ? parsed->Validate() : parsed.status();
    if (!valid.ok()) {
      if (was_deployed) {
        // Reject the rewrite; the old sensor keeps running. Remember
        // the fingerprint so the broken version is reported once.
        it->second.mtime_and_size = fingerprint;
        ++stats_.rejected;
        telemetry::MetricRegistry::Default()
            ->GetCounter("gsn_watcher_rejects_total", {},
                         "Rewritten descriptors rejected by validation "
                         "(old sensor kept running)")
            ->Increment();
        GSN_LOG(kWarn, "watcher")
            << filename << ": rewrite rejected, keeping '"
            << it->second.sensor_name << "' running: " << valid.ToString();
      } else {
        WatchedFile watched;
        watched.mtime_and_size = fingerprint;
        watched.failed = true;
        ++stats_.failed;
        GSN_LOG(kWarn, "watcher")
            << filename << ": invalid descriptor: " << valid.ToString();
        files_[filename] = std::move(watched);
      }
      continue;
    }

    std::string rollback_xml;
    if (was_deployed) {
      rollback_xml = it->second.deployed_xml;
      (void)container_->Undeploy(it->second.sensor_name);
    }

    WatchedFile watched;
    watched.mtime_and_size = fingerprint;
    Result<vsensor::VirtualSensor*> sensor = container_->Deploy(xml_text);
    if (sensor.ok()) {
      watched.sensor_name = (*sensor)->name();
      watched.deployed_xml = xml_text;
      if (was_deployed) {
        ++stats_.redeployed;
      } else {
        ++stats_.deployed;
      }
      ++actions;
      GSN_LOG(kInfo, "watcher")
          << filename << (was_deployed ? " changed: redeployed '"
                                       : " added: deployed '")
          << watched.sensor_name << "'";
    } else if (!was_deployed &&
               sensor.status().code() == StatusCode::kAlreadyExists &&
               container_->FindSensor(parsed->name) != nullptr) {
      // The container already runs this sensor — typically because
      // crash recovery replayed the manifest before the watcher's
      // first scan. Adopt it so overwriting or deleting the file
      // keeps redeploying/undeploying the live deployment.
      watched.sensor_name = parsed->name;
      watched.deployed_xml = xml_text;
      ++stats_.adopted;
      GSN_LOG(kInfo, "watcher")
          << filename << ": adopted already-running '" << watched.sensor_name
          << "' (recovered deployment)";
    } else {
      watched.failed = true;
      ++stats_.failed;
      GSN_LOG(kWarn, "watcher")
          << filename << ": deploy failed: " << sensor.status().ToString();
      if (was_deployed && !rollback_xml.empty()) {
        // The rewrite validated but failed at runtime (e.g. producer
        // gone) and the old sensor is already down — restore it.
        Result<vsensor::VirtualSensor*> restored =
            container_->Deploy(rollback_xml);
        if (restored.ok()) {
          watched.sensor_name = (*restored)->name();
          watched.deployed_xml = rollback_xml;
          ++stats_.rolled_back;
          GSN_LOG(kWarn, "watcher")
              << filename << ": rolled back to previous descriptor ('"
              << watched.sensor_name << "' restored)";
        } else {
          GSN_LOG(kError, "watcher")
              << filename
              << ": rollback failed too: " << restored.status().ToString();
        }
      }
    }
    files_[filename] = std::move(watched);
  }

  return actions;
}

}  // namespace gsn::container

#include "gsn/container/manifest.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "gsn/storage/persistence_log.h"
#include "gsn/util/strings.h"

namespace gsn::container {

namespace {

/// Event payload: kind:u8 name_len:u32 name xml. The frame around it
/// (magic/len/crc) comes from the shared log-record framing.
std::string EncodeEvent(const ContainerManifest::Event& event) {
  std::string payload;
  payload.push_back(static_cast<char>(event.kind));
  const uint32_t name_len = static_cast<uint32_t>(event.sensor_name.size());
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<char>((name_len >> (8 * i)) & 0xff));
  }
  payload += event.sensor_name;
  payload += event.descriptor_xml;
  return payload;
}

Result<ContainerManifest::Event> DecodeEvent(std::string_view payload) {
  if (payload.size() < 5) {
    return Status::ParseError("manifest event too short");
  }
  ContainerManifest::Event event;
  const uint8_t kind = static_cast<uint8_t>(payload[0]);
  if (kind != static_cast<uint8_t>(ContainerManifest::Event::Kind::kDeploy) &&
      kind !=
          static_cast<uint8_t>(ContainerManifest::Event::Kind::kUndeploy)) {
    return Status::ParseError("unknown manifest event kind " +
                              std::to_string(kind));
  }
  event.kind = static_cast<ContainerManifest::Event::Kind>(kind);
  uint32_t name_len = 0;
  for (int i = 0; i < 4; ++i) {
    name_len |= static_cast<uint32_t>(static_cast<uint8_t>(payload[1 + i]))
                << (8 * i);
  }
  if (payload.size() < 5 + static_cast<size_t>(name_len)) {
    return Status::ParseError("manifest event name truncated");
  }
  event.sensor_name = std::string(payload.substr(5, name_len));
  event.descriptor_xml = std::string(payload.substr(5 + name_len));
  return event;
}

}  // namespace

Result<std::unique_ptr<ContainerManifest>> ContainerManifest::Open(
    const std::string& path) {
  GSN_ASSIGN_OR_RETURN(std::string contents, storage::ReadLogFile(path));
  bool torn = false;
  const size_t valid_prefix =
      storage::ScanLogRecords(contents, nullptr, &torn);
  if (torn) {
    std::error_code ec;
    std::filesystem::resize_file(path, valid_prefix, ec);
    if (ec) {
      return Status::IoError("cannot truncate torn manifest tail of " + path +
                             ": " + ec.message());
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open container manifest: " + path);
  }
  return std::unique_ptr<ContainerManifest>(new ContainerManifest(path, f));
}

ContainerManifest::~ContainerManifest() {
  if (file_ != nullptr) std::fclose(file_);
}

Status ContainerManifest::AppendLocked(const Event& event) {
  const std::string record = storage::FrameLogRecord(EncodeEvent(event));
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::IoError("short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for " + path_);
  }
  ++appended_;
  return Status::OK();
}

Status ContainerManifest::AppendDeploy(const std::string& sensor_name,
                                       const std::string& descriptor_xml) {
  Event event;
  event.kind = Event::Kind::kDeploy;
  event.sensor_name = StrToLower(sensor_name);
  event.descriptor_xml = descriptor_xml;
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(event);
}

Status ContainerManifest::AppendUndeploy(const std::string& sensor_name) {
  Event event;
  event.kind = Event::Kind::kUndeploy;
  event.sensor_name = StrToLower(sensor_name);
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(event);
}

Status ContainerManifest::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed for " + path_);
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IoError("fsync failed for " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<std::vector<ContainerManifest::Event>> ContainerManifest::Recover(
    const std::string& path, bool* truncated_tail) {
  GSN_ASSIGN_OR_RETURN(std::string contents, storage::ReadLogFile(path));
  std::vector<std::string_view> payloads;
  storage::ScanLogRecords(contents, &payloads, truncated_tail);
  std::vector<Event> out;
  out.reserve(payloads.size());
  for (const std::string_view payload : payloads) {
    Result<Event> event = DecodeEvent(payload);
    if (!event.ok()) {
      if (truncated_tail != nullptr) *truncated_tail = true;
      break;
    }
    out.push_back(*std::move(event));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ContainerManifest::LiveSet(
    const std::vector<Event>& events) {
  std::vector<std::pair<std::string, std::string>> live;
  for (const Event& event : events) {
    auto it = live.begin();
    for (; it != live.end(); ++it) {
      if (it->first == event.sensor_name) break;
    }
    if (event.kind == Event::Kind::kDeploy) {
      if (it == live.end()) {
        live.emplace_back(event.sensor_name, event.descriptor_xml);
      } else {
        it->second = event.descriptor_xml;  // redeploy: keep the slot
      }
    } else if (it != live.end()) {
      live.erase(it);
    }
  }
  return live;
}

Status ContainerManifest::Compact(
    const std::vector<std::pair<std::string, std::string>>& live) {
  std::string contents;
  for (const auto& [name, xml] : live) {
    Event event;
    event.kind = Event::Kind::kDeploy;
    event.sensor_name = name;
    event.descriptor_xml = xml;
    contents += storage::FrameLogRecord(EncodeEvent(event));
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::fclose(file_);
  file_ = nullptr;
  GSN_RETURN_IF_ERROR(storage::WriteFileAtomic(path_, contents));
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot reopen compacted manifest: " + path_);
  }
  appended_ = 0;
  return Status::OK();
}

size_t ContainerManifest::appended_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

}  // namespace gsn::container

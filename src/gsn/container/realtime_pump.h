#ifndef GSN_CONTAINER_REALTIME_PUMP_H_
#define GSN_CONTAINER_REALTIME_PUMP_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "gsn/container/container.h"

namespace gsn::container {

/// Drives a container from a background thread in wall-clock time —
/// live deployments, as opposed to the deterministic virtual-clock
/// stepping used by tests and benchmarks. The pump calls
/// Container::Tick() every `interval` and, when a transport needs
/// driving (the simulator's deferred queue), also pumps delivery — a
/// no-op on real transports, which deliver from their own event loop.
///
/// Start/Stop are idempotent; the destructor stops the pump.
class RealtimePump {
 public:
  /// `network` may be null (single-node deployments). The container
  /// must outlive the pump.
  RealtimePump(Container* container, Timestamp interval_micros,
               network::Transport* network = nullptr);
  ~RealtimePump();

  RealtimePump(const RealtimePump&) = delete;
  RealtimePump& operator=(const RealtimePump&) = delete;

  void Start();
  void Stop();
  bool running() const { return running_.load(); }

  /// Completed tick rounds since Start.
  int64_t rounds() const { return rounds_.load(); }

 private:
  void Loop();

  Container* container_;
  const Timestamp interval_micros_;
  network::Transport* network_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> rounds_{0};
  bool stop_requested_ = false;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_REALTIME_PUMP_H_

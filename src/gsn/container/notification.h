#ifndef GSN_CONTAINER_NOTIFICATION_H_
#define GSN_CONTAINER_NOTIFICATION_H_

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/sql/ast.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn::container {

/// An event delivered to a subscriber: one output element of one
/// virtual sensor that satisfied the subscription's condition.
struct Notification {
  std::string sensor_name;
  Schema schema;  // element schema (without timed)
  StreamElement element;
};

/// Delivery channel abstraction (paper §4: "the notification manager
/// has an extensible architecture which allows the user to customize it
/// to any required notification channel"). Built-ins: callback and log;
/// users add e-mail/SMS/web-hook equivalents by subclassing.
class NotificationChannel {
 public:
  virtual ~NotificationChannel() = default;
  virtual void Deliver(const Notification& notification) = 0;
  virtual std::string name() const = 0;
};

/// Invokes a std::function per notification (the common in-process
/// channel; also how remote subscribers are bridged).
class CallbackChannel : public NotificationChannel {
 public:
  using Callback = std::function<void(const Notification&)>;
  explicit CallbackChannel(Callback callback)
      : callback_(std::move(callback)) {}
  void Deliver(const Notification& notification) override {
    callback_(notification);
  }
  std::string name() const override { return "callback"; }

 private:
  Callback callback_;
};

/// Writes one INFO log line per notification.
class LogChannel : public NotificationChannel {
 public:
  void Deliver(const Notification& notification) override;
  std::string name() const override { return "log"; }
};

/// Appends one NDJSON object per notification to a file — the
/// file-drop integration channel (webhook/e-mail equivalents subclass
/// NotificationChannel the same way). Thread-safe.
class FileChannel : public NotificationChannel {
 public:
  /// Opens `path` for appending; check ok() before subscribing.
  explicit FileChannel(const std::string& path);
  ~FileChannel() override;

  bool ok() const { return file_ != nullptr; }
  void Deliver(const Notification& notification) override;
  std::string name() const override { return "file"; }

 private:
  std::FILE* file_;
  std::mutex mu_;
};

/// Dispatches sensor output to subscribers. A subscription names a
/// sensor (or "*" for all), an optional SQL boolean condition over the
/// element's columns (plus `timed`), and a channel. Conditions are
/// parsed once at subscription time.
///
/// Thread-safe.
class NotificationManager {
 public:
  /// Fan-out telemetry (elements seen, deliveries, condition errors,
  /// fan-out latency) registers in `metrics`; a private registry is
  /// created when none is injected. A non-null `tracer` records a
  /// "notify.fanout" span (child of the element's trace) per element
  /// that has matching subscriptions.
  explicit NotificationManager(telemetry::MetricRegistry* metrics = nullptr,
                               telemetry::Tracer* tracer = nullptr);

  NotificationManager(const NotificationManager&) = delete;
  NotificationManager& operator=(const NotificationManager&) = delete;

  /// Subscribes `channel` to `sensor_name` ("*" = every sensor).
  /// `condition_sql` is a boolean expression like
  /// "temperature > 30 and light < 100"; empty = always fire.
  Result<int64_t> Subscribe(const std::string& sensor_name,
                            const std::string& condition_sql,
                            std::shared_ptr<NotificationChannel> channel);
  Status Unsubscribe(int64_t subscription_id);
  size_t NumSubscriptions() const;

  /// Evaluates all matching subscriptions against one output element
  /// and delivers notifications. Returns the number delivered.
  int OnElement(const std::string& sensor_name, const Schema& element_schema,
                const StreamElement& element);

  /// Batch variant: one subscription snapshot for the whole batch,
  /// then per-element condition evaluation and delivery in batch
  /// order — deliveries are identical to calling OnElement once per
  /// element. Returns the number delivered across the batch.
  int OnBatch(const std::string& sensor_name, const Schema& element_schema,
              const std::vector<StreamElement>& batch);

  /// Point-in-time view assembled from the registered metrics (kept as
  /// the pre-telemetry API).
  struct Stats {
    int64_t elements_seen = 0;
    int64_t delivered = 0;
    int64_t condition_errors = 0;
  };
  Stats stats() const;

 private:
  struct Subscription {
    std::string sensor_name;  // "*" matches all
    /// Compiled as `SELECT 1 FROM element WHERE (<condition>)`; null
    /// when the subscription is unconditional.
    std::unique_ptr<sql::SelectStmt> condition;
    std::shared_ptr<NotificationChannel> channel;
  };

  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  telemetry::Tracer* tracer_ = nullptr;
  std::shared_ptr<telemetry::Counter> elements_seen_;
  std::shared_ptr<telemetry::Counter> delivered_;
  std::shared_ptr<telemetry::Counter> condition_errors_;
  std::shared_ptr<telemetry::Histogram> fanout_micros_;

  mutable std::mutex mu_;
  std::map<int64_t, Subscription> subscriptions_;
  int64_t next_id_ = 1;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_NOTIFICATION_H_

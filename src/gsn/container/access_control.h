#ifndef GSN_CONTAINER_ACCESS_CONTROL_H_
#define GSN_CONTAINER_ACCESS_CONTROL_H_

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "gsn/util/result.h"

namespace gsn::container {

/// Operations gated by the access-control layer (paper §4: "the access
/// control layer ensures that access is provided only to entitled
/// parties").
enum class Permission {
  kRead,    // query a sensor / subscribe to its stream
  kDeploy,  // deploy or undeploy virtual sensors
  kAdmin,   // manage users and grants
};

/// API-key based access control for one container. Disabled by default
/// (open access, as in the paper's demo setup); once enabled, every
/// management/query entry point checks the caller's key.
///
/// Keys are stored as SHA-256 hashes. Grants are per-user: deploy and
/// admin are container-wide, read is per-sensor ("*" = all sensors).
///
/// Thread-safe.
class AccessControl {
 public:
  AccessControl() = default;

  AccessControl(const AccessControl&) = delete;
  AccessControl& operator=(const AccessControl&) = delete;

  bool enabled() const;
  /// Enabling requires at least one admin user to exist, otherwise the
  /// container would become unmanageable.
  Status Enable();
  void Disable();

  /// Creates a user with the given API key. `admin` users implicitly
  /// hold every permission.
  Status AddUser(const std::string& user, const std::string& api_key,
                 bool admin = false);
  Status RemoveUser(const std::string& user);

  /// Maps an API key to its user, or PermissionDenied.
  Result<std::string> Authenticate(const std::string& api_key) const;

  /// Grants `user` read access to `sensor_name` ("*" = every sensor).
  Status GrantRead(const std::string& user, const std::string& sensor_name);
  Status GrantDeploy(const std::string& user);
  Status RevokeRead(const std::string& user, const std::string& sensor_name);

  /// Checks whether the key may perform `permission` (on `sensor_name`
  /// for kRead). Always OK while disabled.
  Status Check(const std::string& api_key, Permission permission,
               const std::string& sensor_name = "") const;

 private:
  struct User {
    std::string key_hash;
    bool admin = false;
    bool can_deploy = false;
    std::set<std::string> readable_sensors;  // lowercased; "*" = all
  };

  static std::string HashKey(const std::string& api_key);

  mutable std::mutex mu_;
  bool enabled_ = false;
  std::map<std::string, User> users_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_ACCESS_CONTROL_H_

#ifndef GSN_CONTAINER_CONTAINER_H_
#define GSN_CONTAINER_CONTAINER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/container/access_control.h"
#include "gsn/container/integrity.h"
#include "gsn/container/local_stream_wrapper.h"
#include "gsn/container/manifest.h"
#include "gsn/container/notification.h"
#include "gsn/container/quarantine.h"
#include "gsn/container/query_manager.h"
#include "gsn/network/circuit_breaker.h"
#include "gsn/network/directory.h"
#include "gsn/network/protocol.h"
#include "gsn/network/remote_stream_wrapper.h"
#include "gsn/network/replay_buffer.h"
#include "gsn/network/retry_policy.h"
#include "gsn/network/transport.h"
#include "gsn/storage/columnar/catalog.h"
#include "gsn/storage/persistence_log.h"
#include "gsn/storage/table.h"
#include "gsn/telemetry/profiler.h"
#include "gsn/util/thread_pool.h"
#include "gsn/vsensor/descriptor_parser.h"
#include "gsn/vsensor/virtual_sensor.h"
#include "gsn/wrappers/system_wrapper.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::container {

/// A GSN container (paper Fig 2): hosts a pool of virtual sensors and
/// every service around them — the virtual sensor manager with its
/// life-cycle and input stream management, the storage layer, the query
/// manager (processor + repository), the notification manager, access
/// control, data integrity, and the peer-to-peer interface.
///
/// The container is driven by Tick(): it polls every sensor's sources,
/// runs pipelines, retries pending remote subscriptions, and enforces
/// lifetime bounds. With a VirtualClock this is fully deterministic;
/// live deployments call RunFor()/pump Tick from a thread.
///
/// Concurrency model (docs/CONCURRENCY.md). Deployments are
/// partitioned into N shards by hash of the lowercased sensor name;
/// each shard owns its deployment map, the WAL handles of its sensors,
/// and an instrumented TimedMutex (lock="shard-<i>"). Tick() fans one
/// drain task per shard out over a shared worker pool; per-sensor tick
/// exclusivity across concurrent Tick() drivers is a per-deployment
/// busy flag, not a global mutex. Lock-ordering rules:
///
///  - A shard lock may be held while taking LEAF locks only (a table,
///    a stream source queue, the quarantine store, the manifest, the
///    segment catalog, the metric registry, the snapshot cache).
///  - Never shard -> shard: cross-shard operations (GetStatus,
///    Checkpoint, snapshots, AnnounceAll, Shutdown) visit shards one
///    at a time, releasing each before the next.
///  - fed_mu_ ("federation": subscribers, remote subscriptions, peers,
///    pending publishes) and chain_mu_ ("chaining": the local-wrapper
///    fan-out map) are siblings of the shard locks: never held
///    together with one another or with a shard lock — every path
///    acquires them sequentially, never nested.
///  - chain_mu_ is held ACROSS LocalStreamWrapper::PushBatch so a
///    producer's fan-out can never race Undeploy destroying the
///    consumer; wrapper pushes only take source-queue leaf locks.
///  - snapshot_mu_ stays a leaf: system wrappers scrape the cached
///    snapshot without touching any shard/federation lock.
class Container : public network::NetworkNode {
 public:
  struct Options {
    std::string node_id = "gsn-node";
    std::shared_ptr<Clock> clock;           // default: shared SystemClock
    uint64_t seed = 1;                      // drives wrappers & sampling
    std::string storage_dir;                // "" disables permanent storage
    /// Crash-recovery root (--data-dir): holds the container manifest
    /// (and, when storage_dir is empty, the per-sensor persistence
    /// logs). A container constructed over a non-empty data_dir replays
    /// the manifest and redeploys every sensor that was live at the
    /// crash. "" disables the manifest entirely.
    std::string data_dir;
    /// Optional P2P fabric: the deterministic NetworkSimulator in
    /// tests, an EpollTransport over real sockets in gsnd deployments.
    network::Transport* network = nullptr;
    std::string integrity_key = "gsn-demo-key";
    /// Metric registry shared by every component the container owns
    /// (query manager, notification manager, sensors, sources). Null =
    /// the container creates and owns a private one — see metrics().
    telemetry::MetricRegistry* metrics = nullptr;
    /// Tracer shared by the whole tuple path (sources, sensors,
    /// notifications, query manager, remote delivery). A federation
    /// injects one tracer into all its nodes so cross-container traces
    /// land in one store. Null = the container owns a private tracer —
    /// see tracer(). Sampling starts off (rate 0); enable via
    /// tracer()->set_sample_rate or the `trace` management command.
    telemetry::Tracer* tracer = nullptr;
    /// Knobs of the federation resilience layer (docs/FEDERATION.md).
    /// The defaults suit second-scale links; chaos tests tighten them.
    struct Resilience {
      /// Liveness beacon broadcast period; also the spacing between
      /// circuit-breaker failure marks while a peer stays silent.
      Timestamp heartbeat_interval = kMicrosPerSecond;
      /// Peer silence beyond this starts accumulating breaker failures.
      Timestamp peer_timeout = 3 * kMicrosPerSecond;
      /// StreamTip (delivery high-water mark) period per subscription.
      Timestamp tip_interval = kMicrosPerSecond;
      /// An acked subscription whose stream goes silent this long —
      /// no admissible delivery and no credible tip — while its peer
      /// still answers heartbeats is assumed lost on a restarted
      /// producer (subscriber tables are not durable): the consumer
      /// rebinds it under a fresh id. The clock only runs against a
      /// live peer, so partitions and crashes pace by breaker/failover
      /// instead. Must comfortably exceed tip_interval; 0 disables.
      Timestamp subscription_silence_timeout = 10 * kMicrosPerSecond;
      /// Byte budget of each subscriber's producer-side replay buffer.
      size_t replay_buffer_bytes = 1 << 20;
      /// Extra directory-publish rounds after a deploy (anti-entropy
      /// re-announcement covers steady state).
      int publish_rounds = 3;
      /// Default backoff policy for subscribe/replay/publish retries;
      /// per-source `retry-*` predicates override it.
      network::RetryPolicy retry;
      network::CircuitBreaker::Config circuit;
    } resilience;
    /// Knobs of the supervised sensor lifecycle and overload
    /// protection (docs/DURABILITY.md).
    struct Supervision {
      /// Backoff between supervised sensor restarts; Exhausted() =>
      /// the sensor is marked FAILED and stops being scheduled.
      network::RetryPolicy retry;
      /// A restarted sensor that completes this many ticks without
      /// failing gets its restart budget back (restart_attempts resets
      /// to 0): retry.max_attempts caps CONSECUTIVE failures, so a
      /// handful of transient errors spread over weeks can never
      /// permanently FAIL a sensor. 0 disables the reset.
      int healthy_ticks_to_reset = 10;
      /// Default admission-queue bound per stream source (descriptor
      /// attribute queue-capacity overrides per source).
      int64_t queue_capacity = 4096;
      /// Default shed policy when an admission queue fills (descriptor
      /// attribute shed-policy overrides per source).
      vsensor::ShedPolicy shed_policy = vsensor::ShedPolicy::kDropOldest;
      /// Dead-letter store bound; oldest evicted beyond it.
      size_t quarantine_capacity = 256;
      /// Period of the WAL + manifest checkpoint; 0 disables automatic
      /// checkpoints (the `checkpoint` management command still works).
      Timestamp checkpoint_interval = 30 * kMicrosPerSecond;
    } supervision;
    /// Knobs of the tiered columnar history (docs/STORAGE.md). With a
    /// durability root (data_dir or storage_dir) present, checkpoints
    /// flush rows falling out of each permanent sensor's retention
    /// window into immutable columnar segments instead of discarding
    /// them; SQL then scans segments + live window as one relation.
    struct Columnar {
      /// False keeps the pre-tiered behaviour: evicted rows are gone.
      bool enabled = true;
      /// Rows per column-chunk group inside a segment — the zone-map
      /// pruning granularity.
      size_t rows_per_chunk = 1024;
      /// Bound on rows parked per table between a window eviction and
      /// the checkpoint flush; oldest dropped (and counted) beyond it.
      size_t max_pending_rows = 1 << 18;
    } columnar;
    /// Knobs of the sharded container core (docs/CONCURRENCY.md).
    struct Sharding {
      /// Number of deployment shards (hash of lowercased sensor name).
      /// 0 = hardware concurrency. Each shard owns its deployment map,
      /// its sensors' WAL handles, and its own instrumented TimedMutex,
      /// so deploy/undeploy/tick/checkpoint on different shards never
      /// contend.
      int shards = 0;
      /// Worker threads Tick() fans the per-shard drain tasks over.
      /// 0 = one per shard. 1 keeps the drain sequential (deterministic
      /// ordering for tests that need it).
      int tick_workers = 0;
    } sharding;
  };

  explicit Container(Options options);
  ~Container() override;

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  const std::string& node_id() const { return options_.node_id; }
  Clock* clock() const { return options_.clock.get(); }
  /// The registry all of this container's telemetry lands in (the one
  /// from Options, or the container-owned default). Rendered by the web
  /// interface's GET /metrics and the management `metrics` command.
  telemetry::MetricRegistry* metrics() const { return metrics_; }
  /// The tracer behind the container's tuple-path spans (the one from
  /// Options, or the container-owned default). Rendered by GET /traces
  /// and the management `traces` command.
  telemetry::Tracer* tracer() const { return tracer_; }

  // -- Deployment (the paper's headline feature) --------------------------

  /// Deploys a virtual sensor from its XML descriptor; wires wrappers,
  /// storage, directory publication, everything. `api_key` is checked
  /// against the access-control layer when enabled.
  Result<vsensor::VirtualSensor*> Deploy(const std::string& descriptor_xml,
                                         const std::string& api_key = "");
  Result<vsensor::VirtualSensor*> DeploySpec(vsensor::VirtualSensorSpec spec,
                                             const std::string& api_key = "");
  Status Undeploy(const std::string& sensor_name,
                  const std::string& api_key = "");
  std::vector<std::string> ListSensors() const;
  vsensor::VirtualSensor* FindSensor(const std::string& sensor_name) const;

  // -- Runtime --------------------------------------------------------------

  /// One scheduling round at the clock's current time. Returns the
  /// number of output elements produced across all sensors. Sensor
  /// failures do not propagate: the supervisor pauses the offending
  /// sensor for a backoff (its sources keep pumping into their
  /// admission queues) and marks it FAILED once restarts are exhausted.
  Result<int> Tick();

  // -- Durability & supervised lifecycle (docs/DURABILITY.md) --------------

  /// The supervisor's view of one sensor.
  enum class SensorState { kRunning = 0, kRestarting = 1, kFailed = 2 };
  static const char* SensorStateName(SensorState state);

  /// Checkpoint: compacts the container manifest to the live deploy
  /// set and rewrites every permanent sensor's WAL to its table's
  /// retention window, bounding recovery to O(window). Runs
  /// automatically every supervision.checkpoint_interval; callable any
  /// time (management `checkpoint`).
  Status Checkpoint();

  /// Graceful drain: stop admitting new wrapper load, flush what the
  /// admission queues already hold through the pipelines, checkpoint,
  /// and fsync every log. After Shutdown the destructor tears sensors
  /// down WITHOUT recording manifest undeploys, so a restart over the
  /// same data_dir redeploys them.
  Status Shutdown();
  bool draining() const;

  /// Liveness/readiness for the Kubernetes-style probes. Not-ready
  /// reasons: draining, a FAILED or restarting sensor, an admission
  /// queue at capacity.
  struct Health {
    bool live = true;
    bool ready = true;
    std::vector<std::string> reasons;
  };
  Health GetHealth() const;

  /// Dead-letter store of poison tuples (null only before construction
  /// completes).
  QuarantineStore& quarantine() { return *quarantine_; }
  const QuarantineStore& quarantine() const { return *quarantine_; }
  /// Takes quarantined tuple `id` and re-injects it into its
  /// originating stream source for the next poll (at-least-once).
  Status RequeueQuarantined(uint64_t id);

  /// The crash-recovery manifest (null when data_dir is empty).
  ContainerManifest* manifest() const { return manifest_.get(); }
  /// The tiered columnar history catalog (docs/STORAGE.md); null when
  /// columnar.enabled is false or no durability root is configured.
  storage::columnar::SegmentCatalog* segment_catalog() const {
    return segments_.get();
  }
  /// Manifest events replayed by the constructor's recovery pass.
  size_t recovered_records() const { return recovered_records_; }
  /// Sensors the recovery pass failed to redeploy (kept in the
  /// manifest; they retry on the next restart).
  size_t recovery_failures() const { return recovery_failures_; }

  // -- Queries & subscriptions ----------------------------------------------

  /// One-shot SQL over the sensor output tables (each deployed sensor's
  /// history is a table named after it).
  Result<Relation> Query(const std::string& sql_text,
                         const std::string& api_key = "");

  QueryManager& query_manager() { return query_manager_; }
  /// Resolver backing Query(): catalog tables (gsn_sensors,
  /// gsn_wrappers, gsn_directory) plus every sensor output table.
  const sql::TableResolver& catalog_resolver() const { return catalog_; }
  NotificationManager& notification_manager() { return notifications_; }
  AccessControl& access_control() { return access_control_; }
  const IntegrityService& integrity() const { return integrity_; }
  storage::TableManager& table_manager() { return tables_; }
  wrappers::WrapperRegistry& wrapper_registry() { return registry_; }

  // -- Discovery --------------------------------------------------------------

  /// Queries this node's directory replica by predicate combination.
  std::vector<network::DirectoryEntry> Discover(
      const std::map<std::string, std::string>& query) const;

  /// Rebroadcasts every locally hosted sensor's directory entry (used
  /// when a node joins the federation after deploys happened).
  void AnnounceAll();

  // -- network::NetworkNode ----------------------------------------------------

  void OnMessage(const network::Message& message) override;

  // -- Introspection ------------------------------------------------------------

  /// One edge of the container's data-flow graph: device wrappers into
  /// sensors, sensors into remote subscriber nodes.
  struct TopologyEdge {
    std::string from;
    std::string to;
    std::string label;
  };
  /// The container's current stream topology (for visualization).
  std::vector<TopologyEdge> Topology();

  struct SensorStatus {
    std::string name;
    vsensor::VirtualSensor::Stats stats;
    size_t stored_rows = 0;
    size_t stored_bytes = 0;
    int pool_size = 0;
    int64_t remote_subscribers = 0;
    SensorState state = SensorState::kRunning;
    int restart_attempts = 0;
    size_t queue_depth = 0;  // summed over the sensor's sources
    int64_t shed = 0;        // summed over the sensor's sources
  };
  Result<SensorStatus> GetSensorStatus(const std::string& sensor_name) const;

  /// Health of one known federation peer (everything this node has
  /// ever heard from), as exposed by /api/v1/peers and the `peers`
  /// management command.
  struct PeerStatus {
    std::string node_id;
    std::string circuit;  // "closed" | "open" | "half-open"
    Timestamp last_seen = 0;
    int64_t circuit_opened_total = 0;
  };
  std::vector<PeerStatus> PeerStatuses() const;

  /// Contention stats of one instrumented container lock.
  struct LockStats {
    std::string name;
    int64_t acquisitions = 0;
    int64_t contended = 0;
    int64_t wait_micros = 0;
  };

  /// Per-shard view of the sharded core: population, drain work, and
  /// the shard lock's contention profile — makes hot shards
  /// attributable from /api/v1/status and the `status` command.
  struct ShardStatus {
    int index = 0;
    size_t sensors = 0;
    /// Sensor pipeline drains executed by this shard's tick workers.
    int64_t ticks_total = 0;
    int64_t lock_acquisitions = 0;
    int64_t lock_contended = 0;
    int64_t lock_wait_micros = 0;
  };

  /// The unified machine-readable snapshot behind GET /api/v1/status
  /// and the argument-less management `status` command: sensors,
  /// queues, locks, hot spans, segments, peers, and build info joined
  /// into one view.
  struct ContainerStatus {
    std::string node_id;
    std::string version;
    std::string compiler;
    bool draining = false;
    Health health;
    /// Aggregate runtime/scheduling totals (same struct the
    /// wrapper="system" telemetry stream emits).
    wrappers::SystemSnapshot totals;
    std::vector<SensorStatus> sensors;
    std::vector<ShardStatus> shards;
    std::vector<PeerStatus> peers;
    std::vector<LockStats> locks;
    std::vector<telemetry::Profiler::SpanStats> hot_spans;
    size_t recovered_records = 0;
    size_t recovery_failures = 0;
  };
  ContainerStatus GetStatus() const;

  /// The health snapshot `wrapper="system"` sources scrape. Reads a
  /// cache refreshed once per Tick under its own small lock — never
  /// the container or tick locks — so a virtual sensor deployed over
  /// its own container's metrics cannot deadlock or self-amplify.
  wrappers::SystemSnapshot SystemSnapshotNow() const;

  /// The container's always-on span profiler (tick phases, storage and
  /// fan-out spans); TopSpans() feeds the status surface.
  const telemetry::Profiler& profiler() const { return profiler_; }

  /// The transport this container is attached to (null when
  /// standalone). `AsSimulator()` gates the simulator-only chaos
  /// controls; real transports return nullptr there.
  network::Transport* network() const { return options_.network; }

  /// Resolved shard count (Options::Sharding::shards, 0 = hardware
  /// concurrency at construction).
  int num_shards() const { return static_cast<int>(shards_.size()); }
  /// Shard index hosting `sensor_name` (hash of the lowercased name).
  int ShardIndexFor(const std::string& sensor_name) const;

 private:
  /// Everything owned on behalf of one deployed sensor (the life-cycle
  /// manager's bookkeeping). Mutable fields are guarded by the owning
  /// shard's lock; fields set before publication (key, sensor, table,
  /// local_sources, system_sources, deployed_at, expires_at) are
  /// immutable afterwards and safe to read off-lock.
  struct Deployment {
    std::string key;  // lowercased sensor name; shard-map key
    std::unique_ptr<vsensor::VirtualSensor> sensor;
    storage::Table* table = nullptr;  // owned by tables_
    /// Guarded by the shard lock: OnSensorBatch (tick workers) appends
    /// and Checkpoint() destroys/replaces the handle, both under the
    /// shard lock, so an append can never race a compaction swap
    /// (PersistenceLog::Rewrite requires the prior handle gone first).
    std::unique_ptr<storage::PersistenceLog> log;
    Timestamp deployed_at = 0;
    Timestamp expires_at = 0;  // 0 = never
    /// Per-sensor tick exclusivity (guarded by the shard lock): a tick
    /// worker sets it before draining this sensor and clears it after,
    /// so concurrent Tick() drivers skip rather than double-drain, and
    /// Undeploy waits on the shard's idle_cv until it clears before
    /// stopping the sensor — the lifetime barrier that used to be the
    /// per-sensor pool Shutdown().
    bool busy = false;
    // -- Supervision (docs/DURABILITY.md) --------------------------------
    SensorState state = SensorState::kRunning;
    int restart_attempts = 0;
    /// Ticks completed without failing since the last restart; at
    /// supervision.healthy_ticks_to_reset the restart budget is
    /// restored, so restart_attempts meters consecutive failures
    /// rather than lifetime totals.
    int healthy_ticks = 0;
    /// While kRestarting: the tick time at which processing resumes.
    Timestamp resume_at = 0;
    std::shared_ptr<telemetry::Gauge> state_gauge;
    std::shared_ptr<telemetry::Counter> restarts;
    /// wrapper="local" sources of this sensor (listeners detached at
    /// undeploy).
    std::vector<LocalStreamWrapper*> local_sources;
    /// wrapper="system" sources of this sensor; while any deployment
    /// has one, Tick() refreshes the snapshot cache they scrape.
    int system_sources = 0;
  };

  /// One partition of the deployment map. The shard lock guards the
  /// map and every mutable Deployment field of its members; WAL
  /// appends and checkpoint swaps of this shard's sensors run under
  /// it. Instrumented as lock="shard-<index>" with a shard label, so
  /// gsn_lock_wait_micros{lock="shard-<i>"} attributes contention per
  /// shard.
  struct Shard {
    int index = 0;
    mutable telemetry::TimedMutex mu;
    /// Signalled whenever a busy flag clears; Undeploy's barrier.
    std::condition_variable_any idle_cv;
    /// Lowercased sensor name -> deployment. shared_ptr: a tick worker
    /// pins the deployment it is draining, so Undeploy erasing the map
    /// entry can never free a sensor mid-tick.
    std::map<std::string, std::shared_ptr<Deployment>> deployments;
    /// Supervision backoff jitter (guarded by mu).
    Rng rng{1};
    // gsn_shard_* telemetry (docs/TELEMETRY.md).
    std::shared_ptr<telemetry::Gauge> sensors_gauge;
    std::shared_ptr<telemetry::Counter> ticks_total;
    std::shared_ptr<telemetry::Gauge> lock_wait_gauge;
  };

  /// A remote consumer of one of our sensors — the producer half of
  /// the resilient delivery protocol: a dense per-subscription sequence
  /// plus a bounded replay buffer serving NACKs.
  struct RemoteSubscriber {
    std::string sensor_name;
    std::string subscriber_node;
    uint64_t next_seq = 1;  // next sequence number to assign
    network::ReplayBuffer replay;
  };

  /// The consumer half of one of our subscriptions on a remote
  /// producer: subscribe-retry state until acked, then NACK pacing for
  /// gap repair, and enough context (predicates, owning deployment) to
  /// fail over to another matching producer when the peer's circuit
  /// opens.
  struct RemoteSubscription {
    network::RemoteStreamWrapper* wrapper = nullptr;  // owned by the sensor
    std::string deployment_key;  // lowercased owning sensor name
    std::string peer_node;       // current producer node
    std::map<std::string, std::string> predicates;  // discovery query
    network::RetryPolicy retry;
    bool acked = false;
    int subscribe_attempts = 0;
    Timestamp next_subscribe_at = 0;
    /// NACK pacing: attempts count only while the missing set is
    /// static — any progress (a range filled or split) resets them.
    std::vector<network::SeqRange> last_missing;
    int nack_attempts = 0;
    Timestamp next_nack_at = 0;
    /// Last proof the producer still carries this subscription: an
    /// ack, an admissible delivery, or a tip at/ahead of our cursor.
    /// Stale duplicates don't count — a restarted producer replays a
    /// fresh sequence space below our cursor, and that must read as
    /// silence, not liveness.
    Timestamp last_activity = 0;
  };

  /// Heartbeat-driven liveness of one federation peer.
  struct PeerState {
    Timestamp last_seen = 0;
    Timestamp last_failure_mark = 0;
    network::CircuitBreaker breaker;
    std::shared_ptr<telemetry::Gauge> circuit_gauge;
  };

  /// A directory publish still owed its retry rounds. Carries a copy
  /// of the spec so the resilience round (which holds fed_mu_) never
  /// has to reach into a shard's deployment map; Undeploy purges the
  /// entry by key.
  struct PendingPublish {
    std::string key;  // lowercased sensor name
    vsensor::VirtualSensorSpec spec;
    int round = 1;
    Timestamp next_at = 0;
  };

  /// One message to emit once mu_ is released (send-outside-lock
  /// discipline). Empty `to` means broadcast.
  struct Outbound {
    std::string to;
    std::string topic;
    std::string payload;
  };

  /// Builds the wrapper for one source; for wrapper="remote" this
  /// resolves the predicates against the directory replica, issues the
  /// subscription, and records the id in subs_by_deployment_ (under
  /// fed_mu_). `deployment_key` is the lowercased owning sensor name
  /// (failover bookkeeping for remote sources).
  Result<std::unique_ptr<wrappers::Wrapper>> MakeWrapperForSource(
      const vsensor::StreamSourceSpec& source_spec,
      const std::string& deployment_key, Deployment* deployment);
  void PublishSensor(const vsensor::VirtualSensorSpec& spec);
  void RetractSensor(const std::string& sensor_name);
  /// Drops every federation-side record of `key`'s deployment under
  /// fed_mu_ (its remote subscriptions, its pending publish rounds)
  /// and returns the cancelled subscription ids so the caller can
  /// broadcast unsubscribes outside the lock. Used by Undeploy and by
  /// DeploySpec's failure unwind.
  std::vector<std::string> CancelSubscriptionsFor(const std::string& key);

  /// Shard hosting `key` (hash of the lowercased sensor name).
  Shard& ShardFor(const std::string& key) const;
  /// Drains one shard at `now`: collects runnable deployments under
  /// the shard lock (setting busy flags), runs their pipelines outside
  /// it, then clears the flags and does the supervision bookkeeping.
  /// Returns elements produced. Runs on a tick_pool_ worker (or inline
  /// with a single shard).
  int TickShard(Shard& shard, Timestamp now);

  // -- Resilience layer (docs/FEDERATION.md) -------------------------------

  /// One maintenance round: heartbeat broadcast, peer failure marks
  /// and circuit transitions, subscribe retries, NACK rounds + gap
  /// abandonment, producer tips, and directory-publish retries. All
  /// federation state lives under fed_mu_; sends happen after release.
  void RunResilience(Timestamp now);
  /// Records liveness evidence for `from` (any received message).
  /// Returns true when this is the first evidence of the peer — on a
  /// real transport that triggers a directory re-announce so a peer
  /// that started (or restarted) after our publish rounds can still
  /// discover us.
  bool NotePeerAlive(const std::string& from, Timestamp now);
  /// Records transport-reported failure evidence (dial failure, reset,
  /// write error) against `peer`'s circuit breaker. Fired from the
  /// transport's event-loop thread on real transports; no-op for peers
  /// the resilience layer has never heard from (pre-contact dial
  /// retries are the transport's own business) and for non-node peer
  /// ids such as raw "ip:port" addresses of unidentified connections.
  void NotePeerError(const std::string& peer, const Status& error);
  PeerState& PeerStateLocked(const std::string& peer, Timestamp now);
  /// Whether traffic to `peer` may flow (circuit closed or probing).
  bool PeerAllowsSendLocked(const std::string& peer, Timestamp now);
  /// Re-resolves `sub`'s predicates against the directory, excluding
  /// open-circuit peers, and rebinds the wrapper onto a new producer
  /// under a fresh subscription id. Returns the sends it queued; false
  /// when no alternative producer matches.
  bool TryFailoverLocked(const std::string& old_id, Timestamp now,
                         std::vector<Outbound>* sends);
  /// Rebinds a silent-but-acked subscription onto the SAME peer under
  /// a fresh id with a reset sequence space: the producer answers
  /// heartbeats but no longer streams, which after a crash/restart
  /// means its (non-durable) subscriber table lost us. Re-subscribing
  /// under the old id would collide our high sequence cursor with the
  /// restarted producer's fresh one, so a new id it is.
  void RestartSubscriptionLocked(const std::string& old_id, Timestamp now,
                                 std::vector<Outbound>* sends);
  /// Consumes one pipeline trigger's output batch: single-lock table
  /// insert, local chaining, persistence, notification fan-out, one
  /// continuous-query evaluation pass, and per-element signed remote
  /// delivery.
  void OnSensorBatch(const vsensor::VirtualSensor& sensor,
                     const std::vector<StreamElement>& batch);

  // -- Supervision & recovery (docs/DURABILITY.md) --------------------------

  /// Records one failure of `key`'s sensor: pauses it for the retry
  /// policy's backoff, or marks it FAILED once the budget is spent.
  void HandleSensorFailure(const std::string& key, const Status& status,
                           Timestamp now);
  /// VirtualSensor::ErrorListener target — quarantines the failing
  /// trigger's elements, then hands the failure to the supervisor.
  void OnSensorError(const std::string& key,
                     const vsensor::VirtualSensor& sensor,
                     const std::string& stream_name, const Status& status,
                     const std::vector<StreamElement>& elements);
  /// Constructor-time crash recovery: opens the manifest under
  /// data_dir, replays its events, and redeploys the live set.
  void RecoverFromManifest();

  // -- Self-observation (docs/TELEMETRY.md) ---------------------------------

  /// Assembles a fresh SystemSnapshot (visits each shard lock and
  /// fed_mu_ one at a time; sums metric families). Called from Tick()
  /// to refresh the scrape cache and from GetStatus().
  wrappers::SystemSnapshot ComputeSystemSnapshot() const;
  /// Recomputes the snapshot cache system wrappers read. Skipped
  /// entirely while no wrapper="system" source is deployed, so the
  /// feature costs nothing when unused.
  void RefreshSystemSnapshot();

  /// System catalog exposed to SQL: virtual tables describing the
  /// container itself, falling back to the sensor output tables.
  class CatalogResolver : public sql::TableResolver {
   public:
    explicit CatalogResolver(Container* container) : container_(container) {}
    Result<Relation> GetTable(const std::string& name) const override;
    /// Sensor output tables get the tiered scan (segments + pending +
    /// live, zone-map pruned); the gsn_* virtual tables are built fresh
    /// per query and ignore the predicate.
    Result<Relation> GetTableFiltered(const std::string& name,
                                      const sql::ScanPredicate& predicate,
                                      sql::ScanStats* stats) const override;

   private:
    Container* container_;
  };

  Options options_;
  /// Private registry when Options.metrics was null; metrics_ points at
  /// whichever registry is live and is what members below register in,
  /// so these two must precede them in declaration order.
  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  telemetry::MetricRegistry* metrics_ = nullptr;
  /// Private tracer when Options.tracer was null; same ordering
  /// constraint as the registry (members below hold tracer_).
  std::unique_ptr<telemetry::Tracer> owned_tracer_;
  telemetry::Tracer* tracer_ = nullptr;
  std::shared_ptr<telemetry::Gauge> sensors_deployed_;
  wrappers::WrapperRegistry registry_;
  storage::TableManager tables_;
  CatalogResolver catalog_{this};
  QueryManager query_manager_;
  NotificationManager notifications_;
  AccessControl access_control_;
  IntegrityService integrity_;
  network::DirectoryService directory_;

  /// The sharded deployment core (see the class comment for the lock
  /// ordering). Sized at construction; the vector itself is immutable
  /// afterwards, so indexing it is lock-free.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Workers Tick() fans the per-shard drain tasks over. Shared by
  /// every concurrent Tick() driver; per-sensor busy flags keep the
  /// drains exclusive per sensor, not per driver.
  std::unique_ptr<ThreadPool> tick_pool_;
  /// Total deployments across shards (backs gsn_sensors_deployed).
  std::atomic<int64_t> total_deployments_{0};

  /// The federation lock (lock="federation"): guards subscribers_,
  /// remote_subs_, subs_by_deployment_, peers_, pending_publishes_,
  /// the announce/heartbeat/tip clocks, and resilience_rng_. Never
  /// held together with a shard lock or chain_mu_.
  mutable telemetry::TimedMutex fed_mu_;
  std::map<std::string, RemoteSubscriber> subscribers_;  // by subscription id
  /// Subscriptions we hold on remote producers, by our subscription id.
  std::map<std::string, RemoteSubscription> remote_subs_;
  /// Deployment key -> the subscription ids its remote sources hold
  /// (cancelled at undeploy; re-keyed on failover). Lives here rather
  /// than in Deployment so failover under fed_mu_ never has to take a
  /// shard lock.
  std::map<std::string, std::vector<std::string>> subs_by_deployment_;
  /// Federation peers we have heard from, with their circuit breakers.
  std::map<std::string, PeerState> peers_;
  std::vector<PendingPublish> pending_publishes_;
  int64_t next_subscription_ = 1;  // guarded by fed_mu_
  std::atomic<uint64_t> wrapper_seed_counter_{0};
  /// Anti-entropy: directory entries are re-broadcast periodically so
  /// peers converge even when individual publish messages are lost.
  Timestamp last_announce_ = 0;   // guarded by fed_mu_
  Timestamp last_heartbeat_ = 0;  // guarded by fed_mu_
  Timestamp last_tip_ = 0;        // guarded by fed_mu_
  uint64_t heartbeat_beat_ = 0;   // guarded by fed_mu_
  Rng resilience_rng_{1};  // backoff jitter; reseeded from options_.seed

  /// The chaining lock (lock="chaining"): guards local_wrappers_ and
  /// is held across PushBatch fan-out, so a push can never race the
  /// consumer's Undeploy (which detaches its wrappers under this lock
  /// before stopping the sensor). PushBatch only takes source-queue
  /// leaf locks, so holding chain_mu_ across it is cycle-free.
  mutable telemetry::TimedMutex chain_mu_;
  /// Local chaining: producer sensor (lowercased) -> consumer wrappers.
  std::multimap<std::string, LocalStreamWrapper*> local_wrappers_;
  // Federation resilience telemetry (docs/FEDERATION.md).
  std::shared_ptr<telemetry::Counter> fed_retries_subscribe_;
  std::shared_ptr<telemetry::Counter> fed_retries_replay_;
  std::shared_ptr<telemetry::Counter> fed_retries_publish_;
  std::shared_ptr<telemetry::Counter> fed_gaps_;
  std::shared_ptr<telemetry::Counter> fed_dups_;
  std::shared_ptr<telemetry::Counter> fed_replays_;
  std::shared_ptr<telemetry::Counter> fed_abandoned_;
  std::shared_ptr<telemetry::Counter> fed_failovers_;
  std::shared_ptr<telemetry::Counter> fed_resubscribes_;
  std::shared_ptr<telemetry::Gauge> replay_bytes_;

  // -- Durability & supervision (docs/DURABILITY.md) ------------------------
  std::unique_ptr<ContainerManifest> manifest_;  // null without data_dir
  /// Tiered columnar history (docs/STORAGE.md); null when disabled or
  /// no durability root exists. Declared before recovery runs so
  /// redeployed sensors can dedup pending rows against it.
  std::unique_ptr<storage::columnar::SegmentCatalog> segments_;
  std::unique_ptr<QuarantineStore> quarantine_;
  /// True while the constructor replays the manifest: redeploys must
  /// not append fresh manifest events.
  bool recovering_ = false;
  /// True once Shutdown()/the destructor begins teardown: those
  /// undeploys are process exit, not operator intent, so they must NOT
  /// record manifest undeploy events (the sensors come back on
  /// restart).
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> draining_{false};
  /// Guards only the checkpoint trigger clock: concurrent Tick()
  /// drivers race to it with try_lock, so at most one runs the
  /// periodic checkpoint and the rest skip instead of queueing.
  std::mutex checkpoint_mu_;
  Timestamp last_checkpoint_ = 0;  // guarded by checkpoint_mu_
  size_t recovered_records_ = 0;
  size_t recovery_failures_ = 0;
  std::shared_ptr<telemetry::Gauge> recovery_records_gauge_;
  std::shared_ptr<telemetry::Gauge> recovery_seconds_gauge_;

  // -- Self-observation (docs/TELEMETRY.md) ---------------------------------
  /// Tick-phase breakdown + batch storage/fan-out spans, always on.
  telemetry::Profiler profiler_;
  std::shared_ptr<telemetry::Histogram> tick_micros_;
  std::shared_ptr<telemetry::Histogram> tick_phase_resilience_;
  std::shared_ptr<telemetry::Histogram> tick_phase_dispatch_;
  std::shared_ptr<telemetry::Histogram> tick_phase_supervise_;
  std::shared_ptr<telemetry::Histogram> tick_phase_checkpoint_;
  std::shared_ptr<telemetry::Histogram> batch_storage_micros_;
  std::shared_ptr<telemetry::Histogram> batch_fanout_micros_;
  std::shared_ptr<telemetry::Gauge> build_info_;
  std::shared_ptr<telemetry::Gauge> uptime_gauge_;
  /// Steady-clock construction anchor for uptime.
  int64_t started_steady_micros_ = 0;
  /// Count of deployed wrapper="system" sources; refresh gate.
  std::atomic<int64_t> system_sources_total_{0};
  /// Guards ONLY the snapshot cache below; leaf lock. The cache
  /// readers (system wrappers mid-tick) never take any shard or
  /// federation lock, so no cycle is possible.
  mutable std::mutex snapshot_mu_;
  wrappers::SystemSnapshot system_snapshot_;  // guarded by snapshot_mu_
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_CONTAINER_H_

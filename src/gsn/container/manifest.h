#ifndef GSN_CONTAINER_MANIFEST_H_
#define GSN_CONTAINER_MANIFEST_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "gsn/util/result.h"

namespace gsn::container {

/// Durable record of the container's deployed set: an append-log of
/// deploy/undeploy events under the container's --data-dir, using the
/// same framed-record format as the per-sensor persistence logs
/// (docs/DURABILITY.md). A restarted container replays the manifest to
/// redeploy every descriptor that was live when the process died — the
/// paper's container "manages every aspect of the virtual sensor life
/// cycle"; this is the half of that promise that survives the manager
/// itself crashing.
///
/// Compact() rewrites the log to one deploy event per live sensor
/// (checkpoint), so the manifest — and recovery — stays O(deployed
/// sensors) instead of O(history).
class ContainerManifest {
 public:
  struct Event {
    enum class Kind : uint8_t { kDeploy = 1, kUndeploy = 2 };
    Kind kind = Kind::kDeploy;
    std::string sensor_name;     // lowercased key
    std::string descriptor_xml;  // empty for undeploy events
  };

  /// Opens (creating if needed) the manifest for appending. A torn or
  /// corrupt tail left by a crash is truncated first.
  static Result<std::unique_ptr<ContainerManifest>> Open(
      const std::string& path);

  ~ContainerManifest();

  ContainerManifest(const ContainerManifest&) = delete;
  ContainerManifest& operator=(const ContainerManifest&) = delete;

  Status AppendDeploy(const std::string& sensor_name,
                      const std::string& descriptor_xml);
  Status AppendUndeploy(const std::string& sensor_name);

  /// Flushes and fsyncs the manifest (drain shutdown).
  Status Sync();

  /// Reads every intact event from `path` (static: usable before
  /// opening for append). `truncated_tail` reports a torn tail.
  static Result<std::vector<Event>> Recover(const std::string& path,
                                            bool* truncated_tail);

  /// Replays `events` into the set of live deployments, as (name,
  /// descriptor-xml) pairs in first-deploy order — deploy order is
  /// preserved so wrapper="local" consumers redeploy after their
  /// producers. A redeploy of a live name updates its descriptor in
  /// place; an undeploy removes it.
  static std::vector<std::pair<std::string, std::string>> LiveSet(
      const std::vector<Event>& events);

  /// Checkpoint: atomically rewrites the manifest to one deploy event
  /// per entry of `live` and reopens the append handle.
  Status Compact(const std::vector<std::pair<std::string, std::string>>& live);

  const std::string& path() const { return path_; }
  /// Events appended through this handle (compaction resets it).
  size_t appended_count() const;

 private:
  ContainerManifest(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  Status AppendLocked(const Event& event);

  const std::string path_;
  std::FILE* file_;
  mutable std::mutex mu_;
  size_t appended_ = 0;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_MANIFEST_H_

#include "gsn/container/local_stream_wrapper.h"

namespace gsn::container {

LocalStreamWrapper::LocalStreamWrapper(Schema schema,
                                       std::string producer_name)
    : schema_(std::move(schema)), producer_name_(std::move(producer_name)) {}

Result<std::vector<StreamElement>> LocalStreamWrapper::Poll(Timestamp now) {
  (void)now;  // elements arrive whenever the producer fires
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StreamElement> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

void LocalStreamWrapper::Push(StreamElement element) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(element));
  ++received_;
}

void LocalStreamWrapper::PushBatch(const std::vector<StreamElement>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const StreamElement& element : batch) {
    queue_.push_back(element);
  }
  received_ += static_cast<int64_t>(batch.size());
}

void LocalStreamWrapper::MarkProducerGone() {
  std::lock_guard<std::mutex> lock(mu_);
  producer_gone_ = true;
}

bool LocalStreamWrapper::producer_gone() const {
  std::lock_guard<std::mutex> lock(mu_);
  return producer_gone_;
}

int64_t LocalStreamWrapper::received_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return received_;
}

}  // namespace gsn::container

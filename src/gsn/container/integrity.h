#ifndef GSN_CONTAINER_INTEGRITY_H_
#define GSN_CONTAINER_INTEGRITY_H_

#include <string>

#include "gsn/types/schema.h"

namespace gsn::container {

/// Data-integrity layer (paper §4: "the data integrity layer guarantees
/// data integrity and confidentiality through electronic signatures ...
/// this can be defined at different levels, for example, for the whole
/// GSN container or for an individual virtual sensor").
///
/// Stream elements are signed with HMAC-SHA256 over their canonical
/// Codec encoding plus the producing sensor's name, using a shared
/// container key (per-sensor keys are per-instance IntegrityService
/// objects). Confidentiality (encryption) is out of scope for the
/// simulator: the network is in-process.
class IntegrityService {
 public:
  explicit IntegrityService(std::string hmac_key)
      : hmac_key_(std::move(hmac_key)) {}

  IntegrityService(const IntegrityService&) = delete;
  IntegrityService& operator=(const IntegrityService&) = delete;

  /// Hex HMAC-SHA256 signature of `element` as produced by `sensor`.
  std::string Sign(const std::string& sensor_name,
                   const StreamElement& element) const;

  /// Verifies a signature (constant-time comparison).
  bool Verify(const std::string& sensor_name, const StreamElement& element,
              const std::string& signature) const;

 private:
  const std::string hmac_key_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_INTEGRITY_H_

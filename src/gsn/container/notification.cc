#include "gsn/container/notification.h"

#include "gsn/sql/executor.h"
#include "gsn/sql/parser.h"
#include "gsn/util/export.h"
#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::container {

void LogChannel::Deliver(const Notification& notification) {
  std::string values;
  for (size_t i = 0; i < notification.element.values.size(); ++i) {
    if (i > 0) values += ", ";
    values += notification.schema.field(i).name + "=" +
              notification.element.values[i].ToString();
  }
  GSN_LOG(kInfo, "notify") << notification.sensor_name << " @"
                           << notification.element.timed << " {" << values
                           << "}";
}

FileChannel::FileChannel(const std::string& path)
    : file_(std::fopen(path.c_str(), "ab")) {}

FileChannel::~FileChannel() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileChannel::Deliver(const Notification& notification) {
  if (file_ == nullptr) return;
  std::string line = "{\"sensor\":" + JsonEscape(notification.sensor_name) +
                     ",\"timed\":" + std::to_string(notification.element.timed);
  for (size_t i = 0; i < notification.element.values.size() &&
                     i < notification.schema.size();
       ++i) {
    const Value& v = notification.element.values[i];
    line += "," + JsonEscape(notification.schema.field(i).name) + ":";
    if (v.is_null()) {
      line += "null";
    } else if (v.is_numeric() || v.is_timestamp()) {
      line += v.ToString();
    } else {
      line += JsonEscape(v.ToString());
    }
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

NotificationManager::NotificationManager(telemetry::MetricRegistry* metrics,
                                         telemetry::Tracer* tracer)
    : tracer_(tracer) {
  telemetry::MetricRegistry* registry = metrics;
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    registry = owned_metrics_.get();
  }
  elements_seen_ = registry->GetCounter(
      "gsn_notifications_seen_total", {},
      "Sensor output elements examined by the notification manager");
  delivered_ = registry->GetCounter("gsn_notifications_delivered_total", {},
                                    "Notifications delivered to channels");
  condition_errors_ = registry->GetCounter(
      "gsn_notification_condition_errors_total", {},
      "Subscription conditions that failed to evaluate");
  fanout_micros_ = registry->GetHistogram(
      "gsn_notification_fanout_micros", {},
      "Per-element condition evaluation + delivery fan-out time");
}

Result<int64_t> NotificationManager::Subscribe(
    const std::string& sensor_name, const std::string& condition_sql,
    std::shared_ptr<NotificationChannel> channel) {
  if (channel == nullptr) {
    return Status::InvalidArgument("subscription requires a channel");
  }
  Subscription sub;
  sub.sensor_name = sensor_name;
  sub.channel = std::move(channel);
  if (!StrTrim(condition_sql).empty()) {
    GSN_ASSIGN_OR_RETURN(
        sub.condition,
        sql::ParseSelect("select 1 from element where (" + condition_sql +
                         ")"));
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t id = next_id_++;
  subscriptions_[id] = std::move(sub);
  return id;
}

Status NotificationManager::Unsubscribe(int64_t subscription_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subscriptions_.erase(subscription_id) == 0) {
    return Status::NotFound("no subscription " +
                            std::to_string(subscription_id));
  }
  return Status::OK();
}

size_t NotificationManager::NumSubscriptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscriptions_.size();
}

int NotificationManager::OnElement(const std::string& sensor_name,
                                   const Schema& element_schema,
                                   const StreamElement& element) {
  return OnBatch(sensor_name, element_schema, {element});
}

int NotificationManager::OnBatch(const std::string& sensor_name,
                                 const Schema& element_schema,
                                 const std::vector<StreamElement>& batch) {
  if (batch.empty()) return 0;
  // Collect matching subscriptions under the lock once per batch,
  // evaluate and deliver outside it (channels may be slow or
  // re-entrant).
  struct Pending {
    const sql::SelectStmt* condition;
    std::shared_ptr<NotificationChannel> channel;
  };
  std::vector<Pending> pending;
  elements_seen_->Increment(static_cast<int64_t>(batch.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, sub] : subscriptions_) {
      if (sub.sensor_name != "*" &&
          !StrEqualsIgnoreCase(sub.sensor_name, sensor_name)) {
        continue;
      }
      pending.push_back({sub.condition.get(), sub.channel});
    }
  }
  if (pending.empty()) return 0;

  int delivered = 0;
  for (const StreamElement& element : batch) {
    telemetry::Span trace_span(tracer_, "notify.fanout", element.trace);
    trace_span.set_sensor(sensor_name);
    telemetry::SpanTimer fanout_span(telemetry::SteadyClock::Instance(),
                                     fanout_micros_.get());

    // One-row relation exposing the element (and its timestamp) to the
    // condition expressions.
    Relation element_rel = Relation::FromElements(element_schema, {element});
    sql::MapResolver resolver;
    resolver.Put("element", std::move(element_rel));
    sql::Executor exec(&resolver);

    int element_delivered = 0;
    for (const Pending& p : pending) {
      bool fire = true;
      if (p.condition != nullptr) {
        Result<Relation> match = exec.Execute(*p.condition);
        if (!match.ok()) {
          condition_errors_->Increment();
          trace_span.set_error();
          continue;
        }
        fire = !match->empty();
      }
      if (!fire) continue;
      Notification n;
      n.sensor_name = sensor_name;
      n.schema = element_schema;
      n.element = element;
      p.channel->Deliver(n);
      ++element_delivered;
    }
    delivered_->Increment(element_delivered);
    delivered += element_delivered;
  }
  return delivered;
}

NotificationManager::Stats NotificationManager::stats() const {
  Stats stats;
  stats.elements_seen = elements_seen_->Value();
  stats.delivered = delivered_->Value();
  stats.condition_errors = condition_errors_->Value();
  return stats;
}

}  // namespace gsn::container

#ifndef GSN_CONTAINER_MANAGEMENT_INTERFACE_H_
#define GSN_CONTAINER_MANAGEMENT_INTERFACE_H_

#include <functional>
#include <string>
#include <vector>

#include "gsn/container/container.h"

namespace gsn::container {

/// Text-command facade over one container: the interface layer of
/// Fig 2, standing in for the Java GSN's web/web-services front end
/// (substitution documented in DESIGN.md — the demo's "monitor the
/// effective status of all parts of the system" runs through these
/// commands in the example binaries).
///
/// Commands are rows of a registry (name, argument help, description,
/// handler); `help` is generated from the registry so it can never go
/// stale. Highlights:
///   list / status / deploy / undeploy / describe / wrappers
///   query / query-json / query-csv / explain / plot
///   discover [k=v ...]            directory lookup by predicates
///   metrics / slowlog / trace / traces
///   peers                         federation peer health (circuit
///                                 state, last-seen, times opened)
///   segments                      columnar history tier (per-segment
///                                 rows, chunks, bytes, time range)
///   health                        liveness/readiness + reasons
///   quarantine [requeue <id>|clear]  dead-letter store of poison tuples
///   checkpoint                    compact manifest + WALs now
///   drain                         graceful drain (stop admitting,
///                                 flush, checkpoint, fsync)
///   chaos <sub> ...               fault injection on the attached
///                                 transport (docs/CHAOS.md): simulator
///                                 node-pair grammar or the chaos
///                                 transport's per-peer rule grammar
///
/// Every command returns the response text; errors are rendered as
/// "ERROR: <status>". An api key can be attached for containers with
/// access control enabled.
class ManagementInterface {
 public:
  explicit ManagementInterface(Container* container);

  ManagementInterface(const ManagementInterface&) = delete;
  ManagementInterface& operator=(const ManagementInterface&) = delete;

  /// Executes one command line.
  std::string Execute(const std::string& command_line);

  void set_api_key(std::string api_key) { api_key_ = std::move(api_key); }

 private:
  /// One registered command. `handler` receives the trimmed argument
  /// string (everything after the command word).
  struct Command {
    std::string name;
    std::string args_help;  // e.g. "<sensor>", "[k=v ...]"
    std::string help;       // one-line description
    std::function<std::string(const std::string& args)> handler;
  };

  std::string CmdHelp() const;
  std::string CmdList() const;
  std::string CmdStatus(const std::string& sensor) const;
  /// The argument-less `status`: the container-wide snapshot
  /// (GetStatus) as an operator-readable text block.
  std::string CmdContainerStatus() const;
  std::string CmdDeploy(const std::string& xml);
  std::string CmdUndeploy(const std::string& sensor);
  std::string CmdQuery(const std::string& sql);
  std::string CmdExplain(const std::string& args);
  std::string CmdPlot(const std::string& args);
  std::string CmdTopology() const;
  std::string CmdDiscover(const std::string& args) const;
  std::string CmdWrappers() const;
  std::string CmdDescribe(const std::string& sensor) const;
  std::string CmdMetrics() const;
  std::string CmdSlowlog(const std::string& args);
  std::string CmdTrace(const std::string& args);
  std::string CmdTraces(const std::string& args) const;
  std::string CmdPeers() const;
  std::string CmdTransport() const;
  std::string CmdSegments() const;
  std::string CmdHealth() const;
  std::string CmdQuarantine(const std::string& args);
  std::string CmdCheckpoint();
  std::string CmdDrain();
  std::string CmdChaos(const std::string& args);

  Container* container_;
  std::vector<Command> commands_;
  std::string api_key_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_MANAGEMENT_INTERFACE_H_

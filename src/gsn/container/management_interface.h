#ifndef GSN_CONTAINER_MANAGEMENT_INTERFACE_H_
#define GSN_CONTAINER_MANAGEMENT_INTERFACE_H_

#include <string>

#include "gsn/container/container.h"

namespace gsn::container {

/// Text-command facade over one container: the interface layer of
/// Fig 2, standing in for the Java GSN's web/web-services front end
/// (substitution documented in DESIGN.md — the demo's "monitor the
/// effective status of all parts of the system" runs through these
/// commands in the example binaries).
///
/// Commands:
///   help
///   list                           deployed sensors
///   status <sensor>                pipeline counters + storage usage
///   deploy <descriptor-xml>        deploy from inline XML
///   undeploy <sensor>
///   query <sql>                    one-shot SQL, table-formatted
///   discover [k=v ...]             directory lookup by predicates
///   wrappers                       registered wrapper types
///   describe <sensor>              descriptor XML round-tripped
///   metrics                        telemetry in Prometheus text format
///   slowlog [threshold-micros]     show / set the slow-query threshold
///                                  (no args also prints retained slow
///                                  queries with source + analyzed plan)
///   trace [rate]                   show / set the trace sample rate
///   traces [trace-id]              recorded spans, optionally one trace
///
/// Every command returns the response text; errors are rendered as
/// "ERROR: <status>". An api key can be attached for containers with
/// access control enabled.
class ManagementInterface {
 public:
  explicit ManagementInterface(Container* container)
      : container_(container) {}

  ManagementInterface(const ManagementInterface&) = delete;
  ManagementInterface& operator=(const ManagementInterface&) = delete;

  /// Executes one command line.
  std::string Execute(const std::string& command_line);

  void set_api_key(std::string api_key) { api_key_ = std::move(api_key); }

 private:
  std::string CmdList() const;
  std::string CmdStatus(const std::string& sensor) const;
  std::string CmdDeploy(const std::string& xml);
  std::string CmdUndeploy(const std::string& sensor);
  std::string CmdQuery(const std::string& sql);
  std::string CmdDiscover(const std::string& args) const;
  std::string CmdWrappers() const;
  std::string CmdDescribe(const std::string& sensor) const;
  std::string CmdMetrics() const;
  std::string CmdSlowlog(const std::string& args);
  std::string CmdTrace(const std::string& args);
  std::string CmdTraces(const std::string& args) const;

  Container* container_;
  std::string api_key_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_MANAGEMENT_INTERFACE_H_

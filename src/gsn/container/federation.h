#ifndef GSN_CONTAINER_FEDERATION_H_
#define GSN_CONTAINER_FEDERATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/network/simulator.h"
#include "gsn/util/clock.h"

namespace gsn::container {

/// A small Sensor Internet: several GSN containers on one simulated
/// network sharing one virtual clock — the multi-node setup of the
/// paper's demonstration (Fig 5: four sensor networks on three GSN
/// nodes). Owns the clock, the network, and the containers, and
/// provides the scheduling loop that advances them together.
class Federation {
 public:
  explicit Federation(uint64_t seed = 1);

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Creates and registers a container. `storage_dir` enables permanent
  /// storage for sensors that request it.
  Result<Container*> AddNode(const std::string& node_id,
                             const std::string& storage_dir = "");
  /// Removes a node (its published sensors are retracted from peers).
  Status RemoveNode(const std::string& node_id);
  Container* node(const std::string& node_id) const;
  std::vector<std::string> NodeIds() const;

  std::shared_ptr<VirtualClock> clock() const { return clock_; }
  network::NetworkSimulator& network() { return network_; }
  /// Federation-wide tracer (injected into every node), so a tuple
  /// crossing containers lands all its spans in one store. Enable with
  /// tracer().set_sample_rate(rate).
  telemetry::Tracer& tracer() { return tracer_; }

  /// Advances virtual time by `step` and runs one round: deliver due
  /// network messages, then Tick every container. Returns total output
  /// elements produced this round.
  Result<int> Step(Timestamp step);

  /// Runs Step(step) until `duration` has elapsed. Returns total output
  /// elements produced.
  Result<int> RunFor(Timestamp duration, Timestamp step);

 private:
  std::shared_ptr<VirtualClock> clock_;
  network::NetworkSimulator network_;
  /// Declared before nodes_: containers hold a pointer to this tracer,
  /// so it must outlive them during destruction.
  telemetry::Tracer tracer_;
  std::map<std::string, std::unique_ptr<Container>> nodes_;
  uint64_t seed_;
  uint64_t node_counter_ = 0;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_FEDERATION_H_

#ifndef GSN_CONTAINER_DESCRIPTOR_WATCHER_H_
#define GSN_CONTAINER_DESCRIPTOR_WATCHER_H_

#include <map>
#include <string>

#include "gsn/container/container.h"

namespace gsn::container {

/// Hot deployment from a descriptor directory — how the original GSN
/// is operated: drop a `.xml` descriptor into the watched directory and
/// the sensor deploys; delete the file and it undeploys; overwrite it
/// and the sensor redeploys with the new configuration. This is the
/// "fast and simple deployment ... without any programming effort just
/// by providing a simple XML configuration file" workflow of §6.
///
/// The watcher polls (no inotify dependency): call Scan() from the same
/// cadence that drives Container::Tick — the Federation loop, a
/// RealtimePump wrapper, or a test. Files that fail to parse or deploy
/// are reported once per content-version and retried only when the file
/// changes (so a descriptor waiting on a remote producer can be fixed
/// by touching it after the producer appears).
class DescriptorWatcher {
 public:
  DescriptorWatcher(Container* container, std::string directory);

  DescriptorWatcher(const DescriptorWatcher&) = delete;
  DescriptorWatcher& operator=(const DescriptorWatcher&) = delete;

  /// One reconciliation round. Returns the number of deploy/undeploy
  /// actions taken, or an error if the directory is unreadable.
  Result<int> Scan();

  const std::string& directory() const { return directory_; }

  struct Stats {
    int64_t deployed = 0;
    int64_t undeployed = 0;
    int64_t redeployed = 0;
    int64_t failed = 0;
  };
  Stats stats() const { return stats_; }

 private:
  struct WatchedFile {
    int64_t mtime_and_size = 0;  // change fingerprint
    std::string sensor_name;     // empty if the deploy failed
    bool failed = false;
  };

  Container* container_;
  const std::string directory_;
  std::map<std::string, WatchedFile> files_;  // by filename
  Stats stats_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_DESCRIPTOR_WATCHER_H_

#ifndef GSN_CONTAINER_DESCRIPTOR_WATCHER_H_
#define GSN_CONTAINER_DESCRIPTOR_WATCHER_H_

#include <map>
#include <string>

#include "gsn/container/container.h"

namespace gsn::container {

/// Hot deployment from a descriptor directory — how the original GSN
/// is operated: drop a `.xml` descriptor into the watched directory and
/// the sensor deploys; delete the file and it undeploys; overwrite it
/// and the sensor redeploys with the new configuration. This is the
/// "fast and simple deployment ... without any programming effort just
/// by providing a simple XML configuration file" workflow of §6.
///
/// The watcher polls (no inotify dependency): call Scan() from the same
/// cadence that drives Container::Tick — the Federation loop, a
/// RealtimePump wrapper, or a test. Files that fail to parse or deploy
/// are reported once per content-version and retried only when the file
/// changes (so a descriptor waiting on a remote producer can be fixed
/// by touching it after the producer appears).
///
/// Reloads are safe: a rewritten descriptor is parsed and validated
/// BEFORE the old sensor is touched — an invalid rewrite is rejected
/// (logged + counted in stats().rejected and
/// gsn_watcher_rejects_total) and the old sensor keeps running. If the
/// validated deploy still fails at runtime (e.g. its producer
/// vanished), the watcher rolls the old descriptor back.
class DescriptorWatcher {
 public:
  DescriptorWatcher(Container* container, std::string directory);

  DescriptorWatcher(const DescriptorWatcher&) = delete;
  DescriptorWatcher& operator=(const DescriptorWatcher&) = delete;

  /// One reconciliation round. Returns the number of deploy/undeploy
  /// actions taken, or an error if the directory is unreadable.
  Result<int> Scan();

  const std::string& directory() const { return directory_; }

  struct Stats {
    int64_t deployed = 0;
    int64_t undeployed = 0;
    int64_t redeployed = 0;
    int64_t failed = 0;
    /// Rewritten descriptors rejected before touching the old sensor
    /// (parse/validation failure); the old deployment kept running.
    int64_t rejected = 0;
    /// Validated redeploys that failed at runtime and were rolled back
    /// to the previous descriptor.
    int64_t rolled_back = 0;
    /// Files whose sensor was already running (crash recovery replayed
    /// the manifest first); the watcher adopted the live deployment.
    int64_t adopted = 0;
  };
  Stats stats() const { return stats_; }

 private:
  struct WatchedFile {
    int64_t mtime_and_size = 0;  // change fingerprint
    std::string sensor_name;     // empty if the deploy failed
    /// The descriptor text currently deployed for this file (rollback
    /// source when a rewrite fails after the old sensor is gone).
    std::string deployed_xml;
    bool failed = false;
  };

  Container* container_;
  const std::string directory_;
  std::map<std::string, WatchedFile> files_;  // by filename
  Stats stats_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_DESCRIPTOR_WATCHER_H_

#include "gsn/container/container.h"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <thread>

#include "gsn/sql/parser.h"
#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::container {

using network::DirectoryEntry;
using network::Message;
using network::RemoteStreamWrapper;
using vsensor::StreamSource;
using vsensor::VirtualSensor;
using vsensor::VirtualSensorSpec;

Container::Container(Options options)
    : options_(std::move(options)),
      owned_metrics_(options_.metrics == nullptr
                         ? std::make_unique<telemetry::MetricRegistry>()
                         : nullptr),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : owned_metrics_.get()),
      owned_tracer_(options_.tracer == nullptr
                        ? std::make_unique<telemetry::Tracer>()
                        : nullptr),
      tracer_(options_.tracer != nullptr ? options_.tracer
                                         : owned_tracer_.get()),
      query_manager_(&catalog_, metrics_),
      notifications_(metrics_, tracer_),
      integrity_(options_.integrity_key) {
  if (options_.clock == nullptr) options_.clock = SystemClock::Shared();
  query_manager_.set_tracer(tracer_);
  sensors_deployed_ = metrics_->GetGauge(
      "gsn_sensors_deployed", {{"node", options_.node_id}},
      "Virtual sensors currently deployed on this node");
  const telemetry::Labels node_label = {{"node", options_.node_id}};
  fed_retries_subscribe_ = metrics_->GetCounter(
      "gsn_federation_retries_total",
      {{"node", options_.node_id}, {"kind", "subscribe"}},
      "Federation retry rounds by kind (subscribe/replay/publish)");
  fed_retries_replay_ = metrics_->GetCounter(
      "gsn_federation_retries_total",
      {{"node", options_.node_id}, {"kind", "replay"}},
      "Federation retry rounds by kind (subscribe/replay/publish)");
  fed_retries_publish_ = metrics_->GetCounter(
      "gsn_federation_retries_total",
      {{"node", options_.node_id}, {"kind", "publish"}},
      "Federation retry rounds by kind (subscribe/replay/publish)");
  fed_gaps_ = metrics_->GetCounter(
      "gsn_federation_gaps_total", node_label,
      "Stream deliveries that arrived behind a sequence gap");
  fed_dups_ = metrics_->GetCounter(
      "gsn_federation_dups_total", node_label,
      "Duplicate stream deliveries dropped by receiver-side dedup");
  fed_replays_ = metrics_->GetCounter(
      "gsn_federation_replays_total", node_label,
      "Deliveries re-sent from replay buffers in response to NACKs");
  fed_abandoned_ = metrics_->GetCounter(
      "gsn_federation_abandoned_total", node_label,
      "Missing sequences given up on after replay retries exhausted");
  fed_failovers_ = metrics_->GetCounter(
      "gsn_federation_failovers_total", node_label,
      "Remote sources rebound to an alternative producer");
  fed_resubscribes_ = metrics_->GetCounter(
      "gsn_federation_resubscribes_total", node_label,
      "Silent subscriptions re-established on a restarted producer");
  replay_bytes_ = metrics_->GetGauge(
      "gsn_replay_buffer_bytes", node_label,
      "Bytes currently held across producer-side replay buffers");
  // The sharded deployment core (docs/CONCURRENCY.md): resolve the
  // shard count, build the shards, and instrument every lock before
  // any other thread can touch the container.
  int num_shards = options_.sharding.shards;
  if (num_shards <= 0) {
    num_shards =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  int tick_workers = options_.sharding.tick_workers;
  if (tick_workers <= 0) tick_workers = num_shards;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    const std::string shard_label = std::to_string(i);
    shard->mu.Instrument(
        metrics_, "shard-" + shard_label,
        {{"node", options_.node_id}, {"shard", shard_label}});
    shard->rng =
        Rng(options_.seed * 2654435761u + 97 + static_cast<uint64_t>(i));
    shard->sensors_gauge = metrics_->GetGauge(
        "gsn_shard_sensors",
        {{"node", options_.node_id}, {"shard", shard_label}},
        "Virtual sensors currently hosted by this shard");
    shard->ticks_total = metrics_->GetCounter(
        "gsn_shard_ticks_total",
        {{"node", options_.node_id}, {"shard", shard_label}},
        "Sensor pipeline drains executed by this shard's tick workers");
    shard->lock_wait_gauge = metrics_->GetGauge(
        "gsn_shard_lock_wait_micros",
        {{"node", options_.node_id}, {"shard", shard_label}},
        "Cumulative micros spent blocked on this shard's lock");
    shards_.push_back(std::move(shard));
  }
  if (num_shards > 1) tick_pool_ = std::make_unique<ThreadPool>(tick_workers);
  fed_mu_.Instrument(metrics_, "federation", node_label);
  chain_mu_.Instrument(metrics_, "chaining", node_label);
  tick_micros_ = metrics_->GetHistogram("gsn_tick_micros", node_label,
                                        "Container Tick() wall time");
  const char* phase_help =
      "Per-tick latency breakdown by scheduling phase (resilience / "
      "dispatch / supervise / checkpoint) plus the pool-thread storage "
      "and fan-out spans";
  tick_phase_resilience_ = metrics_->GetHistogram(
      "gsn_tick_phase_micros",
      {{"node", options_.node_id}, {"phase", "resilience"}}, phase_help);
  tick_phase_dispatch_ = metrics_->GetHistogram(
      "gsn_tick_phase_micros",
      {{"node", options_.node_id}, {"phase", "dispatch"}}, phase_help);
  tick_phase_supervise_ = metrics_->GetHistogram(
      "gsn_tick_phase_micros",
      {{"node", options_.node_id}, {"phase", "supervise"}}, phase_help);
  tick_phase_checkpoint_ = metrics_->GetHistogram(
      "gsn_tick_phase_micros",
      {{"node", options_.node_id}, {"phase", "checkpoint"}}, phase_help);
  batch_storage_micros_ = metrics_->GetHistogram(
      "gsn_tick_phase_micros",
      {{"node", options_.node_id}, {"phase", "storage"}}, phase_help);
  batch_fanout_micros_ = metrics_->GetHistogram(
      "gsn_tick_phase_micros",
      {{"node", options_.node_id}, {"phase", "fanout"}}, phase_help);
  build_info_ = metrics_->GetGauge(
      "gsn_build_info",
      {{"node", options_.node_id},
       {"version", telemetry::BuildVersion()},
       {"compiler", telemetry::BuildCompiler()}},
      "Build metadata carried in labels; the value is always 1");
  build_info_->Set(1);
  uptime_gauge_ = metrics_->GetGauge(
      "gsn_uptime_seconds", node_label,
      "Seconds since this container was constructed (steady clock)");
  started_steady_micros_ = telemetry::SteadyClock::Instance()->NowMicros();
  resilience_rng_ = Rng(options_.seed * 65537 + 17);
  wrappers::WrapperRegistry::RegisterBuiltins(&registry_);
  quarantine_ = std::make_unique<QuarantineStore>(
      options_.supervision.quarantine_capacity, metrics_);
  recovery_records_gauge_ = metrics_->GetGauge(
      "gsn_recovery_records", node_label,
      "Manifest events replayed by the last crash-recovery pass");
  recovery_seconds_gauge_ = metrics_->GetGauge(
      "gsn_recovery_seconds", node_label,
      "Wall-clock seconds the last crash-recovery pass took (floored)");
  if (options_.network != nullptr) {
    const Status s = options_.network->RegisterNode(options_.node_id, this);
    if (!s.ok()) {
      GSN_LOG(kError, "container")
          << options_.node_id << ": network registration failed: " << s;
    }
    // Real transports report per-peer failures (dial errors, resets,
    // write-queue overflows) asynchronously; feed them to the circuit
    // breakers so a dead peer trips its circuit from hard evidence, not
    // just heartbeat silence. The simulator delivers inline under
    // virtual time and keeps its deterministic failure model instead.
    if (options_.network->AsSimulator() == nullptr) {
      options_.network->SetErrorCallback(
          [this](const std::string& peer, const Status& error) {
            NotePeerError(peer, error);
          });
    }
  }
  last_checkpoint_ = options_.clock->NowMicros();
  // Without an explicit storage_dir both the per-sensor persistence
  // logs and the columnar history land under data_dir, so --data-dir
  // alone is a complete durability root.
  if (options_.storage_dir.empty()) options_.storage_dir = options_.data_dir;
  // The history tier opens before manifest recovery: redeployed sensors
  // dedup their WAL-replayed pending rows against already-flushed
  // segments (see DeploySpec).
  if (options_.columnar.enabled && !options_.storage_dir.empty()) {
    storage::columnar::SegmentCatalog::Options seg_options;
    seg_options.rows_per_chunk = options_.columnar.rows_per_chunk;
    seg_options.metrics = metrics_;
    seg_options.labels = node_label;
    Result<std::unique_ptr<storage::columnar::SegmentCatalog>> catalog =
        storage::columnar::SegmentCatalog::Open(
            options_.storage_dir + "/segments", seg_options);
    if (!catalog.ok()) {
      GSN_LOG(kError, "container")
          << options_.node_id << ": cannot open segment catalog: "
          << catalog.status() << "; history tier disabled";
    } else {
      segments_ = *std::move(catalog);
      tables_.AttachHistory(segments_.get());
      if (segments_->discarded_on_recovery() > 0 ||
          segments_->orphans_removed() > 0) {
        GSN_LOG(kWarn, "container")
            << options_.node_id << ": segment recovery discarded "
            << segments_->discarded_on_recovery() << " torn segment(s), "
            << segments_->orphans_removed() << " orphan file(s)";
      }
    }
  }
  if (!options_.data_dir.empty()) RecoverFromManifest();
}

Container::~Container() {
  // Process teardown, not operator intent: undeploys below must not
  // record manifest undeploy events (the sensors come back on restart).
  shutting_down_.store(true, std::memory_order_release);
  // Stop sensors before members are torn down. Undeploy waits out any
  // tick worker still inside a sensor (busy-flag barrier).
  std::vector<std::string> names = ListSensors();
  for (const std::string& name : names) {
    const Status s = Undeploy(name);
    (void)s;
  }
  // Quiesce the tick workers before shards/members are destroyed.
  if (tick_pool_ != nullptr) tick_pool_->Shutdown();
  if (options_.network != nullptr) {
    // The transport outlives the container in gsnd: drop our error
    // callback before teardown so a late event-loop notification cannot
    // call into a destroyed container.
    if (options_.network->AsSimulator() == nullptr) {
      options_.network->SetErrorCallback(nullptr);
    }
    (void)options_.network->UnregisterNode(options_.node_id);
  }
}

const char* Container::SensorStateName(SensorState state) {
  switch (state) {
    case SensorState::kRunning:
      return "running";
    case SensorState::kRestarting:
      return "restarting";
    case SensorState::kFailed:
      return "failed";
  }
  return "running";
}

void Container::RecoverFromManifest() {
  const int64_t recovery_start = telemetry::SteadyClock::Instance()->NowMicros();
  std::error_code ec;
  std::filesystem::create_directories(options_.data_dir, ec);
  if (ec) {
    GSN_LOG(kError, "container")
        << options_.node_id << ": cannot create data dir '"
        << options_.data_dir << "': " << ec.message();
    return;
  }
  const std::string path = options_.data_dir + "/manifest.gsnlog";
  bool torn = false;
  Result<std::vector<ContainerManifest::Event>> events =
      ContainerManifest::Recover(path, &torn);
  if (!events.ok()) {
    GSN_LOG(kError, "container")
        << options_.node_id << ": manifest unreadable: " << events.status();
    return;
  }
  if (torn) {
    GSN_LOG(kWarn, "container")
        << options_.node_id << ": manifest had a torn tail; recovered "
        << events->size() << " events";
  }
  Result<std::unique_ptr<ContainerManifest>> manifest =
      ContainerManifest::Open(path);
  if (!manifest.ok()) {
    GSN_LOG(kError, "container")
        << options_.node_id << ": cannot open manifest: " << manifest.status();
    return;
  }
  manifest_ = *std::move(manifest);

  recovering_ = true;
  const std::vector<std::pair<std::string, std::string>> live =
      ContainerManifest::LiveSet(*events);
  for (const auto& [name, xml] : live) {
    Result<VirtualSensor*> redeployed = Deploy(xml);
    if (!redeployed.ok()) {
      ++recovery_failures_;
      GSN_LOG(kError, "container")
          << options_.node_id << ": recovery redeploy of '" << name
          << "' failed: " << redeployed.status();
    }
  }
  recovering_ = false;
  recovered_records_ = events->size();
  recovery_records_gauge_->Set(static_cast<int64_t>(recovered_records_));
  recovery_seconds_gauge_->Set(
      (telemetry::SteadyClock::Instance()->NowMicros() - recovery_start) /
      kMicrosPerSecond);
  if (!live.empty() || torn) {
    GSN_LOG(kInfo, "container")
        << options_.node_id << ": recovered " << live.size() - recovery_failures_
        << "/" << live.size() << " sensors from " << recovered_records_
        << " manifest event(s)";
  }
}

// ---------------------------------------------------------------- Deploy

Result<VirtualSensor*> Container::Deploy(const std::string& descriptor_xml,
                                         const std::string& api_key) {
  GSN_ASSIGN_OR_RETURN(VirtualSensorSpec spec,
                       vsensor::ParseDescriptor(descriptor_xml));
  return DeploySpec(std::move(spec), api_key);
}

Result<VirtualSensor*> Container::DeploySpec(VirtualSensorSpec spec,
                                             const std::string& api_key) {
  GSN_RETURN_IF_ERROR(access_control_.Check(api_key, Permission::kDeploy));
  GSN_RETURN_IF_ERROR(spec.Validate());
  const std::string key = StrToLower(spec.name);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    if (shard.deployments.count(key)) {
      return Status::AlreadyExists("sensor already deployed: " + spec.name);
    }
  }

  // Storage: the sensor's output history as a SQL-visible table.
  GSN_ASSIGN_OR_RETURN(
      storage::Table * table,
      tables_.CreateTable(spec.name, spec.output_structure,
                          spec.storage.history));
  // Undo table creation (and any remote subscriptions already issued
  // for earlier sources) on any later failure.
  auto unwind = [&] {
    (void)tables_.DropTable(spec.name);
    const std::vector<std::string> cancelled = CancelSubscriptionsFor(key);
    if (options_.network != nullptr) {
      for (const std::string& id : cancelled) {
        network::UnsubscribeRequest cancel;
        cancel.subscription_id = id;
        (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                          options_.node_id,
                                          network::kTopicUnsubscribe,
                                          cancel.Encode());
      }
    }
  };

  Deployment deployment;
  deployment.key = key;
  deployment.table = table;

  // Permanent storage: open the per-sensor log and replay history.
  if (spec.storage.permanent && !options_.storage_dir.empty()) {
    const std::string path =
        options_.storage_dir + "/" + StrToLower(spec.name) + ".gsnlog";
    // Capture must be on before WAL replay: rows the replay pushes out
    // of the retention window are exactly the ones the next checkpoint
    // owes the history tier (or, post-crash, the ones to dedup below).
    if (segments_ != nullptr) {
      table->EnableHistoryCapture(options_.columnar.max_pending_rows);
    }
    bool truncated = false;
    Result<std::vector<StreamElement>> recovered =
        storage::PersistenceLog::Recover(path, &truncated);
    if (!recovered.ok()) {
      unwind();
      return recovered.status();
    }
    for (const StreamElement& e : *recovered) {
      const Status s = table->Insert(e);
      if (!s.ok()) {
        GSN_LOG(kWarn, "container")
            << spec.name << ": skipping incompatible recovered element: " << s;
      }
    }
    if (truncated) {
      GSN_LOG(kWarn, "container")
          << spec.name << ": persistence log had a torn tail; recovered "
          << recovered->size() << " elements";
    }
    // Window/segment seam dedup: a crash between a segment flush and
    // the WAL rewrite leaves the flushed rows in both tiers. The rows
    // the replay just pushed out of the retention window are pending
    // again; walk this table's segments oldest-first and drop every
    // pending prefix whose content CRC matches a segment, restoring
    // exactly-once across the seam.
    if (segments_ != nullptr && table->history_capture_enabled()) {
      const Relation::RowList pending = table->PendingEvictedRows();
      size_t offset = 0;
      for (const storage::columnar::SegmentMeta& meta :
           segments_->SegmentsFor(key)) {
        const size_t n = static_cast<size_t>(meta.row_count);
        if (n == 0 || offset + n > pending.size()) continue;
        Relation::RowList prefix(pending.begin() + offset,
                                 pending.begin() + offset + n);
        if (storage::columnar::RowsCrc(prefix, n) == meta.rows_crc) {
          offset += n;
        }
      }
      if (offset > 0) {
        table->DropPendingPrefix(offset);
        GSN_LOG(kInfo, "container")
            << spec.name << ": dropped " << offset
            << " replayed row(s) already flushed to segments";
      }
    }
    Result<std::unique_ptr<storage::PersistenceLog>> log =
        storage::PersistenceLog::Open(path);
    if (!log.ok()) {
      unwind();
      return log.status();
    }
    deployment.log = *std::move(log);
  }

  // Wrappers and stream sources.
  std::vector<std::vector<std::unique_ptr<StreamSource>>> sources(
      spec.input_streams.size());
  for (size_t i = 0; i < spec.input_streams.size(); ++i) {
    for (const vsensor::StreamSourceSpec& source_spec :
         spec.input_streams[i].sources) {
      Result<std::unique_ptr<wrappers::Wrapper>> wrapper =
          MakeWrapperForSource(source_spec, key, &deployment);
      if (!wrapper.ok()) {
        unwind();
        return wrapper.status();
      }
      const uint64_t seed =
          options_.seed * 1000003 +
          (wrapper_seed_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
      auto source = std::make_unique<StreamSource>(
          source_spec, *std::move(wrapper), seed, metrics_, tracer_,
          options_.node_id);
      source->ConfigureAdmission(spec.name,
                                 options_.supervision.queue_capacity,
                                 options_.supervision.shed_policy, metrics_);
      sources[i].push_back(std::move(source));
    }
  }

  const Timestamp now = options_.clock->NowMicros();
  deployment.deployed_at = now;
  if (spec.life_cycle.lifetime_micros > 0) {
    deployment.expires_at = now + spec.life_cycle.lifetime_micros;
  }
  deployment.sensor = std::make_unique<VirtualSensor>(
      std::move(spec), std::move(sources), options_.clock, metrics_, tracer_,
      options_.node_id);

  VirtualSensor* sensor = deployment.sensor.get();
  sensor->AddBatchListener(
      [this](const VirtualSensor& vs, const std::vector<StreamElement>& batch) {
        OnSensorBatch(vs, batch);
      });
  sensor->SetErrorListener(
      [this, key](const VirtualSensor& vs, const std::string& stream_name,
                  const Status& status,
                  const std::vector<StreamElement>& elements) {
        OnSensorError(key, vs, stream_name, status, elements);
      });
  deployment.state_gauge = metrics_->GetGauge(
      "gsn_sensor_state", {{"sensor", sensor->name()}},
      "Supervised sensor state (0 running, 1 restarting, 2 failed)");
  deployment.state_gauge->Set(0);
  deployment.restarts = metrics_->GetCounter(
      "gsn_sensor_restarts_total", {{"sensor", sensor->name()}},
      "Supervised restarts of the virtual sensor");

  const Status started = sensor->Start();
  if (!started.ok()) {
    unwind();
    return started;
  }

  const int system_sources = deployment.system_sources;
  auto published = std::make_shared<Deployment>(std::move(deployment));
  bool inserted = false;
  {
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    inserted = shard.deployments.emplace(key, published).second;
    if (inserted) {
      shard.sensors_gauge->Set(
          static_cast<int64_t>(shard.deployments.size()));
    }
  }
  if (!inserted) {
    // Lost a deploy race for the same name after the early check
    // (CreateTable normally arbitrates, but stay defensive).
    published->sensor->Stop();
    unwind();
    return Status::AlreadyExists("sensor already deployed: " +
                                 published->sensor->name());
  }
  sensors_deployed_->Set(
      total_deployments_.fetch_add(1, std::memory_order_relaxed) + 1);
  if (system_sources > 0) {
    system_sources_total_.fetch_add(system_sources, std::memory_order_relaxed);
    // Prime the cache so the first scrape (one wrapper interval in)
    // never reads an all-zero snapshot.
    RefreshSystemSnapshot();
  }
  // Durable deploy record: a restarted container replays this to bring
  // the sensor back. Suppressed during the recovery replay itself.
  if (manifest_ != nullptr && !recovering_) {
    const Status logged = manifest_->AppendDeploy(key, sensor->spec().ToXml());
    if (!logged.ok()) {
      GSN_LOG(kWarn, "container")
          << options_.node_id << ": manifest deploy record failed: " << logged;
    }
  }
  PublishSensor(sensor->spec());
  // Schedule the publish's retry rounds: a lost broadcast heals long
  // before the next anti-entropy announcement.
  if (options_.network != nullptr) {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    PendingPublish pending;
    pending.key = key;
    pending.spec = sensor->spec();
    pending.next_at =
        now + options_.resilience.retry.BackoffForAttempt(1, &resilience_rng_);
    pending_publishes_.push_back(std::move(pending));
  }
  GSN_LOG(kInfo, "container")
      << options_.node_id << ": deployed '" << sensor->name() << "'";
  return sensor;
}

Result<std::unique_ptr<wrappers::Wrapper>> Container::MakeWrapperForSource(
    const vsensor::StreamSourceSpec& source_spec,
    const std::string& deployment_key, Deployment* deployment) {
  // wrapper="local": derive from another virtual sensor on this
  // container (paper §2: "a data stream derived from other virtual
  // sensors"). Predicates address the producer like a directory query,
  // restricted to this node.
  if (StrEqualsIgnoreCase(source_spec.address.wrapper, "local")) {
    std::map<std::string, std::string> query = source_spec.address.predicates;
    query["node"] = options_.node_id;
    const std::vector<DirectoryEntry> matches = directory_.Discover(query);
    if (matches.empty()) {
      return Status::Unavailable(
          "no local virtual sensor matches the address predicates of "
          "source '" +
          source_spec.alias + "' (deploy the producer first)");
    }
    const DirectoryEntry& entry = matches.front();
    auto wrapper = std::make_unique<LocalStreamWrapper>(entry.output_schema,
                                                        entry.sensor_name);
    {
      std::lock_guard<telemetry::TimedMutex> lock(chain_mu_);
      local_wrappers_.emplace(StrToLower(entry.sensor_name), wrapper.get());
    }
    deployment->local_sources.push_back(wrapper.get());
    return std::unique_ptr<wrappers::Wrapper>(std::move(wrapper));
  }

  // wrapper="system": the container itself wrapped as a data source
  // (self-observation — the paper's "anything producing data" applied
  // to the middleware). The provider reads the per-tick snapshot cache
  // under its own small lock, never a shard lock, so a sensor
  // monitoring its own container can never deadlock, and scraping
  // costs the same whether one or fifty sensors watch.
  if (StrEqualsIgnoreCase(source_spec.address.wrapper, "system")) {
    wrappers::WrapperConfig config;
    config.instance_name = source_spec.alias;
    config.params = source_spec.address.predicates;
    config.clock = options_.clock;
    config.seed =
        options_.seed * 7919 +
        (wrapper_seed_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
    ++deployment->system_sources;
    return wrappers::SystemWrapper::Make(config,
                                         [this] { return SystemSnapshotNow(); });
  }

  if (!StrEqualsIgnoreCase(source_spec.address.wrapper, "remote")) {
    wrappers::WrapperConfig config;
    config.instance_name = source_spec.alias;
    config.params = source_spec.address.predicates;
    config.clock = options_.clock;
    config.seed =
        options_.seed * 7919 +
        (wrapper_seed_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
    return registry_.Create(source_spec.address.wrapper, config);
  }

  // wrapper="remote": logical addressing through the directory.
  if (options_.network == nullptr) {
    return Status::InvalidArgument(
        "wrapper=\"remote\" requires the container to be attached to a "
        "network");
  }
  // retry-* predicates configure the subscription's retry policy; they
  // are not part of the producer's identity, so strip them from the
  // discovery query.
  wrappers::WrapperConfig retry_config;
  retry_config.instance_name = source_spec.alias;
  retry_config.params = source_spec.address.predicates;
  GSN_ASSIGN_OR_RETURN(
      network::RetryPolicy retry_policy,
      network::RetryPolicy::FromConfig(retry_config,
                                       options_.resilience.retry));
  std::map<std::string, std::string> query;
  for (const auto& [k, v] : source_spec.address.predicates) {
    if (k.rfind("retry-", 0) != 0) query[k] = v;
  }
  const std::vector<DirectoryEntry> matches = directory_.Discover(query);
  if (matches.empty()) {
    return Status::Unavailable(
        "no published virtual sensor matches the address predicates of "
        "source '" +
        source_spec.alias +
        "' (deploy the producer first, or check the predicates)");
  }
  const Timestamp now = options_.clock->NowMicros();

  std::string subscription_id;
  const DirectoryEntry* entry = &matches.front();
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    // Prefer a producer whose circuit allows traffic right now; fall
    // back to the first match (subscribe retries take it from there).
    for (const DirectoryEntry& candidate : matches) {
      if (PeerAllowsSendLocked(candidate.node_id, now)) {
        entry = &candidate;
        break;
      }
    }
    subscription_id =
        options_.node_id + "#" + std::to_string(next_subscription_++);
  }
  network::SubscribeRequest request;
  request.subscription_id = subscription_id;
  request.sensor_name = entry->sensor_name;
  request.subscriber_node = options_.node_id;
  GSN_RETURN_IF_ERROR(options_.network->Send(now, options_.node_id,
                                             entry->node_id,
                                             network::kTopicSubscribe,
                                             request.Encode()));

  auto wrapper = std::make_unique<RemoteStreamWrapper>(
      entry->output_schema, entry->node_id, entry->sensor_name);
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    RemoteSubscription& sub = remote_subs_[subscription_id];
    sub.wrapper = wrapper.get();
    sub.deployment_key = deployment_key;
    sub.peer_node = entry->node_id;
    sub.predicates = std::move(query);
    sub.retry = retry_policy;
    sub.subscribe_attempts = 1;  // the send above
    sub.next_subscribe_at =
        now + sub.retry.BackoffForAttempt(1, &resilience_rng_);
    sub.last_activity = now;
    subs_by_deployment_[deployment_key].push_back(subscription_id);
  }
  return std::unique_ptr<wrappers::Wrapper>(std::move(wrapper));
}

std::vector<std::string> Container::CancelSubscriptionsFor(
    const std::string& key) {
  std::vector<std::string> cancelled;
  std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
  auto it = subs_by_deployment_.find(key);
  if (it != subs_by_deployment_.end()) {
    cancelled = std::move(it->second);
    subs_by_deployment_.erase(it);
    for (const std::string& id : cancelled) remote_subs_.erase(id);
  }
  for (auto pit = pending_publishes_.begin();
       pit != pending_publishes_.end();) {
    pit = pit->key == key ? pending_publishes_.erase(pit) : std::next(pit);
  }
  return cancelled;
}

Status Container::Undeploy(const std::string& sensor_name,
                           const std::string& api_key) {
  GSN_RETURN_IF_ERROR(access_control_.Check(api_key, Permission::kDeploy));
  const std::string key = StrToLower(sensor_name);
  Shard& shard = ShardFor(key);
  std::shared_ptr<Deployment> deployment;
  // Operator/lifetime undeploys are durable; teardown at process
  // exit is not (the whole point of crash recovery).
  const bool record_undeploy = !shutting_down_.load(std::memory_order_acquire);
  {
    std::unique_lock<telemetry::TimedMutex> lock(shard.mu);
    auto it = shard.deployments.find(key);
    if (it == shard.deployments.end()) {
      return Status::NotFound("no such sensor: " + sensor_name);
    }
    deployment = it->second;
    shard.deployments.erase(it);
    shard.sensors_gauge->Set(static_cast<int64_t>(shard.deployments.size()));
    // Busy-flag barrier: a tick worker may still be inside this
    // sensor's pipeline; wait until it clears the flag before stopping
    // and destroying the sensor (the lifetime guarantee the per-sensor
    // pool Shutdown() used to provide).
    shard.idle_cv.wait(lock, [&] { return !deployment->busy; });
  }
  sensors_deployed_->Set(
      total_deployments_.fetch_sub(1, std::memory_order_relaxed) - 1);

  // Detach the chaining edges BEFORE stopping the sensor: after this
  // block no producer fan-out (which runs under chain_mu_) can push
  // into the dying sensor, and its own source wrappers stop receiving.
  {
    std::lock_guard<telemetry::TimedMutex> lock(chain_mu_);
    // This sensor's own local-source wrappers, detached from producers.
    for (auto wit = local_wrappers_.begin(); wit != local_wrappers_.end();) {
      bool mine = false;
      for (LocalStreamWrapper* w : deployment->local_sources) {
        if (wit->second == w) {
          mine = true;
          break;
        }
      }
      wit = mine ? local_wrappers_.erase(wit) : std::next(wit);
    }
    // Consumers chained onto this sensor stop receiving.
    auto range = local_wrappers_.equal_range(key);
    for (auto wit = range.first; wit != range.second;) {
      wit->second->MarkProducerGone();
      wit = local_wrappers_.erase(wit);
    }
  }

  // Federation bookkeeping: our subscriptions on remote producers are
  // cancelled (failover can no longer touch their wrappers), remote
  // consumers of this sensor dropped, pending publish rounds purged.
  const std::vector<std::string> cancelled = CancelSubscriptionsFor(key);
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    for (auto it = subscribers_.begin(); it != subscribers_.end();) {
      if (StrEqualsIgnoreCase(it->second.sensor_name, sensor_name)) {
        it = subscribers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  if (deployment->system_sources > 0) {
    system_sources_total_.fetch_sub(deployment->system_sources,
                                    std::memory_order_relaxed);
  }
  deployment->sensor->Stop();

  // Cancel our subscriptions on remote producers.
  if (options_.network != nullptr) {
    for (const std::string& id : cancelled) {
      network::UnsubscribeRequest cancel;
      cancel.subscription_id = id;
      // Peer node id is encoded in the wrapper; broadcast is simpler
      // and idempotent for unknown ids.
      (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                        options_.node_id,
                                        network::kTopicUnsubscribe,
                                        cancel.Encode());
    }
  }

  RetractSensor(deployment->sensor->name());
  GSN_RETURN_IF_ERROR(tables_.DropTable(sensor_name));
  // Operator undeploys retire the sensor's cold history with it;
  // process-exit teardown keeps the segments (they come back with the
  // sensor on restart), mirroring the manifest rule below.
  if (segments_ != nullptr && !recovering_ && record_undeploy) {
    const Status dropped = segments_->DropTable(key);
    if (!dropped.ok()) {
      GSN_LOG(kWarn, "container")
          << options_.node_id << ": segment drop for '" << sensor_name
          << "' failed: " << dropped;
    }
  }
  // Retire the sensor's metric series; its handles die with `deployment`.
  metrics_->RemoveWithLabel("sensor", deployment->sensor->name());
  if (manifest_ != nullptr && !recovering_ && record_undeploy) {
    const Status logged = manifest_->AppendUndeploy(key);
    if (!logged.ok()) {
      GSN_LOG(kWarn, "container")
          << options_.node_id << ": manifest undeploy record failed: "
          << logged;
    }
  }
  GSN_LOG(kInfo, "container")
      << options_.node_id << ": undeployed '" << sensor_name << "'";
  return Status::OK();
}

int Container::ShardIndexFor(const std::string& key) const {
  // FNV-1a over the (already lowercased) sensor key; stable across
  // runs so recovery with the same shard count lands sensors on the
  // same shard (and with a different count, simply elsewhere — no
  // state outlives the process that cares which shard a sensor used).
  uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % static_cast<uint64_t>(shards_.size()));
}

Container::Shard& Container::ShardFor(const std::string& key) const {
  return *shards_[ShardIndexFor(key)];
}

std::vector<std::string> Container::ListSensors() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    for (const auto& [key, deployment] : shard->deployments) {
      out.push_back(deployment->sensor->name());
    }
  }
  return out;
}

VirtualSensor* Container::FindSensor(const std::string& sensor_name) const {
  const std::string key = StrToLower(sensor_name);
  Shard& shard = ShardFor(key);
  std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
  auto it = shard.deployments.find(key);
  return it == shard.deployments.end() ? nullptr : it->second->sensor.get();
}

// ---------------------------------------------------------------- Runtime

namespace {
/// Anti-entropy period for directory gossip.
constexpr Timestamp kAnnounceInterval = 5 * kMicrosPerSecond;
}  // namespace

Result<int> Container::Tick() {
  telemetry::Profiler::Scope tick_span(&profiler_, "tick", tick_micros_.get());
  const Timestamp now = options_.clock->NowMicros();
  uptime_gauge_->Set(
      (telemetry::SteadyClock::Instance()->NowMicros() - started_steady_micros_) /
      kMicrosPerSecond);

  {
    telemetry::Profiler::Scope phase(&profiler_, "tick.resilience",
                                     tick_phase_resilience_.get());
    // Periodic directory re-announcement: lost publish messages heal.
    bool announce = false;
    {
      std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
      if (options_.network != nullptr &&
          now - last_announce_ >= kAnnounceInterval) {
        last_announce_ = now;
        announce = true;
      }
    }
    if (announce) AnnounceAll();

    // Federation resilience round: heartbeats, circuit breakers,
    // subscribe/NACK/publish retries, tips, failover.
    if (options_.network != nullptr) RunResilience(now);
  }

  // Drain the shards: inline when single-sharded, otherwise one task
  // per shard on the tick worker pool. Concurrent Tick() drivers
  // (gsnd's RealtimePump plus an HTTP/management drain) are safe
  // without a global tick mutex: per-sensor exclusivity comes from the
  // busy flag, so a sensor another round is still draining is simply
  // skipped by this one.
  telemetry::Profiler::Scope dispatch_phase(&profiler_, "tick.dispatch",
                                            tick_phase_dispatch_.get());
  int produced = 0;
  if (tick_pool_ == nullptr || shards_.size() == 1) {
    for (auto& shard : shards_) produced += TickShard(*shard, now);
  } else {
    std::mutex done_mu;
    std::condition_variable done_cv;
    size_t pending = shards_.size();
    std::atomic<int> total{0};
    // A local latch, not tick_pool_->Wait(): Wait() would also block
    // on shard tasks submitted by a concurrent Tick driver.
    auto finish_one = [&] {
      std::lock_guard<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_all();
    };
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      const bool submitted = tick_pool_->Submit([&, s] {
        total.fetch_add(TickShard(*s, now), std::memory_order_relaxed);
        finish_one();
      });
      if (!submitted) {
        // Pool already shut down (drain at exit): run inline.
        total.fetch_add(TickShard(*s, now), std::memory_order_relaxed);
        finish_one();
      }
    }
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return pending == 0; });
    produced = total.load(std::memory_order_relaxed);
  }
  dispatch_phase.Stop();

  // Periodic checkpoint: bound the manifest and every WAL (and with
  // them, the next recovery) to the live state. try_lock keeps the
  // trigger single-flight across concurrent Tick drivers; the WAL
  // swaps inside Checkpoint() are serialized against pipeline appends
  // by each shard's lock.
  if (manifest_ != nullptr && options_.supervision.checkpoint_interval > 0) {
    std::unique_lock<std::mutex> cp_lock(checkpoint_mu_, std::try_to_lock);
    if (cp_lock.owns_lock() &&
        now - last_checkpoint_ >= options_.supervision.checkpoint_interval) {
      telemetry::Profiler::Scope phase(&profiler_, "tick.checkpoint",
                                       tick_phase_checkpoint_.get());
      last_checkpoint_ = now;
      const Status s = Checkpoint();
      if (!s.ok()) {
        GSN_LOG(kWarn, "container")
            << options_.node_id << ": checkpoint failed: " << s;
      }
    }
  }

  // Refresh the cache system wrappers scrape (no-op while none are
  // deployed). Last, so monitors read this tick's state next poll.
  RefreshSystemSnapshot();
  return produced;
}

int Container::TickShard(Shard& shard, Timestamp now) {
  struct Job {
    std::shared_ptr<Deployment> deployment;
    /// True while the supervisor has the sensor paused for restart
    /// backoff: its sources pump (queues fill, shed policies engage)
    /// but no pipeline runs.
    bool paused = false;
  };
  std::vector<Job> jobs;
  std::vector<std::string> expired;
  {
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    jobs.reserve(shard.deployments.size());
    for (auto& [key, deployment] : shard.deployments) {
      if (deployment->expires_at > 0 && now >= deployment->expires_at) {
        expired.push_back(deployment->sensor->name());
        continue;
      }
      if (deployment->state == SensorState::kFailed) continue;
      bool paused = false;
      if (deployment->state == SensorState::kRestarting) {
        if (now >= deployment->resume_at) {
          deployment->state = SensorState::kRunning;
          deployment->state_gauge->Set(0);
          GSN_LOG(kInfo, "container")
              << options_.node_id << ": restarted '"
              << deployment->sensor->name() << "' (attempt "
              << deployment->restart_attempts << ")";
        } else {
          paused = true;
        }
      }
      // Per-sensor tick exclusivity: a concurrent Tick driver that is
      // still draining this sensor owns it until the busy flag clears.
      if (deployment->busy) continue;
      deployment->busy = true;
      jobs.push_back({deployment, paused});
    }
  }

  // Lifetime bounds (paper §3): expired sensors release their
  // resources. Expired deployments were never marked busy, so the
  // Undeploy barrier below cannot wait on this worker.
  for (const std::string& name : expired) {
    GSN_LOG(kInfo, "container") << name << ": lifetime expired, undeploying";
    const Status s = Undeploy(name);
    if (!s.ok()) {
      GSN_LOG(kWarn, "container") << "lifetime undeploy failed: " << s;
    }
  }

  // Drain outside the shard lock: deploy/undeploy/status on this shard
  // block only for the map scans, never for pipeline work. A failing
  // sensor is handed to the supervisor instead of failing the round —
  // one bad sensor must never stall its neighbors.
  int produced = 0;
  std::vector<std::pair<std::string, Status>> failures;
  for (const Job& job : jobs) {
    if (job.paused) {
      const Status pumped = job.deployment->sensor->PumpSources(now);
      if (!pumped.ok()) {
        GSN_LOG(kWarn, "container")
            << job.deployment->key << ": pump while paused failed: " << pumped;
      }
      continue;
    }
    Result<int> n = job.deployment->sensor->Tick(now);
    if (n.ok()) {
      produced += *n;
    } else {
      failures.emplace_back(job.deployment->key, n.status());
    }
  }

  {
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    for (const Job& job : jobs) {
      job.deployment->busy = false;
      if (job.paused) continue;
      // A sensor that keeps completing ticks after a restart earns its
      // retry budget back: max_attempts caps consecutive failures, not
      // lifetime totals — otherwise a few transient errors spread over
      // weeks would permanently FAIL the sensor (and pin readiness at
      // 503).
      if (options_.supervision.healthy_ticks_to_reset <= 0) continue;
      bool failed_this_tick = false;
      for (const auto& [key, status] : failures) {
        if (key == job.deployment->key) {
          failed_this_tick = true;
          break;
        }
      }
      if (failed_this_tick) continue;
      Deployment& deployment = *job.deployment;
      if (deployment.state != SensorState::kRunning ||
          deployment.restart_attempts == 0) {
        continue;
      }
      if (++deployment.healthy_ticks >=
          options_.supervision.healthy_ticks_to_reset) {
        GSN_LOG(kInfo, "container")
            << options_.node_id << ": '" << deployment.sensor->name()
            << "' healthy for " << deployment.healthy_ticks
            << " tick(s); restart budget restored";
        deployment.restart_attempts = 0;
        deployment.healthy_ticks = 0;
      }
    }
    shard.ticks_total->Increment(static_cast<int64_t>(jobs.size()));
    shard.lock_wait_gauge->Set(
        static_cast<int64_t>(shard.mu.wait_micros_total()));
  }
  // Wake Undeploy barriers waiting for a busy flag we just cleared.
  shard.idle_cv.notify_all();

  for (const auto& [key, status] : failures) {
    HandleSensorFailure(key, status, now);
  }
  return produced;
}

void Container::HandleSensorFailure(const std::string& key,
                                    const Status& status, Timestamp now) {
  Shard& shard = ShardFor(key);
  std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
  auto it = shard.deployments.find(key);
  if (it == shard.deployments.end()) return;
  Deployment& deployment = *it->second;
  if (deployment.state == SensorState::kFailed) return;
  ++deployment.restart_attempts;
  deployment.healthy_ticks = 0;
  deployment.restarts->Increment();
  if (options_.supervision.retry.Exhausted(deployment.restart_attempts)) {
    deployment.state = SensorState::kFailed;
    deployment.state_gauge->Set(2);
    GSN_LOG(kError, "container")
        << options_.node_id << ": '" << deployment.sensor->name()
        << "' FAILED after " << deployment.restart_attempts
        << " restart(s); last error: " << status;
    return;
  }
  deployment.state = SensorState::kRestarting;
  deployment.state_gauge->Set(1);
  deployment.resume_at =
      now + options_.supervision.retry.BackoffForAttempt(
                deployment.restart_attempts, &shard.rng);
  GSN_LOG(kWarn, "container")
      << options_.node_id << ": '" << deployment.sensor->name()
      << "' paused for restart " << deployment.restart_attempts << " ("
      << status << ")";
}

void Container::OnSensorError(const std::string& key,
                              const VirtualSensor& sensor,
                              const std::string& stream_name,
                              const Status& status,
                              const std::vector<StreamElement>& elements) {
  // Dead-letter the trigger: the elements the pipeline choked on are
  // the suspects. The requeue target is the stream's first source (a
  // StreamElement does not record which source admitted it).
  std::string source_alias;
  for (const vsensor::InputStreamSpec& stream : sensor.spec().input_streams) {
    if (StrEqualsIgnoreCase(stream.name, stream_name) &&
        !stream.sources.empty()) {
      source_alias = stream.sources.front().alias;
      break;
    }
  }
  const Timestamp now = options_.clock->NowMicros();
  for (const StreamElement& element : elements) {
    quarantine_->Add(sensor.name(), stream_name, source_alias,
                     status.message(), now, element);
  }
  HandleSensorFailure(key, status, now);
}

Status Container::RequeueQuarantined(uint64_t id) {
  GSN_ASSIGN_OR_RETURN(QuarantineStore::Entry entry, quarantine_->Take(id));
  // Lookup AND Inject under the sensor's shard lock: a concurrent
  // Undeploy (descriptor watcher, another HTTP request) erases the
  // deployment under the same lock, so the sensor cannot be destroyed
  // between the find and the injection. Inject only takes the source's
  // own lock — a leaf, no ordering hazard against the shard lock.
  bool injected = false;
  {
    const std::string key = StrToLower(entry.sensor);
    Shard& shard = ShardFor(key);
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    auto it = shard.deployments.find(key);
    StreamSource* source =
        it == shard.deployments.end()
            ? nullptr
            : it->second->sensor->FindSource(entry.stream, entry.source_alias);
    if (source != nullptr) {
      source->Inject(entry.element);
      injected = true;
    }
  }
  if (!injected) {
    // Put it back rather than silently dropping a tuple the operator
    // asked to keep.
    quarantine_->Add(entry.sensor, entry.stream, entry.source_alias,
                     entry.error, entry.quarantined_at, entry.element);
    return Status::NotFound("quarantined tuple " + std::to_string(id) +
                            " has no live source '" + entry.stream + "/" +
                            entry.source_alias + "' on sensor '" +
                            entry.sensor + "'");
  }
  GSN_LOG(kInfo, "container")
      << options_.node_id << ": requeued quarantined tuple "
      << std::to_string(id) << " into " << entry.sensor << "/" << entry.stream;
  return Status::OK();
}

Status Container::Checkpoint() {
  Status first_error = Status::OK();
  std::vector<std::pair<std::string, std::string>> live;
  // One shard at a time: pipelines on the other shards keep appending
  // while this shard's WALs rewrite. Never two shard locks at once.
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    for (auto& [key, deployment_ptr] : shard.deployments) {
      Deployment& deployment = *deployment_ptr;
      live.emplace_back(key, deployment.sensor->spec().ToXml());
      if (deployment.log == nullptr) continue;
      // Tiered history: rows the retention window evicted since the
      // last checkpoint move into an immutable columnar segment BEFORE
      // the WAL rewrite drops them from the log. Durability order is
      // segment fsync -> catalog journal fsync -> WAL rewrite, so a
      // crash at any point leaves every row in at least one tier (the
      // deploy-time seam dedup handles "in both"). If the flush fails
      // the rows go back to pending and the rewrite is skipped — the
      // uncompacted WAL remains their durable home.
      if (segments_ != nullptr && deployment.table->history_capture_enabled()) {
        Relation::RowList evicted = deployment.table->TakeEvicted();
        if (!evicted.empty()) {
          Result<storage::columnar::SegmentMeta> flushed = segments_->Flush(
              key, deployment.table->row_schema(), evicted);
          if (!flushed.ok()) {
            deployment.table->RestoreEvicted(std::move(evicted));
            if (first_error.ok()) first_error = flushed.status();
            GSN_LOG(kWarn, "container")
                << options_.node_id << ": '" << deployment.sensor->name()
                << "' segment flush failed: " << flushed.status();
            continue;
          }
        }
      }
      // Rewrite the WAL to exactly the rows still inside the table's
      // retention window: recovery replays O(window), not O(history).
      // Pipeline appends (OnSensorBatch) also run under this shard's
      // lock, so nobody can write through the old handle mid-rewrite;
      // destroying it first honors Rewrite's contract (a surviving
      // handle's buffered writes would land on the renamed-over inode
      // and be lost).
      const std::string path = deployment.log->path();
      deployment.log.reset();
      Result<std::unique_ptr<storage::PersistenceLog>> rewritten =
          storage::PersistenceLog::Rewrite(path,
                                           deployment.table->SnapshotElements());
      if (!rewritten.ok()) {
        if (first_error.ok()) first_error = rewritten.status();
        // Compaction failed, but persistence must go on: reopen the
        // uncompacted log for appending.
        Result<std::unique_ptr<storage::PersistenceLog>> reopened =
            storage::PersistenceLog::Open(path);
        if (reopened.ok()) {
          deployment.log = *std::move(reopened);
        } else {
          GSN_LOG(kError, "container")
              << options_.node_id << ": '" << deployment.sensor->name()
              << "' WAL lost after failed checkpoint: " << reopened.status();
        }
        continue;
      }
      deployment.log = *std::move(rewritten);
    }
  }
  if (manifest_ != nullptr) {
    const Status compacted = manifest_->Compact(live);
    if (!compacted.ok() && first_error.ok()) first_error = compacted;
  }
  return first_error;
}

Status Container::Shutdown() {
  // 1. Stop admitting new wrapper load (the queues keep their backlog).
  if (draining_.exchange(true, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  for (auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    for (auto& [key, deployment] : shard->deployments) {
      deployment->sensor->SetAdmitting(false);
    }
  }
  GSN_LOG(kInfo, "container") << options_.node_id << ": draining";

  // 2. Flush what the admission queues already hold through the
  // pipelines. Bounded rounds: a wedged sensor must not hang shutdown.
  for (int round = 0; round < 16; ++round) {
    Result<int> n = Tick();
    if (!n.ok()) break;
    size_t depth = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
      for (const auto& [key, deployment] : shard->deployments) {
        depth += deployment->sensor->QueueDepth();
      }
    }
    if (*n == 0 && depth == 0) break;
  }

  // 3. Make everything durable: final checkpoint, then fsync.
  Status first_error = Checkpoint();
  for (auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    for (auto& [key, deployment] : shard->deployments) {
      if (deployment->log == nullptr) continue;
      const Status synced = deployment->log->Sync();
      if (!synced.ok() && first_error.ok()) first_error = synced;
    }
  }
  // 4. The destructor's undeploys are process exit, not intent.
  shutting_down_.store(true, std::memory_order_release);
  if (manifest_ != nullptr) {
    const Status synced = manifest_->Sync();
    if (!synced.ok() && first_error.ok()) first_error = synced;
  }
  GSN_LOG(kInfo, "container") << options_.node_id << ": drain complete";
  return first_error;
}

bool Container::draining() const {
  return draining_.load(std::memory_order_acquire);
}

Container::Health Container::GetHealth() const {
  Health health;
  if (draining()) {
    health.ready = false;
    health.reasons.push_back("draining");
  }
  for (const auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    for (const auto& [key, deployment] : shard->deployments) {
      const std::string& name = deployment->sensor->name();
      if (deployment->state == SensorState::kFailed) {
        health.ready = false;
        health.reasons.push_back("sensor '" + name + "' failed");
      } else if (deployment->state == SensorState::kRestarting) {
        health.ready = false;
        health.reasons.push_back("sensor '" + name + "' restarting");
      }
      if (deployment->sensor->AnyQueueFull()) {
        health.ready = false;
        health.reasons.push_back("admission queue of '" + name +
                                 "' at capacity");
      }
    }
  }
  return health;
}

// ------------------------------------------------------- Self-observation

wrappers::SystemSnapshot Container::ComputeSystemSnapshot() const {
  wrappers::SystemSnapshot snap;
  // One shard at a time, federation state separately — never more than
  // one of these locks held at once.
  for (const auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    snap.sensors += static_cast<int64_t>(shard->deployments.size());
    for (const auto& [key, deployment] : shard->deployments) {
      switch (deployment->state) {
        case SensorState::kRunning:
          ++snap.running;
          break;
        case SensorState::kRestarting:
          ++snap.restarting;
          break;
        case SensorState::kFailed:
          ++snap.failed;
          break;
      }
      snap.queue_depth +=
          static_cast<int64_t>(deployment->sensor->QueueDepth());
    }
  }
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    const Timestamp now = options_.clock->NowMicros();
    for (const auto& [sub_id, subscriber] : subscribers_) {
      snap.replay_bytes += static_cast<int64_t>(subscriber.replay.bytes());
    }
    snap.peers = static_cast<int64_t>(peers_.size());
    for (const auto& [peer_id, peer] : peers_) {
      if (peer.breaker.StateAt(now) == network::CircuitBreaker::State::kOpen) {
        ++snap.open_circuits;
      }
    }
  }
  // Everything below reads components with their own synchronization:
  // holding a shard lock across them would only widen it.
  snap.quarantined = static_cast<int64_t>(quarantine_->size());
  if (segments_ != nullptr) {
    snap.segments = static_cast<int64_t>(segments_->segment_count());
    snap.segment_bytes = static_cast<int64_t>(segments_->total_bytes());
  }
  snap.shed_total = metrics_->SumCounters("gsn_admission_shed_total");
  snap.tuples_total = metrics_->SumCounters("gsn_sensor_tuples_total");
  snap.errors_total = metrics_->SumCounters("gsn_sensor_errors_total");
  snap.metric_series = static_cast<int64_t>(metrics_->NumSeries());
  const telemetry::Histogram::Snapshot ticks = tick_micros_->TakeSnapshot();
  if (ticks.count > 0) {
    snap.tick_mean_ms = ticks.Mean() / 1000.0;
    snap.tick_p95_ms = static_cast<double>(ticks.Quantile(0.95)) / 1000.0;
  }
  if (ticks.sum > 0) {
    snap.lock_wait_share =
        static_cast<double>(
            metrics_->SumHistograms("gsn_lock_wait_micros").sum) /
        static_cast<double>(ticks.sum);
  }
  const telemetry::Histogram::Snapshot queue_wait =
      metrics_->SumHistograms("gsn_queue_wait_micros");
  if (queue_wait.count > 0) {
    snap.queue_wait_p95_ms =
        static_cast<double>(queue_wait.Quantile(0.95)) / 1000.0;
  }
  const telemetry::ProcessStats proc = telemetry::ReadProcessStats();
  snap.rss_bytes = proc.rss_bytes;
  snap.cpu_seconds = proc.cpu_seconds;
  snap.uptime_seconds =
      (telemetry::SteadyClock::Instance()->NowMicros() -
       started_steady_micros_) /
      kMicrosPerSecond;
  return snap;
}

void Container::RefreshSystemSnapshot() {
  // Gate: without a deployed wrapper="system" source nobody reads the
  // cache, so self-scraping must cost nothing (fig3's overhead budget).
  if (system_sources_total_.load(std::memory_order_relaxed) == 0) return;
  wrappers::SystemSnapshot snap = ComputeSystemSnapshot();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  system_snapshot_ = std::move(snap);
}

wrappers::SystemSnapshot Container::SystemSnapshotNow() const {
  // Cache read only — a system wrapper polled from inside a tick
  // worker (which transiently holds its shard's lock) must never need
  // a shard lock itself.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return system_snapshot_;
}

Container::ContainerStatus Container::GetStatus() const {
  ContainerStatus status;
  status.node_id = options_.node_id;
  status.version = telemetry::BuildVersion();
  status.compiler = telemetry::BuildCompiler();
  status.draining = draining();
  status.health = GetHealth();
  status.totals = ComputeSystemSnapshot();
  for (const std::string& name : ListSensors()) {
    Result<SensorStatus> sensor = GetSensorStatus(name);
    if (sensor.ok()) status.sensors.push_back(*std::move(sensor));
  }
  status.peers = PeerStatuses();
  const auto lock_stats = [](const telemetry::TimedMutex& mu) {
    LockStats stats;
    stats.name = mu.label();
    stats.acquisitions = mu.acquisitions();
    stats.contended = mu.contended();
    stats.wait_micros = mu.wait_micros_total();
    return stats;
  };
  // Per-shard rows: contention is attributable to the shard that pays
  // it. The TimedMutex accessors are lock-free reads.
  for (const auto& shard : shards_) {
    ShardStatus row;
    row.index = shard->index;
    row.sensors = static_cast<size_t>(shard->sensors_gauge->Value());
    row.ticks_total = shard->ticks_total->Value();
    row.lock_acquisitions = shard->mu.acquisitions();
    row.lock_contended = shard->mu.contended();
    row.lock_wait_micros = shard->mu.wait_micros_total();
    status.shards.push_back(row);
    status.locks.push_back(lock_stats(shard->mu));
  }
  status.locks.push_back(lock_stats(fed_mu_));
  status.locks.push_back(lock_stats(chain_mu_));
  status.locks.push_back(lock_stats(query_manager_.cache_lock()));
  status.hot_spans = profiler_.TopSpans(10);
  status.recovered_records = recovered_records_;
  status.recovery_failures = recovery_failures_;
  return status;
}

void Container::OnSensorBatch(const VirtualSensor& sensor,
                              const std::vector<StreamElement>& batch) {
  if (batch.empty()) return;
  const std::string& name = sensor.name();

  // Storage layer: the whole batch lands under the sensor's shard lock.
  // The WAL append stays inside the same critical section: Checkpoint()
  // destroys and replaces the log handle under the shard lock, so an
  // append racing a swap would write through a dead handle or onto the
  // compacted-over inode (and be lost to every future recovery).
  // Keeping insert + append atomic also means a checkpoint snapshot
  // always covers exactly the batches appended before it.
  std::vector<Outbound> remote_sends;
  telemetry::Profiler::Scope storage_span(&profiler_, "batch.storage",
                                          batch_storage_micros_.get());
  {
    const std::string key = StrToLower(name);
    Shard& shard = ShardFor(key);
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    auto it = shard.deployments.find(key);
    if (it != shard.deployments.end()) {
      if (it->second->table != nullptr) {
        const Status s = it->second->table->InsertBatch(batch);
        if (!s.ok()) {
          GSN_LOG(kWarn, "container") << name << ": table insert failed: " << s;
        }
      }
      if (it->second->log != nullptr) {
        for (const StreamElement& element : batch) {
          const Status s = it->second->log->Append(element);
          if (!s.ok()) {
            GSN_LOG(kWarn, "container")
                << name << ": persistence failed: " << s;
            break;
          }
        }
      }
    }
  }
  // Remote deliveries are sequenced and buffered for replay under
  // fed_mu_ — sequence assignment must be atomic with the
  // replay-buffer write, and per-subscription monotonicity holds
  // because one sensor's batches are serialized by its busy flag —
  // then sent after release.
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    const Timestamp send_now = options_.clock->NowMicros();
    if (options_.network != nullptr) {
      for (auto& [sub_id, subscriber] : subscribers_) {
        if (!StrEqualsIgnoreCase(subscriber.sensor_name, name)) continue;
        // An open circuit pauses the sends but not the sequencing: the
        // deliveries stay in the replay buffer, and the subscriber
        // NACKs the gap once the peer heals.
        const bool allowed =
            PeerAllowsSendLocked(subscriber.subscriber_node, send_now);
        for (const StreamElement& element : batch) {
          network::StreamDelivery delivery;
          delivery.subscription_id = sub_id;
          delivery.sensor_name = name;
          delivery.element = element;
          delivery.signature = integrity_.Sign(name, element);
          delivery.sequence = subscriber.next_seq++;
          // One "remote.send" span per target; its context rides in
          // the delivery (outside the signed payload) so the receiving
          // node continues the same trace.
          telemetry::Span send(tracer_, "remote.send", element.trace);
          send.set_sensor(name);
          send.set_node(options_.node_id);
          delivery.trace = send.context();
          std::string payload = delivery.Encode();
          subscriber.replay.Put(delivery.sequence, payload);
          if (allowed) {
            remote_sends.push_back({subscriber.subscriber_node,
                                    network::kTopicStream,
                                    std::move(payload)});
          }
        }
      }
    }
  }
  storage_span.Stop();

  // Local chaining: feed consumers deployed on this container.
  // chain_mu_ is held ACROSS PushBatch — Undeploy detaches a dying
  // consumer's wrappers under the same lock, so fan-out can never push
  // into a wrapper whose sensor is being destroyed. PushBatch only
  // takes the wrapper's own queue lock (a leaf), so this cannot
  // deadlock, and producers on other shards fan out concurrently only
  // contending here.
  telemetry::Profiler::Scope fanout_span(&profiler_, "batch.fanout",
                                         batch_fanout_micros_.get());
  {
    std::lock_guard<telemetry::TimedMutex> lock(chain_mu_);
    auto range = local_wrappers_.equal_range(StrToLower(name));
    for (auto it = range.first; it != range.second; ++it) {
      it->second->PushBatch(batch);
    }
  }

  // Notification manager (per-element conditions, one subscription
  // snapshot) + query repository (one evaluation pass per batch: the
  // continuous queries read the table state just inserted above).
  notifications_.OnBatch(name, sensor.output_schema(), batch);
  query_manager_.OnNewElementBatch(name, batch);

  // Remote consumers (each element signed by the integrity layer,
  // sequenced and buffered above).
  if (options_.network != nullptr) {
    const Timestamp send_now = options_.clock->NowMicros();
    for (Outbound& send : remote_sends) {
      const Status s =
          options_.network->Send(send_now, options_.node_id, send.to,
                                 send.topic, std::move(send.payload));
      if (!s.ok()) {
        GSN_LOG(kWarn, "container")
            << name << ": stream delivery to " << send.to << " failed: " << s;
      }
    }
  }
}

// ---------------------------------------------------------------- Queries

Result<Relation> Container::Query(const std::string& sql_text,
                                  const std::string& api_key) {
  if (access_control_.enabled()) {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                         sql::ParseSelect(sql_text));
    std::set<std::string> tables;
    QueryManager::CollectTables(*stmt, &tables);
    for (const std::string& table : tables) {
      GSN_RETURN_IF_ERROR(
          access_control_.Check(api_key, Permission::kRead, table));
    }
  }
  return query_manager_.Execute(sql_text);
}

// -------------------------------------------------------------- Directory

std::vector<DirectoryEntry> Container::Discover(
    const std::map<std::string, std::string>& query) const {
  return directory_.Discover(query);
}

void Container::PublishSensor(const VirtualSensorSpec& spec) {
  DirectoryEntry entry;
  entry.sensor_name = spec.name;
  entry.node_id = options_.node_id;
  entry.predicates = spec.metadata;
  entry.output_schema = spec.output_structure;
  directory_.Upsert(entry);
  if (options_.network != nullptr) {
    (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                      options_.node_id,
                                      network::kTopicDirPublish,
                                      entry.Encode());
  }
}

void Container::RetractSensor(const std::string& sensor_name) {
  directory_.Remove(options_.node_id, sensor_name);
  if (options_.network != nullptr) {
    network::DirRemove remove;
    remove.node_id = options_.node_id;
    remove.sensor_name = sensor_name;
    (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                      options_.node_id,
                                      network::kTopicDirRemove,
                                      remove.Encode());
  }
}

void Container::AnnounceAll() {
  // shared_ptr copies pin the deployments (and with them the specs)
  // against a concurrent Undeploy while we publish outside the locks.
  std::vector<std::shared_ptr<Deployment>> live;
  for (const auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    for (const auto& [key, deployment] : shard->deployments) {
      live.push_back(deployment);
    }
  }
  for (const auto& deployment : live) PublishSensor(deployment->sensor->spec());
}

// ---------------------------------------------------------------- Network

void Container::OnMessage(const Message& message) {
  // Any received message is liveness evidence for its sender: refresh
  // the peer's heartbeat clock and feed its circuit breaker a success.
  if (!message.from.empty() && message.from != options_.node_id) {
    const bool new_peer =
        NotePeerAlive(message.from, options_.clock->NowMicros());
    // First contact on a real transport: the peer cannot have seen our
    // deploy-time directory broadcasts (it started later, or sits
    // behind a forwarder and only now learned our address), so
    // re-announce. The simulator keeps its deterministic message
    // schedule: every node is registered before traffic starts there.
    if (new_peer && options_.network != nullptr &&
        options_.network->AsSimulator() == nullptr) {
      AnnounceAll();
    }
  }
  if (message.topic == network::kTopicHeartbeat) {
    return;  // nothing beyond the liveness note above
  }
  if (message.topic == network::kTopicDirPublish) {
    Result<DirectoryEntry> entry = DirectoryEntry::Decode(message.payload);
    if (entry.ok()) {
      directory_.Upsert(*std::move(entry));
    }
    return;
  }
  if (message.topic == network::kTopicDirRemove) {
    Result<network::DirRemove> remove =
        network::DirRemove::Decode(message.payload);
    if (remove.ok()) directory_.Remove(remove->node_id, remove->sensor_name);
    return;
  }
  if (message.topic == network::kTopicSubscribe) {
    Result<network::SubscribeRequest> request =
        network::SubscribeRequest::Decode(message.payload);
    if (!request.ok()) return;
    {
      std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
      // Idempotent: a re-sent request (lost ack) must not reset the
      // sequence counter or drop the replay buffer.
      auto [it, inserted] =
          subscribers_.try_emplace(request->subscription_id);
      if (inserted) {
        it->second.sensor_name = request->sensor_name;
        it->second.subscriber_node = request->subscriber_node;
        it->second.replay =
            network::ReplayBuffer(options_.resilience.replay_buffer_bytes);
      }
    }
    network::SubscribeAck ack;
    ack.subscription_id = request->subscription_id;
    (void)options_.network->Send(options_.clock->NowMicros(),
                                 options_.node_id, request->subscriber_node,
                                 network::kTopicSubAck, ack.Encode());
    return;
  }
  if (message.topic == network::kTopicSubAck) {
    Result<network::SubscribeAck> ack =
        network::SubscribeAck::Decode(message.payload);
    if (!ack.ok()) return;
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    auto it = remote_subs_.find(ack->subscription_id);
    if (it != remote_subs_.end()) {
      it->second.acked = true;
      it->second.last_activity = options_.clock->NowMicros();
    }
    return;
  }
  if (message.topic == network::kTopicStreamTip) {
    Result<network::StreamTip> tip =
        network::StreamTip::Decode(message.payload);
    if (!tip.ok()) return;
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    auto it = remote_subs_.find(tip->subscription_id);
    if (it != remote_subs_.end()) {
      it->second.acked = true;  // a tip implies the producer knows us
      // A tip only proves the subscription is alive when it reaches
      // our cursor: a restarted producer tips its fresh (low) sequence
      // space, and counting that as activity would mask the restart.
      if (tip->last_sequence + 1 >= it->second.wrapper->expected_sequence()) {
        it->second.last_activity = options_.clock->NowMicros();
      }
      it->second.wrapper->ObserveTip(tip->last_sequence);
    }
    return;
  }
  if (message.topic == network::kTopicStreamNack) {
    Result<network::NackRequest> nack =
        network::NackRequest::Decode(message.payload);
    if (!nack.ok()) return;
    // Serve the replay out of the subscriber's buffer; sequences
    // already evicted stay missing (the subscriber abandons them).
    std::vector<std::string> payloads;
    std::string target;
    {
      std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
      auto it = subscribers_.find(nack->subscription_id);
      if (it == subscribers_.end()) return;
      target = it->second.subscriber_node;
      constexpr size_t kMaxReplaysPerNack = 1024;
      for (const network::SeqRange& range : nack->ranges) {
        for (uint64_t seq = range.from;
             seq <= range.to && payloads.size() < kMaxReplaysPerNack; ++seq) {
          const std::string* payload = it->second.replay.Get(seq);
          if (payload != nullptr) payloads.push_back(*payload);
        }
      }
    }
    if (!payloads.empty()) {
      fed_replays_->Increment(static_cast<int64_t>(payloads.size()));
    }
    const Timestamp send_now = options_.clock->NowMicros();
    for (std::string& payload : payloads) {
      (void)options_.network->Send(send_now, options_.node_id, target,
                                   network::kTopicStream, std::move(payload));
    }
    return;
  }
  if (message.topic == network::kTopicUnsubscribe) {
    Result<network::UnsubscribeRequest> request =
        network::UnsubscribeRequest::Decode(message.payload);
    if (!request.ok()) return;
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    subscribers_.erase(request->subscription_id);
    return;
  }
  if (message.topic == network::kTopicStream) {
    Result<network::StreamDelivery> delivery =
        network::StreamDelivery::Decode(message.payload);
    if (!delivery.ok()) return;
    // Integrity layer: drop elements whose signature does not verify.
    if (!delivery->signature.empty() &&
        !integrity_.Verify(delivery->sensor_name, delivery->element,
                           delivery->signature)) {
      GSN_LOG(kWarn, "container")
          << options_.node_id << ": dropped stream element with bad "
          << "signature from " << message.from;
      return;
    }
    RemoteStreamWrapper* wrapper = nullptr;
    {
      std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
      auto it = remote_subs_.find(delivery->subscription_id);
      if (it != remote_subs_.end()) {
        // A flowing delivery implies the producer registered us even
        // if the explicit ack was lost.
        it->second.acked = true;
        wrapper = it->second.wrapper;
      }
    }
    if (wrapper != nullptr) {
      // Restore the producer's trace context so this node's source
      // admission continues the cross-container trace.
      delivery->element.trace = delivery->trace;
      const RemoteStreamWrapper::PushOutcome outcome =
          wrapper->Push(delivery->element, delivery->sequence);
      if (outcome.duplicate) fed_dups_->Increment();
      if (outcome.gap_opened) fed_gaps_->Increment();
      // Admissions and parked futures prove the subscription is live;
      // pure duplicates below our cursor do not (a restarted producer
      // streams a fresh sequence space that dedups to nothing).
      if (outcome.admitted > 0 || outcome.gap_opened) {
        std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
        auto it = remote_subs_.find(delivery->subscription_id);
        if (it != remote_subs_.end()) {
          it->second.last_activity = options_.clock->NowMicros();
        }
      }
    }
    return;
  }
  GSN_LOG(kWarn, "container")
      << options_.node_id << ": unknown topic '" << message.topic << "'";
}

// -------------------------------------------------------------- Resilience

Container::PeerState& Container::PeerStateLocked(const std::string& peer,
                                                 Timestamp now) {
  auto [it, inserted] = peers_.try_emplace(peer);
  if (inserted) {
    it->second.last_seen = now;
    it->second.breaker =
        network::CircuitBreaker(options_.resilience.circuit);
    it->second.circuit_gauge = metrics_->GetGauge(
        "gsn_circuit_state",
        {{"node", options_.node_id}, {"peer", peer}},
        "Per-peer circuit state (0 closed, 1 open, 2 half-open)");
  }
  return it->second;
}

bool Container::PeerAllowsSendLocked(const std::string& peer, Timestamp now) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return true;  // no evidence against the peer
  return it->second.breaker.AllowSend(now);
}

bool Container::NotePeerAlive(const std::string& from, Timestamp now) {
  std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
  const bool new_peer = peers_.find(from) == peers_.end();
  PeerState& peer = PeerStateLocked(from, now);
  peer.last_seen = now;
  if (peer.breaker.RecordSuccess()) {
    GSN_LOG(kInfo, "container")
        << options_.node_id << ": circuit to " << from << " closed (peer back)";
  }
  peer.circuit_gauge->Set(
      static_cast<int64_t>(peer.breaker.StateAt(now)));
  return new_peer;
}

void Container::NotePeerError(const std::string& peer, const Status& error) {
  if (peer.empty() || peer == options_.node_id) return;
  const Timestamp now = options_.clock->NowMicros();
  std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
  // Only peers the resilience layer already tracks: transport errors
  // carry whatever id the connection had, which for unidentified
  // inbound links is a raw "ip:port" — creating breaker state (and a
  // gsn_circuit_state series) for those would leak garbage peers.
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  PeerState& state = it->second;
  if (state.breaker.RecordFailure(now)) {
    GSN_LOG(kWarn, "container")
        << options_.node_id << ": circuit to " << peer
        << " opened (transport: " << error.message() << ")";
  }
  state.circuit_gauge->Set(static_cast<int64_t>(state.breaker.StateAt(now)));
}

bool Container::TryFailoverLocked(const std::string& old_id, Timestamp now,
                                  std::vector<Outbound>* sends) {
  auto sub_it = remote_subs_.find(old_id);
  if (sub_it == remote_subs_.end()) return false;
  RemoteSubscription sub = sub_it->second;  // copy; re-keyed below

  const std::vector<DirectoryEntry> matches =
      directory_.Discover(sub.predicates);
  const DirectoryEntry* target = nullptr;
  const std::string wrapper_schema = sub.wrapper->output_schema().ToString();
  for (const DirectoryEntry& entry : matches) {
    if (entry.node_id == sub.peer_node) continue;
    if (!PeerAllowsSendLocked(entry.node_id, now)) continue;
    if (entry.output_schema.ToString() != wrapper_schema) continue;
    target = &entry;
    break;
  }
  if (target == nullptr) {
    // No alternative producer: keep the subscription and restart the
    // subscribe cycle against the current peer (it may come back).
    sub_it->second.acked = false;
    sub_it->second.subscribe_attempts = 0;
    sub_it->second.next_subscribe_at = now;
    return false;
  }

  const std::string new_id =
      options_.node_id + "#" + std::to_string(next_subscription_++);
  GSN_LOG(kInfo, "container")
      << options_.node_id << ": failing over subscription " << old_id
      << " from " << sub.peer_node << " to " << target->node_id << " ("
      << target->sensor_name << ") as " << new_id;

  // Fresh sequence space on the new producer.
  sub.wrapper->Rebind(target->node_id, target->sensor_name);
  sub.peer_node = target->node_id;
  sub.acked = false;
  sub.subscribe_attempts = 1;
  sub.next_subscribe_at =
      now + sub.retry.BackoffForAttempt(1, &resilience_rng_);
  sub.last_missing.clear();
  sub.nack_attempts = 0;
  sub.next_nack_at = 0;

  // Re-key the consumer deployment's subscription list in place; the
  // map lives under fed_mu_ (already held), so failover never needs to
  // reach into a shard.
  auto dep_it = subs_by_deployment_.find(sub.deployment_key);
  if (dep_it != subs_by_deployment_.end()) {
    for (std::string& id : dep_it->second) {
      if (id == old_id) id = new_id;
    }
  }

  network::SubscribeRequest request;
  request.subscription_id = new_id;
  request.sensor_name = target->sensor_name;
  request.subscriber_node = options_.node_id;
  sends->push_back(
      {target->node_id, network::kTopicSubscribe, request.Encode()});
  // Best-effort cancel on whoever held the old subscription.
  network::UnsubscribeRequest cancel;
  cancel.subscription_id = old_id;
  sends->push_back({"", network::kTopicUnsubscribe, cancel.Encode()});

  remote_subs_.erase(sub_it);
  remote_subs_[new_id] = std::move(sub);
  fed_failovers_->Increment();
  return true;
}

void Container::RestartSubscriptionLocked(const std::string& old_id,
                                          Timestamp now,
                                          std::vector<Outbound>* sends) {
  auto sub_it = remote_subs_.find(old_id);
  if (sub_it == remote_subs_.end()) return;
  RemoteSubscription sub = sub_it->second;  // copy; re-keyed below

  const std::string new_id =
      options_.node_id + "#" + std::to_string(next_subscription_++);
  GSN_LOG(kWarn, "container")
      << options_.node_id << ": subscription " << old_id
      << " went silent on live peer " << sub.peer_node
      << " (restarted producer?); resubscribing as " << new_id;

  // Fresh sequence space: the restarted producer numbers from 1 again,
  // and our old cursor would dedup its whole stream away.
  sub.wrapper->Rebind(sub.peer_node, sub.wrapper->remote_sensor());
  sub.acked = false;
  sub.subscribe_attempts = 1;
  sub.next_subscribe_at =
      now + sub.retry.BackoffForAttempt(1, &resilience_rng_);
  sub.last_missing.clear();
  sub.nack_attempts = 0;
  sub.next_nack_at = 0;
  sub.last_activity = now;

  auto dep_it = subs_by_deployment_.find(sub.deployment_key);
  if (dep_it != subs_by_deployment_.end()) {
    for (std::string& id : dep_it->second) {
      if (id == old_id) id = new_id;
    }
  }

  network::SubscribeRequest request;
  request.subscription_id = new_id;
  request.sensor_name = sub.wrapper->remote_sensor();
  request.subscriber_node = options_.node_id;
  sends->push_back(
      {sub.peer_node, network::kTopicSubscribe, request.Encode()});
  // If the producer does still hold the old subscription (a quiet
  // stream we misread), this cancel keeps it from double-streaming.
  network::UnsubscribeRequest cancel;
  cancel.subscription_id = old_id;
  sends->push_back({sub.peer_node, network::kTopicUnsubscribe, cancel.Encode()});

  remote_subs_.erase(sub_it);
  remote_subs_[new_id] = std::move(sub);
  fed_resubscribes_->Increment();
}

void Container::RunResilience(Timestamp now) {
  const Options::Resilience& config = options_.resilience;
  std::vector<Outbound> sends;
  bool heartbeat = false;
  std::vector<VirtualSensorSpec> republish;
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);

    // Liveness beacon.
    if (now - last_heartbeat_ >= config.heartbeat_interval) {
      last_heartbeat_ = now;
      ++heartbeat_beat_;
      heartbeat = true;
    }

    // Silent peers accumulate circuit-breaker failures, one per
    // heartbeat interval past the timeout.
    for (auto& [peer_id, peer] : peers_) {
      if (now - peer.last_seen >= config.peer_timeout &&
          now - peer.last_failure_mark >= config.heartbeat_interval) {
        peer.last_failure_mark = now;
        if (peer.breaker.RecordFailure(now)) {
          GSN_LOG(kWarn, "container")
              << options_.node_id << ": circuit to " << peer_id << " opened";
        }
      }
      peer.circuit_gauge->Set(
          static_cast<int64_t>(peer.breaker.StateAt(now)));
    }

    // Consumer side: subscribe retries, gap repair, failover.
    std::vector<std::string> failover_candidates;
    std::vector<std::string> silent_subscriptions;
    for (auto& [sub_id, sub] : remote_subs_) {
      auto peer_it = peers_.find(sub.peer_node);
      const bool peer_open =
          peer_it != peers_.end() &&
          peer_it->second.breaker.StateAt(now) ==
              network::CircuitBreaker::State::kOpen;
      if (peer_open) {
        failover_candidates.push_back(sub_id);
        continue;
      }
      // Restart detection: the peer answers heartbeats but the stream
      // is silent past the tip cadence — after a producer crash the
      // subscriber table is gone while the redialed link looks
      // healthy, so nothing else would ever repair this subscription.
      // The silence clock only runs against a live peer; while the
      // peer is dark the breaker/failover machinery paces recovery.
      if (sub.acked && config.subscription_silence_timeout > 0) {
        const bool peer_alive =
            peer_it != peers_.end() &&
            now - peer_it->second.last_seen < config.peer_timeout;
        if (!peer_alive) {
          sub.last_activity = now;
        } else if (now - sub.last_activity >=
                   config.subscription_silence_timeout) {
          silent_subscriptions.push_back(sub_id);
          continue;
        }
      }
      if (!sub.acked) {
        if (now < sub.next_subscribe_at) continue;
        if (sub.retry.Exhausted(sub.subscribe_attempts)) {
          failover_candidates.push_back(sub_id);
          continue;
        }
        ++sub.subscribe_attempts;
        fed_retries_subscribe_->Increment();
        network::SubscribeRequest request;
        request.subscription_id = sub_id;
        request.sensor_name = sub.wrapper->remote_sensor();
        request.subscriber_node = options_.node_id;
        sends.push_back(
            {sub.peer_node, network::kTopicSubscribe, request.Encode()});
        sub.next_subscribe_at =
            now + sub.retry.BackoffForAttempt(sub.subscribe_attempts,
                                              &resilience_rng_);
        continue;
      }
      // Gap repair: NACK the missing ranges, pacing attempts only
      // while the missing set makes no progress.
      std::vector<network::SeqRange> missing = sub.wrapper->MissingRanges();
      if (missing.empty()) {
        sub.nack_attempts = 0;
        sub.last_missing.clear();
        continue;
      }
      if (missing != sub.last_missing) {
        sub.last_missing = missing;
        sub.nack_attempts = 0;  // progress — restart the budget
      }
      if (now < sub.next_nack_at) continue;
      if (sub.retry.Exhausted(sub.nack_attempts)) {
        // The producer can no longer replay these (evicted or gone):
        // give the head range up so the stream keeps flowing.
        const int lost = sub.wrapper->AbandonMissingThrough(missing.front().to);
        if (lost > 0) {
          fed_abandoned_->Increment(lost);
          GSN_LOG(kWarn, "container")
              << options_.node_id << ": abandoned " << lost
              << " irrecoverable deliveries on " << sub_id;
        }
        sub.nack_attempts = 0;
        sub.last_missing.clear();
        continue;
      }
      ++sub.nack_attempts;
      fed_retries_replay_->Increment();
      network::NackRequest nack;
      nack.subscription_id = sub_id;
      nack.ranges = std::move(missing);
      sends.push_back(
          {sub.peer_node, network::kTopicStreamNack, nack.Encode()});
      sub.next_nack_at =
          now + sub.retry.BackoffForAttempt(sub.nack_attempts,
                                            &resilience_rng_);
    }
    for (const std::string& sub_id : failover_candidates) {
      (void)TryFailoverLocked(sub_id, now, &sends);
    }
    for (const std::string& sub_id : silent_subscriptions) {
      RestartSubscriptionLocked(sub_id, now, &sends);
    }

    // Producer side: periodic delivery high-water marks let the
    // subscriber detect tail loss; also refresh the replay gauge.
    if (now - last_tip_ >= config.tip_interval) {
      last_tip_ = now;
      size_t replay_bytes = 0;
      for (const auto& [sub_id, subscriber] : subscribers_) {
        replay_bytes += subscriber.replay.bytes();
        // Tips go out even before the first delivery (last_sequence
        // 0): they are the subscriber's only liveness proof for a
        // quiet stream, and its restart detector keys on their cadence.
        if (!PeerAllowsSendLocked(subscriber.subscriber_node, now)) continue;
        network::StreamTip tip;
        tip.subscription_id = sub_id;
        tip.last_sequence = subscriber.next_seq - 1;
        sends.push_back(
            {subscriber.subscriber_node, network::kTopicStreamTip,
             tip.Encode()});
      }
      replay_bytes_->Set(static_cast<int64_t>(replay_bytes));
    }

    // Directory-publish retry rounds. Each pending entry carries its
    // own spec copy, so the retry never reaches into a shard's
    // deployment map (Undeploy purges entries for dead sensors).
    for (auto it = pending_publishes_.begin();
         it != pending_publishes_.end();) {
      if (now < it->next_at) {
        ++it;
        continue;
      }
      republish.push_back(it->spec);
      fed_retries_publish_->Increment();
      ++it->round;
      if (it->round > config.publish_rounds) {
        it = pending_publishes_.erase(it);
      } else {
        it->next_at =
            now + config.retry.BackoffForAttempt(it->round, &resilience_rng_);
        ++it;
      }
    }
  }

  if (heartbeat) {
    network::Heartbeat beat;
    beat.node_id = options_.node_id;
    beat.beat = heartbeat_beat_;
    (void)options_.network->Broadcast(now, options_.node_id,
                                      network::kTopicHeartbeat, beat.Encode());
  }
  for (Outbound& send : sends) {
    if (send.to.empty()) {
      (void)options_.network->Broadcast(now, options_.node_id, send.topic,
                                        send.payload);
    } else {
      (void)options_.network->Send(now, options_.node_id, send.to, send.topic,
                                   std::move(send.payload));
    }
  }
  for (const VirtualSensorSpec& spec : republish) PublishSensor(spec);
}

std::vector<Container::PeerStatus> Container::PeerStatuses() const {
  const Timestamp now = options_.clock->NowMicros();
  std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
  std::vector<PeerStatus> out;
  out.reserve(peers_.size());
  for (const auto& [peer_id, peer] : peers_) {
    PeerStatus status;
    status.node_id = peer_id;
    status.circuit =
        network::CircuitBreaker::StateName(peer.breaker.StateAt(now));
    status.last_seen = peer.last_seen;
    status.circuit_opened_total = peer.breaker.opened_total();
    out.push_back(std::move(status));
  }
  return out;
}

Result<Relation> Container::CatalogResolver::GetTable(
    const std::string& name) const {
  const std::string key = StrToLower(name);
  if (key == "gsn_sensors") {
    Schema schema;
    schema.AddField("name", DataType::kString);
    schema.AddField("state", DataType::kString);
    schema.AddField("pool_size", DataType::kInt);
    schema.AddField("triggers", DataType::kInt);
    schema.AddField("produced", DataType::kInt);
    schema.AddField("rate_limited", DataType::kInt);
    schema.AddField("errors", DataType::kInt);
    schema.AddField("restarts", DataType::kInt);
    schema.AddField("queue_depth", DataType::kInt);
    schema.AddField("shed", DataType::kInt);
    schema.AddField("stored_rows", DataType::kInt);
    schema.AddField("stored_bytes", DataType::kInt);
    schema.AddField("remote_subscribers", DataType::kInt);
    Relation rel(schema);
    for (const std::string& sensor : container_->ListSensors()) {
      Result<SensorStatus> status = container_->GetSensorStatus(sensor);
      if (!status.ok()) continue;
      (void)rel.AddRow(
          {Value::String(status->name),
           Value::String(SensorStateName(status->state)),
           Value::Int(status->pool_size), Value::Int(status->stats.triggers),
           Value::Int(status->stats.produced),
           Value::Int(status->stats.rate_limited),
           Value::Int(status->stats.errors),
           Value::Int(status->restart_attempts),
           Value::Int(static_cast<int64_t>(status->queue_depth)),
           Value::Int(status->shed),
           Value::Int(static_cast<int64_t>(status->stored_rows)),
           Value::Int(static_cast<int64_t>(status->stored_bytes)),
           Value::Int(status->remote_subscribers)});
    }
    return rel;
  }
  if (key == "gsn_wrappers") {
    Schema schema;
    schema.AddField("name", DataType::kString);
    Relation rel(schema);
    for (const std::string& wrapper : container_->registry_.Names()) {
      (void)rel.AddRow({Value::String(wrapper)});
    }
    return rel;
  }
  if (key == "gsn_directory") {
    Schema schema;
    schema.AddField("sensor", DataType::kString);
    schema.AddField("node", DataType::kString);
    schema.AddField("predicates", DataType::kString);
    schema.AddField("output_schema", DataType::kString);
    Relation rel(schema);
    for (const DirectoryEntry& entry : container_->Discover({})) {
      std::string predicates;
      for (const auto& [k, v] : entry.predicates) {
        if (!predicates.empty()) predicates += ",";
        predicates += k + "=" + v;
      }
      (void)rel.AddRow({Value::String(entry.sensor_name),
                        Value::String(entry.node_id),
                        Value::String(predicates),
                        Value::String(entry.output_schema.ToString())});
    }
    return rel;
  }
  return container_->tables_.GetTable(name);
}

Result<Relation> Container::CatalogResolver::GetTableFiltered(
    const std::string& name, const sql::ScanPredicate& predicate,
    sql::ScanStats* stats) const {
  const std::string key = StrToLower(name);
  // The gsn_* virtual tables are synthesized per query; no cold tier
  // to prune, so the predicate is left to the WHERE evaluation.
  if (key == "gsn_sensors" || key == "gsn_wrappers" || key == "gsn_directory") {
    return GetTable(name);
  }
  return container_->tables_.GetTableFiltered(name, predicate, stats);
}

std::vector<Container::TopologyEdge> Container::Topology() {
  std::vector<TopologyEdge> edges;
  for (const auto& shard : shards_) {
    std::lock_guard<telemetry::TimedMutex> lock(shard->mu);
    for (const auto& [key, deployment] : shard->deployments) {
      const VirtualSensorSpec& spec = deployment->sensor->spec();
      for (const auto& stream : spec.input_streams) {
        for (const auto& source : stream.sources) {
          TopologyEdge edge;
          edge.to = spec.name;
          edge.label = stream.name + "/" + source.alias;
          if (StrEqualsIgnoreCase(source.address.wrapper, "remote")) {
            const vsensor::StreamSource* running =
                deployment->sensor->FindSource(stream.name, source.alias);
            const auto* remote =
                running == nullptr
                    ? nullptr
                    : dynamic_cast<const network::RemoteStreamWrapper*>(
                          &running->wrapper());
            edge.from = remote != nullptr
                            ? remote->peer_node() + ":" +
                                  remote->remote_sensor()
                            : "remote";
          } else {
            edge.from = source.address.wrapper + " device";
          }
          edges.push_back(std::move(edge));
        }
      }
    }
  }
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    for (const auto& [sub_id, subscriber] : subscribers_) {
      edges.push_back(TopologyEdge{subscriber.sensor_name,
                                   subscriber.subscriber_node + " (node)",
                                   "stream"});
    }
  }
  return edges;
}

// ------------------------------------------------------------ Introspection

Result<Container::SensorStatus> Container::GetSensorStatus(
    const std::string& sensor_name) const {
  const std::string key = StrToLower(sensor_name);
  SensorStatus status;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<telemetry::TimedMutex> lock(shard.mu);
    auto it = shard.deployments.find(key);
    if (it == shard.deployments.end()) {
      return Status::NotFound("no such sensor: " + sensor_name);
    }
    const Deployment& deployment = *it->second;
    status.name = deployment.sensor->name();
    status.stats = deployment.sensor->stats();
    status.state = deployment.state;
    status.restart_attempts = deployment.restart_attempts;
    status.queue_depth = deployment.sensor->QueueDepth();
    status.shed = deployment.sensor->ShedCount();
    status.stored_rows = deployment.table->NumRows();
    status.stored_bytes = deployment.table->ApproximateBytes();
    // Ticks are driven by the shared worker pool now; the descriptor's
    // pool-size knob survives as declared parallelism for reporting.
    status.pool_size =
        std::max(1, deployment.sensor->spec().life_cycle.pool_size);
  }
  int64_t subs = 0;
  {
    std::lock_guard<telemetry::TimedMutex> lock(fed_mu_);
    for (const auto& [id, subscriber] : subscribers_) {
      if (StrEqualsIgnoreCase(subscriber.sensor_name, sensor_name)) ++subs;
    }
  }
  status.remote_subscribers = subs;
  return status;
}

}  // namespace gsn::container

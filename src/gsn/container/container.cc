#include "gsn/container/container.h"

#include <algorithm>

#include "gsn/sql/parser.h"
#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::container {

using network::DirectoryEntry;
using network::Message;
using network::RemoteStreamWrapper;
using vsensor::StreamSource;
using vsensor::VirtualSensor;
using vsensor::VirtualSensorSpec;

Container::Container(Options options)
    : options_(std::move(options)),
      owned_metrics_(options_.metrics == nullptr
                         ? std::make_unique<telemetry::MetricRegistry>()
                         : nullptr),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : owned_metrics_.get()),
      owned_tracer_(options_.tracer == nullptr
                        ? std::make_unique<telemetry::Tracer>()
                        : nullptr),
      tracer_(options_.tracer != nullptr ? options_.tracer
                                         : owned_tracer_.get()),
      query_manager_(&catalog_, metrics_),
      notifications_(metrics_, tracer_),
      integrity_(options_.integrity_key) {
  if (options_.clock == nullptr) options_.clock = SystemClock::Shared();
  query_manager_.set_tracer(tracer_);
  sensors_deployed_ = metrics_->GetGauge(
      "gsn_sensors_deployed", {{"node", options_.node_id}},
      "Virtual sensors currently deployed on this node");
  wrappers::WrapperRegistry::RegisterBuiltins(&registry_);
  if (options_.network != nullptr) {
    const Status s = options_.network->RegisterNode(options_.node_id, this);
    if (!s.ok()) {
      GSN_LOG(kError, "container")
          << options_.node_id << ": network registration failed: " << s;
    }
  }
}

Container::~Container() {
  // Stop sensors before members are torn down.
  std::vector<std::string> names = ListSensors();
  for (const std::string& name : names) {
    const Status s = Undeploy(name);
    (void)s;
  }
  if (options_.network != nullptr) {
    (void)options_.network->UnregisterNode(options_.node_id);
  }
}

// ---------------------------------------------------------------- Deploy

Result<VirtualSensor*> Container::Deploy(const std::string& descriptor_xml,
                                         const std::string& api_key) {
  GSN_ASSIGN_OR_RETURN(VirtualSensorSpec spec,
                       vsensor::ParseDescriptor(descriptor_xml));
  return DeploySpec(std::move(spec), api_key);
}

Result<VirtualSensor*> Container::DeploySpec(VirtualSensorSpec spec,
                                             const std::string& api_key) {
  GSN_RETURN_IF_ERROR(access_control_.Check(api_key, Permission::kDeploy));
  GSN_RETURN_IF_ERROR(spec.Validate());
  const std::string key = StrToLower(spec.name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (deployments_.count(key)) {
      return Status::AlreadyExists("sensor already deployed: " + spec.name);
    }
  }

  // Storage: the sensor's output history as a SQL-visible table.
  GSN_ASSIGN_OR_RETURN(
      storage::Table * table,
      tables_.CreateTable(spec.name, spec.output_structure,
                          spec.storage.history));
  // Undo table creation on any later failure.
  auto drop_table = [&] { (void)tables_.DropTable(spec.name); };

  Deployment deployment;
  deployment.table = table;

  // Permanent storage: open the per-sensor log and replay history.
  if (spec.storage.permanent && !options_.storage_dir.empty()) {
    const std::string path =
        options_.storage_dir + "/" + StrToLower(spec.name) + ".gsnlog";
    bool truncated = false;
    Result<std::vector<StreamElement>> recovered =
        storage::PersistenceLog::Recover(path, &truncated);
    if (!recovered.ok()) {
      drop_table();
      return recovered.status();
    }
    for (const StreamElement& e : *recovered) {
      const Status s = table->Insert(e);
      if (!s.ok()) {
        GSN_LOG(kWarn, "container")
            << spec.name << ": skipping incompatible recovered element: " << s;
      }
    }
    if (truncated) {
      GSN_LOG(kWarn, "container")
          << spec.name << ": persistence log had a torn tail; recovered "
          << recovered->size() << " elements";
    }
    Result<std::unique_ptr<storage::PersistenceLog>> log =
        storage::PersistenceLog::Open(path);
    if (!log.ok()) {
      drop_table();
      return log.status();
    }
    deployment.log = *std::move(log);
  }

  // Wrappers and stream sources.
  std::vector<std::vector<std::unique_ptr<StreamSource>>> sources(
      spec.input_streams.size());
  for (size_t i = 0; i < spec.input_streams.size(); ++i) {
    for (const vsensor::StreamSourceSpec& source_spec :
         spec.input_streams[i].sources) {
      Result<std::unique_ptr<wrappers::Wrapper>> wrapper =
          MakeWrapperForSource(source_spec, &deployment);
      if (!wrapper.ok()) {
        drop_table();
        return wrapper.status();
      }
      uint64_t seed;
      {
        std::lock_guard<std::mutex> lock(mu_);
        seed = options_.seed * 1000003 + ++wrapper_seed_counter_;
      }
      sources[i].push_back(std::make_unique<StreamSource>(
          source_spec, *std::move(wrapper), seed, metrics_, tracer_,
          options_.node_id));
    }
  }

  const Timestamp now = options_.clock->NowMicros();
  deployment.deployed_at = now;
  if (spec.life_cycle.lifetime_micros > 0) {
    deployment.expires_at = now + spec.life_cycle.lifetime_micros;
  }
  deployment.pool = std::make_unique<ThreadPool>(spec.life_cycle.pool_size);
  deployment.sensor = std::make_unique<VirtualSensor>(
      std::move(spec), std::move(sources), options_.clock, metrics_, tracer_,
      options_.node_id);

  VirtualSensor* sensor = deployment.sensor.get();
  sensor->AddBatchListener(
      [this](const VirtualSensor& vs, const std::vector<StreamElement>& batch) {
        OnSensorBatch(vs, batch);
      });

  const Status started = sensor->Start();
  if (!started.ok()) {
    drop_table();
    return started;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    deployments_[key] = std::move(deployment);
    sensors_deployed_->Set(static_cast<int64_t>(deployments_.size()));
  }
  PublishSensor(sensor->spec());
  GSN_LOG(kInfo, "container")
      << options_.node_id << ": deployed '" << sensor->name() << "'";
  return sensor;
}

Result<std::unique_ptr<wrappers::Wrapper>> Container::MakeWrapperForSource(
    const vsensor::StreamSourceSpec& source_spec, Deployment* deployment) {
  // wrapper="local": derive from another virtual sensor on this
  // container (paper §2: "a data stream derived from other virtual
  // sensors"). Predicates address the producer like a directory query,
  // restricted to this node.
  if (StrEqualsIgnoreCase(source_spec.address.wrapper, "local")) {
    std::map<std::string, std::string> query = source_spec.address.predicates;
    query["node"] = options_.node_id;
    const std::vector<DirectoryEntry> matches = directory_.Discover(query);
    if (matches.empty()) {
      return Status::Unavailable(
          "no local virtual sensor matches the address predicates of "
          "source '" +
          source_spec.alias + "' (deploy the producer first)");
    }
    const DirectoryEntry& entry = matches.front();
    auto wrapper = std::make_unique<LocalStreamWrapper>(entry.output_schema,
                                                        entry.sensor_name);
    {
      std::lock_guard<std::mutex> lock(mu_);
      local_wrappers_.emplace(StrToLower(entry.sensor_name), wrapper.get());
    }
    deployment->local_sources.push_back(wrapper.get());
    return std::unique_ptr<wrappers::Wrapper>(std::move(wrapper));
  }

  if (!StrEqualsIgnoreCase(source_spec.address.wrapper, "remote")) {
    wrappers::WrapperConfig config;
    config.instance_name = source_spec.alias;
    config.params = source_spec.address.predicates;
    config.clock = options_.clock;
    {
      std::lock_guard<std::mutex> lock(mu_);
      config.seed = options_.seed * 7919 + ++wrapper_seed_counter_;
    }
    return registry_.Create(source_spec.address.wrapper, config);
  }

  // wrapper="remote": logical addressing through the directory.
  if (options_.network == nullptr) {
    return Status::InvalidArgument(
        "wrapper=\"remote\" requires the container to be attached to a "
        "network");
  }
  const std::vector<DirectoryEntry> matches =
      directory_.Discover(source_spec.address.predicates);
  if (matches.empty()) {
    return Status::Unavailable(
        "no published virtual sensor matches the address predicates of "
        "source '" +
        source_spec.alias +
        "' (deploy the producer first, or check the predicates)");
  }
  const DirectoryEntry& entry = matches.front();

  std::string subscription_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    subscription_id =
        options_.node_id + "#" + std::to_string(next_subscription_++);
  }
  network::SubscribeRequest request;
  request.subscription_id = subscription_id;
  request.sensor_name = entry.sensor_name;
  request.subscriber_node = options_.node_id;
  GSN_RETURN_IF_ERROR(options_.network->Send(
      options_.clock->NowMicros(), options_.node_id, entry.node_id,
      network::kTopicSubscribe, request.Encode()));

  auto wrapper = std::make_unique<RemoteStreamWrapper>(
      entry.output_schema, entry.node_id, entry.sensor_name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    remote_wrappers_[subscription_id] = wrapper.get();
  }
  deployment->subscription_ids.push_back(subscription_id);
  return std::unique_ptr<wrappers::Wrapper>(std::move(wrapper));
}

Status Container::Undeploy(const std::string& sensor_name,
                           const std::string& api_key) {
  GSN_RETURN_IF_ERROR(access_control_.Check(api_key, Permission::kDeploy));
  const std::string key = StrToLower(sensor_name);
  Deployment deployment;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = deployments_.find(key);
    if (it == deployments_.end()) {
      return Status::NotFound("no such sensor: " + sensor_name);
    }
    deployment = std::move(it->second);
    deployments_.erase(it);
    sensors_deployed_->Set(static_cast<int64_t>(deployments_.size()));
    for (const std::string& id : deployment.subscription_ids) {
      remote_wrappers_.erase(id);
    }
    // Detach this sensor's own local-source wrappers from producers.
    for (auto wit = local_wrappers_.begin(); wit != local_wrappers_.end();) {
      bool mine = false;
      for (LocalStreamWrapper* w : deployment.local_sources) {
        if (wit->second == w) {
          mine = true;
          break;
        }
      }
      wit = mine ? local_wrappers_.erase(wit) : std::next(wit);
    }
    // Consumers chained onto this sensor stop receiving.
    auto range = local_wrappers_.equal_range(key);
    for (auto wit = range.first; wit != range.second;) {
      wit->second->MarkProducerGone();
      wit = local_wrappers_.erase(wit);
    }
  }
  deployment.sensor->Stop();
  deployment.pool->Shutdown();

  // Cancel our subscriptions on remote producers.
  if (options_.network != nullptr) {
    for (const std::string& id : deployment.subscription_ids) {
      network::UnsubscribeRequest cancel;
      cancel.subscription_id = id;
      // Peer node id is encoded in the wrapper; broadcast is simpler
      // and idempotent for unknown ids.
      (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                        options_.node_id,
                                        network::kTopicUnsubscribe,
                                        cancel.Encode());
    }
  }

  // Drop remote consumers of this sensor.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = subscribers_.begin(); it != subscribers_.end();) {
      if (StrEqualsIgnoreCase(it->second.sensor_name, sensor_name)) {
        it = subscribers_.erase(it);
      } else {
        ++it;
      }
    }
  }

  RetractSensor(deployment.sensor->name());
  GSN_RETURN_IF_ERROR(tables_.DropTable(sensor_name));
  // Retire the sensor's metric series; its handles die with `deployment`.
  metrics_->RemoveWithLabel("sensor", deployment.sensor->name());
  GSN_LOG(kInfo, "container")
      << options_.node_id << ": undeployed '" << sensor_name << "'";
  return Status::OK();
}

std::vector<std::string> Container::ListSensors() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(deployments_.size());
  for (const auto& [key, deployment] : deployments_) {
    out.push_back(deployment.sensor->name());
  }
  return out;
}

VirtualSensor* Container::FindSensor(const std::string& sensor_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deployments_.find(StrToLower(sensor_name));
  return it == deployments_.end() ? nullptr : it->second.sensor.get();
}

// ---------------------------------------------------------------- Runtime

namespace {
/// Anti-entropy period for directory gossip.
constexpr Timestamp kAnnounceInterval = 5 * kMicrosPerSecond;
}  // namespace

Result<int> Container::Tick() {
  const Timestamp now = options_.clock->NowMicros();

  // Periodic directory re-announcement: lost publish messages heal.
  bool announce = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.network != nullptr &&
        now - last_announce_ >= kAnnounceInterval) {
      last_announce_ = now;
      announce = true;
    }
  }
  if (announce) AnnounceAll();

  // Collect sensors and their pools under the lock; run outside it.
  struct Job {
    VirtualSensor* sensor;
    ThreadPool* pool;
  };
  std::vector<Job> jobs;
  std::vector<std::string> expired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(deployments_.size());
    for (auto& [key, deployment] : deployments_) {
      if (deployment.expires_at > 0 && now >= deployment.expires_at) {
        expired.push_back(deployment.sensor->name());
        continue;
      }
      jobs.push_back({deployment.sensor.get(), deployment.pool.get()});
    }
  }

  // Lifetime bounds (paper §3): expired sensors release their resources.
  for (const std::string& name : expired) {
    GSN_LOG(kInfo, "container") << name << ": lifetime expired, undeploying";
    const Status s = Undeploy(name);
    if (!s.ok()) {
      GSN_LOG(kWarn, "container") << "lifetime undeploy failed: " << s;
    }
  }

  // Run each sensor's tick on its life-cycle pool; sensors proceed in
  // parallel, each serialized internally.
  std::mutex result_mu;
  int produced = 0;
  Status first_error = Status::OK();
  for (const Job& job : jobs) {
    job.pool->Submit([&, job] {
      Result<int> n = job.sensor->Tick(now);
      std::lock_guard<std::mutex> lock(result_mu);
      if (n.ok()) {
        produced += *n;
      } else if (first_error.ok()) {
        first_error = n.status();
      }
    });
  }
  for (const Job& job : jobs) job.pool->Wait();

  if (!first_error.ok()) return first_error;
  return produced;
}

void Container::OnSensorBatch(const VirtualSensor& sensor,
                              const std::vector<StreamElement>& batch) {
  if (batch.empty()) return;
  const std::string& name = sensor.name();

  // Storage layer: the whole batch lands under one container lock and
  // one table lock.
  storage::PersistenceLog* log = nullptr;
  std::vector<std::pair<std::string, std::string>> remote_targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = deployments_.find(StrToLower(name));
    if (it != deployments_.end()) {
      if (it->second.table != nullptr) {
        const Status s = it->second.table->InsertBatch(batch);
        if (!s.ok()) {
          GSN_LOG(kWarn, "container") << name << ": table insert failed: " << s;
        }
      }
      log = it->second.log.get();
    }
    for (const auto& [sub_id, subscriber] : subscribers_) {
      if (StrEqualsIgnoreCase(subscriber.sensor_name, name)) {
        remote_targets.emplace_back(sub_id, subscriber.subscriber_node);
      }
    }
  }
  // Local chaining: feed consumers deployed on this container.
  std::vector<LocalStreamWrapper*> local_targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto range = local_wrappers_.equal_range(StrToLower(name));
    for (auto it = range.first; it != range.second; ++it) {
      local_targets.push_back(it->second);
    }
  }
  for (LocalStreamWrapper* target : local_targets) {
    target->PushBatch(batch);
  }
  if (log != nullptr) {
    for (const StreamElement& element : batch) {
      const Status s = log->Append(element);
      if (!s.ok()) {
        GSN_LOG(kWarn, "container") << name << ": persistence failed: " << s;
        break;
      }
    }
  }

  // Notification manager (per-element conditions, one subscription
  // snapshot) + query repository (one evaluation pass per batch: the
  // continuous queries read the table state just inserted above).
  notifications_.OnBatch(name, sensor.output_schema(), batch);
  query_manager_.OnNewElementBatch(name, batch);

  // Remote consumers (each element signed by the integrity layer).
  if (options_.network != nullptr && !remote_targets.empty()) {
    for (const StreamElement& element : batch) {
      network::StreamDelivery delivery;
      delivery.sensor_name = name;
      delivery.element = element;
      delivery.signature = integrity_.Sign(name, element);
      for (const auto& [sub_id, node] : remote_targets) {
        delivery.subscription_id = sub_id;
        // One "remote.send" span per target; its context rides in the
        // delivery (outside the signed payload) so the receiving node
        // continues the same trace.
        telemetry::Span send(tracer_, "remote.send", element.trace);
        send.set_sensor(name);
        send.set_node(options_.node_id);
        delivery.trace = send.context();
        const Status s =
            options_.network->Send(options_.clock->NowMicros(),
                                   options_.node_id, node,
                                   network::kTopicStream, delivery.Encode());
        if (!s.ok()) {
          send.set_error();
          GSN_LOG(kWarn, "container")
              << name << ": stream delivery to " << node << " failed: " << s;
        }
      }
    }
  }
}

// ---------------------------------------------------------------- Queries

Result<Relation> Container::Query(const std::string& sql_text,
                                  const std::string& api_key) {
  if (access_control_.enabled()) {
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectStmt> stmt,
                         sql::ParseSelect(sql_text));
    std::set<std::string> tables;
    QueryManager::CollectTables(*stmt, &tables);
    for (const std::string& table : tables) {
      GSN_RETURN_IF_ERROR(
          access_control_.Check(api_key, Permission::kRead, table));
    }
  }
  return query_manager_.Execute(sql_text);
}

// -------------------------------------------------------------- Directory

std::vector<DirectoryEntry> Container::Discover(
    const std::map<std::string, std::string>& query) const {
  return directory_.Discover(query);
}

void Container::PublishSensor(const VirtualSensorSpec& spec) {
  DirectoryEntry entry;
  entry.sensor_name = spec.name;
  entry.node_id = options_.node_id;
  entry.predicates = spec.metadata;
  entry.output_schema = spec.output_structure;
  directory_.Upsert(entry);
  if (options_.network != nullptr) {
    (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                      options_.node_id,
                                      network::kTopicDirPublish,
                                      entry.Encode());
  }
}

void Container::RetractSensor(const std::string& sensor_name) {
  directory_.Remove(options_.node_id, sensor_name);
  if (options_.network != nullptr) {
    network::DirRemove remove;
    remove.node_id = options_.node_id;
    remove.sensor_name = sensor_name;
    (void)options_.network->Broadcast(options_.clock->NowMicros(),
                                      options_.node_id,
                                      network::kTopicDirRemove,
                                      remove.Encode());
  }
}

void Container::AnnounceAll() {
  std::vector<const VirtualSensorSpec*> specs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, deployment] : deployments_) {
      specs.push_back(&deployment.sensor->spec());
    }
  }
  for (const VirtualSensorSpec* spec : specs) PublishSensor(*spec);
}

// ---------------------------------------------------------------- Network

void Container::OnMessage(const Message& message) {
  if (message.topic == network::kTopicDirPublish) {
    Result<DirectoryEntry> entry = DirectoryEntry::Decode(message.payload);
    if (entry.ok()) {
      directory_.Upsert(*std::move(entry));
    }
    return;
  }
  if (message.topic == network::kTopicDirRemove) {
    Result<network::DirRemove> remove =
        network::DirRemove::Decode(message.payload);
    if (remove.ok()) directory_.Remove(remove->node_id, remove->sensor_name);
    return;
  }
  if (message.topic == network::kTopicSubscribe) {
    Result<network::SubscribeRequest> request =
        network::SubscribeRequest::Decode(message.payload);
    if (!request.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    subscribers_[request->subscription_id] = {request->sensor_name,
                                              request->subscriber_node};
    return;
  }
  if (message.topic == network::kTopicUnsubscribe) {
    Result<network::UnsubscribeRequest> request =
        network::UnsubscribeRequest::Decode(message.payload);
    if (!request.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    subscribers_.erase(request->subscription_id);
    return;
  }
  if (message.topic == network::kTopicStream) {
    Result<network::StreamDelivery> delivery =
        network::StreamDelivery::Decode(message.payload);
    if (!delivery.ok()) return;
    // Integrity layer: drop elements whose signature does not verify.
    if (!delivery->signature.empty() &&
        !integrity_.Verify(delivery->sensor_name, delivery->element,
                           delivery->signature)) {
      GSN_LOG(kWarn, "container")
          << options_.node_id << ": dropped stream element with bad "
          << "signature from " << message.from;
      return;
    }
    RemoteStreamWrapper* wrapper = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = remote_wrappers_.find(delivery->subscription_id);
      if (it != remote_wrappers_.end()) wrapper = it->second;
    }
    if (wrapper != nullptr) {
      // Restore the producer's trace context so this node's source
      // admission continues the cross-container trace.
      delivery->element.trace = delivery->trace;
      wrapper->Push(delivery->element);
    }
    return;
  }
  GSN_LOG(kWarn, "container")
      << options_.node_id << ": unknown topic '" << message.topic << "'";
}

Result<Relation> Container::CatalogResolver::GetTable(
    const std::string& name) const {
  const std::string key = StrToLower(name);
  if (key == "gsn_sensors") {
    Schema schema;
    schema.AddField("name", DataType::kString);
    schema.AddField("pool_size", DataType::kInt);
    schema.AddField("triggers", DataType::kInt);
    schema.AddField("produced", DataType::kInt);
    schema.AddField("rate_limited", DataType::kInt);
    schema.AddField("errors", DataType::kInt);
    schema.AddField("stored_rows", DataType::kInt);
    schema.AddField("stored_bytes", DataType::kInt);
    schema.AddField("remote_subscribers", DataType::kInt);
    Relation rel(schema);
    for (const std::string& sensor : container_->ListSensors()) {
      Result<SensorStatus> status = container_->GetSensorStatus(sensor);
      if (!status.ok()) continue;
      (void)rel.AddRow(
          {Value::String(status->name), Value::Int(status->pool_size),
           Value::Int(status->stats.triggers),
           Value::Int(status->stats.produced),
           Value::Int(status->stats.rate_limited),
           Value::Int(status->stats.errors),
           Value::Int(static_cast<int64_t>(status->stored_rows)),
           Value::Int(static_cast<int64_t>(status->stored_bytes)),
           Value::Int(status->remote_subscribers)});
    }
    return rel;
  }
  if (key == "gsn_wrappers") {
    Schema schema;
    schema.AddField("name", DataType::kString);
    Relation rel(schema);
    for (const std::string& wrapper : container_->registry_.Names()) {
      (void)rel.AddRow({Value::String(wrapper)});
    }
    return rel;
  }
  if (key == "gsn_directory") {
    Schema schema;
    schema.AddField("sensor", DataType::kString);
    schema.AddField("node", DataType::kString);
    schema.AddField("predicates", DataType::kString);
    schema.AddField("output_schema", DataType::kString);
    Relation rel(schema);
    for (const DirectoryEntry& entry : container_->Discover({})) {
      std::string predicates;
      for (const auto& [k, v] : entry.predicates) {
        if (!predicates.empty()) predicates += ",";
        predicates += k + "=" + v;
      }
      (void)rel.AddRow({Value::String(entry.sensor_name),
                        Value::String(entry.node_id),
                        Value::String(predicates),
                        Value::String(entry.output_schema.ToString())});
    }
    return rel;
  }
  return container_->tables_.GetTable(name);
}

std::vector<Container::TopologyEdge> Container::Topology() {
  std::vector<TopologyEdge> edges;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, deployment] : deployments_) {
    const VirtualSensorSpec& spec = deployment.sensor->spec();
    for (const auto& stream : spec.input_streams) {
      for (const auto& source : stream.sources) {
        TopologyEdge edge;
        edge.to = spec.name;
        edge.label = stream.name + "/" + source.alias;
        if (StrEqualsIgnoreCase(source.address.wrapper, "remote")) {
          const vsensor::StreamSource* running =
              deployment.sensor->FindSource(stream.name, source.alias)
                  ? deployment.sensor->FindSource(stream.name, source.alias)
                  : nullptr;
          const auto* remote =
              running == nullptr
                  ? nullptr
                  : dynamic_cast<const network::RemoteStreamWrapper*>(
                        &running->wrapper());
          edge.from = remote != nullptr
                          ? remote->peer_node() + ":" + remote->remote_sensor()
                          : "remote";
        } else {
          edge.from = source.address.wrapper + " device";
        }
        edges.push_back(std::move(edge));
      }
    }
  }
  for (const auto& [sub_id, subscriber] : subscribers_) {
    edges.push_back(TopologyEdge{subscriber.sensor_name,
                                 subscriber.subscriber_node + " (node)",
                                 "stream"});
  }
  return edges;
}

// ------------------------------------------------------------ Introspection

Result<Container::SensorStatus> Container::GetSensorStatus(
    const std::string& sensor_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deployments_.find(StrToLower(sensor_name));
  if (it == deployments_.end()) {
    return Status::NotFound("no such sensor: " + sensor_name);
  }
  const Deployment& deployment = it->second;
  SensorStatus status;
  status.name = deployment.sensor->name();
  status.stats = deployment.sensor->stats();
  status.stored_rows = deployment.table->NumRows();
  status.stored_bytes = deployment.table->ApproximateBytes();
  status.pool_size = deployment.pool->num_threads();
  int64_t subs = 0;
  for (const auto& [id, subscriber] : subscribers_) {
    if (StrEqualsIgnoreCase(subscriber.sensor_name, sensor_name)) ++subs;
  }
  status.remote_subscribers = subs;
  return status;
}

}  // namespace gsn::container

#include "gsn/container/query_manager.h"

#include <chrono>

#include "gsn/sql/optimizer.h"
#include "gsn/sql/parser.h"
#include "gsn/util/strings.h"

namespace gsn::container {

namespace {
int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CollectTablesFromRef(const sql::TableRef& ref,
                          std::set<std::string>* out);

void CollectTablesFromExpr(const sql::Expr& expr,
                           std::set<std::string>* out) {
  if (expr.subquery) {
    // Handled by the statement walker below.
  }
  for (const auto& child : expr.children) {
    if (child) CollectTablesFromExpr(*child, out);
  }
}
}  // namespace

void QueryManager::CollectTables(const sql::SelectStmt& stmt,
                                 std::set<std::string>* out) {
  for (const auto& ref : stmt.from) {
    CollectTablesFromRef(*ref, out);
  }
  auto walk_expr = [out](const sql::Expr* e) {
    if (e == nullptr) return;
    // Walk into expression subqueries.
    std::vector<const sql::Expr*> stack{e};
    while (!stack.empty()) {
      const sql::Expr* cur = stack.back();
      stack.pop_back();
      if (cur->subquery) CollectTables(*cur->subquery, out);
      for (const auto& child : cur->children) {
        if (child) stack.push_back(child.get());
      }
    }
  };
  for (const auto& item : stmt.items) {
    if (!item.is_star) walk_expr(item.expr.get());
  }
  walk_expr(stmt.where.get());
  for (const auto& g : stmt.group_by) walk_expr(g.get());
  walk_expr(stmt.having.get());
  for (const auto& ob : stmt.order_by) walk_expr(ob.expr.get());
  if (stmt.set_rhs) CollectTables(*stmt.set_rhs, out);
}

namespace {
void CollectTablesFromRef(const sql::TableRef& ref,
                          std::set<std::string>* out) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable:
      out->insert(StrToLower(ref.table_name));
      break;
    case sql::TableRef::Kind::kSubquery:
      QueryManager::CollectTables(*ref.subquery, out);
      break;
    case sql::TableRef::Kind::kJoin:
      CollectTablesFromRef(*ref.left, out);
      CollectTablesFromRef(*ref.right, out);
      break;
  }
}
}  // namespace

QueryManager::QueryManager(const sql::TableResolver* resolver)
    : resolver_(resolver) {}

Result<std::shared_ptr<sql::SelectStmt>> QueryManager::Prepare(
    const std::string& sql_text) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_enabled_) {
      auto it = cache_.find(sql_text);
      if (it != cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
      }
      ++stats_.cache_misses;
    }
  }
  const int64_t t0 = SteadyNowMicros();
  Result<std::unique_ptr<sql::SelectStmt>> parsed =
      sql::ParseSelect(sql_text);
  if (parsed.ok()) {
    // The planning pass: constant folding and predicate simplification.
    GSN_RETURN_IF_ERROR(sql::Optimize(parsed->get()));
  }
  const int64_t elapsed = SteadyNowMicros() - t0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.parse_micros += elapsed;
  }
  if (!parsed.ok()) return parsed.status();
  std::shared_ptr<sql::SelectStmt> stmt = *std::move(parsed);
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_enabled_) cache_[sql_text] = stmt;
  return stmt;
}

Result<Relation> QueryManager::Execute(const std::string& sql_text) {
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  sql::Executor exec(resolver_);
  const int64_t t0 = SteadyNowMicros();
  Result<Relation> result = exec.Execute(*stmt);
  const int64_t elapsed = SteadyNowMicros() - t0;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.executed;
  stats_.exec_micros += elapsed;
  return result;
}

Result<std::string> QueryManager::Explain(const std::string& sql_text) {
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  return sql::ExplainString(*stmt);
}

Result<int64_t> QueryManager::RegisterContinuous(const std::string& sql_text,
                                                 ContinuousCallback callback) {
  if (!callback) {
    return Status::InvalidArgument("continuous query requires a callback");
  }
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  ContinuousQuery query;
  query.sql_text = sql_text;
  query.stmt = stmt;
  CollectTables(*stmt, &query.tables);
  query.callback = std::move(callback);
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t id = next_id_++;
  continuous_[id] = std::move(query);
  return id;
}

Status QueryManager::Unregister(int64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (continuous_.erase(query_id) == 0) {
    return Status::NotFound("no continuous query " + std::to_string(query_id));
  }
  return Status::OK();
}

size_t QueryManager::NumContinuous() const {
  std::lock_guard<std::mutex> lock(mu_);
  return continuous_.size();
}

int QueryManager::OnNewElement(const std::string& sensor_name) {
  const std::string key = StrToLower(sensor_name);
  struct Pending {
    std::shared_ptr<sql::SelectStmt> stmt;
    ContinuousCallback callback;
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, query] : continuous_) {
      if (query.tables.count(key)) {
        pending.push_back({query.stmt, query.callback});
      }
    }
  }
  int ran = 0;
  for (const Pending& p : pending) {
    sql::Executor exec(resolver_);
    const int64_t t0 = SteadyNowMicros();
    Result<Relation> result = exec.Execute(*p.stmt);
    const int64_t elapsed = SteadyNowMicros() - t0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.continuous_runs;
      stats_.exec_micros += elapsed;
    }
    if (result.ok()) {
      p.callback(sensor_name, *result);
      ++ran;
    }
  }
  return ran;
}

void QueryManager::set_cache_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_enabled_ = enabled;
  if (!enabled) cache_.clear();
}

bool QueryManager::cache_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_enabled_;
}

QueryManager::Stats QueryManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace gsn::container

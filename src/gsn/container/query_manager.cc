#include "gsn/container/query_manager.h"

#include "gsn/sql/optimizer.h"
#include "gsn/sql/parser.h"
#include "gsn/util/logging.h"
#include "gsn/util/strings.h"

namespace gsn::container {

namespace {
void CollectTablesFromRef(const sql::TableRef& ref,
                          std::set<std::string>* out);

void CollectTablesFromExpr(const sql::Expr& expr,
                           std::set<std::string>* out) {
  if (expr.subquery) {
    // Handled by the statement walker below.
  }
  for (const auto& child : expr.children) {
    if (child) CollectTablesFromExpr(*child, out);
  }
}
}  // namespace

void QueryManager::CollectTables(const sql::SelectStmt& stmt,
                                 std::set<std::string>* out) {
  for (const auto& ref : stmt.from) {
    CollectTablesFromRef(*ref, out);
  }
  auto walk_expr = [out](const sql::Expr* e) {
    if (e == nullptr) return;
    // Walk into expression subqueries.
    std::vector<const sql::Expr*> stack{e};
    while (!stack.empty()) {
      const sql::Expr* cur = stack.back();
      stack.pop_back();
      if (cur->subquery) CollectTables(*cur->subquery, out);
      for (const auto& child : cur->children) {
        if (child) stack.push_back(child.get());
      }
    }
  };
  for (const auto& item : stmt.items) {
    if (!item.is_star) walk_expr(item.expr.get());
  }
  walk_expr(stmt.where.get());
  for (const auto& g : stmt.group_by) walk_expr(g.get());
  walk_expr(stmt.having.get());
  for (const auto& ob : stmt.order_by) walk_expr(ob.expr.get());
  if (stmt.set_rhs) CollectTables(*stmt.set_rhs, out);
}

namespace {
void CollectTablesFromRef(const sql::TableRef& ref,
                          std::set<std::string>* out) {
  switch (ref.kind) {
    case sql::TableRef::Kind::kTable:
      out->insert(StrToLower(ref.table_name));
      break;
    case sql::TableRef::Kind::kSubquery:
      QueryManager::CollectTables(*ref.subquery, out);
      break;
    case sql::TableRef::Kind::kJoin:
      CollectTablesFromRef(*ref.left, out);
      CollectTablesFromRef(*ref.right, out);
      break;
  }
}
}  // namespace

QueryManager::QueryManager(const sql::TableResolver* resolver,
                           telemetry::MetricRegistry* metrics)
    : resolver_(resolver), span_clock_(telemetry::SteadyClock::Instance()) {
  telemetry::MetricRegistry* registry = metrics;
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    registry = owned_metrics_.get();
  }
  mu_.Instrument(registry, "query_cache");
  metrics_.executed = registry->GetCounter("gsn_queries_total", {},
                                           "One-shot queries executed");
  metrics_.cache_hits = registry->GetCounter(
      "gsn_query_cache_hits_total", {}, "Prepared-statement cache hits");
  metrics_.cache_misses = registry->GetCounter(
      "gsn_query_cache_misses_total", {}, "Prepared-statement cache misses");
  metrics_.cache_evictions = registry->GetCounter(
      "gsn_query_cache_evictions_total", {},
      "Prepared statements evicted by the cache's LRU bound");
  metrics_.continuous_runs = registry->GetCounter(
      "gsn_continuous_runs_total", {},
      "Continuous query re-executions triggered by new elements");
  metrics_.slow_queries = registry->GetCounter(
      "gsn_slow_queries_total", {},
      "Queries that crossed the slow-query threshold");
  metrics_.parse_micros = registry->GetHistogram(
      "gsn_query_parse_micros", {},
      "SQL parse + plan time (the paper's query compiling cost)");
  metrics_.exec_micros = registry->GetHistogram(
      "gsn_query_exec_micros", {}, "SQL execution time (Fig 4)");
}

void QueryManager::set_slow_query_micros(int64_t threshold_micros) {
  slow_query_micros_.store(threshold_micros, std::memory_order_relaxed);
}

int64_t QueryManager::slow_query_micros() const {
  return slow_query_micros_.load(std::memory_order_relaxed);
}

void QueryManager::set_span_clock(const Clock* span_clock) {
  span_clock_.store(span_clock, std::memory_order_relaxed);
}

void QueryManager::set_tracer(telemetry::Tracer* tracer) {
  tracer_.store(tracer, std::memory_order_relaxed);
}

std::vector<QueryManager::SlowQueryEntry> QueryManager::slow_log() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return std::vector<SlowQueryEntry>(slow_log_.begin(), slow_log_.end());
}

void QueryManager::MaybeLogSlow(const std::string& sql_text,
                                const std::string& source,
                                int64_t elapsed_micros,
                                const sql::SelectStmt* stmt,
                                const sql::AnalyzeCollector* analyze) {
  const int64_t threshold = slow_query_micros();
  if (threshold <= 0 || elapsed_micros < threshold) return;
  metrics_.slow_queries->Increment();
  GSN_LOG(kWarn, "query") << "slow query from " << source << " ("
                          << elapsed_micros << " us >= " << threshold
                          << " us): " << sql_text;
  SlowQueryEntry entry;
  entry.sql_text = sql_text;
  entry.source = source;
  entry.elapsed_micros = elapsed_micros;
  if (stmt != nullptr && analyze != nullptr && !analyze->empty()) {
    entry.plan = sql::ExplainAnalyzeString(*stmt, *analyze);
  }
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  if (slow_log_.size() >= kSlowLogCapacity) slow_log_.pop_front();
  slow_log_.push_back(std::move(entry));
}

void QueryManager::EvictCacheLocked() {
  while (cache_.size() > cache_capacity_ && !lru_.empty()) {
    cache_.erase(lru_.back().first);
    lru_.pop_back();
    metrics_.cache_evictions->Increment();
  }
}

Result<std::shared_ptr<sql::SelectStmt>> QueryManager::Prepare(
    const std::string& sql_text) {
  {
    std::lock_guard<telemetry::TimedMutex> lock(mu_);
    if (cache_enabled_) {
      auto it = cache_.find(sql_text);
      if (it != cache_.end()) {
        metrics_.cache_hits->Increment();
        lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
        return it->second->second;
      }
      metrics_.cache_misses->Increment();
    }
  }
  telemetry::SpanTimer parse_span(
      span_clock_.load(std::memory_order_relaxed), metrics_.parse_micros.get());
  Result<std::unique_ptr<sql::SelectStmt>> parsed =
      sql::ParseSelect(sql_text);
  if (parsed.ok()) {
    // The planning pass: constant folding and predicate simplification.
    GSN_RETURN_IF_ERROR(sql::Optimize(parsed->get()));
  }
  parse_span.Stop();
  if (!parsed.ok()) return parsed.status();
  std::shared_ptr<sql::SelectStmt> stmt = *std::move(parsed);
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  if (cache_enabled_) {
    auto it = cache_.find(sql_text);
    if (it != cache_.end()) {
      // Raced with another Prepare of the same text; keep the existing
      // entry (continuous registrations may already share it).
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    lru_.emplace_front(sql_text, stmt);
    cache_[sql_text] = lru_.begin();
    EvictCacheLocked();
  }
  return stmt;
}

Result<Relation> QueryManager::Execute(const std::string& sql_text,
                                       const std::string& source) {
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  telemetry::Span trace_span(tracer_.load(std::memory_order_relaxed),
                             "query.execute");
  trace_span.set_sensor(source);
  sql::Executor exec(resolver_);
  // While the slow-query log is armed, run analyzed so a slow execution
  // leaves its actual per-operator plan behind, not just its SQL.
  sql::AnalyzeCollector analyze;
  const bool analyzing = slow_query_micros() > 0;
  if (analyzing) exec.set_analyze(&analyze);
  telemetry::SpanTimer exec_span(span_clock_.load(std::memory_order_relaxed),
                                 metrics_.exec_micros.get());
  Result<Relation> result = exec.Execute(*stmt);
  const int64_t elapsed = exec_span.Stop();
  metrics_.executed->Increment();
  if (!result.ok()) trace_span.set_error();
  MaybeLogSlow(sql_text, source, elapsed, stmt.get(),
               analyzing ? &analyze : nullptr);
  return result;
}

Result<std::string> QueryManager::Explain(const std::string& sql_text) {
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  return sql::ExplainString(*stmt);
}

Result<std::string> QueryManager::ExplainAnalyze(const std::string& sql_text) {
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  sql::Executor exec(resolver_);
  sql::AnalyzeCollector analyze;
  exec.set_analyze(&analyze);
  telemetry::SpanTimer exec_span(span_clock_.load(std::memory_order_relaxed),
                                 metrics_.exec_micros.get());
  Result<Relation> result = exec.Execute(*stmt);
  const int64_t elapsed = exec_span.Stop();
  metrics_.executed->Increment();
  MaybeLogSlow(sql_text, "explain-analyze", elapsed, stmt.get(), &analyze);
  if (!result.ok()) return result.status();
  return sql::ExplainAnalyzeString(*stmt, analyze);
}

Result<int64_t> QueryManager::RegisterContinuous(const std::string& sql_text,
                                                 ContinuousCallback callback) {
  if (!callback) {
    return Status::InvalidArgument("continuous query requires a callback");
  }
  GSN_ASSIGN_OR_RETURN(std::shared_ptr<sql::SelectStmt> stmt,
                       Prepare(sql_text));
  ContinuousQuery query;
  query.sql_text = sql_text;
  query.stmt = stmt;
  CollectTables(*stmt, &query.tables);
  query.callback = std::move(callback);
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  const int64_t id = next_id_++;
  continuous_[id] = std::move(query);
  return id;
}

Status QueryManager::Unregister(int64_t query_id) {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  if (continuous_.erase(query_id) == 0) {
    return Status::NotFound("no continuous query " + std::to_string(query_id));
  }
  return Status::OK();
}

size_t QueryManager::NumContinuous() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return continuous_.size();
}

int QueryManager::OnNewElement(const std::string& sensor_name,
                               const TraceContext& trace) {
  const std::string key = StrToLower(sensor_name);
  struct Pending {
    std::shared_ptr<sql::SelectStmt> stmt;
    ContinuousCallback callback;
    std::string sql_text;
  };
  std::vector<Pending> pending;
  {
    std::lock_guard<telemetry::TimedMutex> lock(mu_);
    for (const auto& [id, query] : continuous_) {
      if (query.tables.count(key)) {
        pending.push_back({query.stmt, query.callback, query.sql_text});
      }
    }
  }
  const std::string source = "continuous:" + StrToLower(sensor_name);
  int ran = 0;
  for (const Pending& p : pending) {
    telemetry::Span trace_span(tracer_.load(std::memory_order_relaxed),
                               "query.continuous", trace);
    trace_span.set_sensor(sensor_name);
    sql::Executor exec(resolver_);
    sql::AnalyzeCollector analyze;
    const bool analyzing = slow_query_micros() > 0;
    if (analyzing) exec.set_analyze(&analyze);
    telemetry::SpanTimer exec_span(span_clock_.load(std::memory_order_relaxed),
                                   metrics_.exec_micros.get());
    Result<Relation> result = exec.Execute(*p.stmt);
    const int64_t elapsed = exec_span.Stop();
    metrics_.continuous_runs->Increment();
    if (!result.ok()) trace_span.set_error();
    MaybeLogSlow(p.sql_text, source, elapsed, p.stmt.get(),
                 analyzing ? &analyze : nullptr);
    if (result.ok()) {
      p.callback(sensor_name, *result);
      ++ran;
    }
  }
  return ran;
}

int QueryManager::OnNewElementBatch(const std::string& sensor_name,
                                    const std::vector<StreamElement>& batch) {
  if (batch.empty()) return 0;
  TraceContext trace;
  for (const StreamElement& e : batch) {
    if (e.trace.valid()) {
      trace = e.trace;
      break;
    }
  }
  // The batch is fully inserted into the sensor's table by the time the
  // container invokes us, so one run per affected query sees the same
  // table state as the last of N per-element runs.
  return OnNewElement(sensor_name, trace);
}

void QueryManager::set_cache_enabled(bool enabled) {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  cache_enabled_ = enabled;
  if (!enabled) {
    cache_.clear();
    lru_.clear();
  }
}

bool QueryManager::cache_enabled() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return cache_enabled_;
}

void QueryManager::set_cache_capacity(size_t capacity) {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  cache_capacity_ = capacity;
  EvictCacheLocked();
}

size_t QueryManager::cache_capacity() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return cache_capacity_;
}

size_t QueryManager::cache_size() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return cache_.size();
}

QueryManager::Stats QueryManager::stats() const {
  Stats stats;
  stats.executed = metrics_.executed->Value();
  stats.cache_hits = metrics_.cache_hits->Value();
  stats.cache_misses = metrics_.cache_misses->Value();
  stats.continuous_runs = metrics_.continuous_runs->Value();
  stats.slow_queries = metrics_.slow_queries->Value();
  stats.parse_micros = metrics_.parse_micros->TakeSnapshot().sum;
  stats.exec_micros = metrics_.exec_micros->TakeSnapshot().sum;
  return stats;
}

}  // namespace gsn::container

#include "gsn/container/access_control.h"

#include "gsn/util/hash.h"
#include "gsn/util/strings.h"

namespace gsn::container {

std::string AccessControl::HashKey(const std::string& api_key) {
  return Sha256::HexDigest(api_key);
}

bool AccessControl::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

Status AccessControl::Enable() {
  std::lock_guard<std::mutex> lock(mu_);
  bool has_admin = false;
  for (const auto& [name, user] : users_) {
    if (user.admin) {
      has_admin = true;
      break;
    }
  }
  if (!has_admin) {
    return Status::InvalidArgument(
        "cannot enable access control without an admin user");
  }
  enabled_ = true;
  return Status::OK();
}

void AccessControl::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
}

Status AccessControl::AddUser(const std::string& user,
                              const std::string& api_key, bool admin) {
  if (user.empty() || api_key.empty()) {
    return Status::InvalidArgument("user and api key must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (users_.count(user)) {
    return Status::AlreadyExists("user already exists: " + user);
  }
  User u;
  u.key_hash = HashKey(api_key);
  u.admin = admin;
  users_[user] = std::move(u);
  return Status::OK();
}

Status AccessControl::RemoveUser(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  if (users_.erase(user) == 0) {
    return Status::NotFound("no such user: " + user);
  }
  return Status::OK();
}

Result<std::string> AccessControl::Authenticate(
    const std::string& api_key) const {
  const std::string hash = HashKey(api_key);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, user] : users_) {
    if (user.key_hash == hash) return name;
  }
  return Status::PermissionDenied("unknown api key");
}

Status AccessControl::GrantRead(const std::string& user,
                                const std::string& sensor_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user: " + user);
  it->second.readable_sensors.insert(StrToLower(sensor_name));
  return Status::OK();
}

Status AccessControl::GrantDeploy(const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user: " + user);
  it->second.can_deploy = true;
  return Status::OK();
}

Status AccessControl::RevokeRead(const std::string& user,
                                 const std::string& sensor_name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user: " + user);
  it->second.readable_sensors.erase(StrToLower(sensor_name));
  return Status::OK();
}

Status AccessControl::Check(const std::string& api_key, Permission permission,
                            const std::string& sensor_name) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return Status::OK();
  }
  GSN_ASSIGN_OR_RETURN(std::string user_name, Authenticate(api_key));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = users_.find(user_name);
  if (it == users_.end()) {
    return Status::PermissionDenied("user vanished: " + user_name);
  }
  const User& user = it->second;
  if (user.admin) return Status::OK();
  switch (permission) {
    case Permission::kAdmin:
      return Status::PermissionDenied(user_name + " is not an admin");
    case Permission::kDeploy:
      if (user.can_deploy) return Status::OK();
      return Status::PermissionDenied(user_name + " may not deploy");
    case Permission::kRead: {
      if (user.readable_sensors.count("*")) return Status::OK();
      if (!sensor_name.empty() &&
          user.readable_sensors.count(StrToLower(sensor_name))) {
        return Status::OK();
      }
      return Status::PermissionDenied(user_name + " may not read '" +
                                      sensor_name + "'");
    }
  }
  return Status::Internal("unhandled permission");
}

}  // namespace gsn::container

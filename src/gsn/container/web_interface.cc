#include "gsn/container/web_interface.h"

#include "gsn/util/export.h"
#include "gsn/util/strings.h"
#include "gsn/xml/xml.h"

namespace gsn::container {

using network::HttpRequest;
using network::HttpResponse;

WebInterface::WebInterface(Container* container)
    : container_(container),
      server_([this](const HttpRequest& request) { return Handle(request); }) {}

Status WebInterface::Start(uint16_t port) { return server_.Start(port); }

void WebInterface::Stop() { server_.Stop(); }

std::string WebInterface::ApiKey(const HttpRequest& request) {
  const std::string header = request.HeaderOr("x-api-key", "");
  return header.empty() ? request.QueryOr("key", "") : header;
}

HttpResponse WebInterface::FromStatus(const Status& status) {
  const int http_status =
      status.code() == StatusCode::kNotFound           ? 404
      : status.code() == StatusCode::kPermissionDenied ? 403
      : status.code() == StatusCode::kParseError       ? 400
      : status.code() == StatusCode::kInvalidArgument  ? 400
                                                       : 500;
  return HttpResponse::Json(
      "{\"error\":" + JsonEscape(status.ToString()) + "}", http_status);
}

HttpResponse WebInterface::Handle(const HttpRequest& request) {
  if (request.method == "GET") {
    if (request.path == "/") return HandleIndex();
    if (request.path == "/sensors") return HandleSensors();
    if (StrStartsWith(request.path, "/sensors/")) {
      return HandleSensorStatus(request.path.substr(9));
    }
    if (request.path == "/query") return HandleQuery(request);
    if (request.path == "/explain") return HandleExplain(request);
    if (request.path == "/discover") return HandleDiscover(request);
    if (request.path == "/topology") return HandleTopology();
    if (request.path == "/metrics") return HandleMetrics();
    if (request.path == "/traces") return HandleTraces(request);
    return HttpResponse::Error(404, "no such resource: " + request.path);
  }
  if (request.method == "POST") {
    if (request.path == "/deploy") return HandleDeploy(request);
    if (request.path == "/undeploy") return HandleUndeploy(request);
    return HttpResponse::Error(404, "no such resource: " + request.path);
  }
  return HttpResponse::Error(405, "method not allowed: " + request.method);
}

HttpResponse WebInterface::HandleIndex() {
  std::string html = "<html><head><title>GSN node " +
                     xml::Escape(container_->node_id()) +
                     "</title></head><body><h1>GSN node " +
                     xml::Escape(container_->node_id()) +
                     "</h1><h2>Virtual sensors</h2><ul>";
  for (const std::string& name : container_->ListSensors()) {
    html += "<li><a href=\"/sensors/" + name + "\">" + xml::Escape(name) +
            "</a></li>";
  }
  html +=
      "</ul><p>API: /sensors /query?sql=... /explain?sql=...&amp;analyze=1 "
      "/discover?key=val /topology /metrics /traces POST /deploy POST "
      "/undeploy?name=...</p></body></html>";
  return HttpResponse::Html(std::move(html));
}

HttpResponse WebInterface::HandleSensors() {
  std::string json = "[";
  bool first = true;
  for (const std::string& name : container_->ListSensors()) {
    Result<Container::SensorStatus> status =
        container_->GetSensorStatus(name);
    if (!status.ok()) continue;
    if (!first) json += ",";
    first = false;
    json += "{\"name\":" + JsonEscape(name) +
            ",\"produced\":" + std::to_string(status->stats.produced) +
            ",\"stored_rows\":" + std::to_string(status->stored_rows) + "}";
  }
  json += "]";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleSensorStatus(const std::string& name) {
  Result<Container::SensorStatus> status = container_->GetSensorStatus(name);
  if (!status.ok()) return FromStatus(status.status());
  std::string json =
      "{\"name\":" + JsonEscape(status->name) +
      ",\"pool_size\":" + std::to_string(status->pool_size) +
      ",\"triggers\":" + std::to_string(status->stats.triggers) +
      ",\"produced\":" + std::to_string(status->stats.produced) +
      ",\"rate_limited\":" + std::to_string(status->stats.rate_limited) +
      ",\"errors\":" + std::to_string(status->stats.errors) +
      ",\"stored_rows\":" + std::to_string(status->stored_rows) +
      ",\"stored_bytes\":" + std::to_string(status->stored_bytes) +
      ",\"remote_subscribers\":" +
      std::to_string(status->remote_subscribers) + "}";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleQuery(const HttpRequest& request) {
  const std::string sql = request.QueryOr("sql", "");
  if (sql.empty()) {
    return HttpResponse::Error(400, "missing ?sql= parameter");
  }
  Result<Relation> result = container_->Query(sql, ApiKey(request));
  if (!result.ok()) return FromStatus(result.status());
  if (request.QueryOr("format", "json") == "csv") {
    HttpResponse response = HttpResponse::Text(RelationToCsv(*result));
    response.content_type = "text/csv";
    return response;
  }
  return HttpResponse::Json(RelationToJson(*result));
}

HttpResponse WebInterface::HandleExplain(const HttpRequest& request) {
  const std::string sql = request.QueryOr("sql", "");
  if (sql.empty()) {
    return HttpResponse::Error(400, "missing ?sql= parameter");
  }
  const bool analyze = request.QueryOr("analyze", "0") != "0";
  Result<std::string> plan =
      analyze ? container_->query_manager().ExplainAnalyze(sql)
              : container_->query_manager().Explain(sql);
  if (!plan.ok()) return FromStatus(plan.status());
  return HttpResponse::Text(*plan);
}

HttpResponse WebInterface::HandleDiscover(const HttpRequest& request) {
  std::map<std::string, std::string> predicates = request.query;
  predicates.erase("key");  // the auth parameter is not a predicate
  std::string json = "[";
  bool first = true;
  for (const network::DirectoryEntry& entry :
       container_->Discover(predicates)) {
    if (!first) json += ",";
    first = false;
    json += "{\"sensor\":" + JsonEscape(entry.sensor_name) +
            ",\"node\":" + JsonEscape(entry.node_id) + ",\"predicates\":{";
    bool first_pred = true;
    for (const auto& [key, val] : entry.predicates) {
      if (!first_pred) json += ",";
      first_pred = false;
      json += JsonEscape(key) + ":" + JsonEscape(val);
    }
    json += "}}";
  }
  json += "]";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleTopology() {
  std::vector<GraphEdge> edges;
  for (const Container::TopologyEdge& e : container_->Topology()) {
    edges.push_back(GraphEdge{e.from, e.to, e.label});
  }
  HttpResponse response =
      HttpResponse::Text(EdgesToDot(container_->node_id(), edges));
  response.content_type = "text/vnd.graphviz";
  return response;
}

HttpResponse WebInterface::HandleMetrics() {
  std::string body = container_->metrics()->RenderPrometheus();
  // Process-wide series (e.g. the SQL join-strategy counters) live in
  // the default registry; append them when the container isn't already
  // using it.
  if (container_->metrics() != telemetry::MetricRegistry::Default()) {
    body += telemetry::MetricRegistry::Default()->RenderPrometheus();
  }
  HttpResponse response = HttpResponse::Text(std::move(body));
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  return response;
}

HttpResponse WebInterface::HandleTraces(const HttpRequest& request) {
  const std::string id = request.QueryOr("id", "");
  if (!id.empty()) {
    uint64_t hi = 0;
    uint64_t lo = 0;
    if (!telemetry::ParseTraceIdHex(id, &hi, &lo)) {
      return HttpResponse::Error(400, "?id= must be a 32-char hex trace id");
    }
  }
  return HttpResponse::Json(
      telemetry::RenderTracesJson(container_->tracer()->store(), id));
}

HttpResponse WebInterface::HandleDeploy(const HttpRequest& request) {
  if (request.body.empty()) {
    return HttpResponse::Error(400, "POST body must be a descriptor XML");
  }
  Result<vsensor::VirtualSensor*> sensor =
      container_->Deploy(request.body, ApiKey(request));
  if (!sensor.ok()) return FromStatus(sensor.status());
  return HttpResponse::Json(
      "{\"deployed\":" + JsonEscape((*sensor)->name()) + "}");
}

HttpResponse WebInterface::HandleUndeploy(const HttpRequest& request) {
  const std::string name = request.QueryOr("name", "");
  if (name.empty()) return HttpResponse::Error(400, "missing ?name=");
  const Status status = container_->Undeploy(name, ApiKey(request));
  if (!status.ok()) return FromStatus(status);
  return HttpResponse::Json("{\"undeployed\":" + JsonEscape(name) + "}");
}

}  // namespace gsn::container

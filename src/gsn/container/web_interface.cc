#include "gsn/container/web_interface.h"

#include <cstdio>

#include "gsn/network/chaos_transport.h"
#include "gsn/util/export.h"
#include "gsn/util/strings.h"
#include "gsn/xml/xml.h"

namespace gsn::container {

using network::HttpRequest;
using network::HttpResponse;

namespace {
constexpr char kApiPrefix[] = "/api/v1";
constexpr size_t kApiPrefixLen = sizeof(kApiPrefix) - 1;

/// Fixed-notation double for JSON (no locale, no exponent surprises).
std::string JsonDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

network::EpollTransport::Options HttpTransportOptions(Container* container) {
  network::EpollTransport::Options options;
  options.metrics = container->metrics();
  options.metrics_role = "http";
  return options;
}

/// ?limit=&offset= for the uniform list endpoints. Missing parameters
/// mean "everything"; anything non-numeric or negative is an error.
Status ParsePage(const HttpRequest& request, size_t* limit, size_t* offset) {
  *limit = std::string::npos;
  *offset = 0;
  const std::string limit_text = request.QueryOr("limit", "");
  if (!limit_text.empty()) {
    Result<int64_t> value = ParseInt64(limit_text);
    if (!value.ok() || *value < 0) {
      return Status::InvalidArgument("?limit= must be a non-negative integer");
    }
    *limit = static_cast<size_t>(*value);
  }
  const std::string offset_text = request.QueryOr("offset", "");
  if (!offset_text.empty()) {
    Result<int64_t> value = ParseInt64(offset_text);
    if (!value.ok() || *value < 0) {
      return Status::InvalidArgument("?offset= must be a non-negative integer");
    }
    *offset = static_cast<size_t>(*value);
  }
  return Status::OK();
}

/// The uniform envelope: {"items":[<page of items>],"total":N} where
/// `total` counts every item before paging. `extra` appends additional
/// top-level fields (",\"enabled\":true").
std::string ListEnvelope(const std::vector<std::string>& items, size_t limit,
                         size_t offset, const std::string& extra = "") {
  std::string json = "{\"items\":[";
  bool first = true;
  for (size_t i = offset; i < items.size() && i - offset < limit; ++i) {
    if (!first) json += ",";
    first = false;
    json += items[i];
  }
  json += "],\"total\":" + std::to_string(items.size()) + extra + "}";
  return json;
}

void AppendConnectionItems(const network::Transport& transport,
                           const std::string& role,
                           std::vector<std::string>* items) {
  for (const network::ConnectionStats& c : transport.Connections()) {
    items->push_back(
        "{\"role\":" + JsonEscape(role) +
        ",\"transport\":" + JsonEscape(transport.transport_name()) +
        ",\"peer\":" + JsonEscape(c.peer) + ",\"kind\":" + JsonEscape(c.kind) +
        ",\"state\":" + JsonEscape(c.state) +
        ",\"queued_bytes\":" + std::to_string(c.queued_bytes) +
        ",\"requests_served\":" + std::to_string(c.requests_served) +
        ",\"frames_in\":" + std::to_string(c.frames_in) +
        ",\"frames_out\":" + std::to_string(c.frames_out) +
        ",\"age_micros\":" + std::to_string(c.age_micros) +
        ",\"idle_micros\":" + std::to_string(c.idle_micros) + "}");
  }
}
}  // namespace

WebInterface::WebInterface(Container* container)
    : container_(container), http_(HttpTransportOptions(container)) {
  // The route table. Paths are canonical (below /api/v1); the bare
  // legacy paths alias onto the same rows.
  auto add = [this](const char* method, const char* path, bool prefix,
                    auto handler) {
    routes_.push_back(Route{method, path, prefix, std::move(handler)});
  };
  add("GET", "/sensors", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleSensors();
      });
  add("GET", "/sensors/", true,
      [this](const HttpRequest&, const std::string& name) {
        return HandleSensorStatus(name);
      });
  add("GET", "/query", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleQuery(r);
      });
  add("GET", "/explain", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleExplain(r);
      });
  add("GET", "/discover", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleDiscover(r);
      });
  add("GET", "/topology", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleTopology();
      });
  add("GET", "/metrics", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleMetrics();
      });
  add("GET", "/traces", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleTraces(r);
      });
  add("GET", "/peers", false, [this](const HttpRequest& r, const std::string&) {
    return HandlePeers(r);
  });
  add("GET", "/transport", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleTransport(r);
      });
  add("GET", "/status", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleStatus();
      });
  add("GET", "/segments", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleSegments(r);
      });
  add("GET", "/healthz", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleHealthz();
      });
  add("GET", "/readyz", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleReadyz();
      });
  add("GET", "/quarantine", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleQuarantine(r);
      });
  add("POST", "/quarantine/requeue", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleQuarantineRequeue(r);
      });
  add("POST", "/quarantine/clear", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleQuarantineClear();
      });
  add("POST", "/checkpoint", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleCheckpoint();
      });
  add("POST", "/drain", false,
      [this](const HttpRequest&, const std::string&) {
        return HandleDrain();
      });
  add("GET", "/chaos", false,
      [this](const HttpRequest&, const std::string&) { return HandleChaos(); });
  add("POST", "/chaos", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleChaosCommand(r);
      });
  add("POST", "/deploy", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleDeploy(r);
      });
  add("POST", "/undeploy", false,
      [this](const HttpRequest& r, const std::string&) {
        return HandleUndeploy(r);
      });
}

Status WebInterface::Start(uint16_t port) {
  GSN_RETURN_IF_ERROR(http_.Start());
  const Status listen = http_.ListenHttp(
      port, [this](const HttpRequest& request) { return Handle(request); });
  if (!listen.ok()) http_.Stop();
  return listen;
}

void WebInterface::Stop() { http_.Stop(); }

std::string WebInterface::ApiKey(const HttpRequest& request) {
  const std::string header = request.HeaderOr("x-api-key", "");
  return header.empty() ? request.QueryOr("key", "") : header;
}

HttpResponse WebInterface::ErrorJson(int http_status, const std::string& code,
                                     const std::string& message) {
  return HttpResponse::Json("{\"error\":{\"code\":" + JsonEscape(code) +
                                ",\"message\":" + JsonEscape(message) + "}}",
                            http_status);
}

HttpResponse WebInterface::FromStatus(const Status& status) {
  const int http_status =
      status.code() == StatusCode::kNotFound           ? 404
      : status.code() == StatusCode::kPermissionDenied ? 403
      : status.code() == StatusCode::kParseError       ? 400
      : status.code() == StatusCode::kInvalidArgument  ? 400
                                                       : 500;
  return ErrorJson(http_status, StatusCodeName(status.code()),
                   status.message());
}

HttpResponse WebInterface::Handle(const HttpRequest& request) {
  if (request.method == "GET" && request.path == "/") return HandleIndex();
  std::string path = request.path;
  if (StrStartsWith(path, kApiPrefix)) {
    path = path.substr(kApiPrefixLen);
    if (path.empty() || path == "/") {
      if (request.method == "GET") return HandleApiIndex();
      return ErrorJson(405, "MethodNotAllowed",
                       "method not allowed: " + request.method);
    }
    return Dispatch(request, path);
  }
  // The unversioned aliases are retired: a path that names a known
  // resource gets a pointer to its v1 home, everything else a 404.
  for (const Route& route : routes_) {
    const bool match =
        route.prefix ? StrStartsWith(path, route.path) : path == route.path;
    if (match) {
      return ErrorJson(410, "gone",
                       "unversioned paths were removed; use " +
                           std::string(kApiPrefix) + path);
    }
  }
  return ErrorJson(404, "NotFound", "no such resource: " + request.path);
}

HttpResponse WebInterface::Dispatch(const HttpRequest& request,
                                    const std::string& path) {
  bool path_matched = false;
  for (const Route& route : routes_) {
    const bool match =
        route.prefix ? StrStartsWith(path, route.path) : path == route.path;
    if (!match) continue;
    path_matched = true;
    if (route.method != request.method) continue;
    return route.handler(
        request, route.prefix ? path.substr(route.path.size()) : "");
  }
  if (path_matched) {
    return ErrorJson(405, "MethodNotAllowed",
                     "method not allowed: " + request.method);
  }
  return ErrorJson(404, "NotFound", "no such resource: " + request.path);
}

HttpResponse WebInterface::HandleIndex() {
  std::string html = "<html><head><title>GSN node " +
                     xml::Escape(container_->node_id()) +
                     "</title></head><body><h1>GSN node " +
                     xml::Escape(container_->node_id()) +
                     "</h1><h2>Virtual sensors</h2><ul>";
  for (const std::string& name : container_->ListSensors()) {
    html += "<li><a href=\"/api/v1/sensors/" + name + "\">" +
            xml::Escape(name) + "</a></li>";
  }
  html +=
      "</ul><p>API: /api/v1/sensors /api/v1/query?sql=... "
      "/api/v1/explain?sql=...&amp;analyze=1 /api/v1/discover?key=val "
      "/api/v1/topology /api/v1/metrics /api/v1/traces /api/v1/peers "
      "/api/v1/transport POST /api/v1/deploy POST "
      "/api/v1/undeploy?name=...</p></body></html>";
  return HttpResponse::Html(std::move(html));
}

HttpResponse WebInterface::HandleApiIndex() {
  std::string json = "{\"version\":\"v1\",\"routes\":[";
  bool first = true;
  for (const Route& route : routes_) {
    if (!first) json += ",";
    first = false;
    json += "{\"method\":" + JsonEscape(route.method) + ",\"path\":" +
            JsonEscape(std::string(kApiPrefix) + route.path +
                       (route.prefix ? "<name>" : "")) +
            "}";
  }
  json += "]}";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleSensors() {
  std::string json = "[";
  bool first = true;
  for (const std::string& name : container_->ListSensors()) {
    Result<Container::SensorStatus> status =
        container_->GetSensorStatus(name);
    if (!status.ok()) continue;
    if (!first) json += ",";
    first = false;
    json += "{\"name\":" + JsonEscape(name) + ",\"state\":" +
            JsonEscape(Container::SensorStateName(status->state)) +
            ",\"produced\":" + std::to_string(status->stats.produced) +
            ",\"stored_rows\":" + std::to_string(status->stored_rows) + "}";
  }
  json += "]";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleSensorStatus(const std::string& name) {
  Result<Container::SensorStatus> status = container_->GetSensorStatus(name);
  if (!status.ok()) return FromStatus(status.status());
  std::string json =
      "{\"name\":" + JsonEscape(status->name) + ",\"state\":" +
      JsonEscape(Container::SensorStateName(status->state)) +
      ",\"pool_size\":" + std::to_string(status->pool_size) +
      ",\"triggers\":" + std::to_string(status->stats.triggers) +
      ",\"produced\":" + std::to_string(status->stats.produced) +
      ",\"rate_limited\":" + std::to_string(status->stats.rate_limited) +
      ",\"errors\":" + std::to_string(status->stats.errors) +
      ",\"restarts\":" + std::to_string(status->restart_attempts) +
      ",\"queue_depth\":" + std::to_string(status->queue_depth) +
      ",\"shed\":" + std::to_string(status->shed) +
      ",\"stored_rows\":" + std::to_string(status->stored_rows) +
      ",\"stored_bytes\":" + std::to_string(status->stored_bytes) +
      ",\"remote_subscribers\":" +
      std::to_string(status->remote_subscribers) + "}";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleQuery(const HttpRequest& request) {
  const std::string sql = request.QueryOr("sql", "");
  if (sql.empty()) {
    return ErrorJson(400, "InvalidArgument", "missing ?sql= parameter");
  }
  Result<Relation> result = container_->Query(sql, ApiKey(request));
  if (!result.ok()) return FromStatus(result.status());
  if (request.QueryOr("format", "json") == "csv") {
    HttpResponse response = HttpResponse::Text(RelationToCsv(*result));
    response.content_type = "text/csv";
    return response;
  }
  return HttpResponse::Json(RelationToJson(*result));
}

HttpResponse WebInterface::HandleExplain(const HttpRequest& request) {
  const std::string sql = request.QueryOr("sql", "");
  if (sql.empty()) {
    return ErrorJson(400, "InvalidArgument", "missing ?sql= parameter");
  }
  const bool analyze = request.QueryOr("analyze", "0") != "0";
  Result<std::string> plan =
      analyze ? container_->query_manager().ExplainAnalyze(sql)
              : container_->query_manager().Explain(sql);
  if (!plan.ok()) return FromStatus(plan.status());
  return HttpResponse::Text(*plan);
}

HttpResponse WebInterface::HandleDiscover(const HttpRequest& request) {
  std::map<std::string, std::string> predicates = request.query;
  predicates.erase("key");  // the auth parameter is not a predicate
  std::string json = "[";
  bool first = true;
  for (const network::DirectoryEntry& entry :
       container_->Discover(predicates)) {
    if (!first) json += ",";
    first = false;
    json += "{\"sensor\":" + JsonEscape(entry.sensor_name) +
            ",\"node\":" + JsonEscape(entry.node_id) + ",\"predicates\":{";
    bool first_pred = true;
    for (const auto& [key, val] : entry.predicates) {
      if (!first_pred) json += ",";
      first_pred = false;
      json += JsonEscape(key) + ":" + JsonEscape(val);
    }
    json += "}}";
  }
  json += "]";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleTopology() {
  std::vector<GraphEdge> edges;
  for (const Container::TopologyEdge& e : container_->Topology()) {
    edges.push_back(GraphEdge{e.from, e.to, e.label});
  }
  HttpResponse response =
      HttpResponse::Text(EdgesToDot(container_->node_id(), edges));
  response.content_type = "text/vnd.graphviz";
  return response;
}

HttpResponse WebInterface::HandleMetrics() {
  std::string body = container_->metrics()->RenderPrometheus();
  // Process-wide series (e.g. the SQL join-strategy counters) live in
  // the default registry; append them when the container isn't already
  // using it.
  if (container_->metrics() != telemetry::MetricRegistry::Default()) {
    body += telemetry::MetricRegistry::Default()->RenderPrometheus();
  }
  HttpResponse response = HttpResponse::Text(std::move(body));
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  return response;
}

HttpResponse WebInterface::HandleTraces(const HttpRequest& request) {
  const std::string id = request.QueryOr("id", "");
  if (!id.empty()) {
    uint64_t hi = 0;
    uint64_t lo = 0;
    if (!telemetry::ParseTraceIdHex(id, &hi, &lo)) {
      return ErrorJson(400, "InvalidArgument",
                       "?id= must be a 32-char hex trace id");
    }
  }
  size_t limit = 0;
  size_t offset = 0;
  const Status page = ParsePage(request, &limit, &offset);
  if (!page.ok()) return FromStatus(page);
  return HttpResponse::Json(telemetry::RenderTracesJson(
      container_->tracer()->store(), id, limit, offset));
}

HttpResponse WebInterface::HandlePeers(const HttpRequest& request) {
  size_t limit = 0;
  size_t offset = 0;
  const Status page = ParsePage(request, &limit, &offset);
  if (!page.ok()) return FromStatus(page);
  std::vector<std::string> items;
  for (const Container::PeerStatus& peer : container_->PeerStatuses()) {
    items.push_back("{\"node\":" + JsonEscape(peer.node_id) +
                    ",\"circuit\":" + JsonEscape(peer.circuit) +
                    ",\"last_seen_micros\":" + std::to_string(peer.last_seen) +
                    ",\"circuit_opened_total\":" +
                    std::to_string(peer.circuit_opened_total) + "}");
  }
  return HttpResponse::Json(ListEnvelope(items, limit, offset));
}

HttpResponse WebInterface::HandleTransport(const HttpRequest& request) {
  size_t limit = 0;
  size_t offset = 0;
  const Status page = ParsePage(request, &limit, &offset);
  if (!page.ok()) return FromStatus(page);
  std::vector<std::string> items;
  if (container_->network() != nullptr) {
    AppendConnectionItems(*container_->network(), "peer", &items);
  }
  AppendConnectionItems(http_, "http", &items);
  const std::string extra =
      ",\"peer_transport\":" +
      JsonEscape(container_->network() != nullptr
                     ? container_->network()->transport_name()
                     : "none") +
      ",\"http\":{\"accepted_total\":" +
      std::to_string(http_.accepted_total()) +
      ",\"requests_total\":" + std::to_string(http_.http_requests_total()) +
      ",\"timeouts_total\":" + std::to_string(http_.timeouts_total()) +
      ",\"overflows_total\":" + std::to_string(http_.overflows_total()) + "}";
  return HttpResponse::Json(ListEnvelope(items, limit, offset, extra));
}

HttpResponse WebInterface::HandleStatus() {
  const Container::ContainerStatus status = container_->GetStatus();
  const wrappers::SystemSnapshot& t = status.totals;
  std::string json = "{\"node\":" + JsonEscape(status.node_id) +
                     ",\"version\":" + JsonEscape(status.version) +
                     ",\"compiler\":" + JsonEscape(status.compiler) +
                     ",\"draining\":" + (status.draining ? "true" : "false") +
                     ",\"ready\":" + (status.health.ready ? "true" : "false") +
                     ",\"reasons\":[";
  bool first = true;
  for (const std::string& reason : status.health.reasons) {
    if (!first) json += ",";
    first = false;
    json += JsonEscape(reason);
  }
  json += "],\"totals\":{\"uptime_s\":" + std::to_string(t.uptime_seconds) +
          ",\"sensors\":" + std::to_string(t.sensors) +
          ",\"running\":" + std::to_string(t.running) +
          ",\"restarting\":" + std::to_string(t.restarting) +
          ",\"failed\":" + std::to_string(t.failed) +
          ",\"queue_depth\":" + std::to_string(t.queue_depth) +
          ",\"shed_total\":" + std::to_string(t.shed_total) +
          ",\"quarantined\":" + std::to_string(t.quarantined) +
          ",\"replay_bytes\":" + std::to_string(t.replay_bytes) +
          ",\"open_circuits\":" + std::to_string(t.open_circuits) +
          ",\"peers\":" + std::to_string(t.peers) +
          ",\"segments\":" + std::to_string(t.segments) +
          ",\"segment_bytes\":" + std::to_string(t.segment_bytes) +
          ",\"tuples_total\":" + std::to_string(t.tuples_total) +
          ",\"errors_total\":" + std::to_string(t.errors_total) +
          ",\"metric_series\":" + std::to_string(t.metric_series) +
          ",\"tick_mean_ms\":" + JsonDouble(t.tick_mean_ms) +
          ",\"tick_p95_ms\":" + JsonDouble(t.tick_p95_ms) +
          ",\"lock_wait_share\":" + JsonDouble(t.lock_wait_share) +
          ",\"queue_wait_p95_ms\":" + JsonDouble(t.queue_wait_p95_ms) +
          ",\"rss_bytes\":" + std::to_string(t.rss_bytes) +
          ",\"cpu_seconds\":" + JsonDouble(t.cpu_seconds) + "}";
  json += ",\"sensors\":[";
  first = true;
  for (const Container::SensorStatus& sensor : status.sensors) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":" + JsonEscape(sensor.name) + ",\"state\":" +
            JsonEscape(Container::SensorStateName(sensor.state)) +
            ",\"produced\":" + std::to_string(sensor.stats.produced) +
            ",\"errors\":" + std::to_string(sensor.stats.errors) +
            ",\"restarts\":" + std::to_string(sensor.restart_attempts) +
            ",\"queue_depth\":" + std::to_string(sensor.queue_depth) +
            ",\"shed\":" + std::to_string(sensor.shed) +
            ",\"stored_rows\":" + std::to_string(sensor.stored_rows) + "}";
  }
  json += "],\"shards\":[";
  first = true;
  for (const Container::ShardStatus& shard : status.shards) {
    if (!first) json += ",";
    first = false;
    json += "{\"index\":" + std::to_string(shard.index) +
            ",\"sensors\":" + std::to_string(shard.sensors) +
            ",\"ticks_total\":" + std::to_string(shard.ticks_total) +
            ",\"lock_acquisitions\":" +
            std::to_string(shard.lock_acquisitions) +
            ",\"lock_contended\":" + std::to_string(shard.lock_contended) +
            ",\"lock_wait_micros\":" + std::to_string(shard.lock_wait_micros) +
            "}";
  }
  json += "],\"locks\":[";
  first = true;
  for (const Container::LockStats& lock : status.locks) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":" + JsonEscape(lock.name) +
            ",\"acquisitions\":" + std::to_string(lock.acquisitions) +
            ",\"contended\":" + std::to_string(lock.contended) +
            ",\"wait_micros\":" + std::to_string(lock.wait_micros) + "}";
  }
  json += "],\"hot_spans\":[";
  first = true;
  for (const telemetry::Profiler::SpanStats& span : status.hot_spans) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":" + JsonEscape(span.name) +
            ",\"count\":" + std::to_string(span.count) +
            ",\"total_micros\":" + std::to_string(span.total_micros) +
            ",\"max_micros\":" + std::to_string(span.max_micros) + "}";
  }
  json += "],\"peers\":[";
  first = true;
  for (const Container::PeerStatus& peer : status.peers) {
    if (!first) json += ",";
    first = false;
    json += "{\"node\":" + JsonEscape(peer.node_id) +
            ",\"circuit\":" + JsonEscape(peer.circuit) + "}";
  }
  json += "],\"recovery\":{\"records\":" +
          std::to_string(status.recovered_records) +
          ",\"failures\":" + std::to_string(status.recovery_failures) + "}}";
  return HttpResponse::Json(std::move(json));
}

HttpResponse WebInterface::HandleSegments(const HttpRequest& request) {
  size_t limit = 0;
  size_t offset = 0;
  const Status page = ParsePage(request, &limit, &offset);
  if (!page.ok()) return FromStatus(page);
  const storage::columnar::SegmentCatalog* catalog =
      container_->segment_catalog();
  std::vector<std::string> items;
  if (catalog != nullptr) {
    for (const storage::columnar::SegmentMeta& meta : catalog->List()) {
      items.push_back("{\"table\":" + JsonEscape(meta.table) +
                      ",\"id\":" + std::to_string(meta.id) +
                      ",\"rows\":" + std::to_string(meta.row_count) +
                      ",\"chunks\":" + std::to_string(meta.chunk_count) +
                      ",\"bytes\":" + std::to_string(meta.bytes) +
                      ",\"min_timed\":" + std::to_string(meta.min_timed) +
                      ",\"max_timed\":" + std::to_string(meta.max_timed) + "}");
    }
  }
  std::string extra = ",\"enabled\":";
  extra += catalog != nullptr ? "true" : "false";
  extra += ",\"segment_count\":";
  extra += std::to_string(catalog != nullptr ? catalog->segment_count() : 0);
  extra += ",\"total_bytes\":";
  extra += std::to_string(catalog != nullptr ? catalog->total_bytes() : 0);
  return HttpResponse::Json(ListEnvelope(items, limit, offset, extra));
}

HttpResponse WebInterface::HandleHealthz() {
  // Liveness: the probe answering at all is the signal.
  return HttpResponse::Json("{\"status\":\"ok\"}");
}

HttpResponse WebInterface::HandleReadyz() {
  const Container::Health health = container_->GetHealth();
  std::string json = std::string("{\"ready\":") +
                     (health.ready ? "true" : "false") + ",\"reasons\":[";
  bool first = true;
  for (const std::string& reason : health.reasons) {
    if (!first) json += ",";
    first = false;
    json += JsonEscape(reason);
  }
  json += "]}";
  return HttpResponse::Json(std::move(json), health.ready ? 200 : 503);
}

HttpResponse WebInterface::HandleQuarantine(const HttpRequest& request) {
  size_t limit = 0;
  size_t offset = 0;
  const Status page = ParsePage(request, &limit, &offset);
  if (!page.ok()) return FromStatus(page);
  std::vector<std::string> items;
  for (const QuarantineStore::Entry& entry :
       container_->quarantine().List()) {
    items.push_back(
        "{\"id\":" + std::to_string(entry.id) +
        ",\"sensor\":" + JsonEscape(entry.sensor) +
        ",\"stream\":" + JsonEscape(entry.stream) +
        ",\"source\":" + JsonEscape(entry.source_alias) +
        ",\"error\":" + JsonEscape(entry.error) +
        ",\"quarantined_at_micros\":" + std::to_string(entry.quarantined_at) +
        ",\"element_timed\":" + std::to_string(entry.element.timed) + "}");
  }
  return HttpResponse::Json(ListEnvelope(items, limit, offset));
}

HttpResponse WebInterface::HandleQuarantineRequeue(const HttpRequest& request) {
  const std::string id_text = request.QueryOr("id", "");
  if (id_text.empty()) {
    return ErrorJson(400, "InvalidArgument", "missing ?id=");
  }
  Result<int64_t> id = ParseInt64(id_text);
  if (!id.ok() || *id < 0) {
    return ErrorJson(400, "InvalidArgument",
                     "?id= must be a quarantine entry id");
  }
  const Status status =
      container_->RequeueQuarantined(static_cast<uint64_t>(*id));
  if (!status.ok()) return FromStatus(status);
  return HttpResponse::Json("{\"requeued\":" + id_text + "}");
}

HttpResponse WebInterface::HandleQuarantineClear() {
  const size_t cleared = container_->quarantine().Clear();
  return HttpResponse::Json("{\"cleared\":" + std::to_string(cleared) + "}");
}

HttpResponse WebInterface::HandleCheckpoint() {
  const Status status = container_->Checkpoint();
  if (!status.ok()) return FromStatus(status);
  return HttpResponse::Json("{\"checkpointed\":true}");
}

HttpResponse WebInterface::HandleDrain() {
  const Status status = container_->Shutdown();
  if (!status.ok()) return FromStatus(status);
  return HttpResponse::Json("{\"drained\":true}");
}

HttpResponse WebInterface::HandleChaos() {
  network::Transport* transport = container_->network();
  network::ChaosTransport* chaos =
      transport != nullptr ? transport->AsChaos() : nullptr;
  if (chaos == nullptr) {
    return ErrorJson(404, "NotFound",
                     transport != nullptr
                         ? "no chaos transport attached (this container runs "
                           "on '" +
                               transport->transport_name() + "')"
                         : "no chaos transport attached (standalone "
                           "container has no network)");
  }
  const network::ChaosTransport::Counters counters = chaos->counters();
  std::string rules;
  for (const network::ChaosTransport::RuleEntry& entry : chaos->Rules()) {
    if (!rules.empty()) rules += ",";
    const network::ChaosTransport::Rule& r = entry.rule;
    rules += "{\"peer\":" + JsonEscape(entry.peer) + ",\"direction\":" +
             JsonEscape(network::DirectionName(entry.direction)) +
             ",\"frames\":" + std::to_string(entry.frames) +
             ",\"drop\":" + JsonDouble(r.drop) +
             ",\"dup\":" + JsonDouble(r.dup) +
             ",\"reorder\":" + JsonDouble(r.reorder) +
             ",\"reset\":" + JsonDouble(r.reset) +
             ",\"delay_micros\":" + std::to_string(r.delay_micros) +
             ",\"delay_jitter_micros\":" +
             std::to_string(r.delay_jitter_micros) +
             ",\"throttle_bytes_per_sec\":" +
             std::to_string(r.throttle_bytes_per_sec) +
             ",\"partitioned\":" + (r.partitioned ? "true" : "false") + "}";
  }
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(chaos->ScheduleDigest()));
  return HttpResponse::Json(
      "{\"transport\":" + JsonEscape(chaos->transport_name()) +
      ",\"seed\":" + std::to_string(chaos->seed()) +
      ",\"schedule_digest\":\"" + digest + "\"" +
      ",\"injected\":{\"dropped\":" + std::to_string(counters.dropped) +
      ",\"duplicated\":" + std::to_string(counters.duplicated) +
      ",\"reordered\":" + std::to_string(counters.reordered) +
      ",\"delayed\":" + std::to_string(counters.delayed) +
      ",\"throttled\":" + std::to_string(counters.throttled) +
      ",\"partitioned\":" + std::to_string(counters.partitioned) +
      ",\"resets\":" + std::to_string(counters.resets) + "}" +
      ",\"rules\":[" + rules + "]}");
}

HttpResponse WebInterface::HandleChaosCommand(const HttpRequest& request) {
  if (request.body.empty()) {
    return ErrorJson(400, "InvalidArgument",
                     "POST body must be one chaos command line "
                     "(e.g. \"loss peer-b 0.1 out\"; see docs/CHAOS.md)");
  }
  Result<std::string> result =
      network::ExecuteChaosCommand(container_->network(), request.body);
  if (!result.ok()) return FromStatus(result.status());
  std::string text = *result;
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return HttpResponse::Json("{\"ok\":true,\"result\":" + JsonEscape(text) +
                            "}");
}

HttpResponse WebInterface::HandleDeploy(const HttpRequest& request) {
  if (request.body.empty()) {
    return ErrorJson(400, "InvalidArgument",
                     "POST body must be a descriptor XML");
  }
  Result<vsensor::VirtualSensor*> sensor =
      container_->Deploy(request.body, ApiKey(request));
  if (!sensor.ok()) return FromStatus(sensor.status());
  return HttpResponse::Json(
      "{\"deployed\":" + JsonEscape((*sensor)->name()) + "}");
}

HttpResponse WebInterface::HandleUndeploy(const HttpRequest& request) {
  const std::string name = request.QueryOr("name", "");
  if (name.empty()) {
    return ErrorJson(400, "InvalidArgument", "missing ?name=");
  }
  const Status status = container_->Undeploy(name, ApiKey(request));
  if (!status.ok()) return FromStatus(status);
  return HttpResponse::Json("{\"undeployed\":" + JsonEscape(name) + "}");
}

}  // namespace gsn::container

#ifndef GSN_CONTAINER_WEB_INTERFACE_H_
#define GSN_CONTAINER_WEB_INTERFACE_H_

#include <functional>
#include <string>
#include <vector>

#include "gsn/container/container.h"
#include "gsn/network/epoll_transport.h"
#include "gsn/network/http_server.h"

namespace gsn::container {

/// The container's web/web-services front end (paper §4: "the interface
/// layer provides access functions for other GSN containers and via the
/// Web (through a browser or via web services)"; §6: the demo audience
/// monitors and queries the system through it).
///
/// Served by an owned EpollTransport HTTP plane (docs/TRANSPORT.md):
/// HTTP/1.1 keep-alive with pipelining, bounded per-connection write
/// queues, and idle timeouts — thousands of concurrent clients on one
/// event-loop thread.
///
/// Every resource is mounted under the versioned prefix `/api/v1` and
/// nowhere else: the old unversioned aliases are retired, and a request
/// to one answers 410 with {"error":{"code":"gone","message":"...use
/// /api/v1<path>"}} so stale scrapers learn the move. List resources
/// (/traces, /peers, /segments, /quarantine, /transport) accept
/// ?limit=&offset= and share the envelope {"items":[...],"total":N}
/// where `total` counts pre-paging matches. The route table:
///
///   GET  /api/v1/sensors           JSON list of sensors with counters
///   GET  /api/v1/sensors/<name>    JSON status of one sensor
///   GET  /api/v1/query?sql=...     result as JSON (&format=csv for CSV)
///   GET  /api/v1/explain?sql=...   the optimized execution pipeline as
///                                  text (&analyze=1 executes and
///                                  annotates with actual rows/timings)
///   GET  /api/v1/discover?k=v&...  directory lookup by predicates
///   GET  /api/v1/topology          data-flow graph as Graphviz DOT
///   GET  /api/v1/metrics           telemetry in Prometheus text format
///   GET  /api/v1/traces            recorded trace spans as JSON
///                                  (?id=<32-hex trace id> filters one)
///   GET  /api/v1/peers             federation peer health: circuit
///                                  state, last-seen, times opened
///   GET  /api/v1/transport         per-connection transport stats for
///                                  the peer and HTTP planes: peer,
///                                  kind, state, queued bytes,
///                                  keep-alive requests served
///   GET  /api/v1/status            unified container snapshot: build
///                                  info, health, runtime totals,
///                                  per-sensor state, queue depths,
///                                  lock contention, hot spans,
///                                  segments, peers — one JSON document
///   GET  /api/v1/segments          columnar history tier: per-segment
///                                  table/id/rows/chunks/bytes/time
///                                  range, plus catalog totals
///   GET  /api/v1/healthz           liveness probe (200 while the
///                                  process serves requests)
///   GET  /api/v1/readyz            readiness probe: 200 when healthy,
///                                  503 + JSON reasons while draining,
///                                  a sensor is FAILED/restarting, or
///                                  an admission queue is at capacity
///   GET  /api/v1/quarantine        dead-letter store of poison tuples
///   POST /api/v1/quarantine/requeue?id=N   re-inject one tuple
///   POST /api/v1/quarantine/clear  drop every quarantined tuple
///   GET  /api/v1/chaos             chaos-transport fault state: seed,
///                                  schedule digest, injected-fault
///                                  counters, per-link rules
///   POST /api/v1/chaos             body = one line of the shared chaos
///                                  grammar (docs/CHAOS.md) — the same
///                                  vocabulary as the `chaos` command
///   POST /api/v1/checkpoint        compact manifest + WALs now
///   POST /api/v1/drain             graceful drain (stop admitting,
///                                  flush, checkpoint, fsync)
///   POST /api/v1/deploy            body = descriptor XML
///   POST /api/v1/undeploy?name=...
///
/// `GET /` serves an HTML index; `GET /api/v1` lists the route table as
/// JSON. Errors share one JSON envelope on every route:
///   {"error":{"code":"NotFound","message":"..."}}
///
/// When the container's access control is enabled, callers pass their
/// API key as the X-Api-Key header or a `key` query parameter.
class WebInterface {
 public:
  explicit WebInterface(Container* container);

  WebInterface(const WebInterface&) = delete;
  WebInterface& operator=(const WebInterface&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  Status Start(uint16_t port = 0);
  void Stop();
  uint16_t port() const { return http_.http_port(); }

  /// The HTTP-plane transport (tests, /api/v1/transport merging).
  const network::EpollTransport& transport() const { return http_; }

  /// Route dispatch (exposed for in-process tests without sockets).
  network::HttpResponse Handle(const network::HttpRequest& request);

 private:
  /// One row of the route table. `path` is the canonical path below the
  /// version prefix ("/sensors"); `prefix` routes also match any
  /// suffix, which is passed to the handler ("/sensors/<name>").
  struct Route {
    std::string method;
    std::string path;
    bool prefix = false;
    std::function<network::HttpResponse(const network::HttpRequest&,
                                        const std::string& suffix)>
        handler;
  };

  network::HttpResponse Dispatch(const network::HttpRequest& request,
                                 const std::string& path);
  network::HttpResponse HandleIndex();
  network::HttpResponse HandleApiIndex();
  network::HttpResponse HandleSensors();
  network::HttpResponse HandleSensorStatus(const std::string& name);
  network::HttpResponse HandleQuery(const network::HttpRequest& request);
  network::HttpResponse HandleExplain(const network::HttpRequest& request);
  network::HttpResponse HandleDiscover(const network::HttpRequest& request);
  network::HttpResponse HandleTopology();
  network::HttpResponse HandleMetrics();
  network::HttpResponse HandleTraces(const network::HttpRequest& request);
  network::HttpResponse HandlePeers(const network::HttpRequest& request);
  network::HttpResponse HandleTransport(const network::HttpRequest& request);
  network::HttpResponse HandleStatus();
  network::HttpResponse HandleSegments(const network::HttpRequest& request);
  network::HttpResponse HandleHealthz();
  network::HttpResponse HandleReadyz();
  network::HttpResponse HandleQuarantine(const network::HttpRequest& request);
  network::HttpResponse HandleQuarantineRequeue(
      const network::HttpRequest& request);
  network::HttpResponse HandleQuarantineClear();
  network::HttpResponse HandleChaos();
  network::HttpResponse HandleChaosCommand(const network::HttpRequest& request);
  network::HttpResponse HandleCheckpoint();
  network::HttpResponse HandleDrain();
  network::HttpResponse HandleDeploy(const network::HttpRequest& request);
  network::HttpResponse HandleUndeploy(const network::HttpRequest& request);

  static std::string ApiKey(const network::HttpRequest& request);
  /// The shared error envelope: {"error":{"code":...,"message":...}}.
  static network::HttpResponse ErrorJson(int http_status,
                                         const std::string& code,
                                         const std::string& message);
  static network::HttpResponse FromStatus(const Status& status);

  Container* container_;
  std::vector<Route> routes_;
  network::EpollTransport http_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_WEB_INTERFACE_H_

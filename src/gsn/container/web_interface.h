#ifndef GSN_CONTAINER_WEB_INTERFACE_H_
#define GSN_CONTAINER_WEB_INTERFACE_H_

#include <string>

#include "gsn/container/container.h"
#include "gsn/network/http_server.h"

namespace gsn::container {

/// The container's web/web-services front end (paper §4: "the interface
/// layer provides access functions for other GSN containers and via the
/// Web (through a browser or via web services)"; §6: the demo audience
/// monitors and queries the system through it). Routes:
///
///   GET  /                  HTML index: node id + deployed sensors
///   GET  /sensors           JSON list of sensors with status counters
///   GET  /sensors/<name>    JSON status of one sensor
///   GET  /query?sql=...     result as JSON (&format=csv for CSV)
///   GET  /explain?sql=...   the optimized execution pipeline as text
///                           (&analyze=1 executes and annotates the
///                           plan with actual rows/timings)
///   GET  /discover?k=v&...  directory lookup by predicates (JSON)
///   GET  /topology          data-flow graph as Graphviz DOT
///   GET  /metrics           telemetry in Prometheus text format
///   GET  /traces            recorded trace spans as JSON
///                           (?id=<32-hex trace id> filters one trace)
///   POST /deploy            body = descriptor XML
///   POST /undeploy?name=...
///
/// When the container's access control is enabled, callers pass their
/// API key as the X-Api-Key header or a `key` query parameter.
class WebInterface {
 public:
  explicit WebInterface(Container* container);

  WebInterface(const WebInterface&) = delete;
  WebInterface& operator=(const WebInterface&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.
  Status Start(uint16_t port = 0);
  void Stop();
  uint16_t port() const { return server_.port(); }

  /// Route dispatch (exposed for in-process tests without sockets).
  network::HttpResponse Handle(const network::HttpRequest& request);

 private:
  network::HttpResponse HandleIndex();
  network::HttpResponse HandleSensors();
  network::HttpResponse HandleSensorStatus(const std::string& name);
  network::HttpResponse HandleQuery(const network::HttpRequest& request);
  network::HttpResponse HandleExplain(const network::HttpRequest& request);
  network::HttpResponse HandleDiscover(const network::HttpRequest& request);
  network::HttpResponse HandleTopology();
  network::HttpResponse HandleMetrics();
  network::HttpResponse HandleTraces(const network::HttpRequest& request);
  network::HttpResponse HandleDeploy(const network::HttpRequest& request);
  network::HttpResponse HandleUndeploy(const network::HttpRequest& request);

  static std::string ApiKey(const network::HttpRequest& request);
  static network::HttpResponse FromStatus(const Status& status);

  Container* container_;
  network::HttpServer server_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_WEB_INTERFACE_H_

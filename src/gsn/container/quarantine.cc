#include "gsn/container/quarantine.h"

#include <algorithm>

namespace gsn::container {

QuarantineStore::QuarantineStore(size_t capacity,
                                 telemetry::MetricRegistry* metrics)
    : capacity_(std::max<size_t>(capacity, 1)) {
  if (metrics == nullptr) metrics = telemetry::MetricRegistry::Default();
  tuples_total_ =
      metrics->GetCounter("gsn_quarantine_tuples_total", {},
                          "Poison tuples moved to the dead-letter store");
  size_gauge_ = metrics->GetGauge("gsn_quarantine_size", {},
                                  "Tuples currently held in quarantine");
}

uint64_t QuarantineStore::Add(const std::string& sensor,
                              const std::string& stream,
                              const std::string& source_alias,
                              const std::string& error, Timestamp now,
                              const StreamElement& element) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.id = next_id_++;
  entry.sensor = sensor;
  entry.stream = stream;
  entry.source_alias = source_alias;
  entry.error = error;
  entry.quarantined_at = now;
  entry.element = element;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
  tuples_total_->Increment();
  size_gauge_->Set(static_cast<int64_t>(entries_.size()));
  return next_id_ - 1;
}

std::vector<QuarantineStore::Entry> QuarantineStore::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Entry>(entries_.begin(), entries_.end());
}

Result<QuarantineStore::Entry> QuarantineStore::Take(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      Entry entry = std::move(*it);
      entries_.erase(it);
      size_gauge_->Set(static_cast<int64_t>(entries_.size()));
      return entry;
    }
  }
  return Status::NotFound("no quarantined tuple with id " +
                          std::to_string(id));
}

size_t QuarantineStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = entries_.size();
  entries_.clear();
  size_gauge_->Set(0);
  return n;
}

size_t QuarantineStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace gsn::container

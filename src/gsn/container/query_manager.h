#ifndef GSN_CONTAINER_QUERY_MANAGER_H_
#define GSN_CONTAINER_QUERY_MANAGER_H_

#include <atomic>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "gsn/sql/executor.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/profiler.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/result.h"

namespace gsn::container {

/// The query manager of Fig 2: the query processor (parse, plan,
/// execute — with a prepared-statement cache standing in for MySQL's
/// query compilation cache) plus the query repository managing
/// registered continuous queries (subscriptions re-evaluated as new
/// stream elements arrive).
///
/// Thread-safe.
class QueryManager {
 public:
  using ContinuousCallback =
      std::function<void(const std::string& sensor_name, const Relation&)>;

  /// `resolver` supplies the container's sensor output tables. Query
  /// telemetry (parse/exec latency histograms, cache counters, the
  /// slow-query counter) registers in `metrics`, defaulting to the
  /// process registry.
  explicit QueryManager(const sql::TableResolver* resolver,
                        telemetry::MetricRegistry* metrics = nullptr);

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  /// One-shot query. Parse results are cached by query text (see
  /// set_cache_enabled); execution always runs fresh against current
  /// table snapshots. `source` attributes the query in the slow-query
  /// log and trace spans (e.g. "web", "mgmt", the default "adhoc").
  Result<Relation> Execute(const std::string& sql_text,
                           const std::string& source = "adhoc");

  /// The optimized execution pipeline for a query, as text (EXPLAIN).
  Result<std::string> Explain(const std::string& sql_text);

  /// EXPLAIN ANALYZE: executes the query with per-operator
  /// instrumentation and returns the plan annotated with actual row
  /// counts, timings, and the join algorithms picked at runtime.
  Result<std::string> ExplainAnalyze(const std::string& sql_text);

  /// Registers a continuous query: re-executed whenever a sensor named
  /// in its FROM clause produces output, with the result handed to
  /// `callback`. Returns the registration id.
  Result<int64_t> RegisterContinuous(const std::string& sql_text,
                                     ContinuousCallback callback);
  Status Unregister(int64_t query_id);
  size_t NumContinuous() const;

  /// Notifies the repository that `sensor_name` emitted a new element;
  /// re-runs affected continuous queries. Returns how many ran. A valid
  /// `trace` links the continuous runs to the element's trace as
  /// "query.continuous" child spans.
  int OnNewElement(const std::string& sensor_name,
                   const TraceContext& trace = TraceContext());

  /// Batch variant: continuous queries read the sensor's stored table,
  /// so after a batch of elements is fully inserted one re-execution
  /// per affected query yields exactly the result the last per-element
  /// re-execution would have — N-1 intermediate runs are skipped. The
  /// runs continue the trace of the first traced element in the batch.
  int OnNewElementBatch(const std::string& sensor_name,
                        const std::vector<StreamElement>& batch);

  /// Prepared-statement cache switch (ablation: the paper attributes
  /// part of Fig 4's latency to "the cost of query compiling").
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;

  /// Bounds the prepared-statement cache (LRU eviction; counted in
  /// gsn_query_cache_evictions_total). Shrinking evicts immediately.
  void set_cache_capacity(size_t capacity);
  size_t cache_capacity() const;
  size_t cache_size() const;

  /// Slow-query log: one-shot and continuous executions taking at least
  /// `threshold_micros` are logged at WARN with their SQL text and
  /// source, counted in gsn_slow_queries_total, and kept (with the
  /// analyzed plan of the offending execution) in a bounded in-memory
  /// log readable via slow_log(). 0 disables (the default).
  void set_slow_query_micros(int64_t threshold_micros);
  int64_t slow_query_micros() const;

  /// One retained slow-query occurrence.
  struct SlowQueryEntry {
    std::string sql_text;
    /// What ran the query: "adhoc"/"web"/"mgmt"/"explain-analyze" or
    /// "continuous:<sensor>" for repository re-executions.
    std::string source;
    int64_t elapsed_micros = 0;
    /// EXPLAIN ANALYZE of the slow execution itself (operator row
    /// counts + timings observed while it was being slow).
    std::string plan;
  };
  /// The most recent retained slow queries, oldest first (bounded ring;
  /// see kSlowLogCapacity).
  std::vector<SlowQueryEntry> slow_log() const;

  /// Roots a "query.execute" span per one-shot execution in `tracer`
  /// (and "query.continuous" children for repository runs). Null
  /// detaches. The tracer must outlive this manager.
  void set_tracer(telemetry::Tracer* tracer);

  /// Clock for the parse/exec span timers (default: steady wall clock).
  /// Tests inject a VirtualClock for deterministic latencies.
  void set_span_clock(const Clock* span_clock);

  /// Collects base table names referenced anywhere in a statement
  /// (FROM items, joins, subqueries, set-op branches). Used by the
  /// repository for change tracking and by access control.
  static void CollectTables(const sql::SelectStmt& stmt,
                            std::set<std::string>* out);

  /// Point-in-time view assembled from the registered metrics (kept as
  /// the pre-telemetry API; the counters live in the MetricRegistry).
  struct Stats {
    int64_t executed = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t continuous_runs = 0;
    int64_t slow_queries = 0;
    /// Cumulative wall time split by phase, microseconds.
    int64_t parse_micros = 0;
    int64_t exec_micros = 0;
  };
  Stats stats() const;

  /// Execution-latency distribution (Fig 4's series).
  telemetry::Histogram::Snapshot exec_histogram() const {
    return metrics_.exec_micros->TakeSnapshot();
  }
  telemetry::Histogram::Snapshot parse_histogram() const {
    return metrics_.parse_micros->TakeSnapshot();
  }

  /// Contention stats of the cache/continuous/slow-log lock, for the
  /// container status surface.
  const telemetry::TimedMutex& cache_lock() const { return mu_; }

 private:
  struct ContinuousQuery {
    std::string sql_text;
    std::shared_ptr<sql::SelectStmt> stmt;
    std::set<std::string> tables;  // lowercased base tables referenced
    ContinuousCallback callback;
  };

  static constexpr size_t kSlowLogCapacity = 32;

  /// Parses (or fetches from cache) the statement for `sql_text`.
  Result<std::shared_ptr<sql::SelectStmt>> Prepare(
      const std::string& sql_text);

  /// Logs + counts + retains `sql_text` if `elapsed_micros` crosses the
  /// slow bar. `stmt`/`analyze` (both optional) render the analyzed
  /// plan captured for the entry.
  void MaybeLogSlow(const std::string& sql_text, const std::string& source,
                    int64_t elapsed_micros, const sql::SelectStmt* stmt,
                    const sql::AnalyzeCollector* analyze);

  struct QueryMetrics {
    std::shared_ptr<telemetry::Counter> executed;
    std::shared_ptr<telemetry::Counter> cache_hits;
    std::shared_ptr<telemetry::Counter> cache_misses;
    std::shared_ptr<telemetry::Counter> cache_evictions;
    std::shared_ptr<telemetry::Counter> continuous_runs;
    std::shared_ptr<telemetry::Counter> slow_queries;
    std::shared_ptr<telemetry::Histogram> parse_micros;
    std::shared_ptr<telemetry::Histogram> exec_micros;
  };

  const sql::TableResolver* resolver_;
  /// Private registry when none was injected.
  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  QueryMetrics metrics_;
  std::atomic<const Clock*> span_clock_;
  std::atomic<int64_t> slow_query_micros_{0};
  std::atomic<telemetry::Tracer*> tracer_{nullptr};

  /// Default prepared-statement cache bound: large enough for every
  /// deployed sensor's queries plus a working set of ad-hoc clients,
  /// small enough that a scan of distinct query texts (Fig 4's random
  /// workload) cannot grow the cache without limit.
  static constexpr size_t kDefaultCacheCapacity = 256;

  /// Evicts LRU entries until the cache fits `cache_capacity_`.
  void EvictCacheLocked();

  /// Instrumented as lock="query_cache" so Fig 4 can quote the
  /// cache lock's wait share.
  mutable telemetry::TimedMutex mu_;
  bool cache_enabled_ = true;
  /// LRU prepared-statement cache: most recently used at the front of
  /// `lru_`; `cache_` indexes list nodes by query text.
  using LruList = std::list<std::pair<std::string, std::shared_ptr<sql::SelectStmt>>>;
  LruList lru_;
  std::map<std::string, LruList::iterator> cache_;
  size_t cache_capacity_ = kDefaultCacheCapacity;
  std::map<int64_t, ContinuousQuery> continuous_;
  std::deque<SlowQueryEntry> slow_log_;
  int64_t next_id_ = 1;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_QUERY_MANAGER_H_

#ifndef GSN_CONTAINER_QUERY_MANAGER_H_
#define GSN_CONTAINER_QUERY_MANAGER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "gsn/sql/executor.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/util/result.h"

namespace gsn::container {

/// The query manager of Fig 2: the query processor (parse, plan,
/// execute — with a prepared-statement cache standing in for MySQL's
/// query compilation cache) plus the query repository managing
/// registered continuous queries (subscriptions re-evaluated as new
/// stream elements arrive).
///
/// Thread-safe.
class QueryManager {
 public:
  using ContinuousCallback =
      std::function<void(const std::string& sensor_name, const Relation&)>;

  /// `resolver` supplies the container's sensor output tables. Query
  /// telemetry (parse/exec latency histograms, cache counters, the
  /// slow-query counter) registers in `metrics`, defaulting to the
  /// process registry.
  explicit QueryManager(const sql::TableResolver* resolver,
                        telemetry::MetricRegistry* metrics = nullptr);

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  /// One-shot query. Parse results are cached by query text (see
  /// set_cache_enabled); execution always runs fresh against current
  /// table snapshots.
  Result<Relation> Execute(const std::string& sql_text);

  /// The optimized execution pipeline for a query, as text (EXPLAIN).
  Result<std::string> Explain(const std::string& sql_text);

  /// Registers a continuous query: re-executed whenever a sensor named
  /// in its FROM clause produces output, with the result handed to
  /// `callback`. Returns the registration id.
  Result<int64_t> RegisterContinuous(const std::string& sql_text,
                                     ContinuousCallback callback);
  Status Unregister(int64_t query_id);
  size_t NumContinuous() const;

  /// Notifies the repository that `sensor_name` emitted a new element;
  /// re-runs affected continuous queries. Returns how many ran.
  int OnNewElement(const std::string& sensor_name);

  /// Prepared-statement cache switch (ablation: the paper attributes
  /// part of Fig 4's latency to "the cost of query compiling").
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;

  /// Slow-query log: one-shot and continuous executions taking at least
  /// `threshold_micros` are logged at WARN with their SQL text and
  /// counted in gsn_slow_queries_total. 0 disables (the default).
  void set_slow_query_micros(int64_t threshold_micros);
  int64_t slow_query_micros() const;

  /// Clock for the parse/exec span timers (default: steady wall clock).
  /// Tests inject a VirtualClock for deterministic latencies.
  void set_span_clock(const Clock* span_clock);

  /// Collects base table names referenced anywhere in a statement
  /// (FROM items, joins, subqueries, set-op branches). Used by the
  /// repository for change tracking and by access control.
  static void CollectTables(const sql::SelectStmt& stmt,
                            std::set<std::string>* out);

  /// Point-in-time view assembled from the registered metrics (kept as
  /// the pre-telemetry API; the counters live in the MetricRegistry).
  struct Stats {
    int64_t executed = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t continuous_runs = 0;
    int64_t slow_queries = 0;
    /// Cumulative wall time split by phase, microseconds.
    int64_t parse_micros = 0;
    int64_t exec_micros = 0;
  };
  Stats stats() const;

  /// Execution-latency distribution (Fig 4's series).
  telemetry::Histogram::Snapshot exec_histogram() const {
    return metrics_.exec_micros->TakeSnapshot();
  }
  telemetry::Histogram::Snapshot parse_histogram() const {
    return metrics_.parse_micros->TakeSnapshot();
  }

 private:
  struct ContinuousQuery {
    std::string sql_text;
    std::shared_ptr<sql::SelectStmt> stmt;
    std::set<std::string> tables;  // lowercased base tables referenced
    ContinuousCallback callback;
  };

  /// Parses (or fetches from cache) the statement for `sql_text`.
  Result<std::shared_ptr<sql::SelectStmt>> Prepare(
      const std::string& sql_text);

  /// Logs + counts `sql_text` if `elapsed_micros` crosses the slow bar.
  void MaybeLogSlow(const std::string& sql_text, int64_t elapsed_micros);

  struct QueryMetrics {
    std::shared_ptr<telemetry::Counter> executed;
    std::shared_ptr<telemetry::Counter> cache_hits;
    std::shared_ptr<telemetry::Counter> cache_misses;
    std::shared_ptr<telemetry::Counter> continuous_runs;
    std::shared_ptr<telemetry::Counter> slow_queries;
    std::shared_ptr<telemetry::Histogram> parse_micros;
    std::shared_ptr<telemetry::Histogram> exec_micros;
  };

  const sql::TableResolver* resolver_;
  /// Private registry when none was injected.
  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  QueryMetrics metrics_;
  std::atomic<const Clock*> span_clock_;
  std::atomic<int64_t> slow_query_micros_{0};

  mutable std::mutex mu_;
  bool cache_enabled_ = true;
  std::map<std::string, std::shared_ptr<sql::SelectStmt>> cache_;
  std::map<int64_t, ContinuousQuery> continuous_;
  int64_t next_id_ = 1;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_QUERY_MANAGER_H_

#ifndef GSN_CONTAINER_QUERY_MANAGER_H_
#define GSN_CONTAINER_QUERY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "gsn/sql/executor.h"
#include "gsn/util/result.h"

namespace gsn::container {

/// The query manager of Fig 2: the query processor (parse, plan,
/// execute — with a prepared-statement cache standing in for MySQL's
/// query compilation cache) plus the query repository managing
/// registered continuous queries (subscriptions re-evaluated as new
/// stream elements arrive).
///
/// Thread-safe.
class QueryManager {
 public:
  using ContinuousCallback =
      std::function<void(const std::string& sensor_name, const Relation&)>;

  /// `resolver` supplies the container's sensor output tables.
  explicit QueryManager(const sql::TableResolver* resolver);

  QueryManager(const QueryManager&) = delete;
  QueryManager& operator=(const QueryManager&) = delete;

  /// One-shot query. Parse results are cached by query text (see
  /// set_cache_enabled); execution always runs fresh against current
  /// table snapshots.
  Result<Relation> Execute(const std::string& sql_text);

  /// The optimized execution pipeline for a query, as text (EXPLAIN).
  Result<std::string> Explain(const std::string& sql_text);

  /// Registers a continuous query: re-executed whenever a sensor named
  /// in its FROM clause produces output, with the result handed to
  /// `callback`. Returns the registration id.
  Result<int64_t> RegisterContinuous(const std::string& sql_text,
                                     ContinuousCallback callback);
  Status Unregister(int64_t query_id);
  size_t NumContinuous() const;

  /// Notifies the repository that `sensor_name` emitted a new element;
  /// re-runs affected continuous queries. Returns how many ran.
  int OnNewElement(const std::string& sensor_name);

  /// Prepared-statement cache switch (ablation: the paper attributes
  /// part of Fig 4's latency to "the cost of query compiling").
  void set_cache_enabled(bool enabled);
  bool cache_enabled() const;

  /// Collects base table names referenced anywhere in a statement
  /// (FROM items, joins, subqueries, set-op branches). Used by the
  /// repository for change tracking and by access control.
  static void CollectTables(const sql::SelectStmt& stmt,
                            std::set<std::string>* out);

  struct Stats {
    int64_t executed = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t continuous_runs = 0;
    /// Cumulative wall time split by phase, microseconds.
    int64_t parse_micros = 0;
    int64_t exec_micros = 0;
  };
  Stats stats() const;

 private:
  struct ContinuousQuery {
    std::string sql_text;
    std::shared_ptr<sql::SelectStmt> stmt;
    std::set<std::string> tables;  // lowercased base tables referenced
    ContinuousCallback callback;
  };

  /// Parses (or fetches from cache) the statement for `sql_text`.
  Result<std::shared_ptr<sql::SelectStmt>> Prepare(
      const std::string& sql_text);

  const sql::TableResolver* resolver_;

  mutable std::mutex mu_;
  bool cache_enabled_ = true;
  std::map<std::string, std::shared_ptr<sql::SelectStmt>> cache_;
  std::map<int64_t, ContinuousQuery> continuous_;
  int64_t next_id_ = 1;
  Stats stats_;
};

}  // namespace gsn::container

#endif  // GSN_CONTAINER_QUERY_MANAGER_H_

#include "gsn/container/realtime_pump.h"

#include <chrono>

#include "gsn/util/logging.h"

namespace gsn::container {

RealtimePump::RealtimePump(Container* container, Timestamp interval_micros,
                           network::Transport* network)
    : container_(container),
      interval_micros_(interval_micros > 0 ? interval_micros
                                           : 100 * kMicrosPerMilli),
      network_(network) {}

RealtimePump::~RealtimePump() { Stop(); }

void RealtimePump::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load()) return;
  stop_requested_ = false;
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
}

void RealtimePump::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load()) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
}

void RealtimePump::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait_for(lock, std::chrono::microseconds(interval_micros_),
                     [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    if (network_ != nullptr) {
      network_->Pump(container_->clock()->NowMicros());
    }
    const Result<int> produced = container_->Tick();
    if (!produced.ok()) {
      GSN_LOG(kWarn, "pump") << container_->node_id()
                             << ": tick failed: " << produced.status();
    }
    rounds_.fetch_add(1);
  }
}

}  // namespace gsn::container

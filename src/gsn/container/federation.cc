#include "gsn/container/federation.h"

namespace gsn::container {

Federation::Federation(uint64_t seed)
    : clock_(std::make_shared<VirtualClock>()),
      network_(seed ^ 0x5eedf00d),
      seed_(seed) {}

Result<Container*> Federation::AddNode(const std::string& node_id,
                                       const std::string& storage_dir) {
  if (nodes_.count(node_id)) {
    return Status::AlreadyExists("node already exists: " + node_id);
  }
  Container::Options options;
  options.node_id = node_id;
  options.clock = clock_;
  options.seed = seed_ + 31 * ++node_counter_;
  options.storage_dir = storage_dir;
  options.network = &network_;
  options.tracer = &tracer_;
  auto container = std::make_unique<Container>(std::move(options));
  Container* ptr = container.get();
  nodes_[node_id] = std::move(container);
  // Late joiner: ask existing nodes to re-announce so the new replica
  // converges (delivered on the next Step).
  for (auto& [id, node] : nodes_) {
    if (id != node_id) node->AnnounceAll();
  }
  return ptr;
}

Status Federation::RemoveNode(const std::string& node_id) {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) {
    return Status::NotFound("no such node: " + node_id);
  }
  nodes_.erase(it);  // ~Container undeploys sensors and retracts entries
  return Status::OK();
}

Container* Federation::node(const std::string& node_id) const {
  auto it = nodes_.find(node_id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Federation::NodeIds() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

Result<int> Federation::Step(Timestamp step) {
  clock_->Advance(step);
  const Timestamp now = clock_->NowMicros();
  network_.Pump(now);
  int produced = 0;
  for (auto& [id, node] : nodes_) {
    GSN_ASSIGN_OR_RETURN(int n, node->Tick());
    produced += n;
  }
  // Deliver messages sent during the tick that are due immediately
  // (zero-latency links in tests).
  network_.Pump(now);
  return produced;
}

Result<int> Federation::RunFor(Timestamp duration, Timestamp step) {
  if (step <= 0) return Status::InvalidArgument("step must be > 0");
  int produced = 0;
  for (Timestamp elapsed = 0; elapsed < duration; elapsed += step) {
    GSN_ASSIGN_OR_RETURN(int n, Step(step));
    produced += n;
  }
  return produced;
}

}  // namespace gsn::container

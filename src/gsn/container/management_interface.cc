#include "gsn/container/management_interface.h"

#include <cstdlib>
#include <sstream>

#include "gsn/util/export.h"
#include "gsn/util/strings.h"

namespace gsn::container {

namespace {
constexpr char kHelp[] =
    "commands:\n"
    "  list                      deployed virtual sensors\n"
    "  status <sensor>           pipeline counters and storage usage\n"
    "  deploy <descriptor-xml>   deploy a virtual sensor\n"
    "  undeploy <sensor>\n"
    "  query <sql>               one-shot SQL over sensor tables\n"
    "  explain <sql>             show the optimized execution pipeline\n"
    "  query-json <sql>          result as JSON\n"
    "  query-csv <sql>           result as CSV\n"
    "  plot <column> <sql>       ASCII chart of a numeric column\n"
    "  topology                  data-flow graph as Graphviz DOT\n"
    "  discover [k=v ...]        directory lookup by predicates\n"
    "  wrappers                  registered wrapper types\n"
    "  describe <sensor>         descriptor XML of a deployed sensor\n"
    "  metrics                   telemetry in Prometheus text format\n"
    "  slowlog [micros]          show/set the slow-query log threshold;\n"
    "                            no args also prints retained entries\n"
    "  trace [rate]              show/set the trace sample rate (0..1)\n"
    "  traces [trace-id]         recorded spans, optionally one trace\n"
    "  help\n";
}  // namespace

std::string ManagementInterface::Execute(const std::string& command_line) {
  const std::string line = StrTrim(command_line);
  if (line.empty()) return "";
  const size_t space = line.find_first_of(" \t\n");
  const std::string cmd = StrToLower(line.substr(0, space));
  const std::string rest =
      space == std::string::npos ? "" : StrTrim(line.substr(space + 1));

  if (cmd == "help") return kHelp;
  if (cmd == "list") return CmdList();
  if (cmd == "status") return CmdStatus(rest);
  if (cmd == "deploy") return CmdDeploy(rest);
  if (cmd == "undeploy") return CmdUndeploy(rest);
  if (cmd == "query") return CmdQuery(rest);
  if (cmd == "query-json" || cmd == "query-csv") {
    if (rest.empty()) return "ERROR: " + cmd + " requires SQL";
    Result<Relation> result = container_->Query(rest, api_key_);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return cmd == "query-json" ? RelationToJson(*result) + "\n"
                               : RelationToCsv(*result);
  }
  if (cmd == "plot") {
    const size_t sep = rest.find_first_of(" \t");
    if (sep == std::string::npos) {
      return "ERROR: plot requires a column name and SQL";
    }
    const std::string column = rest.substr(0, sep);
    Result<Relation> result =
        container_->Query(StrTrim(rest.substr(sep + 1)), api_key_);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    Result<std::string> chart = AsciiPlot(*result, column);
    return chart.ok() ? *chart : "ERROR: " + chart.status().ToString();
  }
  if (cmd == "topology") {
    std::vector<GraphEdge> edges;
    for (const Container::TopologyEdge& e : container_->Topology()) {
      edges.push_back(GraphEdge{e.from, e.to, e.label});
    }
    return EdgesToDot(container_->node_id(), edges);
  }
  if (cmd == "explain") {
    if (rest.empty()) return "ERROR: explain requires SQL";
    // "explain analyze <sql>" executes with instrumentation and prints
    // actual per-operator rows/timings.
    const size_t kw = rest.find_first_of(" \t");
    if (kw != std::string::npos &&
        StrToLower(rest.substr(0, kw)) == "analyze") {
      Result<std::string> plan = container_->query_manager().ExplainAnalyze(
          StrTrim(rest.substr(kw + 1)));
      return plan.ok() ? *plan : "ERROR: " + plan.status().ToString();
    }
    Result<std::string> plan = container_->query_manager().Explain(rest);
    return plan.ok() ? *plan : "ERROR: " + plan.status().ToString();
  }
  if (cmd == "discover") return CmdDiscover(rest);
  if (cmd == "wrappers") return CmdWrappers();
  if (cmd == "describe") return CmdDescribe(rest);
  if (cmd == "metrics") return CmdMetrics();
  if (cmd == "slowlog") return CmdSlowlog(rest);
  if (cmd == "trace") return CmdTrace(rest);
  if (cmd == "traces") return CmdTraces(rest);
  return "ERROR: unknown command '" + cmd + "' (try: help)";
}

std::string ManagementInterface::CmdList() const {
  const std::vector<std::string> sensors = container_->ListSensors();
  if (sensors.empty()) return "(no virtual sensors deployed)\n";
  std::string out;
  for (const std::string& name : sensors) out += name + "\n";
  return out;
}

std::string ManagementInterface::CmdStatus(const std::string& sensor) const {
  Result<Container::SensorStatus> status =
      container_->GetSensorStatus(sensor);
  if (!status.ok()) return "ERROR: " + status.status().ToString();
  std::ostringstream os;
  os << "sensor:             " << status->name << "\n"
     << "pool size:          " << status->pool_size << "\n"
     << "triggers:           " << status->stats.triggers << "\n"
     << "elements produced:  " << status->stats.produced << "\n"
     << "rate limited:       " << status->stats.rate_limited << "\n"
     << "pipeline errors:    " << status->stats.errors << "\n"
     << "stored rows:        " << status->stored_rows << "\n"
     << "stored bytes:       " << status->stored_bytes << "\n"
     << "remote subscribers: " << status->remote_subscribers << "\n";
  if (status->stats.triggers > 0) {
    os << "mean processing us: "
       << status->stats.total_processing_micros / status->stats.triggers
       << "\n";
  }
  return os.str();
}

std::string ManagementInterface::CmdDeploy(const std::string& xml) {
  if (xml.empty()) return "ERROR: deploy requires descriptor XML";
  Result<vsensor::VirtualSensor*> sensor = container_->Deploy(xml, api_key_);
  if (!sensor.ok()) return "ERROR: " + sensor.status().ToString();
  return "deployed '" + (*sensor)->name() + "'\n";
}

std::string ManagementInterface::CmdUndeploy(const std::string& sensor) {
  if (sensor.empty()) return "ERROR: undeploy requires a sensor name";
  const Status s = container_->Undeploy(sensor, api_key_);
  if (!s.ok()) return "ERROR: " + s.ToString();
  return "undeployed '" + sensor + "'\n";
}

std::string ManagementInterface::CmdQuery(const std::string& sql) {
  if (sql.empty()) return "ERROR: query requires SQL";
  Result<Relation> result = container_->Query(sql, api_key_);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return result->ToString(50);
}

std::string ManagementInterface::CmdDiscover(const std::string& args) const {
  std::map<std::string, std::string> query;
  for (const std::string& piece : StrSplit(args, ' ')) {
    const std::string trimmed = StrTrim(piece);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return "ERROR: discover arguments must be key=value";
    }
    query[trimmed.substr(0, eq)] = trimmed.substr(eq + 1);
  }
  const std::vector<network::DirectoryEntry> entries =
      container_->Discover(query);
  if (entries.empty()) return "(no matching virtual sensors)\n";
  std::string out;
  for (const network::DirectoryEntry& entry : entries) {
    out += entry.sensor_name + " @ " + entry.node_id + " {";
    bool first = true;
    for (const auto& [key, val] : entry.predicates) {
      if (!first) out += ", ";
      first = false;
      out += key + "=" + val;
    }
    out += "} (" + entry.output_schema.ToString() + ")\n";
  }
  return out;
}

std::string ManagementInterface::CmdWrappers() const {
  std::string out;
  for (const std::string& name : container_->wrapper_registry().Names()) {
    out += name + "\n";
  }
  return out;
}

std::string ManagementInterface::CmdDescribe(const std::string& sensor) const {
  vsensor::VirtualSensor* vs = container_->FindSensor(sensor);
  if (vs == nullptr) return "ERROR: NotFound: no such sensor: " + sensor;
  return vs->spec().ToXml();
}

std::string ManagementInterface::CmdMetrics() const {
  std::string out = container_->metrics()->RenderPrometheus();
  if (container_->metrics() != telemetry::MetricRegistry::Default()) {
    out += telemetry::MetricRegistry::Default()->RenderPrometheus();
  }
  return out;
}

std::string ManagementInterface::CmdSlowlog(const std::string& args) {
  if (args.empty()) {
    const int64_t threshold = container_->query_manager().slow_query_micros();
    if (threshold <= 0) return "slow-query log disabled\n";
    std::string out =
        "slow-query threshold: " + std::to_string(threshold) + " micros\n";
    const std::vector<QueryManager::SlowQueryEntry> entries =
        container_->query_manager().slow_log();
    if (entries.empty()) {
      out += "(no slow queries recorded)\n";
      return out;
    }
    for (const QueryManager::SlowQueryEntry& entry : entries) {
      out += "-- " + std::to_string(entry.elapsed_micros) + "us from " +
             entry.source + ": " + entry.sql_text + "\n";
      if (!entry.plan.empty()) out += entry.plan;
    }
    return out;
  }
  char* end = nullptr;
  const long long threshold = std::strtoll(args.c_str(), &end, 10);
  if (end == args.c_str() || *end != '\0' || threshold < 0) {
    return "ERROR: slowlog takes a non-negative microsecond threshold";
  }
  container_->query_manager().set_slow_query_micros(threshold);
  return threshold == 0 ? "slow-query log disabled\n"
                        : "slow-query threshold set to " +
                              std::to_string(threshold) + " micros\n";
}

std::string ManagementInterface::CmdTrace(const std::string& args) {
  telemetry::Tracer* tracer = container_->tracer();
  if (args.empty()) {
    std::ostringstream os;
    os << "trace sample rate: " << tracer->sample_rate() << "\n"
       << "spans recorded:    " << tracer->store().size() << " (dropped "
       << tracer->store().dropped() << ")\n";
    return os.str();
  }
  char* end = nullptr;
  const double rate = std::strtod(args.c_str(), &end);
  if (end == args.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return "ERROR: trace takes a sample rate between 0 and 1";
  }
  tracer->set_sample_rate(rate);
  std::ostringstream os;
  os << "trace sample rate set to " << rate << "\n";
  return os.str();
}

std::string ManagementInterface::CmdTraces(const std::string& args) const {
  std::string id = args;
  if (!id.empty()) {
    uint64_t hi = 0;
    uint64_t lo = 0;
    if (!telemetry::ParseTraceIdHex(id, &hi, &lo)) {
      return "ERROR: traces takes a 32-char hex trace id";
    }
  }
  return telemetry::RenderTracesJson(container_->tracer()->store(), id) +
         "\n";
}

}  // namespace gsn::container

#include "gsn/container/management_interface.h"

#include <cstdlib>
#include <sstream>

#include "gsn/network/chaos_transport.h"
#include "gsn/network/simulator.h"
#include "gsn/util/export.h"
#include "gsn/util/strings.h"

namespace gsn::container {

ManagementInterface::ManagementInterface(Container* container)
    : container_(container) {
  auto add = [this](const char* name, const char* args_help, const char* help,
                    auto handler) {
    commands_.push_back(Command{name, args_help, help, std::move(handler)});
  };
  add("list", "", "deployed virtual sensors",
      [this](const std::string&) { return CmdList(); });
  add("status", "[sensor]",
      "container-wide snapshot (no args) or one sensor's counters",
      [this](const std::string& a) { return CmdStatus(a); });
  add("deploy", "<descriptor-xml>", "deploy a virtual sensor",
      [this](const std::string& a) { return CmdDeploy(a); });
  add("undeploy", "<sensor>", "undeploy a virtual sensor",
      [this](const std::string& a) { return CmdUndeploy(a); });
  add("query", "<sql>", "one-shot SQL over sensor tables",
      [this](const std::string& a) { return CmdQuery(a); });
  add("explain", "[analyze] <sql>", "show the optimized execution pipeline",
      [this](const std::string& a) { return CmdExplain(a); });
  add("query-json", "<sql>", "result as JSON", [this](const std::string& a) {
    if (a.empty()) return std::string("ERROR: query-json requires SQL");
    Result<Relation> result = container_->Query(a, api_key_);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return RelationToJson(*result) + "\n";
  });
  add("query-csv", "<sql>", "result as CSV", [this](const std::string& a) {
    if (a.empty()) return std::string("ERROR: query-csv requires SQL");
    Result<Relation> result = container_->Query(a, api_key_);
    if (!result.ok()) return "ERROR: " + result.status().ToString();
    return RelationToCsv(*result);
  });
  add("plot", "<column> <sql>", "ASCII chart of a numeric column",
      [this](const std::string& a) { return CmdPlot(a); });
  add("topology", "", "data-flow graph as Graphviz DOT",
      [this](const std::string&) { return CmdTopology(); });
  add("discover", "[k=v ...]", "directory lookup by predicates",
      [this](const std::string& a) { return CmdDiscover(a); });
  add("wrappers", "", "registered wrapper types",
      [this](const std::string&) { return CmdWrappers(); });
  add("describe", "<sensor>", "descriptor XML of a deployed sensor",
      [this](const std::string& a) { return CmdDescribe(a); });
  add("metrics", "", "telemetry in Prometheus text format",
      [this](const std::string&) { return CmdMetrics(); });
  add("slowlog", "[micros]",
      "show/set the slow-query log threshold; no args also prints "
      "retained entries",
      [this](const std::string& a) { return CmdSlowlog(a); });
  add("trace", "[rate]", "show/set the trace sample rate (0..1)",
      [this](const std::string& a) { return CmdTrace(a); });
  add("traces", "[trace-id]", "recorded spans, optionally one trace",
      [this](const std::string& a) { return CmdTraces(a); });
  add("peers", "", "federation peer health: circuit state and last-seen",
      [this](const std::string&) { return CmdPeers(); });
  add("transport", "",
      "transport fabric: implementation, counters, per-connection stats",
      [this](const std::string&) { return CmdTransport(); });
  add("segments", "", "columnar history tier: per-segment stats and totals",
      [this](const std::string&) { return CmdSegments(); });
  add("health", "", "liveness/readiness with not-ready reasons",
      [this](const std::string&) { return CmdHealth(); });
  add("quarantine", "[requeue <id> | clear]",
      "dead-letter store: list poison tuples, requeue one, or clear",
      [this](const std::string& a) { return CmdQuarantine(a); });
  add("checkpoint", "", "compact the manifest and every sensor WAL now",
      [this](const std::string&) { return CmdCheckpoint(); });
  add("drain", "",
      "graceful drain: stop admitting, flush queues, checkpoint, fsync",
      [this](const std::string&) { return CmdDrain(); });
  add("chaos", "<sub> ...",
      "inject faults into the attached transport (simulator: "
      "partition|heal|down|up|loss; chaos transport: status|seed|loss|"
      "dup|reorder|delay|throttle|partition|heal|reset)",
      [this](const std::string& a) { return CmdChaos(a); });
  add("help", "", "this command list",
      [this](const std::string&) { return CmdHelp(); });
}

std::string ManagementInterface::Execute(const std::string& command_line) {
  const std::string line = StrTrim(command_line);
  if (line.empty()) return "";
  const size_t space = line.find_first_of(" \t\n");
  const std::string cmd = StrToLower(line.substr(0, space));
  const std::string rest =
      space == std::string::npos ? "" : StrTrim(line.substr(space + 1));
  for (const Command& command : commands_) {
    if (command.name == cmd) return command.handler(rest);
  }
  return "ERROR: unknown command '" + cmd + "' (try: help)";
}

std::string ManagementInterface::CmdHelp() const {
  // Generated from the registry so the listing can't drift from the
  // implemented commands.
  size_t width = 0;
  for (const Command& command : commands_) {
    const size_t usage = command.name.size() +
                         (command.args_help.empty()
                              ? 0
                              : command.args_help.size() + 1);
    if (usage > width) width = usage;
  }
  std::string out = "commands:\n";
  for (const Command& command : commands_) {
    std::string usage = command.name;
    if (!command.args_help.empty()) usage += " " + command.args_help;
    out += "  " + usage;
    if (!command.help.empty()) {
      out += std::string(width - usage.size() + 2, ' ') + command.help;
    }
    out += "\n";
  }
  return out;
}

std::string ManagementInterface::CmdList() const {
  const std::vector<std::string> sensors = container_->ListSensors();
  if (sensors.empty()) return "(no virtual sensors deployed)\n";
  std::string out;
  for (const std::string& name : sensors) out += name + "\n";
  return out;
}

std::string ManagementInterface::CmdStatus(const std::string& sensor) const {
  if (sensor.empty()) return CmdContainerStatus();
  Result<Container::SensorStatus> status =
      container_->GetSensorStatus(sensor);
  if (!status.ok()) return "ERROR: " + status.status().ToString();
  std::ostringstream os;
  os << "sensor:             " << status->name << "\n"
     << "state:              " << Container::SensorStateName(status->state)
     << "\n"
     << "pool size:          " << status->pool_size << "\n"
     << "triggers:           " << status->stats.triggers << "\n"
     << "elements produced:  " << status->stats.produced << "\n"
     << "rate limited:       " << status->stats.rate_limited << "\n"
     << "pipeline errors:    " << status->stats.errors << "\n"
     << "restarts:           " << status->restart_attempts << "\n"
     << "queue depth:        " << status->queue_depth << "\n"
     << "shed:               " << status->shed << "\n"
     << "stored rows:        " << status->stored_rows << "\n"
     << "stored bytes:       " << status->stored_bytes << "\n"
     << "remote subscribers: " << status->remote_subscribers << "\n";
  if (status->stats.triggers > 0) {
    os << "mean processing us: "
       << status->stats.total_processing_micros / status->stats.triggers
       << "\n";
  }
  return os.str();
}

std::string ManagementInterface::CmdContainerStatus() const {
  const Container::ContainerStatus status = container_->GetStatus();
  const wrappers::SystemSnapshot& t = status.totals;
  std::ostringstream os;
  os << "node:       " << status.node_id << "  (" << status.version << ", "
     << status.compiler << ")\n"
     << "uptime:     " << t.uptime_seconds << "s  rss=" << t.rss_bytes
     << "B  cpu=" << t.cpu_seconds << "s\n"
     << "health:     " << (status.health.ready ? "ready" : "NOT READY")
     << (status.draining ? " (draining)" : "") << "\n";
  for (const std::string& reason : status.health.reasons) {
    os << "  - " << reason << "\n";
  }
  os << "sensors:    " << t.sensors << " (" << t.running << " running, "
     << t.restarting << " restarting, " << t.failed << " failed)\n"
     << "pipeline:   tuples=" << t.tuples_total << "  errors="
     << t.errors_total << "  queue-depth=" << t.queue_depth << "  shed="
     << t.shed_total << "  quarantined=" << t.quarantined << "\n"
     << "scheduling: tick-mean=" << t.tick_mean_ms << "ms  tick-p95="
     << t.tick_p95_ms << "ms  lock-wait-share=" << t.lock_wait_share
     << "  queue-wait-p95=" << t.queue_wait_p95_ms << "ms\n"
     << "federation: peers=" << t.peers << "  open-circuits="
     << t.open_circuits << "  replay-bytes=" << t.replay_bytes << "\n"
     << "storage:    segments=" << t.segments << " (" << t.segment_bytes
     << " bytes)  recovery-records=" << status.recovered_records
     << "  recovery-failures=" << status.recovery_failures << "\n"
     << "telemetry:  " << t.metric_series << " metric series\n";
  for (const Container::SensorStatus& vs : status.sensors) {
    os << "  sensor " << vs.name << "  state="
       << Container::SensorStateName(vs.state) << "  produced="
       << vs.stats.produced << "  queue=" << vs.queue_depth << "  shed="
       << vs.shed << "\n";
  }
  os << "shards:\n";
  for (const Container::ShardStatus& shard : status.shards) {
    os << "  shard-" << shard.index << "  sensors=" << shard.sensors
       << "  ticks=" << shard.ticks_total
       << "  contended=" << shard.lock_contended
       << "  wait=" << shard.lock_wait_micros << "us\n";
  }
  os << "locks:\n";
  for (const Container::LockStats& lock : status.locks) {
    os << "  " << lock.name << "  acquisitions=" << lock.acquisitions
       << "  contended=" << lock.contended << "  wait=" << lock.wait_micros
       << "us\n";
  }
  os << "hot spans:\n";
  for (const telemetry::Profiler::SpanStats& span : status.hot_spans) {
    os << "  " << span.name << "  count=" << span.count << "  total="
       << span.total_micros << "us  max=" << span.max_micros << "us\n";
  }
  return os.str();
}

std::string ManagementInterface::CmdDeploy(const std::string& xml) {
  if (xml.empty()) return "ERROR: deploy requires descriptor XML";
  Result<vsensor::VirtualSensor*> sensor = container_->Deploy(xml, api_key_);
  if (!sensor.ok()) return "ERROR: " + sensor.status().ToString();
  return "deployed '" + (*sensor)->name() + "'\n";
}

std::string ManagementInterface::CmdUndeploy(const std::string& sensor) {
  if (sensor.empty()) return "ERROR: undeploy requires a sensor name";
  const Status s = container_->Undeploy(sensor, api_key_);
  if (!s.ok()) return "ERROR: " + s.ToString();
  return "undeployed '" + sensor + "'\n";
}

std::string ManagementInterface::CmdQuery(const std::string& sql) {
  if (sql.empty()) return "ERROR: query requires SQL";
  Result<Relation> result = container_->Query(sql, api_key_);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  return result->ToString(50);
}

std::string ManagementInterface::CmdExplain(const std::string& args) {
  if (args.empty()) return "ERROR: explain requires SQL";
  // "explain analyze <sql>" executes with instrumentation and prints
  // actual per-operator rows/timings.
  const size_t kw = args.find_first_of(" \t");
  if (kw != std::string::npos && StrToLower(args.substr(0, kw)) == "analyze") {
    Result<std::string> plan = container_->query_manager().ExplainAnalyze(
        StrTrim(args.substr(kw + 1)));
    return plan.ok() ? *plan : "ERROR: " + plan.status().ToString();
  }
  Result<std::string> plan = container_->query_manager().Explain(args);
  return plan.ok() ? *plan : "ERROR: " + plan.status().ToString();
}

std::string ManagementInterface::CmdPlot(const std::string& args) {
  const size_t sep = args.find_first_of(" \t");
  if (sep == std::string::npos) {
    return "ERROR: plot requires a column name and SQL";
  }
  const std::string column = args.substr(0, sep);
  Result<Relation> result =
      container_->Query(StrTrim(args.substr(sep + 1)), api_key_);
  if (!result.ok()) return "ERROR: " + result.status().ToString();
  Result<std::string> chart = AsciiPlot(*result, column);
  return chart.ok() ? *chart : "ERROR: " + chart.status().ToString();
}

std::string ManagementInterface::CmdTopology() const {
  std::vector<GraphEdge> edges;
  for (const Container::TopologyEdge& e : container_->Topology()) {
    edges.push_back(GraphEdge{e.from, e.to, e.label});
  }
  return EdgesToDot(container_->node_id(), edges);
}

std::string ManagementInterface::CmdDiscover(const std::string& args) const {
  std::map<std::string, std::string> query;
  for (const std::string& piece : StrSplit(args, ' ')) {
    const std::string trimmed = StrTrim(piece);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return "ERROR: discover arguments must be key=value";
    }
    query[trimmed.substr(0, eq)] = trimmed.substr(eq + 1);
  }
  const std::vector<network::DirectoryEntry> entries =
      container_->Discover(query);
  if (entries.empty()) return "(no matching virtual sensors)\n";
  std::string out;
  for (const network::DirectoryEntry& entry : entries) {
    out += entry.sensor_name + " @ " + entry.node_id + " {";
    bool first = true;
    for (const auto& [key, val] : entry.predicates) {
      if (!first) out += ", ";
      first = false;
      out += key + "=" + val;
    }
    out += "} (" + entry.output_schema.ToString() + ")\n";
  }
  return out;
}

std::string ManagementInterface::CmdWrappers() const {
  std::string out;
  for (const std::string& name : container_->wrapper_registry().Names()) {
    out += name + "\n";
  }
  return out;
}

std::string ManagementInterface::CmdDescribe(const std::string& sensor) const {
  vsensor::VirtualSensor* vs = container_->FindSensor(sensor);
  if (vs == nullptr) return "ERROR: NotFound: no such sensor: " + sensor;
  return vs->spec().ToXml();
}

std::string ManagementInterface::CmdMetrics() const {
  std::string out = container_->metrics()->RenderPrometheus();
  if (container_->metrics() != telemetry::MetricRegistry::Default()) {
    out += telemetry::MetricRegistry::Default()->RenderPrometheus();
  }
  return out;
}

std::string ManagementInterface::CmdSlowlog(const std::string& args) {
  if (args.empty()) {
    const int64_t threshold = container_->query_manager().slow_query_micros();
    if (threshold <= 0) return "slow-query log disabled\n";
    std::string out =
        "slow-query threshold: " + std::to_string(threshold) + " micros\n";
    const std::vector<QueryManager::SlowQueryEntry> entries =
        container_->query_manager().slow_log();
    if (entries.empty()) {
      out += "(no slow queries recorded)\n";
      return out;
    }
    for (const QueryManager::SlowQueryEntry& entry : entries) {
      out += "-- " + std::to_string(entry.elapsed_micros) + "us from " +
             entry.source + ": " + entry.sql_text + "\n";
      if (!entry.plan.empty()) out += entry.plan;
    }
    return out;
  }
  char* end = nullptr;
  const long long threshold = std::strtoll(args.c_str(), &end, 10);
  if (end == args.c_str() || *end != '\0' || threshold < 0) {
    return "ERROR: slowlog takes a non-negative microsecond threshold";
  }
  container_->query_manager().set_slow_query_micros(threshold);
  return threshold == 0 ? "slow-query log disabled\n"
                        : "slow-query threshold set to " +
                              std::to_string(threshold) + " micros\n";
}

std::string ManagementInterface::CmdTrace(const std::string& args) {
  telemetry::Tracer* tracer = container_->tracer();
  if (args.empty()) {
    std::ostringstream os;
    os << "trace sample rate: " << tracer->sample_rate() << "\n"
       << "spans recorded:    " << tracer->store().size() << " (dropped "
       << tracer->store().dropped() << ")\n";
    return os.str();
  }
  char* end = nullptr;
  const double rate = std::strtod(args.c_str(), &end);
  if (end == args.c_str() || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return "ERROR: trace takes a sample rate between 0 and 1";
  }
  tracer->set_sample_rate(rate);
  std::ostringstream os;
  os << "trace sample rate set to " << rate << "\n";
  return os.str();
}

std::string ManagementInterface::CmdTraces(const std::string& args) const {
  std::string id = args;
  if (!id.empty()) {
    uint64_t hi = 0;
    uint64_t lo = 0;
    if (!telemetry::ParseTraceIdHex(id, &hi, &lo)) {
      return "ERROR: traces takes a 32-char hex trace id";
    }
  }
  return telemetry::RenderTracesJson(container_->tracer()->store(), id) +
         "\n";
}

std::string ManagementInterface::CmdPeers() const {
  const std::vector<Container::PeerStatus> peers = container_->PeerStatuses();
  if (peers.empty()) return "(no federation peers heard from)\n";
  std::string out;
  for (const Container::PeerStatus& peer : peers) {
    out += peer.node_id + "  circuit=" + peer.circuit +
           "  last-seen=" + std::to_string(peer.last_seen) + "us" +
           "  opened=" + std::to_string(peer.circuit_opened_total) + "\n";
  }
  return out;
}

std::string ManagementInterface::CmdTransport() const {
  network::Transport* transport = container_->network();
  if (transport == nullptr) {
    return "(standalone container: no transport attached)\n";
  }
  std::string out = "transport=" + transport->transport_name() + "\n";
  const std::vector<network::ConnectionStats> connections =
      transport->Connections();
  if (connections.empty()) {
    out += "(no live connections)\n";
    return out;
  }
  for (const network::ConnectionStats& c : connections) {
    out += c.peer + "  kind=" + c.kind + "  state=" + c.state +
           "  queued=" + std::to_string(c.queued_bytes) + "B" +
           "  requests=" + std::to_string(c.requests_served) +
           "  frames=" + std::to_string(c.frames_in) + "/" +
           std::to_string(c.frames_out) +
           "  idle=" + std::to_string(c.idle_micros) + "us\n";
  }
  return out;
}

std::string ManagementInterface::CmdSegments() const {
  const storage::columnar::SegmentCatalog* catalog =
      container_->segment_catalog();
  if (catalog == nullptr) {
    return "(columnar history disabled: no durability root)\n";
  }
  const std::vector<storage::columnar::SegmentMeta> segments = catalog->List();
  std::string out = std::to_string(segments.size()) + " segment(s), " +
                    std::to_string(catalog->total_bytes()) + " bytes under " +
                    catalog->dir() + "\n";
  for (const storage::columnar::SegmentMeta& meta : segments) {
    out += meta.table + "/seg-" + std::to_string(meta.id) + "  rows=" +
           std::to_string(meta.row_count) + "  chunks=" +
           std::to_string(meta.chunk_count) + "  bytes=" +
           std::to_string(meta.bytes) + "  timed=[" +
           std::to_string(meta.min_timed) + "," +
           std::to_string(meta.max_timed) + "]\n";
  }
  return out;
}

std::string ManagementInterface::CmdHealth() const {
  const Container::Health health = container_->GetHealth();
  std::string out = std::string("live:  ") + (health.live ? "yes" : "no") +
                    "\nready: " + (health.ready ? "yes" : "no") + "\n";
  for (const std::string& reason : health.reasons) {
    out += "  - " + reason + "\n";
  }
  return out;
}

std::string ManagementInterface::CmdQuarantine(const std::string& args) {
  const std::string trimmed = StrTrim(args);
  if (trimmed.empty()) {
    const std::vector<QuarantineStore::Entry> entries =
        container_->quarantine().List();
    if (entries.empty()) return "(quarantine empty)\n";
    std::string out;
    for (const QuarantineStore::Entry& entry : entries) {
      out += "#" + std::to_string(entry.id) + "  " + entry.sensor + "/" +
             entry.stream + "/" + entry.source_alias + "  at=" +
             std::to_string(entry.quarantined_at) + "us  " + entry.error +
             "\n";
    }
    return out;
  }
  if (StrToLower(trimmed) == "clear") {
    return "cleared " + std::to_string(container_->quarantine().Clear()) +
           " tuple(s)\n";
  }
  const size_t space = trimmed.find_first_of(" \t");
  const std::string sub = StrToLower(trimmed.substr(0, space));
  if (sub == "requeue" && space != std::string::npos) {
    Result<int64_t> id = ParseInt64(StrTrim(trimmed.substr(space + 1)));
    if (!id.ok() || *id < 0) return "ERROR: requeue takes an entry id";
    const Status status =
        container_->RequeueQuarantined(static_cast<uint64_t>(*id));
    if (!status.ok()) return "ERROR: " + status.ToString();
    return "requeued #" + std::to_string(*id) + "\n";
  }
  return "ERROR: usage: quarantine [requeue <id> | clear]";
}

std::string ManagementInterface::CmdCheckpoint() {
  const Status status = container_->Checkpoint();
  if (!status.ok()) return "ERROR: " + status.ToString();
  return "checkpointed\n";
}

std::string ManagementInterface::CmdDrain() {
  const Status status = container_->Shutdown();
  if (!status.ok()) return "ERROR: " + status.ToString();
  return "drained\n";
}

std::string ManagementInterface::CmdChaos(const std::string& args) {
  // One chaos vocabulary for every transport (docs/CHAOS.md): the
  // simulator keeps its historical node-pair grammar, ChaosTransport
  // answers the per-peer rule grammar, anything else explains itself.
  Result<std::string> result =
      network::ExecuteChaosCommand(container_->network(), args);
  if (!result.ok()) return "ERROR: " + result.status().message();
  return *result;
}

}  // namespace gsn::container

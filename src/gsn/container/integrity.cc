#include "gsn/container/integrity.h"

#include "gsn/types/codec.h"
#include "gsn/util/hash.h"

namespace gsn::container {

std::string IntegrityService::Sign(const std::string& sensor_name,
                                   const StreamElement& element) const {
  std::string message;
  Codec::EncodeString(sensor_name, &message);
  Codec::EncodeElement(element, &message);
  return HmacSha256Hex(hmac_key_, message);
}

bool IntegrityService::Verify(const std::string& sensor_name,
                              const StreamElement& element,
                              const std::string& signature) const {
  const std::string expected = Sign(sensor_name, element);
  if (expected.size() != signature.size()) return false;
  // Constant-time comparison: never early-exit on a mismatching byte.
  unsigned char diff = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    diff |= static_cast<unsigned char>(expected[i] ^ signature[i]);
  }
  return diff == 0;
}

}  // namespace gsn::container

#include "gsn/vsensor/descriptor_parser.h"

#include <fstream>
#include <sstream>

#include "gsn/xml/xml.h"

namespace gsn::vsensor {

namespace {

Result<std::map<std::string, std::string>> ParsePredicates(
    const xml::Element& parent) {
  std::map<std::string, std::string> out;
  for (const xml::Element* p : parent.Children("predicate")) {
    const std::string key = p->Attr("key");
    if (key.empty()) {
      return Status::ParseError("<predicate> without key attribute");
    }
    if (!out.emplace(key, p->Attr("val")).second) {
      return Status::ParseError("duplicate predicate key '" + key + "'");
    }
  }
  return out;
}

Result<StreamSourceSpec> ParseStreamSource(const xml::Element& e) {
  StreamSourceSpec source;
  source.alias = e.Attr("alias");
  if (source.alias.empty()) {
    return Status::ParseError("<stream-source> requires alias attribute");
  }
  if (e.HasAttr("sampling-rate")) {
    GSN_ASSIGN_OR_RETURN(source.sampling_rate,
                         ParseDouble(e.Attr("sampling-rate")));
  }
  if (e.HasAttr("storage-size")) {
    GSN_ASSIGN_OR_RETURN(source.window, ParseWindowSpec(e.Attr("storage-size")));
  } else {
    // Default window: the latest element only.
    source.window.kind = WindowSpec::Kind::kCount;
    source.window.count = 1;
  }
  if (e.HasAttr("disconnect-buffer")) {
    GSN_ASSIGN_OR_RETURN(source.disconnect_buffer,
                         ParseInt64(e.Attr("disconnect-buffer")));
  }
  if (e.HasAttr("fill-missing")) {
    const std::string mode = StrToLower(StrTrim(e.Attr("fill-missing")));
    if (mode == "last") {
      source.fill_missing_with_last = true;
    } else if (mode != "none") {
      return Status::ParseError("unknown fill-missing mode '" + mode +
                                "' (expected: last, none)");
    }
  }
  if (e.HasAttr("queue-capacity")) {
    GSN_ASSIGN_OR_RETURN(source.queue_capacity,
                         ParseInt64(e.Attr("queue-capacity")));
  }
  if (e.HasAttr("shed-policy")) {
    GSN_RETURN_IF_ERROR(ParseShedPolicy(e.Attr("shed-policy")).status());
    source.shed_policy = StrToLower(StrTrim(e.Attr("shed-policy")));
  }
  const xml::Element* address = e.Child("address");
  if (address == nullptr) {
    return Status::ParseError("stream source '" + source.alias +
                              "' has no <address>");
  }
  source.address.wrapper = address->Attr("wrapper");
  if (source.address.wrapper.empty()) {
    return Status::ParseError("<address> of '" + source.alias +
                              "' has no wrapper attribute");
  }
  GSN_ASSIGN_OR_RETURN(source.address.predicates, ParsePredicates(*address));
  if (const xml::Element* q = e.Child("query"); q != nullptr) {
    source.query = q->text();
  }
  return source;
}

Result<InputStreamSpec> ParseInputStream(const xml::Element& e) {
  InputStreamSpec stream;
  stream.name = e.Attr("name");
  if (stream.name.empty()) {
    return Status::ParseError("<input-stream> requires name attribute");
  }
  if (e.HasAttr("rate")) {
    GSN_ASSIGN_OR_RETURN(stream.max_rate, ParseDouble(e.Attr("rate")));
  }
  for (const xml::Element* src : e.Children("stream-source")) {
    GSN_ASSIGN_OR_RETURN(StreamSourceSpec source, ParseStreamSource(*src));
    stream.sources.push_back(std::move(source));
  }
  // The input stream's own <query> is its only direct child <query>
  // (sources carry theirs nested inside <stream-source>).
  if (const xml::Element* q = e.Child("query"); q != nullptr) {
    stream.query = q->text();
  }
  return stream;
}

}  // namespace

Result<VirtualSensorSpec> ParseDescriptor(std::string_view xml_text) {
  GSN_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  const xml::Element* root = doc.root();
  if (root->name() != "virtual-sensor") {
    return Status::ParseError("descriptor root must be <virtual-sensor>, got <" +
                              root->name() + ">");
  }

  VirtualSensorSpec spec;
  spec.name = root->Attr("name");

  if (const xml::Element* meta = root->Child("metadata"); meta != nullptr) {
    GSN_ASSIGN_OR_RETURN(spec.metadata, ParsePredicates(*meta));
  }

  if (const xml::Element* lc = root->Child("life-cycle"); lc != nullptr) {
    if (lc->HasAttr("pool-size")) {
      GSN_ASSIGN_OR_RETURN(int64_t pool, ParseInt64(lc->Attr("pool-size")));
      spec.life_cycle.pool_size = static_cast<int>(pool);
    }
    if (lc->HasAttr("lifetime")) {
      GSN_ASSIGN_OR_RETURN(spec.life_cycle.lifetime_micros,
                           ParseDurationMicros(lc->Attr("lifetime")));
    }
  }

  const xml::Element* os = root->Child("output-structure");
  if (os == nullptr) {
    return Status::ParseError("descriptor has no <output-structure>");
  }
  for (const xml::Element* f : os->Children("field")) {
    const std::string field_name = f->Attr("name");
    if (field_name.empty()) {
      return Status::ParseError("<field> without name attribute");
    }
    GSN_ASSIGN_OR_RETURN(DataType type, ParseDataType(f->Attr("type")));
    if (spec.output_structure.Contains(field_name)) {
      return Status::ParseError("duplicate output field '" + field_name + "'");
    }
    spec.output_structure.AddField(StrToLower(field_name), type);
  }

  if (const xml::Element* st = root->Child("storage"); st != nullptr) {
    if (st->HasAttr("permanent-storage")) {
      GSN_ASSIGN_OR_RETURN(spec.storage.permanent,
                           ParseBool(st->Attr("permanent-storage")));
    }
    if (st->HasAttr("size")) {
      GSN_ASSIGN_OR_RETURN(spec.storage.history,
                           ParseWindowSpec(st->Attr("size")));
    }
  }
  if (spec.storage.history.duration_micros == 0 &&
      spec.storage.history.count == 0) {
    // Default output retention: 10 minutes of history.
    spec.storage.history.kind = WindowSpec::Kind::kTime;
    spec.storage.history.duration_micros = 10 * kMicrosPerMinute;
  }

  for (const xml::Element* is : root->Children("input-stream")) {
    GSN_ASSIGN_OR_RETURN(InputStreamSpec stream, ParseInputStream(*is));
    spec.input_streams.push_back(std::move(stream));
  }

  GSN_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Result<VirtualSensorSpec> ParseDescriptorFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open descriptor file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseDescriptor(ss.str());
}

}  // namespace gsn::vsensor

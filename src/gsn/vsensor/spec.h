#ifndef GSN_VSENSOR_SPEC_H_
#define GSN_VSENSOR_SPEC_H_

#include <map>
#include <string>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/strings.h"

namespace gsn::vsensor {

/// `<address wrapper="...">` with its `<predicate>` children: selects
/// and parameterizes the wrapper for one stream source. For
/// wrapper="remote" the predicates are the logical address resolved
/// against the peer-to-peer directory (paper §2: "thus logical
/// addressing is possible").
struct AddressSpec {
  std::string wrapper;
  std::map<std::string, std::string> predicates;
};

/// What the bounded admission queue does with load it cannot hold
/// (paper §3 lists overload avoidance among the stream bounds; this is
/// the container-side half of that promise).
enum class ShedPolicy {
  kDropOldest,  // evict the queue head to make room (keep fresh data)
  kDropNewest,  // discard the incoming element (keep history)
  kBlock,       // stop polling the wrapper until the queue drains
};

/// Parses a descriptor shed-policy attribute ("drop-oldest",
/// "drop-newest", "block").
Result<ShedPolicy> ParseShedPolicy(const std::string& name);
const char* ShedPolicyName(ShedPolicy policy);

/// `<stream-source>`: one input data source of an input stream.
struct StreamSourceSpec {
  std::string alias;            // SQL-visible name of the temp relation
  double sampling_rate = 1.0;   // admit each element with this probability
  WindowSpec window;            // storage-size: count- or time-based window
  int64_t disconnect_buffer = 0;  // elements buffered while disconnected
  /// Stream-quality repair for missing values (paper §4: the input
  /// stream manager handles "missing values"): when true, NULLs in an
  /// admitted element are replaced by the last non-NULL value seen in
  /// the same column (descriptor attribute fill-missing="last").
  bool fill_missing_with_last = false;
  /// Admission-queue bound between the wrapper and the processing
  /// pipeline; 0 = inherit the container default (descriptor attribute
  /// queue-capacity).
  int64_t queue_capacity = 0;
  /// Shed policy when the admission queue is full; empty = inherit the
  /// container default (descriptor attribute shed-policy).
  std::string shed_policy;
  AddressSpec address;
  /// SQL over the reserved relation WRAPPER (the source's window).
  std::string query = "select * from wrapper";
};

/// `<input-stream>`: a named group of sources plus the SQL combining
/// them into the virtual sensor's output.
struct InputStreamSpec {
  std::string name;
  /// Maximum output elements per second produced by this stream; 0 =
  /// unbounded (paper §3: "bounding the rate of a data stream in order
  /// to avoid overloads").
  double max_rate = 0.0;
  std::vector<StreamSourceSpec> sources;
  /// SQL over the source aliases; each result row becomes one output
  /// stream element.
  std::string query;
};

/// `<life-cycle>`: runtime resource envelope.
struct LifeCycleSpec {
  int pool_size = 1;  // processing threads reserved for this sensor
  /// Sensor is undeployed this long after start; 0 = unbounded (paper
  /// §3: "bounding the lifetime of a data stream in order to reserve
  /// resources only when they are needed").
  Timestamp lifetime_micros = 0;
};

/// `<storage>`: output stream retention.
struct StorageSpec {
  bool permanent = false;  // mirror output to the persistence log
  WindowSpec history;      // size= : how much output history SQL can see
};

/// A parsed virtual sensor deployment descriptor (paper §2): everything
/// needed to deploy and use the sensor.
struct VirtualSensorSpec {
  std::string name;
  /// User-definable key/value metadata published in the directory for
  /// discovery (paper §4), e.g. type=temperature, location=bc143.
  std::map<std::string, std::string> metadata;
  LifeCycleSpec life_cycle;
  Schema output_structure;
  StorageSpec storage;
  std::vector<InputStreamSpec> input_streams;

  /// Structural validation beyond what parsing enforces: non-empty
  /// name/output structure/streams, unique aliases, parseable SQL.
  Status Validate() const;

  /// Serializes back to descriptor XML (management interface round-trip).
  std::string ToXml() const;

  /// Renders a WindowSpec in descriptor syntax ("1h", "500ms", "100").
  static std::string window_str(const WindowSpec& w);

 private:
  std::string permanent_str() const;
};

}  // namespace gsn::vsensor

#endif  // GSN_VSENSOR_SPEC_H_

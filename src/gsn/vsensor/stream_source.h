#ifndef GSN_VSENSOR_STREAM_SOURCE_H_
#define GSN_VSENSOR_STREAM_SOURCE_H_

#include <deque>
#include <memory>
#include <mutex>

#include "gsn/storage/window_buffer.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/profiler.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/rng.h"
#include "gsn/vsensor/spec.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::vsensor {

/// One running stream source: a wrapper plus the stream-quality
/// machinery of the input stream manager (paper §4: "the input stream
/// manager ... manages the input streams and ensures stream quality
/// (disconnections, unexpected delays, missing values)").
///
/// Per element, in order:
///   0. admission queue — wrapper output lands in a bounded FIFO
///      between the wrapper and the pipeline (overload protection,
///      paper §3: "avoid overloads"); a full queue sheds per the
///      configured ShedPolicy (drop-oldest / drop-newest / block —
///      block stops polling the wrapper, i.e. upstream backpressure in
///      this pull-based design);
///   1. sampling  — admit with probability `sampling-rate` (paper §3:
///      "sampling of data streams in order to reduce the data rate");
///   2. disconnect handling — while disconnected, admitted elements go
///      to a bounded FIFO (`disconnect-buffer`); on reconnect they are
///      replayed ahead of new data, oldest dropped on overflow;
///   3. windowing — admitted elements enter the source's count/time
///      window, the relation its SQL sees as WRAPPER.
class StreamSource {
 public:
  /// Registers per-wrapper-type telemetry (poll-loop latency, elements
  /// produced) in `metrics`, defaulting to the process registry. When a
  /// `tracer` is given, every admitted element is stamped with a trace
  /// context: a fresh root trace ("wrapper.produce") for untraced
  /// elements, or a "source.admit" child span when the element already
  /// carries one (remote deliveries continuing the producer's trace).
  StreamSource(StreamSourceSpec spec, std::unique_ptr<wrappers::Wrapper> wrapper,
               uint64_t seed, telemetry::MetricRegistry* metrics = nullptr,
               telemetry::Tracer* tracer = nullptr, std::string node = "");

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  Status Start() { return wrapper_->Start(); }
  void Stop() { wrapper_->Stop(); }

  /// Resolves the admission queue bound and shed policy: the spec's
  /// own values when set, otherwise the container defaults given here.
  /// `sensor` labels the queue-depth series so the container can drop
  /// it at undeploy. Call once at deploy, before the first Poll.
  void ConfigureAdmission(const std::string& sensor, int64_t default_capacity,
                          ShedPolicy default_policy,
                          telemetry::MetricRegistry* metrics = nullptr);

  /// Pumps the wrapper into the admission queue and drains the queue
  /// through the admission pipeline. Returns the elements newly
  /// admitted to the window at this poll (the pipeline triggers on
  /// them).
  Result<std::vector<StreamElement>> Poll(Timestamp now);

  /// Pumps the wrapper into the admission queue WITHOUT draining it —
  /// used while the owning sensor is paused for a supervised restart,
  /// so backlog builds observably (and sheds per policy) instead of
  /// stalling or silently vanishing.
  Status Pump(Timestamp now);

  /// Queues an element for re-admission ahead of new data on the next
  /// Poll (quarantine requeue). Bypasses sampling and disconnect
  /// handling — the element already passed both once — so delivery is
  /// at-least-once.
  void Inject(const StreamElement& element);

  /// Drain gate: while false, Poll stops pumping the wrapper (no new
  /// load admitted) but keeps draining what is already queued.
  void SetAdmitting(bool admitting);
  bool admitting() const;

  /// The window contents as a flat relation (schema: timed + wrapper
  /// schema), i.e. the WRAPPER relation of the source query.
  Relation WindowRelation(Timestamp now) const;

  /// Simulates link loss/recovery for this source.
  void SetConnected(bool connected);
  bool connected() const;

  const StreamSourceSpec& spec() const { return spec_; }
  const wrappers::Wrapper& wrapper() const { return *wrapper_; }
  wrappers::Wrapper* mutable_wrapper() { return wrapper_.get(); }

  // -- Stream-quality counters ------------------------------------------
  int64_t admitted_count() const;
  int64_t sampled_out_count() const;
  int64_t dropped_disconnected_count() const;
  int64_t filled_missing_count() const;

  // -- Overload-protection introspection --------------------------------
  size_t queue_depth() const;
  int64_t shed_count() const;
  int64_t queue_capacity() const;
  ShedPolicy shed_policy() const;

 private:
  /// One admission-queue slot: the element plus its steady-clock
  /// enqueue stamp, so the drain observes real queue-wait time
  /// (gsn_queue_wait_micros) even when the container runs on a
  /// VirtualClock.
  struct QueuedElement {
    StreamElement element;
    int64_t enqueued_micros = 0;
  };

  /// Wrapper → admission queue under the shed policy. Returns the
  /// number of elements enqueued (0 when blocked or not admitting).
  Result<int> PumpLocked(Timestamp now,
                         std::unique_lock<telemetry::TimedMutex>* lock);
  /// Stamps/continues trace contexts on the elements admitted this
  /// poll (no-op without a tracer).
  void StampTraces(std::vector<StreamElement>* admitted);

  const StreamSourceSpec spec_;
  std::unique_ptr<wrappers::Wrapper> wrapper_;
  storage::WindowBuffer window_;
  Rng rng_;
  telemetry::Tracer* tracer_ = nullptr;
  std::string node_;
  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  std::shared_ptr<telemetry::Histogram> poll_micros_;
  std::shared_ptr<telemetry::Counter> produced_total_;

  /// Instrumented at ConfigureAdmission so deployed sources report
  /// admission-lock contention (lock="admission") to the profiler.
  mutable telemetry::TimedMutex mu_;
  bool connected_ = true;
  std::deque<StreamElement> disconnect_buffer_;
  int64_t admitted_ = 0;
  int64_t sampled_out_ = 0;
  int64_t dropped_disconnected_ = 0;
  int64_t filled_missing_ = 0;
  /// Last non-NULL value per column (fill-missing="last").
  std::vector<Value> last_known_;

  // -- Overload protection ----------------------------------------------
  /// Wrapper output waiting for the pipeline (bounded by
  /// queue_capacity_ under shed_policy_).
  std::deque<QueuedElement> admission_queue_;
  /// Requeued quarantine elements, admitted ahead of the queue.
  std::deque<StreamElement> injected_;
  /// 0 = unbounded (standalone sources, before ConfigureAdmission);
  /// deployed sources always get a positive bound.
  int64_t queue_capacity_ = 0;
  ShedPolicy shed_policy_ = ShedPolicy::kDropOldest;
  bool admitting_ = true;
  int64_t shed_ = 0;
  std::shared_ptr<telemetry::Counter> shed_total_;   // label policy=
  std::shared_ptr<telemetry::Gauge> depth_gauge_;    // labels sensor=,source=
  /// Time elements spend queued between wrapper and pipeline
  /// (labels sensor=,source=); null until ConfigureAdmission.
  std::shared_ptr<telemetry::Histogram> queue_wait_micros_;
};

}  // namespace gsn::vsensor

#endif  // GSN_VSENSOR_STREAM_SOURCE_H_

#ifndef GSN_VSENSOR_STREAM_SOURCE_H_
#define GSN_VSENSOR_STREAM_SOURCE_H_

#include <deque>
#include <memory>
#include <mutex>

#include "gsn/storage/window_buffer.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/rng.h"
#include "gsn/vsensor/spec.h"
#include "gsn/wrappers/wrapper.h"

namespace gsn::vsensor {

/// One running stream source: a wrapper plus the stream-quality
/// machinery of the input stream manager (paper §4: "the input stream
/// manager ... manages the input streams and ensures stream quality
/// (disconnections, unexpected delays, missing values)").
///
/// Per element, in order:
///   1. sampling  — admit with probability `sampling-rate` (paper §3:
///      "sampling of data streams in order to reduce the data rate");
///   2. disconnect handling — while disconnected, admitted elements go
///      to a bounded FIFO (`disconnect-buffer`); on reconnect they are
///      replayed ahead of new data, oldest dropped on overflow;
///   3. windowing — admitted elements enter the source's count/time
///      window, the relation its SQL sees as WRAPPER.
class StreamSource {
 public:
  /// Registers per-wrapper-type telemetry (poll-loop latency, elements
  /// produced) in `metrics`, defaulting to the process registry. When a
  /// `tracer` is given, every admitted element is stamped with a trace
  /// context: a fresh root trace ("wrapper.produce") for untraced
  /// elements, or a "source.admit" child span when the element already
  /// carries one (remote deliveries continuing the producer's trace).
  StreamSource(StreamSourceSpec spec, std::unique_ptr<wrappers::Wrapper> wrapper,
               uint64_t seed, telemetry::MetricRegistry* metrics = nullptr,
               telemetry::Tracer* tracer = nullptr, std::string node = "");

  StreamSource(const StreamSource&) = delete;
  StreamSource& operator=(const StreamSource&) = delete;

  Status Start() { return wrapper_->Start(); }
  void Stop() { wrapper_->Stop(); }

  /// Polls the wrapper and runs the admission pipeline. Returns the
  /// elements newly admitted to the window at this poll (the pipeline
  /// triggers on them).
  Result<std::vector<StreamElement>> Poll(Timestamp now);

  /// The window contents as a flat relation (schema: timed + wrapper
  /// schema), i.e. the WRAPPER relation of the source query.
  Relation WindowRelation(Timestamp now) const;

  /// Simulates link loss/recovery for this source.
  void SetConnected(bool connected);
  bool connected() const;

  const StreamSourceSpec& spec() const { return spec_; }
  const wrappers::Wrapper& wrapper() const { return *wrapper_; }
  wrappers::Wrapper* mutable_wrapper() { return wrapper_.get(); }

  // -- Stream-quality counters ------------------------------------------
  int64_t admitted_count() const;
  int64_t sampled_out_count() const;
  int64_t dropped_disconnected_count() const;
  int64_t filled_missing_count() const;

 private:
  /// Stamps/continues trace contexts on the elements admitted this
  /// poll (no-op without a tracer).
  void StampTraces(std::vector<StreamElement>* admitted);

  const StreamSourceSpec spec_;
  std::unique_ptr<wrappers::Wrapper> wrapper_;
  storage::WindowBuffer window_;
  Rng rng_;
  telemetry::Tracer* tracer_ = nullptr;
  std::string node_;
  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  std::shared_ptr<telemetry::Histogram> poll_micros_;
  std::shared_ptr<telemetry::Counter> produced_total_;

  mutable std::mutex mu_;
  bool connected_ = true;
  std::deque<StreamElement> disconnect_buffer_;
  int64_t admitted_ = 0;
  int64_t sampled_out_ = 0;
  int64_t dropped_disconnected_ = 0;
  int64_t filled_missing_ = 0;
  /// Last non-NULL value per column (fill-missing="last").
  std::vector<Value> last_known_;
};

}  // namespace gsn::vsensor

#endif  // GSN_VSENSOR_STREAM_SOURCE_H_

#ifndef GSN_VSENSOR_VIRTUAL_SENSOR_H_
#define GSN_VSENSOR_VIRTUAL_SENSOR_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gsn/sql/executor.h"
#include "gsn/telemetry/metrics.h"
#include "gsn/telemetry/tracing.h"
#include "gsn/util/clock.h"
#include "gsn/vsensor/spec.h"
#include "gsn/vsensor/stream_source.h"

namespace gsn::vsensor {

/// A deployed virtual sensor: the paper's central abstraction (§2).
/// Owns its stream sources and runs the five processing steps of §3
/// whenever a source delivers new elements:
///
///   1. new elements are timestamped with the container's local clock
///      if the producer did not stamp them;
///   2. per source, the window (count- or time-based) is selected and
///      unnested into a flat relation;
///   3. each source's SQL runs over its window (relation WRAPPER) into
///      a temporary relation named by the source alias;
///   4. the input stream's SQL runs over the temporary relations;
///   5. each result row becomes an output stream element, mapped to the
///      declared output structure, delivered to all registered
///      listeners (storage, notification, remote consumers).
///
/// The sensor is driven by Tick(now) — the input stream manager polls
/// all sources and triggers processing. Thread-compatible: the owning
/// container serializes Ticks per sensor (possibly on its life-cycle
/// thread pool).
class VirtualSensor {
 public:
  using OutputListener =
      std::function<void(const VirtualSensor&, const StreamElement&)>;
  /// Receives every output element of one pipeline run in a single
  /// call, in production order. A batch listener sees exactly the
  /// elements the per-element listeners see, but with one invocation
  /// per trigger instead of one per element — consumers that take a
  /// lock or fan out per call (storage insert, continuous queries)
  /// amortize it over the batch.
  using BatchListener = std::function<void(const VirtualSensor&,
                                           const std::vector<StreamElement>&)>;
  /// Fired when one trigger's processing fails, with the input stream
  /// that failed and the elements admitted for that trigger (the
  /// suspects). The supervisor quarantines them; the sensor itself just
  /// reports and moves on to its next stream.
  using ErrorListener =
      std::function<void(const VirtualSensor&, const std::string& stream_name,
                         const Status&, const std::vector<StreamElement>&)>;

  /// `sources[i]` holds the running sources of `spec.input_streams[i]`,
  /// in the same order as the spec's sources. The sensor registers its
  /// per-sensor metric family (label sensor=<name>) in `metrics` at
  /// construction — the default registry when none is injected; the
  /// owning container removes the family at undeploy.
  /// A non-null `tracer` makes every trigger whose admitted elements
  /// carry a trace context run under a "vsensor.pipeline" span (child
  /// of the triggering element's span), with per-stage child spans and
  /// the pipeline context stamped onto every output element.
  VirtualSensor(VirtualSensorSpec spec,
                std::vector<std::vector<std::unique_ptr<StreamSource>>> sources,
                std::shared_ptr<Clock> clock,
                telemetry::MetricRegistry* metrics = nullptr,
                telemetry::Tracer* tracer = nullptr, std::string node = "");

  VirtualSensor(const VirtualSensor&) = delete;
  VirtualSensor& operator=(const VirtualSensor&) = delete;

  Status Start();
  void Stop();

  /// Polls every source and runs the pipeline for each input stream
  /// that received data. Returns the number of output elements
  /// produced. Errors from a stream's SQL abort that trigger but are
  /// reported once and do not wedge the sensor.
  Result<int> Tick(Timestamp now);

  /// Registers a consumer of the output stream (paper §3 step 5: "all
  /// consumers of the virtual sensor are notified of the new stream
  /// element").
  void AddListener(OutputListener listener);
  /// Registers a per-trigger batch consumer (see BatchListener).
  void AddBatchListener(BatchListener listener);
  /// Registers the supervisor's poison-tuple hook (see ErrorListener).
  void SetErrorListener(ErrorListener listener);

  /// Pumps every source's wrapper into its admission queue without
  /// running the pipeline — keeps data flowing (and shed policies
  /// engaged) while the supervisor has this sensor paused for restart.
  Status PumpSources(Timestamp now);

  /// Drain gate forwarded to every source (see
  /// StreamSource::SetAdmitting).
  void SetAdmitting(bool admitting);
  /// Elements waiting across all sources' admission queues.
  size_t QueueDepth() const;
  /// Shed events across all sources.
  int64_t ShedCount() const;
  /// Whether any source's admission queue is at capacity (readiness
  /// probe input).
  bool AnyQueueFull() const;

  const VirtualSensorSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  const Schema& output_schema() const { return spec_.output_structure; }

  /// Source handle for stream-quality manipulation in demos and tests
  /// (returns nullptr if unknown).
  StreamSource* FindSource(const std::string& stream_name,
                           const std::string& alias);

  /// Pipeline counters. Since the telemetry subsystem landed this is a
  /// point-in-time view assembled from the sensor's registered metrics
  /// (kept for API compatibility); the counters themselves live in the
  /// MetricRegistry under the sensor=<name> label.
  struct Stats {
    int64_t triggers = 0;          // input batches processed
    int64_t produced = 0;          // output elements emitted
    int64_t rate_limited = 0;      // outputs dropped by the rate bound
    int64_t errors = 0;            // failed pipeline runs
    /// Wall-clock processing time (steady clock), for Fig 3.
    int64_t total_processing_micros = 0;
    int64_t last_processing_micros = 0;
  };
  Stats stats() const;

  /// The per-trigger processing-latency distribution (Fig 3's series).
  telemetry::Histogram::Snapshot processing_histogram() const {
    return metrics_.processing->TakeSnapshot();
  }

  /// Clock used by the processing span timers. Defaults to the steady
  /// wall clock so Fig 3 measures real cost under virtual stream time;
  /// tests inject a VirtualClock to make span durations deterministic.
  void set_span_clock(const Clock* span_clock) { span_clock_ = span_clock; }

 private:
  struct StreamRuntime {
    const InputStreamSpec* spec;
    std::vector<std::unique_ptr<StreamSource>> sources;
    std::unique_ptr<sql::SelectStmt> query;          // parsed stream query
    std::vector<std::unique_ptr<sql::SelectStmt>> source_queries;
    // Token bucket for the rate bound.
    double tokens = 0;
    Timestamp last_refill = 0;
  };

  /// Runs steps 2-5 for one input stream. `trace` is the pipeline
  /// span's context (invalid when untraced); stage spans are its
  /// children and output elements are stamped with it.
  Result<int> ProcessStream(StreamRuntime* stream, Timestamp now,
                            const TraceContext& trace);

  /// Maps one result row to the declared output structure.
  Result<StreamElement> MapToOutput(const Schema& result_schema,
                                    const Relation::Row& row, Timestamp now);

  /// The sensor's slice of the metric registry, resolved once at
  /// construction so hot-path updates are single relaxed atomics.
  struct SensorMetrics {
    std::shared_ptr<telemetry::Counter> triggers;
    std::shared_ptr<telemetry::Counter> tuples;
    std::shared_ptr<telemetry::Counter> rate_limited;
    std::shared_ptr<telemetry::Counter> errors;
    std::shared_ptr<telemetry::Gauge> last_processing;
    std::shared_ptr<telemetry::Histogram> processing;
    /// Pipeline stage latencies (paper §3 steps 2/3, 4, 5).
    std::shared_ptr<telemetry::Histogram> stage_window;
    std::shared_ptr<telemetry::Histogram> stage_stream_sql;
    std::shared_ptr<telemetry::Histogram> stage_deliver;
    /// Elements admitted per pipeline trigger (how much each batched
    /// run amortizes the per-trigger SQL cost).
    std::shared_ptr<telemetry::Histogram> batch_size;
  };

  const VirtualSensorSpec spec_;
  std::vector<StreamRuntime> streams_;
  std::shared_ptr<Clock> clock_;
  telemetry::Tracer* tracer_ = nullptr;
  std::string node_;
  /// Private registry when none was injected (standalone sensors in
  /// tests keep per-instance stats).
  std::unique_ptr<telemetry::MetricRegistry> owned_metrics_;
  SensorMetrics metrics_;
  const Clock* span_clock_;

  mutable std::mutex mu_;
  std::vector<OutputListener> listeners_;
  std::vector<BatchListener> batch_listeners_;
  ErrorListener error_listener_;
  bool missing_column_warned_ = false;
};

}  // namespace gsn::vsensor

#endif  // GSN_VSENSOR_VIRTUAL_SENSOR_H_

#include "gsn/vsensor/stream_source.h"

namespace gsn::vsensor {

StreamSource::StreamSource(StreamSourceSpec spec,
                           std::unique_ptr<wrappers::Wrapper> wrapper,
                           uint64_t seed, telemetry::MetricRegistry* metrics,
                           telemetry::Tracer* tracer, std::string node)
    : spec_(std::move(spec)),
      wrapper_(std::move(wrapper)),
      window_(spec_.window),
      rng_(seed),
      tracer_(tracer),
      node_(std::move(node)) {
  telemetry::MetricRegistry* registry = metrics;
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    registry = owned_metrics_.get();
  }
  const telemetry::Labels wrapper_label = {
      {"wrapper", wrapper_->type_name()}};
  poll_micros_ = registry->GetHistogram(
      "gsn_wrapper_poll_micros", wrapper_label,
      "Time spent in the wrapper's produce loop per poll");
  produced_total_ = registry->GetCounter(
      "gsn_wrapper_elements_total", wrapper_label,
      "Stream elements produced by wrappers of this type");
}

void StreamSource::ConfigureAdmission(const std::string& sensor,
                                      int64_t default_capacity,
                                      ShedPolicy default_policy,
                                      telemetry::MetricRegistry* metrics) {
  // Wiring time: the sensor has not started, so instrumenting the
  // mutex before locking it is race-free.
  mu_.Instrument(metrics, "admission",
                 {{"sensor", sensor}, {"source", spec_.alias}});
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  queue_capacity_ =
      spec_.queue_capacity > 0 ? spec_.queue_capacity : default_capacity;
  if (queue_capacity_ < 1) queue_capacity_ = 1;
  shed_policy_ = default_policy;
  if (!spec_.shed_policy.empty()) {
    Result<ShedPolicy> parsed = ParseShedPolicy(spec_.shed_policy);
    if (parsed.ok()) shed_policy_ = *parsed;  // Validate() already vetted it
  }
  if (metrics != nullptr) {
    shed_total_ = metrics->GetCounter(
        "gsn_admission_shed_total", {{"policy", ShedPolicyName(shed_policy_)}},
        "Overload events at the admission queue: elements dropped "
        "(drop-oldest/drop-newest) or wrapper polls deferred (block)");
    depth_gauge_ = metrics->GetGauge(
        "gsn_admission_queue_depth",
        {{"sensor", sensor}, {"source", spec_.alias}},
        "Elements waiting in the admission queue");
    queue_wait_micros_ = metrics->GetHistogram(
        "gsn_queue_wait_micros", {{"sensor", sensor}, {"source", spec_.alias}},
        "Wall time elements spent in the admission queue between the "
        "wrapper and the pipeline");
  }
}

Result<int> StreamSource::PumpLocked(
    Timestamp now, std::unique_lock<telemetry::TimedMutex>* lock) {
  if (!admitting_) return 0;
  const bool bounded = queue_capacity_ > 0;
  if (bounded && shed_policy_ == ShedPolicy::kBlock &&
      admission_queue_.size() >= static_cast<size_t>(queue_capacity_)) {
    // Backpressure: in this pull-based design, not polling the wrapper
    // is what "blocking the producer" means.
    ++shed_;
    if (shed_total_ != nullptr) shed_total_->Increment();
    return 0;
  }
  lock->unlock();
  telemetry::SpanTimer poll_span(telemetry::SteadyClock::Instance(),
                                 poll_micros_.get());
  Result<std::vector<StreamElement>> produced = wrapper_->Poll(now);
  poll_span.Stop();
  lock->lock();
  if (!produced.ok()) return produced.status();
  produced_total_->Increment(static_cast<int64_t>(produced->size()));
  // One clock read per poll batch stamps the whole batch's enqueue
  // time for the queue-wait histogram.
  const int64_t enqueued_micros =
      queue_wait_micros_ != nullptr && !produced->empty()
          ? telemetry::SteadyClock::Instance()->NowMicros()
          : 0;
  int enqueued = 0;
  for (StreamElement& e : *produced) {
    if (bounded &&
        admission_queue_.size() >= static_cast<size_t>(queue_capacity_)) {
      if (shed_policy_ == ShedPolicy::kDropNewest ||
          shed_policy_ == ShedPolicy::kBlock) {
        // kBlock can still land here when one wrapper poll over-fills
        // the queue mid-batch; shedding the overflow keeps the bound.
        ++shed_;
        if (shed_total_ != nullptr) shed_total_->Increment();
        continue;
      }
      admission_queue_.pop_front();  // drop-oldest
      ++shed_;
      if (shed_total_ != nullptr) shed_total_->Increment();
    }
    admission_queue_.push_back({std::move(e), enqueued_micros});
    ++enqueued;
  }
  return enqueued;
}

Status StreamSource::Pump(Timestamp now) {
  std::unique_lock<telemetry::TimedMutex> lock(mu_);
  const Result<int> pumped = PumpLocked(now, &lock);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(admission_queue_.size()));
  }
  return pumped.status();
}

Result<std::vector<StreamElement>> StreamSource::Poll(Timestamp now) {
  std::unique_lock<telemetry::TimedMutex> lock(mu_);
  GSN_RETURN_IF_ERROR(PumpLocked(now, &lock).status());
  std::vector<StreamElement> admitted;

  // Replay buffered elements first if we just reconnected.
  if (connected_ && !disconnect_buffer_.empty()) {
    for (StreamElement& e : disconnect_buffer_) {
      window_.Add(e);
      admitted.push_back(std::move(e));
      ++admitted_;
    }
    disconnect_buffer_.clear();
  }

  // Requeued quarantine elements next: they already passed sampling and
  // disconnect handling on first admission, so they go straight to the
  // window (at-least-once redelivery).
  while (!injected_.empty()) {
    StreamElement e = std::move(injected_.front());
    injected_.pop_front();
    window_.Add(e);
    admitted.push_back(std::move(e));
    ++admitted_;
  }

  std::deque<QueuedElement> queued;
  queued.swap(admission_queue_);
  // Queue residency ends here for the whole drained batch, whatever
  // sampling/disconnect handling decides next.
  if (queue_wait_micros_ != nullptr && !queued.empty()) {
    const int64_t drained_micros =
        telemetry::SteadyClock::Instance()->NowMicros();
    for (const QueuedElement& q : queued) {
      if (q.enqueued_micros > 0) {
        queue_wait_micros_->Observe(drained_micros - q.enqueued_micros);
      }
    }
  }
  for (QueuedElement& qe : queued) {
    StreamElement& e = qe.element;
    // Sampling happens before buffering: a sampled-out element is gone
    // regardless of link state.
    if (spec_.sampling_rate < 1.0 && !rng_.NextBool(spec_.sampling_rate)) {
      ++sampled_out_;
      continue;
    }
    // Missing-value repair (paper §4): substitute the last non-NULL
    // value seen per column, and remember fresh values.
    if (spec_.fill_missing_with_last) {
      if (last_known_.size() < e.values.size()) {
        last_known_.resize(e.values.size(), Value::Null());
      }
      for (size_t i = 0; i < e.values.size(); ++i) {
        if (e.values[i].is_null()) {
          if (!last_known_[i].is_null()) {
            e.values[i] = last_known_[i];
            ++filled_missing_;
          }
        } else {
          last_known_[i] = e.values[i];
        }
      }
    }
    if (!connected_) {
      if (spec_.disconnect_buffer > 0) {
        disconnect_buffer_.push_back(std::move(e));
        while (disconnect_buffer_.size() >
               static_cast<size_t>(spec_.disconnect_buffer)) {
          disconnect_buffer_.pop_front();
          ++dropped_disconnected_;
        }
      } else {
        ++dropped_disconnected_;
      }
      continue;
    }
    window_.Add(e);
    admitted.push_back(std::move(e));
    ++admitted_;
  }
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Set(static_cast<int64_t>(admission_queue_.size()));
  }
  StampTraces(&admitted);
  return admitted;
}

void StreamSource::Inject(const StreamElement& element) {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  injected_.push_back(element);
}

void StreamSource::SetAdmitting(bool admitting) {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  admitting_ = admitting;
}

bool StreamSource::admitting() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return admitting_;
}

size_t StreamSource::queue_depth() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return admission_queue_.size();
}

int64_t StreamSource::shed_count() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return shed_;
}

int64_t StreamSource::queue_capacity() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return queue_capacity_;
}

ShedPolicy StreamSource::shed_policy() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return shed_policy_;
}

void StreamSource::StampTraces(std::vector<StreamElement>* admitted) {
  if (tracer_ == nullptr) return;
  for (StreamElement& e : *admitted) {
    if (e.trace.valid()) {
      // Element already traced (remote delivery): continue the trace so
      // the consuming container's spans link to the producer's.
      telemetry::Span admit(tracer_, "source.admit", e.trace);
      admit.set_node(node_);
      admit.set_sensor(spec_.alias);
      e.trace = admit.context();
    } else {
      telemetry::Span produce(tracer_, "wrapper.produce");
      produce.set_node(node_);
      produce.set_sensor(spec_.alias);
      e.trace = produce.context();
    }
  }
}

Relation StreamSource::WindowRelation(Timestamp now) const {
  // Shares the buffered rows (ref-count bump per row, no Value copies).
  return window_.SnapshotRelation(now, wrapper_->output_schema());
}

void StreamSource::SetConnected(bool connected) {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  connected_ = connected;
}

bool StreamSource::connected() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return connected_;
}

int64_t StreamSource::admitted_count() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return admitted_;
}

int64_t StreamSource::sampled_out_count() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return sampled_out_;
}

int64_t StreamSource::dropped_disconnected_count() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return dropped_disconnected_;
}

int64_t StreamSource::filled_missing_count() const {
  std::lock_guard<telemetry::TimedMutex> lock(mu_);
  return filled_missing_;
}

}  // namespace gsn::vsensor

#include "gsn/vsensor/stream_source.h"

namespace gsn::vsensor {

StreamSource::StreamSource(StreamSourceSpec spec,
                           std::unique_ptr<wrappers::Wrapper> wrapper,
                           uint64_t seed, telemetry::MetricRegistry* metrics,
                           telemetry::Tracer* tracer, std::string node)
    : spec_(std::move(spec)),
      wrapper_(std::move(wrapper)),
      window_(spec_.window),
      rng_(seed),
      tracer_(tracer),
      node_(std::move(node)) {
  telemetry::MetricRegistry* registry = metrics;
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    registry = owned_metrics_.get();
  }
  const telemetry::Labels wrapper_label = {
      {"wrapper", wrapper_->type_name()}};
  poll_micros_ = registry->GetHistogram(
      "gsn_wrapper_poll_micros", wrapper_label,
      "Time spent in the wrapper's produce loop per poll");
  produced_total_ = registry->GetCounter(
      "gsn_wrapper_elements_total", wrapper_label,
      "Stream elements produced by wrappers of this type");
}

Result<std::vector<StreamElement>> StreamSource::Poll(Timestamp now) {
  telemetry::SpanTimer poll_span(telemetry::SteadyClock::Instance(),
                                 poll_micros_.get());
  GSN_ASSIGN_OR_RETURN(std::vector<StreamElement> produced,
                       wrapper_->Poll(now));
  poll_span.Stop();
  produced_total_->Increment(static_cast<int64_t>(produced.size()));
  std::vector<StreamElement> admitted;

  std::lock_guard<std::mutex> lock(mu_);
  // Replay buffered elements first if we just reconnected.
  if (connected_ && !disconnect_buffer_.empty()) {
    for (StreamElement& e : disconnect_buffer_) {
      window_.Add(e);
      admitted.push_back(std::move(e));
      ++admitted_;
    }
    disconnect_buffer_.clear();
  }

  for (StreamElement& e : produced) {
    // Sampling happens before buffering: a sampled-out element is gone
    // regardless of link state.
    if (spec_.sampling_rate < 1.0 && !rng_.NextBool(spec_.sampling_rate)) {
      ++sampled_out_;
      continue;
    }
    // Missing-value repair (paper §4): substitute the last non-NULL
    // value seen per column, and remember fresh values.
    if (spec_.fill_missing_with_last) {
      if (last_known_.size() < e.values.size()) {
        last_known_.resize(e.values.size(), Value::Null());
      }
      for (size_t i = 0; i < e.values.size(); ++i) {
        if (e.values[i].is_null()) {
          if (!last_known_[i].is_null()) {
            e.values[i] = last_known_[i];
            ++filled_missing_;
          }
        } else {
          last_known_[i] = e.values[i];
        }
      }
    }
    if (!connected_) {
      if (spec_.disconnect_buffer > 0) {
        disconnect_buffer_.push_back(std::move(e));
        while (disconnect_buffer_.size() >
               static_cast<size_t>(spec_.disconnect_buffer)) {
          disconnect_buffer_.pop_front();
          ++dropped_disconnected_;
        }
      } else {
        ++dropped_disconnected_;
      }
      continue;
    }
    window_.Add(e);
    admitted.push_back(std::move(e));
    ++admitted_;
  }
  StampTraces(&admitted);
  return admitted;
}

void StreamSource::StampTraces(std::vector<StreamElement>* admitted) {
  if (tracer_ == nullptr) return;
  for (StreamElement& e : *admitted) {
    if (e.trace.valid()) {
      // Element already traced (remote delivery): continue the trace so
      // the consuming container's spans link to the producer's.
      telemetry::Span admit(tracer_, "source.admit", e.trace);
      admit.set_node(node_);
      admit.set_sensor(spec_.alias);
      e.trace = admit.context();
    } else {
      telemetry::Span produce(tracer_, "wrapper.produce");
      produce.set_node(node_);
      produce.set_sensor(spec_.alias);
      e.trace = produce.context();
    }
  }
}

Relation StreamSource::WindowRelation(Timestamp now) const {
  // Shares the buffered rows (ref-count bump per row, no Value copies).
  return window_.SnapshotRelation(now, wrapper_->output_schema());
}

void StreamSource::SetConnected(bool connected) {
  std::lock_guard<std::mutex> lock(mu_);
  connected_ = connected;
}

bool StreamSource::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connected_;
}

int64_t StreamSource::admitted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

int64_t StreamSource::sampled_out_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_out_;
}

int64_t StreamSource::dropped_disconnected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_disconnected_;
}

int64_t StreamSource::filled_missing_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filled_missing_;
}

}  // namespace gsn::vsensor

#include "gsn/vsensor/virtual_sensor.h"

#include "gsn/sql/parser.h"
#include "gsn/util/logging.h"

namespace gsn::vsensor {

VirtualSensor::VirtualSensor(
    VirtualSensorSpec spec,
    std::vector<std::vector<std::unique_ptr<StreamSource>>> sources,
    std::shared_ptr<Clock> clock, telemetry::MetricRegistry* metrics,
    telemetry::Tracer* tracer, std::string node)
    : spec_(std::move(spec)),
      clock_(std::move(clock)),
      tracer_(tracer),
      node_(std::move(node)),
      span_clock_(telemetry::SteadyClock::Instance()) {
  telemetry::MetricRegistry* registry = metrics;
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<telemetry::MetricRegistry>();
    registry = owned_metrics_.get();
  }
  const telemetry::Labels sensor_label = {{"sensor", spec_.name}};
  metrics_.triggers = registry->GetCounter(
      "gsn_sensor_triggers_total", sensor_label,
      "Input batches processed by the virtual sensor pipeline");
  metrics_.tuples = registry->GetCounter(
      "gsn_sensor_tuples_total", sensor_label,
      "Output stream elements produced by the virtual sensor");
  metrics_.rate_limited = registry->GetCounter(
      "gsn_sensor_rate_limited_total", sensor_label,
      "Output elements dropped by the per-stream rate bound");
  metrics_.errors =
      registry->GetCounter("gsn_sensor_errors_total", sensor_label,
                           "Failed pipeline runs");
  metrics_.last_processing = registry->GetGauge(
      "gsn_sensor_last_processing_micros", sensor_label,
      "Processing time of the most recent trigger");
  metrics_.processing = registry->GetHistogram(
      "gsn_sensor_processing_micros", sensor_label,
      "In-container processing time per stream element trigger (Fig 3)");
  auto stage_histogram = [&](const char* stage) {
    telemetry::Labels labels = sensor_label;
    labels.emplace_back("stage", stage);
    return registry->GetHistogram(
        "gsn_pipeline_stage_micros", labels,
        "Per-stage latency of the 5-step processing pipeline");
  };
  metrics_.stage_window = stage_histogram("window_sql");
  metrics_.stage_stream_sql = stage_histogram("stream_sql");
  metrics_.stage_deliver = stage_histogram("deliver");
  metrics_.batch_size = registry->GetHistogram(
      "gsn_pipeline_batch_size", sensor_label,
      "Stream elements admitted per pipeline trigger");
  streams_.resize(spec_.input_streams.size());
  for (size_t i = 0; i < spec_.input_streams.size(); ++i) {
    StreamRuntime& rt = streams_[i];
    rt.spec = &spec_.input_streams[i];
    if (i < sources.size()) rt.sources = std::move(sources[i]);
    // Queries were validated by spec.Validate(); parse failures here
    // would be programmer error.
    Result<std::unique_ptr<sql::SelectStmt>> q =
        sql::ParseSelect(rt.spec->query);
    if (q.ok()) rt.query = *std::move(q);
    for (const StreamSourceSpec& src : rt.spec->sources) {
      Result<std::unique_ptr<sql::SelectStmt>> sq =
          sql::ParseSelect(src.query);
      rt.source_queries.push_back(sq.ok() ? *std::move(sq) : nullptr);
    }
    // Rate bound: allow an initial burst of one element.
    rt.tokens = rt.spec->max_rate > 0 ? 1.0 : 0.0;
  }
}

Status VirtualSensor::Start() {
  for (StreamRuntime& stream : streams_) {
    for (auto& source : stream.sources) {
      GSN_RETURN_IF_ERROR(source->Start());
    }
  }
  GSN_LOG(kInfo, "vsensor") << "started '" << spec_.name << "' with "
                            << streams_.size() << " input stream(s)";
  return Status::OK();
}

void VirtualSensor::Stop() {
  for (StreamRuntime& stream : streams_) {
    for (auto& source : stream.sources) source->Stop();
  }
}

void VirtualSensor::AddListener(OutputListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.push_back(std::move(listener));
}

void VirtualSensor::AddBatchListener(BatchListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_listeners_.push_back(std::move(listener));
}

void VirtualSensor::SetErrorListener(ErrorListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  error_listener_ = std::move(listener);
}

Status VirtualSensor::PumpSources(Timestamp now) {
  Status first_error = Status::OK();
  for (StreamRuntime& stream : streams_) {
    for (auto& source : stream.sources) {
      const Status pumped = source->Pump(now);
      if (!pumped.ok() && first_error.ok()) first_error = pumped;
    }
  }
  return first_error;
}

void VirtualSensor::SetAdmitting(bool admitting) {
  for (StreamRuntime& stream : streams_) {
    for (auto& source : stream.sources) source->SetAdmitting(admitting);
  }
}

size_t VirtualSensor::QueueDepth() const {
  size_t depth = 0;
  for (const StreamRuntime& stream : streams_) {
    for (const auto& source : stream.sources) depth += source->queue_depth();
  }
  return depth;
}

int64_t VirtualSensor::ShedCount() const {
  int64_t shed = 0;
  for (const StreamRuntime& stream : streams_) {
    for (const auto& source : stream.sources) shed += source->shed_count();
  }
  return shed;
}

bool VirtualSensor::AnyQueueFull() const {
  for (const StreamRuntime& stream : streams_) {
    for (const auto& source : stream.sources) {
      const int64_t capacity = source->queue_capacity();
      if (capacity > 0 &&
          static_cast<int64_t>(source->queue_depth()) >= capacity) {
        return true;
      }
    }
  }
  return false;
}

StreamSource* VirtualSensor::FindSource(const std::string& stream_name,
                                        const std::string& alias) {
  for (StreamRuntime& stream : streams_) {
    if (!StrEqualsIgnoreCase(stream.spec->name, stream_name)) continue;
    for (auto& source : stream.sources) {
      if (StrEqualsIgnoreCase(source->spec().alias, alias)) {
        return source.get();
      }
    }
  }
  return nullptr;
}

VirtualSensor::Stats VirtualSensor::stats() const {
  Stats stats;
  stats.triggers = metrics_.triggers->Value();
  stats.produced = metrics_.tuples->Value();
  stats.rate_limited = metrics_.rate_limited->Value();
  stats.errors = metrics_.errors->Value();
  const telemetry::Histogram::Snapshot processing =
      metrics_.processing->TakeSnapshot();
  stats.total_processing_micros = processing.sum;
  stats.last_processing_micros = metrics_.last_processing->Value();
  return stats;
}

Result<int> VirtualSensor::Tick(Timestamp now) {
  int produced = 0;
  for (StreamRuntime& stream : streams_) {
    // Poll every source; any admitted element triggers the pipeline
    // (paper §3: "the production of a new output stream element ... is
    // always triggered by the arrival of a data stream element from
    // one of its input streams").
    // The pipeline continues the trace of the first traced element
    // admitted this tick (one trigger = one pipeline run, even when a
    // batch arrives).
    TraceContext trigger_ctx;
    std::vector<StreamElement> trigger_elements;
    for (auto& source : stream.sources) {
      GSN_ASSIGN_OR_RETURN(std::vector<StreamElement> admitted,
                           source->Poll(now));
      for (StreamElement& e : admitted) {
        if (!trigger_ctx.valid() && e.trace.valid()) trigger_ctx = e.trace;
        trigger_elements.push_back(std::move(e));
      }
    }
    if (trigger_elements.empty()) continue;
    metrics_.batch_size->Observe(
        static_cast<int64_t>(trigger_elements.size()));

    telemetry::Span pipeline(tracer_, "vsensor.pipeline", trigger_ctx);
    pipeline.set_sensor(spec_.name);
    pipeline.set_node(node_);
    telemetry::SpanTimer span(span_clock_, metrics_.processing.get());
    Result<int> n = ProcessStream(&stream, now, pipeline.context());
    metrics_.last_processing->Set(span.Stop());
    metrics_.triggers->Increment();
    if (!n.ok()) {
      metrics_.errors->Increment();
      pipeline.set_error();
    } else {
      metrics_.tuples->Increment(*n);
    }
    if (!n.ok()) {
      GSN_LOG(kWarn, "vsensor")
          << "'" << spec_.name << "' stream '" << stream.spec->name
          << "' failed: " << n.status().ToString();
      ErrorListener on_error;
      {
        std::lock_guard<std::mutex> lock(mu_);
        on_error = error_listener_;
      }
      if (on_error) {
        on_error(*this, stream.spec->name, n.status(), trigger_elements);
      }
      continue;
    }
    produced += *n;
  }
  return produced;
}

Result<int> VirtualSensor::ProcessStream(StreamRuntime* stream, Timestamp now,
                                         const TraceContext& trace) {
  if (stream->query == nullptr) {
    return Status::Internal("stream query not parsed for '" +
                            stream->spec->name + "'");
  }

  // Steps 2+3: window selection and per-source queries into temporary
  // relations named by alias.
  sql::MapResolver temp_relations;
  {
    telemetry::Span stage(tracer_, "vsensor.window_sql", trace);
    stage.set_sensor(spec_.name);
    stage.set_node(node_);
    telemetry::SpanTimer span(span_clock_, metrics_.stage_window.get());
    for (size_t i = 0; i < stream->sources.size(); ++i) {
      StreamSource* source = stream->sources[i].get();
      sql::MapResolver wrapper_relation;
      wrapper_relation.Put("wrapper", source->WindowRelation(now));
      sql::Executor source_exec(&wrapper_relation);
      if (stream->source_queries[i] == nullptr) {
        return Status::Internal("source query not parsed for alias '" +
                                source->spec().alias + "'");
      }
      GSN_ASSIGN_OR_RETURN(Relation temp,
                           source_exec.Execute(*stream->source_queries[i]));
      temp_relations.Put(source->spec().alias, std::move(temp));
    }
  }

  // Step 4: the input stream query over the temporaries.
  sql::Executor stream_exec(&temp_relations);
  Result<Relation> result_or = [&]() -> Result<Relation> {
    telemetry::Span stage(tracer_, "vsensor.stream_sql", trace);
    stage.set_sensor(spec_.name);
    stage.set_node(node_);
    telemetry::SpanTimer span(span_clock_, metrics_.stage_stream_sql.get());
    Result<Relation> r = stream_exec.Execute(*stream->query);
    if (!r.ok()) stage.set_error();
    return r;
  }();
  if (!result_or.ok()) return result_or.status();
  Relation result = *std::move(result_or);

  // Step 5: map rows to the output structure, rate-bound, notify.
  // Refill the token bucket (burst capacity: one second of tokens).
  if (stream->spec->max_rate > 0) {
    if (stream->last_refill == 0) stream->last_refill = now;
    const double elapsed_sec =
        static_cast<double>(now - stream->last_refill) / kMicrosPerSecond;
    stream->tokens = std::min(stream->spec->max_rate,
                              stream->tokens +
                                  elapsed_sec * stream->spec->max_rate);
    stream->last_refill = now;
  }

  // Step 5 span: output mapping plus listener fan-out.
  telemetry::Span deliver_stage(tracer_, "vsensor.deliver", trace);
  deliver_stage.set_sensor(spec_.name);
  deliver_stage.set_node(node_);
  telemetry::SpanTimer deliver_span(span_clock_, metrics_.stage_deliver.get());
  std::vector<StreamElement> outputs;
  outputs.reserve(result.NumRows());
  for (const Relation::Row& row : result.rows()) {
    if (stream->spec->max_rate > 0) {
      if (stream->tokens < 1.0) {
        metrics_.rate_limited->Increment();
        continue;
      }
      stream->tokens -= 1.0;
    }
    GSN_ASSIGN_OR_RETURN(StreamElement element,
                         MapToOutput(result.schema(), row, now));
    // Consumers of this element (storage, notifications, remote
    // delivery) hang their spans off the pipeline span.
    element.trace = trace;
    outputs.push_back(std::move(element));
  }

  // One listener snapshot per trigger, not per element; per-element
  // listeners still see each element individually (in order), batch
  // listeners get the whole trigger's output in a single call.
  std::vector<OutputListener> listeners;
  std::vector<BatchListener> batch_listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners = listeners_;
    batch_listeners = batch_listeners_;
  }
  for (const StreamElement& element : outputs) {
    for (const OutputListener& listener : listeners) {
      listener(*this, element);
    }
  }
  if (!outputs.empty()) {
    for (const BatchListener& listener : batch_listeners) {
      listener(*this, outputs);
    }
  }
  return static_cast<int>(outputs.size());
}

Result<StreamElement> VirtualSensor::MapToOutput(const Schema& result_schema,
                                                 const Relation::Row& row,
                                                 Timestamp now) {
  StreamElement element;
  // Step 1 (for the output stream): stamp with the local clock unless
  // the query propagated a `timed` column (then observation time wins).
  element.timed = now;
  Result<size_t> timed_idx = result_schema.IndexOf(kTimedField);
  if (timed_idx.ok() && row[*timed_idx].is_timestamp()) {
    element.timed = row[*timed_idx].timestamp_value();
  }

  // Columns eligible for positional mapping (everything but `timed`).
  std::vector<size_t> non_timed_cols;
  for (size_t i = 0; i < result_schema.size(); ++i) {
    if (!StrEqualsIgnoreCase(result_schema.field(i).name, kTimedField)) {
      non_timed_cols.push_back(i);
    }
  }
  const bool positional_ok =
      non_timed_cols.size() == spec_.output_structure.size();

  element.values.reserve(spec_.output_structure.size());
  for (size_t field_idx = 0; field_idx < spec_.output_structure.size();
       ++field_idx) {
    const Field& field = spec_.output_structure.field(field_idx);
    Result<size_t> idx = result_schema.IndexOf(field.name);
    if (!idx.ok() && positional_ok) {
      // Fig 1 of the paper writes `select avg(temperature) from WRAPPER`
      // with a declared TEMPERATURE output field: when names don't line
      // up but arity does, map result columns to output fields by
      // position, as the original GSN deployments expect.
      idx = non_timed_cols[field_idx];
    }
    if (!idx.ok()) {
      if (!missing_column_warned_) {
        missing_column_warned_ = true;
        GSN_LOG(kWarn, "vsensor")
            << "'" << spec_.name << "': query result has no column '"
            << field.name << "'; emitting NULL (result schema: "
            << result_schema.ToString() << ")";
      }
      element.values.push_back(Value::Null());
      continue;
    }
    const Value& v = row[*idx];
    if (v.is_null()) {
      element.values.push_back(Value::Null());
      continue;
    }
    Result<Value> cast = v.CastTo(field.type);
    if (!cast.ok()) {
      return Status::ExecutionError(
          "cannot cast value " + v.ToString() + " to " +
          DataTypeName(field.type) + " for output field '" + field.name +
          "' of '" + spec_.name + "'");
    }
    element.values.push_back(*std::move(cast));
  }
  return element;
}

}  // namespace gsn::vsensor

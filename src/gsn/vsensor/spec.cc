#include "gsn/vsensor/spec.h"

#include <set>

#include "gsn/sql/parser.h"
#include "gsn/xml/xml.h"

namespace gsn::vsensor {

Result<ShedPolicy> ParseShedPolicy(const std::string& name) {
  const std::string mode = StrToLower(StrTrim(name));
  if (mode == "drop-oldest") return ShedPolicy::kDropOldest;
  if (mode == "drop-newest") return ShedPolicy::kDropNewest;
  if (mode == "block") return ShedPolicy::kBlock;
  return Status::ParseError("unknown shed-policy '" + name +
                            "' (expected: drop-oldest, drop-newest, block)");
}

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
    case ShedPolicy::kDropNewest:
      return "drop-newest";
    case ShedPolicy::kBlock:
      return "block";
  }
  return "drop-oldest";
}

Status VirtualSensorSpec::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("virtual sensor has no name");
  }
  if (output_structure.empty()) {
    return Status::InvalidArgument("virtual sensor '" + name +
                                   "' has an empty output structure");
  }
  if (input_streams.empty()) {
    return Status::InvalidArgument("virtual sensor '" + name +
                                   "' has no input streams");
  }
  if (life_cycle.pool_size < 1) {
    return Status::InvalidArgument("virtual sensor '" + name +
                                   "' pool-size must be >= 1");
  }
  std::set<std::string> stream_names;
  for (const InputStreamSpec& stream : input_streams) {
    if (stream.name.empty()) {
      return Status::InvalidArgument("virtual sensor '" + name +
                                     "' has an unnamed input stream");
    }
    if (!stream_names.insert(StrToLower(stream.name)).second) {
      return Status::InvalidArgument("duplicate input stream name '" +
                                     stream.name + "' in " + name);
    }
    if (stream.sources.empty()) {
      return Status::InvalidArgument("input stream '" + stream.name +
                                     "' has no stream sources");
    }
    if (stream.query.empty()) {
      return Status::InvalidArgument("input stream '" + stream.name +
                                     "' has no query");
    }
    if (stream.max_rate < 0) {
      return Status::InvalidArgument("input stream '" + stream.name +
                                     "' has negative rate");
    }
    Result<std::unique_ptr<sql::SelectStmt>> parsed =
        sql::ParseSelect(stream.query);
    if (!parsed.ok()) {
      return Status::InvalidArgument("input stream '" + stream.name +
                                     "' query invalid: " +
                                     parsed.status().message());
    }
    std::set<std::string> aliases;
    for (const StreamSourceSpec& source : stream.sources) {
      if (source.alias.empty()) {
        return Status::InvalidArgument("stream source without alias in '" +
                                       stream.name + "'");
      }
      if (!aliases.insert(StrToLower(source.alias)).second) {
        return Status::InvalidArgument("duplicate source alias '" +
                                       source.alias + "' in stream '" +
                                       stream.name + "'");
      }
      if (source.sampling_rate <= 0.0 || source.sampling_rate > 1.0) {
        return Status::InvalidArgument("source '" + source.alias +
                                       "' sampling-rate must be in (0,1]");
      }
      if (source.disconnect_buffer < 0) {
        return Status::InvalidArgument("source '" + source.alias +
                                       "' disconnect-buffer must be >= 0");
      }
      if (source.queue_capacity < 0) {
        return Status::InvalidArgument("source '" + source.alias +
                                       "' queue-capacity must be >= 0");
      }
      if (!source.shed_policy.empty()) {
        Result<ShedPolicy> policy = ParseShedPolicy(source.shed_policy);
        if (!policy.ok()) {
          return Status::InvalidArgument("source '" + source.alias + "': " +
                                         policy.status().message());
        }
      }
      if (source.address.wrapper.empty()) {
        return Status::InvalidArgument("source '" + source.alias +
                                       "' has no wrapper");
      }
      Result<std::unique_ptr<sql::SelectStmt>> source_query =
          sql::ParseSelect(source.query);
      if (!source_query.ok()) {
        return Status::InvalidArgument(
            "source '" + source.alias +
            "' query invalid: " + source_query.status().message());
      }
    }
  }
  return Status::OK();
}

std::string VirtualSensorSpec::ToXml() const {
  xml::Element root("virtual-sensor");
  root.SetAttr("name", name);

  if (!metadata.empty()) {
    xml::Element* meta = root.AddChild("metadata");
    for (const auto& [key, val] : metadata) {
      xml::Element* p = meta->AddChild("predicate");
      p->SetAttr("key", key);
      p->SetAttr("val", val);
    }
  }

  xml::Element* lc = root.AddChild("life-cycle");
  lc->SetAttr("pool-size", std::to_string(life_cycle.pool_size));
  if (life_cycle.lifetime_micros > 0) {
    lc->SetAttr("lifetime",
                std::to_string(life_cycle.lifetime_micros / kMicrosPerMilli) +
                    "ms");
  }

  xml::Element* os = root.AddChild("output-structure");
  for (const Field& f : output_structure.fields()) {
    xml::Element* field = os->AddChild("field");
    field->SetAttr("name", f.name);
    field->SetAttr("type", DataTypeName(f.type));
  }

  xml::Element* st = root.AddChild("storage");
  st->SetAttr("permanent-storage", permanent_str());
  st->SetAttr("size", window_str(storage.history));

  for (const InputStreamSpec& stream : input_streams) {
    xml::Element* is = root.AddChild("input-stream");
    is->SetAttr("name", stream.name);
    if (stream.max_rate > 0) {
      is->SetAttr("rate", std::to_string(stream.max_rate));
    }
    for (const StreamSourceSpec& source : stream.sources) {
      xml::Element* ss = is->AddChild("stream-source");
      ss->SetAttr("alias", source.alias);
      ss->SetAttr("sampling-rate", std::to_string(source.sampling_rate));
      ss->SetAttr("storage-size", window_str(source.window));
      if (source.disconnect_buffer > 0) {
        ss->SetAttr("disconnect-buffer",
                    std::to_string(source.disconnect_buffer));
      }
      if (source.fill_missing_with_last) {
        ss->SetAttr("fill-missing", "last");
      }
      if (source.queue_capacity > 0) {
        ss->SetAttr("queue-capacity", std::to_string(source.queue_capacity));
      }
      if (!source.shed_policy.empty()) {
        ss->SetAttr("shed-policy", source.shed_policy);
      }
      xml::Element* addr = ss->AddChild("address");
      addr->SetAttr("wrapper", source.address.wrapper);
      for (const auto& [key, val] : source.address.predicates) {
        xml::Element* p = addr->AddChild("predicate");
        p->SetAttr("key", key);
        p->SetAttr("val", val);
      }
      ss->AddChild("query")->set_text(source.query);
    }
    is->AddChild("query")->set_text(stream.query);
  }
  return root.ToString();
}

std::string VirtualSensorSpec::permanent_str() const {
  return storage.permanent ? "true" : "false";
}

std::string VirtualSensorSpec::window_str(const WindowSpec& w) {
  if (w.kind == WindowSpec::Kind::kCount) return std::to_string(w.count);
  const Timestamp d = w.duration_micros;
  if (d % kMicrosPerHour == 0 && d > 0) {
    return std::to_string(d / kMicrosPerHour) + "h";
  }
  if (d % kMicrosPerMinute == 0 && d > 0) {
    return std::to_string(d / kMicrosPerMinute) + "m";
  }
  if (d % kMicrosPerSecond == 0 && d > 0) {
    return std::to_string(d / kMicrosPerSecond) + "s";
  }
  return std::to_string(d / kMicrosPerMilli) + "ms";
}

}  // namespace gsn::vsensor

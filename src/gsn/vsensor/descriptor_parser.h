#ifndef GSN_VSENSOR_DESCRIPTOR_PARSER_H_
#define GSN_VSENSOR_DESCRIPTOR_PARSER_H_

#include <string_view>

#include "gsn/util/result.h"
#include "gsn/vsensor/spec.h"

namespace gsn::vsensor {

/// Parses an XML deployment descriptor (paper Fig 1) into a validated
/// VirtualSensorSpec. Expected shape:
///
///   <virtual-sensor name="room-monitor">
///     <metadata>
///       <predicate key="type" val="temperature" />
///     </metadata>
///     <life-cycle pool-size="10" lifetime="1h" />
///     <output-structure>
///       <field name="TEMPERATURE" type="integer" />
///     </output-structure>
///     <storage permanent-storage="true" size="10s" />
///     <input-stream name="dummy" rate="100">
///       <stream-source alias="src1" sampling-rate="1"
///                      storage-size="1h" disconnect-buffer="10">
///         <address wrapper="remote">
///           <predicate key="type" val="temperature" />
///           <predicate key="location" val="bc143" />
///         </address>
///         <query>select avg(temperature) from WRAPPER</query>
///       </stream-source>
///       <query>select * from src1</query>
///     </input-stream>
///   </virtual-sensor>
Result<VirtualSensorSpec> ParseDescriptor(std::string_view xml_text);

/// Reads and parses a descriptor file.
Result<VirtualSensorSpec> ParseDescriptorFile(const std::string& path);

}  // namespace gsn::vsensor

#endif  // GSN_VSENSOR_DESCRIPTOR_PARSER_H_

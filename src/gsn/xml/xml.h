#ifndef GSN_XML_XML_H_
#define GSN_XML_XML_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gsn/util/result.h"

namespace gsn::xml {

/// Minimal XML DOM, sufficient for GSN deployment descriptors (Fig 1 of
/// the paper): elements, attributes, character data, comments, CDATA,
/// processing instructions (skipped), and the five predefined entities
/// plus numeric character references. Namespaces are treated as plain
/// prefixes; DTDs are not supported.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const { return name_; }

  // -- Attributes ---------------------------------------------------------

  /// Returns the attribute value or empty string if absent.
  std::string Attr(std::string_view key) const;
  /// Returns the attribute value or `fallback` if absent.
  std::string AttrOr(std::string_view key, std::string_view fallback) const;
  bool HasAttr(std::string_view key) const;
  void SetAttr(std::string key, std::string value);
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- Children -----------------------------------------------------------

  /// Appends a child element and returns a pointer to it.
  Element* AddChild(std::string name);
  /// Adopts an already-built child element (used by the parser).
  void AdoptChild(std::unique_ptr<Element> child);
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// First child with the given tag name, or nullptr.
  const Element* Child(std::string_view name) const;
  /// All children with the given tag name.
  std::vector<const Element*> Children(std::string_view name) const;

  // -- Text ---------------------------------------------------------------

  /// Concatenated character data directly inside this element
  /// (whitespace-trimmed).
  const std::string& text() const { return text_; }
  void AppendText(std::string_view t) { text_ += t; }
  void set_text(std::string t) { text_ = std::move(t); }

  /// Serializes this element (and subtree) as indented XML.
  std::string ToString(int indent = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
  std::string text_;
};

/// A parsed document owning the root element.
class Document {
 public:
  Document() = default;
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  const Element* root() const { return root_.get(); }
  Element* mutable_root() { return root_.get(); }

 private:
  std::unique_ptr<Element> root_;
};

/// Parses `input` into a Document. Reports the line number on error.
Result<Document> Parse(std::string_view input);

/// Escapes the five predefined XML entities in `s`.
std::string Escape(std::string_view s);

}  // namespace gsn::xml

#endif  // GSN_XML_XML_H_

#include "gsn/xml/xml.h"

#include <cctype>
#include <cstdlib>

#include "gsn/util/strings.h"

namespace gsn::xml {

namespace {

/// Recursive-descent parser over a string_view with line tracking.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Document> ParseDocument() {
    SkipProlog();
    GSN_ASSIGN_OR_RETURN(std::unique_ptr<Element> root, ParseElement());
    SkipMisc();
    if (!AtEnd()) {
      return Error("trailing content after root element");
    }
    return Document(std::move(root));
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    const size_t p = pos_ + offset;
    return p < input_.size() ? input_[p] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool Consume(std::string_view token) {
    if (input_.substr(pos_).starts_with(token)) {
      for (size_t i = 0; i < token.size(); ++i) Advance();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XML line " + std::to_string(line_) + ": " +
                              msg);
  }

  /// Skips the XML declaration, comments, PIs, and DOCTYPE before root.
  void SkipProlog() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<?")) {
        while (!AtEnd() && !Consume("?>")) Advance();
      } else if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<!DOCTYPE")) {
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          if (Peek() == '<') ++depth;
          if (Peek() == '>') --depth;
          Advance();
        }
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    for (;;) {
      SkipWhitespace();
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<?")) {
        while (!AtEnd() && !Consume("?>")) Advance();
      } else {
        return;
      }
    }
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
           c == '_' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    const size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    if (pos_ == start) return Error("expected name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> ParseAttrValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    const char quote = Peek();
    Advance();
    std::string raw;
    while (!AtEnd() && Peek() != quote) {
      raw.push_back(Peek());
      Advance();
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return DecodeEntities(raw);
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      const std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (code <= 0 || code > 0x10FFFF) {
          return Error("invalid character reference &" + std::string(ent) +
                       ";");
        }
        AppendUtf8(out, static_cast<uint32_t>(code));
      } else {
        return Error("unknown entity &" + std::string(ent) + ";");
      }
      i = semi;
    }
    return out;
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (!Consume("<")) return Error("expected '<'");
    GSN_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = std::make_unique<Element>(name);

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag <" + name);
      if (Peek() == '>' || Peek() == '/') break;
      GSN_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute " + key);
      SkipWhitespace();
      GSN_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
      if (elem->HasAttr(key)) {
        return Error("duplicate attribute '" + key + "' on <" + name + ">");
      }
      elem->SetAttr(std::move(key), std::move(value));
    }

    if (Consume("/>")) return elem;
    if (!Consume(">")) return Error("expected '>' in start tag <" + name);

    // Content.
    std::string text;
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<![CDATA[")) {
        while (!AtEnd() && !Consume("]]>")) {
          text.push_back(Peek());
          Advance();
        }
      } else if (Consume("</")) {
        GSN_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        SkipWhitespace();
        if (!Consume(">")) return Error("expected '>' in end tag");
        if (end_name != name) {
          return Error("mismatched end tag </" + end_name + ">, expected </" +
                       name + ">");
        }
        elem->AppendText(StrTrim(text));
        return elem;
      } else if (Peek() == '<' && PeekAt(1) == '?') {
        Consume("<?");
        while (!AtEnd() && !Consume("?>")) Advance();
      } else if (Peek() == '<') {
        GSN_ASSIGN_OR_RETURN(std::unique_ptr<Element> child, ParseElement());
        elem->AdoptChild(std::move(child));
      } else {
        std::string raw;
        while (!AtEnd() && Peek() != '<') {
          raw.push_back(Peek());
          Advance();
        }
        GSN_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(raw));
        text += decoded;
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::string Element::Attr(std::string_view key) const {
  return AttrOr(key, "");
}

std::string Element::AttrOr(std::string_view key,
                            std::string_view fallback) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::string(fallback);
}

bool Element::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return true;
  }
  return false;
}

void Element::SetAttr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

Element* Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

void Element::AdoptChild(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
}

const Element* Element::Child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::Children(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::ToString(int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [k, v] : attrs_) {
    out += " " + k + "=\"" + Escape(v) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += " />\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) out += Escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& c : children_) out += c->ToString(indent + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

Result<Document> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace gsn::xml

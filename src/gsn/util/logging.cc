#include "gsn/util/logging.h"

#include <cstdio>

namespace gsn {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

Logger& Logger::Instance() {
  static Logger* instance = new Logger();
  return *instance;
}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (level < min_level_) return;
  std::fprintf(stderr, "[%s] [%s] %s\n", LevelName(level), component.c_str(),
               message.c_str());
  ++emitted_;
}

long Logger::emitted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

}  // namespace gsn

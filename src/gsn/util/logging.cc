#include "gsn/util/logging.h"

#include <cstdio>

#include "gsn/util/trace_context.h"

namespace gsn {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

Logger& Logger::Instance() {
  static Logger* instance = new Logger();
  return *instance;
}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message) {
  // Lines emitted while a sampled span is open on this thread carry the
  // trace id, so grepping stderr for `trace=<id>` reconstructs a
  // tuple's journey across components.
  const TraceContext trace = ThreadTraceContext();
  std::lock_guard<std::mutex> lock(mu_);
  if (level < min_level_) return;
  std::string line = std::string("[") + LevelName(level) + "] [" + component +
                     "] " + message;
  if (trace.valid()) line += " trace=" + trace.TraceIdHex();
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  ++emitted_;
}

void Logger::SetSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

long Logger::emitted_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

}  // namespace gsn

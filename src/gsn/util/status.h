#ifndef GSN_UTIL_STATUS_H_
#define GSN_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gsn {

/// Error categories used across the middleware. Mirrors the kinds of
/// failures a GSN container has to report: bad descriptors, bad SQL,
/// missing resources, stream-quality problems, and I/O.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kPlanError,
  kExecutionError,
  kResourceExhausted,
  kUnavailable,
  kPermissionDenied,
  kIntegrityError,
  kIoError,
  kTimeout,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// Value-type operation outcome. GSN never throws across API
/// boundaries; every fallible public function returns a Status or a
/// Result<T>. Copyable and cheap when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status IntegrityError(std::string msg) {
    return Status(StatusCode::kIntegrityError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Propagates a non-OK Status to the caller.
#define GSN_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::gsn::Status _gsn_status = (expr);            \
    if (!_gsn_status.ok()) return _gsn_status;     \
  } while (0)

}  // namespace gsn

#endif  // GSN_UTIL_STATUS_H_

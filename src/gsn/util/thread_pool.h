#ifndef GSN_UTIL_THREAD_POOL_H_
#define GSN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gsn {

/// Fixed-size worker pool. The paper's `<life-cycle pool-size="10"/>`
/// element controls "the number of threads available for processing" of
/// a virtual sensor; each deployed sensor gets a ThreadPool of that
/// size from the life-cycle manager.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution. Returns false if the pool has been
  /// shut down.
  bool Submit(std::function<void()> task);

  /// Blocks until all queued and running tasks have finished.
  void Wait();

  /// Stops accepting tasks, drains the queue, joins the workers.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  /// Tasks currently queued (not yet running).
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace gsn

#endif  // GSN_UTIL_THREAD_POOL_H_

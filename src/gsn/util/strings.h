#ifndef GSN_UTIL_STRINGS_H_
#define GSN_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gsn/util/clock.h"
#include "gsn/util/result.h"

namespace gsn {

/// Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string StrTrim(std::string_view input);

/// ASCII lower/upper-casing (locale-independent).
std::string StrToLower(std::string_view input);
std::string StrToUpper(std::string_view input);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Case-insensitive ASCII equality.
bool StrEqualsIgnoreCase(std::string_view a, std::string_view b);

bool StrStartsWith(std::string_view s, std::string_view prefix);
bool StrEndsWith(std::string_view s, std::string_view suffix);

/// Strict integer/double parsing (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);
Result<bool> ParseBool(std::string_view s);

/// Parses GSN descriptor durations/window sizes: "500ms", "10s", "2m",
/// "1h", or a bare integer (interpreted as a count, returned negated so
/// callers can distinguish count windows from time windows — see
/// ParseWindowSpec for the typed variant).
Result<Timestamp> ParseDurationMicros(std::string_view s);

/// A `<storage size=...>` / `storage-size=...` specification: either a
/// time-based window ("10s", "1h") or a count-based window ("100").
struct WindowSpec {
  enum class Kind { kTime, kCount };
  Kind kind = Kind::kTime;
  Timestamp duration_micros = 0;  // valid iff kind == kTime
  int64_t count = 0;              // valid iff kind == kCount
};

Result<WindowSpec> ParseWindowSpec(std::string_view s);

/// Lowercase hex encoding of arbitrary bytes.
std::string HexEncode(const uint8_t* data, size_t len);

}  // namespace gsn

#endif  // GSN_UTIL_STRINGS_H_

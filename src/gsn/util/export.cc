#include "gsn/util/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gsn {

std::string JsonEscape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

namespace {

std::string ValueToJson(const Value& v) {
  if (v.is_null()) return "null";
  if (v.is_bool()) return v.bool_value() ? "true" : "false";
  if (v.is_int()) return std::to_string(v.int_value());
  if (v.is_timestamp()) return std::to_string(v.timestamp_value());
  if (v.is_double()) {
    const double d = v.double_value();
    if (!std::isfinite(d)) return "null";  // JSON has no Inf/NaN
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    return buf;
  }
  if (v.is_binary()) {
    return JsonEscape("<binary:" + std::to_string(v.binary_value()->size()) +
                      ">");
  }
  return JsonEscape(v.string_value());
}

std::string CsvCell(const Value& v) {
  std::string raw;
  if (v.is_null()) {
    return "";
  } else if (v.is_binary()) {
    raw = "<binary:" + std::to_string(v.binary_value()->size()) + ">";
  } else {
    raw = v.ToString();
  }
  if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (char c : raw) {
    if (c == '"') quoted += "\"\"";
    else quoted.push_back(c);
  }
  quoted += "\"";
  return quoted;
}

}  // namespace

std::string RelationToJson(const Relation& relation) {
  std::string out = "[";
  for (size_t r = 0; r < relation.NumRows(); ++r) {
    if (r > 0) out += ",";
    out += "{";
    const auto& row = relation.rows()[r];
    for (size_t c = 0; c < relation.schema().size(); ++c) {
      if (c > 0) out += ",";
      out += JsonEscape(relation.schema().field(c).name);
      out += ":";
      out += ValueToJson(row[c]);
    }
    out += "}";
  }
  out += "]";
  return out;
}

std::string RelationToCsv(const Relation& relation) {
  std::string out;
  for (size_t c = 0; c < relation.schema().size(); ++c) {
    if (c > 0) out += ",";
    out += relation.schema().field(c).name;
  }
  out += "\n";
  for (const auto& row : relation.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ",";
      out += CsvCell(row[c]);
    }
    out += "\n";
  }
  return out;
}

Result<std::string> AsciiPlot(const Relation& relation,
                              const std::string& value_column, int width,
                              int height) {
  if (width < 8 || height < 2) {
    return Status::InvalidArgument("plot area too small");
  }
  GSN_ASSIGN_OR_RETURN(size_t value_idx,
                       relation.schema().IndexOf(value_column));
  if (relation.empty()) return std::string("(no data)\n");

  // Collect (x, y) points; x = timed column when available.
  Result<size_t> timed_idx = relation.schema().IndexOf(kTimedField);
  std::vector<std::pair<double, double>> points;
  points.reserve(relation.NumRows());
  for (size_t r = 0; r < relation.NumRows(); ++r) {
    const auto& row = relation.rows()[r];
    const Value& v = row[value_idx];
    if (v.is_null()) continue;
    GSN_ASSIGN_OR_RETURN(double y, v.AsDouble());
    double x = static_cast<double>(r);
    if (timed_idx.ok() && !row[*timed_idx].is_null()) {
      GSN_ASSIGN_OR_RETURN(x, row[*timed_idx].AsDouble());
    }
    points.emplace_back(x, y);
  }
  if (points.empty()) return std::string("(no data)\n");
  std::sort(points.begin(), points.end());

  double min_x = points.front().first, max_x = points.back().first;
  double min_y = points[0].second, max_y = points[0].second;
  for (const auto& [x, y] : points) {
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  if (max_x == min_x) max_x = min_x + 1;
  if (max_y == min_y) max_y = min_y + 1;

  std::vector<std::string> grid(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (const auto& [x, y] : points) {
    const int col = static_cast<int>((x - min_x) / (max_x - min_x) *
                                     (width - 1));
    const int row = static_cast<int>((y - min_y) / (max_y - min_y) *
                                     (height - 1));
    grid[static_cast<size_t>(height - 1 - row)][static_cast<size_t>(col)] =
        '*';
  }

  char label[64];
  std::string out;
  std::snprintf(label, sizeof(label), "%g", max_y);
  out += std::string(label) + "\n";
  for (const std::string& line : grid) {
    out += "|" + line + "\n";
  }
  std::snprintf(label, sizeof(label), "%g", min_y);
  out += std::string(label) + " +" + std::string(static_cast<size_t>(width), '-') +
         "\n";
  std::snprintf(label, sizeof(label), "x: %g .. %g  (%zu points, column %s)",
                min_x, max_x, points.size(), value_column.c_str());
  out += std::string(label) + "\n";
  return out;
}

std::string EdgesToDot(const std::string& graph_name,
                       const std::vector<GraphEdge>& edges) {
  std::string out = "digraph \"" + graph_name + "\" {\n";
  for (const GraphEdge& edge : edges) {
    out += "  \"" + edge.from + "\" -> \"" + edge.to + "\"";
    if (!edge.label.empty()) {
      out += " [label=\"" + edge.label + "\"]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace gsn

#include "gsn/util/rng.h"

#include <cmath>

namespace gsn {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(state);
  s1_ = SplitMix64(state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be nonzero
}

uint64_t Rng::NextUint64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + NextDouble() * (hi - lo);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace gsn

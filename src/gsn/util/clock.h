#ifndef GSN_UTIL_CLOCK_H_
#define GSN_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace gsn {

/// Timestamps throughout GSN are microseconds since an arbitrary epoch.
/// The paper (§3) gives every GSN container a local clock used to
/// implicitly timestamp arriving stream elements; injecting the clock
/// makes the whole pipeline deterministic under test.
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerMilli = 1000;
constexpr Timestamp kMicrosPerSecond = 1000 * kMicrosPerMilli;
constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Timestamp kMicrosPerHour = 60 * kMicrosPerMinute;

/// Abstract time source. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since this clock's epoch.
  virtual Timestamp NowMicros() const = 0;
};

/// Wall-clock time (std::chrono::system_clock). Used by benchmarks and
/// live deployments.
class SystemClock : public Clock {
 public:
  Timestamp NowMicros() const override;
  /// A process-wide shared instance.
  static std::shared_ptr<SystemClock> Shared();
};

/// Manually advanced clock for deterministic tests and the network
/// simulator. Starts at 0.
class VirtualClock : public Clock {
 public:
  VirtualClock() : now_(0) {}
  explicit VirtualClock(Timestamp start) : now_(start) {}

  Timestamp NowMicros() const override { return now_.load(); }

  /// Moves time forward by `delta_micros` (must be >= 0).
  void Advance(Timestamp delta_micros) { now_ += delta_micros; }
  /// Jumps to an absolute time (must not go backwards in normal use).
  void SetTime(Timestamp t) { now_.store(t); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace gsn

#endif  // GSN_UTIL_CLOCK_H_

#ifndef GSN_UTIL_RESULT_H_
#define GSN_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "gsn/util/status.h"

namespace gsn {

/// A Status or a value of type T. The usual database-engine idiom:
///
///   Result<Plan> plan = Planner::Plan(stmt);
///   if (!plan.ok()) return plan.status();
///   Execute(*plan);
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK Status makes
  /// GSN_RETURN/`return status;` work. A Status of kOk is a bug.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error Status to the caller.
#define GSN_ASSIGN_OR_RETURN(lhs, expr)              \
  auto GSN_CONCAT_(_gsn_result_, __LINE__) = (expr); \
  if (!GSN_CONCAT_(_gsn_result_, __LINE__).ok())     \
    return GSN_CONCAT_(_gsn_result_, __LINE__).status(); \
  lhs = std::move(GSN_CONCAT_(_gsn_result_, __LINE__)).value()

#define GSN_CONCAT_INNER_(a, b) a##b
#define GSN_CONCAT_(a, b) GSN_CONCAT_INNER_(a, b)

}  // namespace gsn

#endif  // GSN_UTIL_RESULT_H_

#include "gsn/util/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace gsn {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == sep) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrTrim(std::string_view input) {
  size_t b = 0;
  size_t e = input.size();
  while (b < e && std::isspace(static_cast<unsigned char>(input[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(input[e - 1]))) --e;
  return std::string(input.substr(b, e - b));
}

std::string StrToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StrEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StrStartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool StrEndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  const std::string str = StrTrim(s);
  if (str.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(str.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + str);
  if (end != str.c_str() + str.size()) {
    return Status::ParseError("not an integer: " + str);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  const std::string str = StrTrim(s);
  if (str.empty()) return Status::ParseError("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(str.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + str);
  if (end != str.c_str() + str.size()) {
    return Status::ParseError("not a double: " + str);
  }
  return v;
}

Result<bool> ParseBool(std::string_view s) {
  const std::string str = StrToLower(StrTrim(s));
  if (str == "true" || str == "1" || str == "yes" || str == "on") return true;
  if (str == "false" || str == "0" || str == "no" || str == "off") return false;
  return Status::ParseError("not a boolean: " + str);
}

Result<Timestamp> ParseDurationMicros(std::string_view s) {
  const std::string str = StrToLower(StrTrim(s));
  if (str.empty()) return Status::ParseError("empty duration");
  size_t unit_pos = str.size();
  while (unit_pos > 0 &&
         !std::isdigit(static_cast<unsigned char>(str[unit_pos - 1]))) {
    --unit_pos;
  }
  const std::string digits = str.substr(0, unit_pos);
  const std::string unit = str.substr(unit_pos);
  GSN_ASSIGN_OR_RETURN(int64_t n, ParseInt64(digits));
  if (n < 0) return Status::ParseError("negative duration: " + str);
  if (unit == "us") return n;
  if (unit == "ms") return n * kMicrosPerMilli;
  if (unit == "s" || unit.empty()) return n * kMicrosPerSecond;
  if (unit == "m" || unit == "min") return n * kMicrosPerMinute;
  if (unit == "h") return n * kMicrosPerHour;
  return Status::ParseError("unknown duration unit '" + unit + "' in " + str);
}

Result<WindowSpec> ParseWindowSpec(std::string_view s) {
  const std::string str = StrToLower(StrTrim(s));
  if (str.empty()) return Status::ParseError("empty window spec");
  // Bare integer => count-based window (paper: count- or time-based
  // windows on data streams, §3 item 4).
  bool all_digits = true;
  for (char c : str) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      all_digits = false;
      break;
    }
  }
  WindowSpec spec;
  if (all_digits) {
    GSN_ASSIGN_OR_RETURN(spec.count, ParseInt64(str));
    if (spec.count <= 0) return Status::ParseError("window count must be > 0");
    spec.kind = WindowSpec::Kind::kCount;
    return spec;
  }
  GSN_ASSIGN_OR_RETURN(spec.duration_micros, ParseDurationMicros(str));
  if (spec.duration_micros <= 0) {
    return Status::ParseError("window duration must be > 0");
  }
  spec.kind = WindowSpec::Kind::kTime;
  return spec;
}

std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

}  // namespace gsn

#ifndef GSN_UTIL_LOGGING_H_
#define GSN_UTIL_LOGGING_H_

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace gsn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide logging configuration. Thread-safe. Sinks to stderr;
/// tests lower or raise the threshold to keep output quiet.
class Logger {
 public:
  static Logger& Instance();

  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  /// Emits one formatted line `[LEVEL] [component] message` if `level`
  /// passes the threshold.
  void Log(LogLevel level, const std::string& component,
           const std::string& message);

  /// Number of messages emitted since process start (for tests).
  long emitted_count() const;

  /// Redirects formatted lines (without trailing newline) to `sink`
  /// instead of stderr; null restores stderr. Tests capture output with
  /// this; it is not a production log-shipping hook.
  void SetSink(std::function<void(const std::string&)> sink);

 private:
  Logger() = default;

  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kWarn;
  long emitted_ = 0;
  std::function<void(const std::string&)> sink_;
};

/// Stream-style helper: GSN_LOG(kInfo, "vsm") << "deployed " << name;
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogMessage() { Logger::Instance().Log(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

#define GSN_LOG(level, component) ::gsn::LogMessage(::gsn::LogLevel::level, component)

}  // namespace gsn

#endif  // GSN_UTIL_LOGGING_H_

#ifndef GSN_UTIL_HASH_H_
#define GSN_UTIL_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gsn {

/// From-scratch SHA-256 (FIPS 180-4). The container's data-integrity
/// layer (paper §4: "guarantees data integrity and confidentiality
/// through electronic signatures") signs stream elements with
/// HMAC-SHA256; no external crypto library is available offline.
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha256();

  /// Streaming interface.
  void Update(const uint8_t* data, size_t len);
  void Update(std::string_view data);
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// HMAC-SHA256 per RFC 2104.
Sha256::Digest HmacSha256(std::string_view key, std::string_view message);
std::string HmacSha256Hex(std::string_view key, std::string_view message);

/// FNV-1a 64-bit, for non-cryptographic hashing (query cache keys etc.).
uint64_t Fnv1a64(std::string_view data);

}  // namespace gsn

#endif  // GSN_UTIL_HASH_H_

#include "gsn/util/trace_context.h"

namespace gsn {

namespace {

std::string Hex64(uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

thread_local TraceContext t_current_trace;

}  // namespace

std::string TraceContext::TraceIdHex() const {
  return Hex64(trace_hi) + Hex64(trace_lo);
}

std::string TraceContext::SpanIdHex() const { return Hex64(span_id); }

void SetThreadTraceContext(const TraceContext& context) {
  t_current_trace = context;
}

void ClearThreadTraceContext() { t_current_trace = TraceContext(); }

TraceContext ThreadTraceContext() { return t_current_trace; }

}  // namespace gsn

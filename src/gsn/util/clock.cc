#include "gsn/util/clock.h"

#include <chrono>

namespace gsn {

Timestamp SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::shared_ptr<SystemClock> SystemClock::Shared() {
  static std::shared_ptr<SystemClock>* instance =
      new std::shared_ptr<SystemClock>(std::make_shared<SystemClock>());
  return *instance;
}

}  // namespace gsn

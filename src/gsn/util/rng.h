#ifndef GSN_UTIL_RNG_H_
#define GSN_UTIL_RNG_H_

#include <cstdint>

namespace gsn {

/// Small deterministic PRNG (xorshift128+ seeded via splitmix64).
/// All simulated devices and workload generators take an explicit seed
/// so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform 64-bit value.
  uint64_t NextUint64();
  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);
  /// Bernoulli trial with success probability p in [0, 1].
  bool NextBool(double p);
  /// Standard normal via Box-Muller.
  double NextGaussian();

 private:
  uint64_t s0_;
  uint64_t s1_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gsn

#endif  // GSN_UTIL_RNG_H_

#ifndef GSN_UTIL_TRACE_CONTEXT_H_
#define GSN_UTIL_TRACE_CONTEXT_H_

#include <cstdint>
#include <string>

namespace gsn {

/// Correlation identity of one end-to-end tuple trace: a 128-bit trace
/// id shared by every span of the trace, the 64-bit id of the current
/// span, and the head-sampling decision made when the trace was rooted.
/// Lives in util (not telemetry) so the type layer can stamp stream
/// elements with it without depending on the telemetry subsystem;
/// `gsn::telemetry` re-exports it. An all-zero trace id means
/// "untraced" — the default for every element until a stream source
/// roots a trace on it.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  /// Head-sampling decision, inherited by every child span. Spans of
  /// unsampled traces are still recorded when they finish with an
  /// error (always-sample-on-error).
  bool sampled = false;

  /// True when a trace has been rooted (ids assigned).
  bool valid() const { return trace_hi != 0 || trace_lo != 0; }

  /// 32 lowercase hex chars, the trace's external name.
  std::string TraceIdHex() const;
  /// 16 lowercase hex chars for the span id.
  std::string SpanIdHex() const;
};

/// Thread-local trace binding consumed by the logger: log lines emitted
/// while a sampled span is active carry `trace=<id>`. `telemetry::Span`
/// sets and restores it; nothing else should need to.
void SetThreadTraceContext(const TraceContext& context);
void ClearThreadTraceContext();
/// The binding for this thread (invalid context when none is bound).
TraceContext ThreadTraceContext();

}  // namespace gsn

#endif  // GSN_UTIL_TRACE_CONTEXT_H_

#include "gsn/util/status.h"

namespace gsn {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kIntegrityError:
      return "IntegrityError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace gsn

#ifndef GSN_UTIL_EXPORT_H_
#define GSN_UTIL_EXPORT_H_

#include <string>
#include <vector>

#include "gsn/types/schema.h"
#include "gsn/util/result.h"

namespace gsn {

/// Result-set exporters and a terminal plotter — the stand-in for the
/// Java GSN's "visualization systems for plotting data and visualizing
/// the network structure" (paper §5) and for the web interface's data
/// endpoints. Binary values are exported as "<binary:N>" placeholders
/// (JSON/CSV consumers fetch blobs through the API, not inline).

/// Renders a relation as a JSON array of objects:
///   [{"timed": 100, "temperature": 22}, ...]
/// Timestamps export as integers (microseconds); NULL as null.
std::string RelationToJson(const Relation& relation);

/// RFC-4180-style CSV with a header row; fields containing commas,
/// quotes, or newlines are double-quoted.
std::string RelationToCsv(const Relation& relation);

/// Plots one numeric column of a relation against its `timed` column
/// (or row index when no `timed` exists) as a fixed-size ASCII chart.
/// Returns an error if the column is missing or non-numeric.
Result<std::string> AsciiPlot(const Relation& relation,
                              const std::string& value_column, int width = 60,
                              int height = 12);

/// Graphviz DOT rendering of a set of labelled edges — used to
/// visualize the network structure (nodes and the sensors streaming
/// between them).
struct GraphEdge {
  std::string from;
  std::string to;
  std::string label;
};
std::string EdgesToDot(const std::string& graph_name,
                       const std::vector<GraphEdge>& edges);

/// Escapes a string for inclusion in a JSON document (quotes added).
std::string JsonEscape(std::string_view s);

}  // namespace gsn

#endif  // GSN_UTIL_EXPORT_H_

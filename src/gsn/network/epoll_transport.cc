#include "gsn/network/epoll_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "gsn/util/logging.h"

namespace gsn::network {

namespace {

Timestamp SteadyMicros() {
  return telemetry::SteadyClock::Instance()->NowMicros();
}

void PutU32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 24) & 0xff));
}

uint32_t GetU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Wire frame of the peer plane: u32 body length, then four
/// length-prefixed strings (from, to, topic, payload). `to` is empty
/// for broadcasts.
std::string EncodeFrame(const std::string& from, const std::string& to,
                        const std::string& topic,
                        const std::string& payload) {
  std::string body;
  body.reserve(16 + from.size() + to.size() + topic.size() + payload.size());
  PutString(&body, from);
  PutString(&body, to);
  PutString(&body, topic);
  PutString(&body, payload);
  std::string frame;
  frame.reserve(4 + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

bool GetString(const std::string& body, size_t* pos, std::string* out) {
  if (body.size() - *pos < 4) return false;
  const uint32_t len = GetU32(body.data() + *pos);
  *pos += 4;
  if (body.size() - *pos < len) return false;
  out->assign(body, *pos, len);
  *pos += len;
  return true;
}

std::string AddrToString(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "peer-out";
    case 1:
      return "peer-in";
    default:
      return "http";
  }
}

}  // namespace

EpollTransport::EpollTransport() : EpollTransport(Options()) {}

EpollTransport::EpollTransport(Options options)
    : options_(std::move(options)),
      ops_(options_.socket_ops != nullptr ? options_.socket_ops
                                          : SocketOps::Real()),
      redial_rng_(options_.redial_seed) {
  if (options_.metrics != nullptr) {
    const telemetry::Labels labels = {{"role", options_.metrics_role}};
    connections_gauge_ = options_.metrics->GetGauge(
        "gsn_transport_connections", labels, "Open transport connections");
    accepted_counter_ = options_.metrics->GetCounter(
        "gsn_transport_accepted_total", labels,
        "Connections accepted since start");
    queued_bytes_gauge_ = options_.metrics->GetGauge(
        "gsn_transport_queued_bytes", labels,
        "Bytes waiting in per-connection write queues");
    timeouts_counter_ = options_.metrics->GetCounter(
        "gsn_transport_timeouts_total", labels,
        "Connections closed by the idle/read timeout");
    overflows_counter_ = options_.metrics->GetCounter(
        "gsn_transport_overflows_total", labels,
        "Connections closed by write-queue overflow (backpressure)");
    http_requests_counter_ = options_.metrics->GetCounter(
        "gsn_transport_http_requests_total", labels,
        "HTTP requests served across all connections");
    accept_errors_counter_ = options_.metrics->GetCounter(
        "gsn_transport_accept_errors_total", labels,
        "Accept failures (EMFILE/ENFILE pause the listener)");
    dial_failures_counter_ = options_.metrics->GetCounter(
        "gsn_transport_dial_failures_total", labels,
        "Peer dial/handshake failures (includes connect timeouts)");
    reconnects_counter_ = options_.metrics->GetCounter(
        "gsn_transport_reconnects_total", labels,
        "Peer links re-established after a failure");
    resets_counter_ = options_.metrics->GetCounter(
        "gsn_transport_resets_total", labels,
        "Connections torn down by a forced reset");
  }
}

EpollTransport::~EpollTransport() { Stop(); }

Status EpollTransport::Start() {
  if (running_.load()) return Status::AlreadyExists("transport running");
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IoError("epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::IoError("eventfd() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  running_.store(true);
  loop_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void EpollTransport::Stop() {
  if (!running_.exchange(false)) return;
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  peer_conns_.clear();
  flush_pending_.clear();
  reset_pending_.clear();
  dial_states_.clear();
  paused_listeners_.clear();
  pending_deliveries_.clear();
  pending_peer_ups_.clear();
  pending_errors_.clear();
  total_out_bytes_ = 0;
  const int peer_listen = peer_listen_fd_.exchange(-1);
  if (peer_listen >= 0) ::close(peer_listen);
  const int http_listen = http_listen_fd_.exchange(-1);
  if (http_listen >= 0) ::close(http_listen);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  UpdateGaugesLocked();
}

Result<int> EpollTransport::MakeListener(uint16_t port, uint16_t* bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind() failed on port " + std::to_string(port));
  }
  if (::listen(fd, 511) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound_port = ntohs(addr.sin_port);
  return fd;
}

Status EpollTransport::ListenPeer(uint16_t port) {
  if (!running_.load()) return Status::Unavailable("transport not started");
  if (peer_listen_fd_.load() >= 0) {
    return Status::AlreadyExists("peer listener already bound");
  }
  uint16_t bound = 0;
  Result<int> fd = MakeListener(port, &bound);
  GSN_RETURN_IF_ERROR(fd.status());
  peer_port_.store(bound);
  peer_listen_fd_.store(*fd);
  peer_plane_active_.store(true);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = *fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, *fd, &ev);
  GSN_LOG(kInfo, "transport") << "peer plane listening on 127.0.0.1:"
                              << bound;
  return Status::OK();
}

Status EpollTransport::ListenHttp(uint16_t port, HttpHandler handler) {
  if (!running_.load()) return Status::Unavailable("transport not started");
  if (http_listen_fd_.load() >= 0) {
    return Status::AlreadyExists("http listener already bound");
  }
  uint16_t bound = 0;
  Result<int> fd = MakeListener(port, &bound);
  GSN_RETURN_IF_ERROR(fd.status());
  {
    std::lock_guard<std::mutex> lock(mu_);
    http_handler_ = std::move(handler);
  }
  http_port_.store(bound);
  http_listen_fd_.store(*fd);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = *fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, *fd, &ev);
  GSN_LOG(kInfo, "transport") << "http plane listening on 127.0.0.1:"
                              << bound;
  return Status::OK();
}

void EpollTransport::AddPeer(const std::string& node_id,
                             const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_addrs_[node_id] = {host, port};
  peer_plane_active_.store(true);
}

Status EpollTransport::RegisterNode(const std::string& node_id,
                                    NetworkNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = local_nodes_.try_emplace(node_id, node);
  if (!inserted) {
    return Status::AlreadyExists("node already registered: " + node_id);
  }
  return Status::OK();
}

Status EpollTransport::UnregisterNode(const std::string& node_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (local_nodes_.erase(node_id) == 0) {
    return Status::NotFound("node not registered: " + node_id);
  }
  return Status::OK();
}

void EpollTransport::SetErrorCallback(ErrorCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  error_callback_ = std::move(callback);
}

void EpollTransport::SetPeerUpCallback(PeerUpCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  peer_up_callback_ = std::move(callback);
}

Status EpollTransport::ResetPeer(const std::string& peer) {
  if (!running_.load()) return Status::Unavailable("transport not started");
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [fd, conn] : conns_) {
      if (conn->kind != ConnKind::kHttp && conn->peer == peer) {
        reset_pending_.insert(fd);
      }
    }
  }
  WakeLoop();  // closes happen on the loop thread (HandleWake)
  return Status::OK();
}

Status EpollTransport::Send(Timestamp now, const std::string& from,
                            const std::string& to, const std::string& topic,
                            std::string payload) {
  if (!running_.load()) return Status::Unavailable("transport not started");
  NetworkNode* local = nullptr;
  Status status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = local_nodes_.find(to);
    if (it != local_nodes_.end()) {
      local = it->second;
    } else {
      status =
          EnqueueFrameLocked(to, EncodeFrame(from, to, topic, payload));
    }
  }
  if (local != nullptr) {
    Message message;
    message.from = from;
    message.to = to;
    message.topic = topic;
    message.payload = std::move(payload);
    message.sent_at = now;
    message.deliver_at = now;
    local->OnMessage(message);
    return Status::OK();
  }
  WakeLoop();
  return status;
}

Status EpollTransport::Broadcast(Timestamp now, const std::string& from,
                                 const std::string& topic,
                                 const std::string& payload) {
  if (!running_.load()) return Status::Unavailable("transport not started");
  std::vector<std::pair<std::string, NetworkNode*>> locals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::set<std::string> remote_targets;
    for (const auto& [node_id, addr] : peer_addrs_) {
      remote_targets.insert(node_id);
    }
    for (const auto& [node_id, fd] : peer_conns_) {
      remote_targets.insert(node_id);
    }
    remote_targets.erase(from);
    for (const auto& [node_id, node] : local_nodes_) {
      if (node_id == from) continue;
      locals.emplace_back(node_id, node);
      remote_targets.erase(node_id);
    }
    const std::string frame = EncodeFrame(from, "", topic, payload);
    for (const std::string& target : remote_targets) {
      // Best effort: a down peer fails its own enqueue, not the round.
      (void)EnqueueFrameLocked(target, frame);
    }
  }
  for (auto& [node_id, node] : locals) {
    Message message;
    message.from = from;
    message.to = node_id;
    message.topic = topic;
    message.payload = payload;
    message.sent_at = now;
    message.deliver_at = now;
    node->OnMessage(message);
  }
  WakeLoop();
  return Status::OK();
}

std::vector<ConnectionStats> EpollTransport::Connections() const {
  const Timestamp steady = SteadyMicros();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ConnectionStats> out;
  out.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    ConnectionStats stats;
    stats.peer = conn->peer;
    stats.kind = KindName(static_cast<int>(conn->kind));
    stats.state = conn->connecting ? "connecting"
                  : conn->want_close ? "draining"
                                     : "open";
    stats.queued_bytes = conn->out_bytes;
    stats.requests_served = conn->requests_served;
    stats.frames_in = conn->frames_in;
    stats.frames_out = conn->frames_out;
    stats.age_micros = steady - conn->opened_steady;
    stats.idle_micros = steady - conn->last_activity_steady;
    out.push_back(std::move(stats));
  }
  return out;
}

size_t EpollTransport::connection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

// ------------------------------------------------------------- Shared path

Status EpollTransport::EnqueueFrameLocked(const std::string& to,
                                          const std::string& bytes) {
  Conn* conn = nullptr;
  auto it = peer_conns_.find(to);
  if (it != peer_conns_.end()) {
    auto conn_it = conns_.find(it->second);
    if (conn_it != conns_.end()) conn = conn_it->second.get();
  }
  if (conn == nullptr) conn = DialLocked(to, /*force=*/false);
  if (conn == nullptr) {
    return Status::Unavailable("no route to node: " + to);
  }
  if (conn->want_close) {
    return Status::Unavailable("connection to " + to + " closing");
  }
  // Occupancy check: a queue already at its bound means the peer is
  // not draining; one frame may exceed the bound so oversized frames
  // still pass when the link is healthy.
  if (conn->out_bytes >= options_.max_write_queue_bytes) {
    // Backpressure: drop the queue and disconnect the slow peer; the
    // resilience layer above re-delivers via NACK/replay.
    overflows_total_.fetch_add(1);
    if (overflows_counter_) overflows_counter_->Increment();
    total_out_bytes_ -= conn->out_bytes;
    conn->outq.clear();
    conn->out_off = 0;
    conn->out_bytes = 0;
    conn->want_close = true;
    flush_pending_.insert(conn->fd);
    pending_errors_.emplace_back(
        conn->peer, Status::ResourceExhausted("write queue overflow"));
    UpdateGaugesLocked();
    return Status::ResourceExhausted("write queue overflow to " + to);
  }
  conn->out_bytes += bytes.size();
  total_out_bytes_ += bytes.size();
  conn->outq.push_back(bytes);
  ++conn->frames_out;
  flush_pending_.insert(conn->fd);
  UpdateGaugesLocked();
  return Status::OK();
}

EpollTransport::Conn* EpollTransport::DialLocked(const std::string& node_id,
                                                 bool force) {
  auto addr_it = peer_addrs_.find(node_id);
  if (addr_it == peer_addrs_.end()) return nullptr;
  const Timestamp steady = SteadyMicros();
  auto ds_it = dial_states_.find(node_id);
  if (ds_it != dial_states_.end() && !force) {
    DialState& ds = ds_it->second;
    if (ds.auto_pending && steady < ds.next_redial_steady) {
      return nullptr;  // backing off; the loop redials when due
    }
    if (!ds.auto_pending && options_.redial_policy.Exhausted(ds.attempts)) {
      ds.attempts = 0;  // explicit Send restarts an exhausted cycle
    }
  }
  const int fd =
      ops_->Socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    NoteDialFailureLocked(
        node_id, Status::IoError(std::string("socket() failed: ") +
                                 std::strerror(errno) + " (peer " + node_id +
                                 ")"));
    return nullptr;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(addr_it->second.second);
  if (::inet_pton(AF_INET, addr_it->second.first.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    NoteDialFailureLocked(node_id,
                          Status::InvalidArgument("bad peer address '" +
                                                  addr_it->second.first +
                                                  "' (peer " + node_id + ")"));
    return nullptr;
  }
  const int rc =
      ops_->Connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    connect_failures_total_.fetch_add(1);
    const std::string detail = std::strerror(errno);
    ::close(fd);
    NoteDialFailureLocked(node_id,
                          Status::Unavailable("dial failed: " + detail +
                                              " (peer " + node_id + ")"));
    return nullptr;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->kind = ConnKind::kPeerOut;
  conn->peer = node_id;
  conn->connecting = rc != 0;
  conn->opened_steady = steady;
  conn->last_activity_steady = conn->opened_steady;
  if (conn->connecting && options_.connect_timeout_micros > 0) {
    conn->connect_deadline_steady = steady + options_.connect_timeout_micros;
  }
  Conn* raw = conn.get();
  conns_[fd] = std::move(conn);
  peer_conns_[node_id] = fd;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  if (!raw->connecting) {
    pending_peer_ups_.push_back(node_id);
    NoteDialSuccessLocked(node_id);
  }
  UpdateGaugesLocked();
  return raw;
}

void EpollTransport::NoteDialFailureLocked(const std::string& peer,
                                           const Status& reason) {
  dial_failures_total_.fetch_add(1);
  if (dial_failures_counter_) dial_failures_counter_->Increment();
  pending_errors_.emplace_back(peer, reason);
  ScheduleRedialLocked(peer, SteadyMicros());
}

void EpollTransport::NoteDialSuccessLocked(const std::string& peer) {
  auto it = dial_states_.find(peer);
  if (it == dial_states_.end()) return;
  if (it->second.attempts > 0) {
    reconnects_total_.fetch_add(1);
    if (reconnects_counter_) reconnects_counter_->Increment();
  }
  dial_states_.erase(it);
}

void EpollTransport::ScheduleRedialLocked(const std::string& peer,
                                          Timestamp steady_now) {
  if (!options_.auto_redial || !running_.load()) return;
  if (peer_addrs_.count(peer) == 0) return;  // not a dial-table peer
  DialState& ds = dial_states_[peer];
  ds.attempts += 1;
  if (options_.redial_policy.Exhausted(ds.attempts)) {
    // Give up automatically; the next explicit Send restarts the cycle.
    ds.auto_pending = false;
    ds.next_redial_steady = 0;
    return;
  }
  ds.auto_pending = true;
  ds.next_redial_steady =
      steady_now +
      options_.redial_policy.BackoffForAttempt(ds.attempts, &redial_rng_);
}

void EpollTransport::WakeLoop() {
  const uint64_t one = 1;
  if (wake_fd_ >= 0) {
    (void)!::write(wake_fd_, &one, sizeof(one));
  }
}

void EpollTransport::UpdateGaugesLocked() {
  if (connections_gauge_) {
    connections_gauge_->Set(static_cast<int64_t>(conns_.size()));
  }
  if (queued_bytes_gauge_) {
    queued_bytes_gauge_->Set(static_cast<int64_t>(total_out_bytes_));
  }
}

// --------------------------------------------------------------- Event loop

void EpollTransport::LoopMain() {
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  while (running_.load()) {
    int timeout_ms = 500;
    if (options_.idle_timeout_micros > 0) {
      const Timestamp quarter = options_.idle_timeout_micros / 4;
      timeout_ms = static_cast<int>(std::clamp<Timestamp>(
          quarter / kMicrosPerMilli, 10, 500));
    }
    // The peer plane needs the maintenance cadence (connect deadlines,
    // redial backoffs, paused-listener re-arms) even when idle.
    if (peer_plane_active_.load()) timeout_ms = std::min(timeout_ms, 50);
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (!running_.load()) break;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
      } else if (fd == peer_listen_fd_.load()) {
        AcceptReady(fd, ConnKind::kPeerIn);
      } else if (fd == http_listen_fd_.load()) {
        AcceptReady(fd, ConnKind::kHttp);
      } else {
        ConnReady(fd, events[i].events);
      }
    }
    HandleWake();
    const Timestamp steady = SteadyMicros();
    if (peer_plane_active_.load() &&
        steady - last_maintain_steady_ >= 50 * kMicrosPerMilli) {
      last_maintain_steady_ = steady;
      std::lock_guard<std::mutex> lock(mu_);
      MaintainLocked(steady);
    }
    if (options_.idle_timeout_micros > 0 &&
        steady - last_sweep_steady_ >=
            std::max<Timestamp>(options_.idle_timeout_micros / 4,
                                10 * kMicrosPerMilli)) {
      last_sweep_steady_ = steady;
      std::lock_guard<std::mutex> lock(mu_);
      SweepIdleLocked(steady);
    }
    FirePending();
  }
}

void EpollTransport::HandleWake() {
  std::set<int> pending;
  std::set<int> resets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    resets.swap(reset_pending_);
    for (const int fd : resets) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      resets_total_.fetch_add(1);
      if (resets_counter_) resets_counter_->Increment();
      CloseConnLocked(it->second.get(),
                      Status::Unavailable("connection reset (forced)"));
    }
    pending.swap(flush_pending_);
    for (const int fd : pending) {
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* conn = it->second.get();
      if (conn->connecting) continue;
      FlushLocked(conn);
    }
  }
}

void EpollTransport::AcceptReady(int listen_fd, ConnKind kind) {
  for (;;) {
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd =
        ops_->Accept4(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR || err == ECONNABORTED) continue;
      accept_errors_total_.fetch_add(1);
      if (accept_errors_counter_) accept_errors_counter_->Increment();
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Fd/memory exhaustion: the listener is level-triggered, so
        // returning here would spin epoll_wait hot. Unregister it and
        // re-arm after accept_rearm_micros; pending connections wait
        // in the backlog meanwhile.
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd, nullptr);
        std::lock_guard<std::mutex> lock(mu_);
        paused_listeners_[listen_fd] =
            SteadyMicros() + options_.accept_rearm_micros;
        GSN_LOG(kInfo, "transport")
            << "accept paused " << options_.accept_rearm_micros / 1000
            << "ms: " << std::strerror(err);
      }
      return;
    }
    accepted_total_.fetch_add(1);
    if (accepted_counter_) accepted_counter_->Increment();
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->kind = kind;
    conn->peer = AddrToString(addr);
    conn->opened_steady = SteadyMicros();
    conn->last_activity_steady = conn->opened_steady;
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    std::lock_guard<std::mutex> lock(mu_);
    conns_[fd] = std::move(conn);
    UpdateGaugesLocked();
  }
}

void EpollTransport::ConnReady(int fd, uint32_t events) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  if (events & EPOLLERR) {
    if (conn->connecting) connect_failures_total_.fetch_add(1);
    CloseConnLocked(conn, Status::IoError("socket error (peer " + conn->peer +
                                          ")"));
    return;
  }
  if (conn->connecting && (events & (EPOLLOUT | EPOLLHUP))) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      connect_failures_total_.fetch_add(1);
      CloseConnLocked(conn,
                      Status::Unavailable(std::string("connect failed: ") +
                                          std::strerror(err) + " (peer " +
                                          conn->peer + ")"));
      return;
    }
    // SO_ERROR == 0 is not proof the connect completed: a socket whose
    // connect never reached the kernel (the chaos stall fault) also
    // reports 0 but has no peer — leave it connecting so the deadline
    // in MaintainLocked reclaims it.
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&peer_addr),
                      &peer_len) == 0) {
      conn->connecting = false;
      conn->connect_deadline_steady = 0;
      pending_peer_ups_.push_back(conn->peer);
      NoteDialSuccessLocked(conn->peer);
    } else if ((events & (EPOLLIN | EPOLLRDHUP)) == 0) {
      return;  // still connecting; nothing to read or flush yet
    }
  }
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) {
    if (!ReadReady(conn)) return;  // `lock` still held; conn is gone
  }
  // Re-find: ReadReady may release mu_ around handlers, but only the
  // loop destroys conns, so `conn` is still ours if it survived.
  if (!conn->connecting) FlushLocked(conn);
}

bool EpollTransport::ReadReady(Conn* conn) {
  // Caller holds mu_. Reads until EAGAIN/EOF, then parses.
  const int fd = conn->fd;
  char buf[65536];
  for (;;) {
    const ssize_t n = ops_->Recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      conn->last_activity_steady = SteadyMicros();
      continue;
    }
    if (n == 0) {
      conn->read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnLocked(conn, Status::IoError(std::string("read failed: ") +
                                          std::strerror(errno) + " (peer " +
                                          conn->peer + ")"));
    return false;
  }
  // mu_ is held by the caller; the Process* helpers unlock it around
  // delivery/handler calls via the member pending queues or directly.
  if (conn->kind == ConnKind::kHttp) {
    ProcessHttpInput(conn);
  } else {
    ProcessPeerInput(conn);
  }
  auto it = conns_.find(fd);
  if (it == conns_.end() || it->second.get() != conn) return false;
  if (conn->read_closed && conn->outq.empty()) {
    CloseConnLocked(conn, Status::OK());
    return false;
  }
  return true;
}

void EpollTransport::ProcessPeerInput(Conn* conn) {
  // Caller holds mu_. Frames decode under the lock; deliveries queue on
  // pending_deliveries_ and fire from FirePending outside it.
  for (;;) {
    if (conn->inbuf.size() < 4) break;
    const uint32_t body_len = GetU32(conn->inbuf.data());
    if (body_len > options_.max_frame_bytes) {
      CloseConnLocked(conn, Status::ParseError("oversized frame"));
      return;
    }
    if (conn->inbuf.size() < 4 + static_cast<size_t>(body_len)) break;
    const std::string body = conn->inbuf.substr(4, body_len);
    conn->inbuf.erase(0, 4 + static_cast<size_t>(body_len));
    ++conn->frames_in;
    size_t pos = 0;
    Message message;
    if (!GetString(body, &pos, &message.from) ||
        !GetString(body, &pos, &message.to) ||
        !GetString(body, &pos, &message.topic) ||
        !GetString(body, &pos, &message.payload) || pos != body.size()) {
      CloseConnLocked(conn, Status::ParseError("malformed frame"));
      return;
    }
    const Timestamp steady = SteadyMicros();
    message.sent_at = steady;
    message.deliver_at = steady;
    // NAT-friendly reply routing: any frame identifies its sender, and
    // replies prefer this live link over dialing back.
    if (!message.from.empty()) {
      auto route = peer_conns_.find(message.from);
      const bool had_route =
          route != peer_conns_.end() && conns_.count(route->second) > 0;
      peer_conns_[message.from] = conn->fd;
      conn->peer = message.from;
      if (!had_route) {
        pending_peer_ups_.push_back(message.from);
        // The peer reached us: connectivity is back even if our own
        // dials were failing — stop the redial cycle.
        NoteDialSuccessLocked(message.from);
      }
    }
    if (message.to.empty()) {
      for (const auto& [node_id, node] : local_nodes_) {
        if (node_id == message.from) continue;
        Message copy = message;
        copy.to = node_id;
        pending_deliveries_.push_back({node, std::move(copy)});
      }
    } else {
      auto node_it = local_nodes_.find(message.to);
      if (node_it != local_nodes_.end()) {
        pending_deliveries_.push_back({node_it->second, std::move(message)});
      }
    }
    frames_delivered_total_.fetch_add(1);
  }
}

void EpollTransport::ProcessHttpInput(Conn* conn) {
  // Caller holds mu_; released around the handler (it may serialize
  // large container snapshots) and re-taken to enqueue the response.
  std::unique_lock<std::mutex> lock(mu_, std::adopt_lock);
  for (;;) {
    const Result<size_t> length = HttpRequestLength(conn->inbuf);
    if (!length.ok()) {
      CloseConnLocked(conn, length.status());
      break;
    }
    if (*length == 0) break;
    const std::string raw = conn->inbuf.substr(0, *length);
    conn->inbuf.erase(0, *length);
    ++conn->requests_served;
    http_requests_total_.fetch_add(1);
    if (http_requests_counter_) http_requests_counter_->Increment();
    const HttpHandler handler = http_handler_;
    lock.unlock();
    Result<HttpRequest> request = ParseHttpRequest(raw);
    HttpResponse response;
    bool keep_alive = false;
    if (!request.ok()) {
      response = HttpResponse::Error(400, request.status().message());
    } else if (handler == nullptr) {
      response = HttpResponse::Error(503, "no handler");
    } else {
      keep_alive = request->WantsKeepAlive();
      response = handler(*request);
    }
    const std::string bytes = SerializeHttpResponse(response, keep_alive);
    lock.lock();
    // Same occupancy rule as the peer plane: a slow reader whose queue
    // sits at the bound is disconnected; one response may exceed it.
    if (conn->out_bytes >= options_.max_write_queue_bytes) {
      overflows_total_.fetch_add(1);
      if (overflows_counter_) overflows_counter_->Increment();
      CloseConnLocked(conn,
                      Status::ResourceExhausted("write queue overflow"));
      break;
    }
    conn->out_bytes += bytes.size();
    total_out_bytes_ += bytes.size();
    conn->outq.push_back(bytes);
    UpdateGaugesLocked();
    if (!keep_alive) {
      conn->want_close = true;
      break;
    }
  }
  lock.release();  // caller keeps holding mu_
}

void EpollTransport::FlushLocked(Conn* conn) {
  while (!conn->outq.empty()) {
    const std::string& front = conn->outq.front();
    const ssize_t n =
        ops_->Send(conn->fd, front.data() + conn->out_off,
                   front.size() - conn->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConnLocked(conn, Status::IoError(std::string("write failed: ") +
                                            std::strerror(errno) + " (peer " +
                                            conn->peer + ")"));
      return;
    }
    conn->out_off += static_cast<size_t>(n);
    conn->out_bytes -= static_cast<size_t>(n);
    total_out_bytes_ -= static_cast<size_t>(n);
    conn->last_activity_steady = SteadyMicros();
    if (conn->out_off == front.size()) {
      conn->outq.pop_front();
      conn->out_off = 0;
    }
  }
  UpdateGaugesLocked();
  if (conn->outq.empty() && (conn->want_close || conn->read_closed)) {
    CloseConnLocked(conn, Status::OK());
  }
}

void EpollTransport::CloseConnLocked(Conn* conn, const Status& reason,
                                     bool allow_redial) {
  const int fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  total_out_bytes_ -= conn->out_bytes;
  for (auto it = peer_conns_.begin(); it != peer_conns_.end();) {
    if (it->second == fd) {
      it = peer_conns_.erase(it);
    } else {
      ++it;
    }
  }
  flush_pending_.erase(fd);
  reset_pending_.erase(fd);
  if (!reason.ok()) {
    pending_errors_.emplace_back(conn->peer, reason);
  }
  if (conn->kind != ConnKind::kHttp && !reason.ok() && allow_redial) {
    // A failed dial-table peer link comes back via backoff redial; a
    // lost handshake additionally counts as a dial failure.
    if (conn->connecting) {
      dial_failures_total_.fetch_add(1);
      if (dial_failures_counter_) dial_failures_counter_->Increment();
    }
    ScheduleRedialLocked(conn->peer, SteadyMicros());
  }
  conns_.erase(fd);  // destroys *conn
  UpdateGaugesLocked();
}

void EpollTransport::SweepIdleLocked(Timestamp steady_now) {
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    if (steady_now - conn->last_activity_steady >
        options_.idle_timeout_micros) {
      idle.push_back(fd);
    }
  }
  for (const int fd : idle) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    timeouts_total_.fetch_add(1);
    if (timeouts_counter_) timeouts_counter_->Increment();
    // Deliberate reaping: an idle peer must not bounce straight back.
    CloseConnLocked(it->second.get(), Status::Timeout("idle timeout"),
                    /*allow_redial=*/false);
  }
}

void EpollTransport::MaintainLocked(Timestamp steady_now) {
  // 1. Connect deadlines: a non-blocking connect that never completed
  // (unreachable peer, or the chaos stall fault) is failed here and
  // enters the backoff redial cycle.
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (conn->connecting && conn->connect_deadline_steady > 0 &&
        steady_now >= conn->connect_deadline_steady) {
      expired.push_back(fd);
    }
  }
  for (const int fd : expired) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    connect_failures_total_.fetch_add(1);
    CloseConnLocked(
        it->second.get(),
        Status::Timeout(
            "connect timeout after " +
            std::to_string(options_.connect_timeout_micros / 1000) +
            "ms (peer " + it->second->peer + ")"));
  }
  // 2. Due redials. Collect first: dialing mutates dial_states_.
  std::vector<std::string> due;
  for (const auto& [peer, ds] : dial_states_) {
    if (ds.auto_pending && steady_now >= ds.next_redial_steady &&
        peer_conns_.count(peer) == 0) {
      due.push_back(peer);
    }
  }
  for (const std::string& peer : due) {
    (void)DialLocked(peer, /*force=*/true);
  }
  // 3. Peer-plane conns: retry stalled flushes and defensively re-arm
  // the read edge (EPOLL_CTL_MOD re-reports pending readiness, so a
  // missed edge cannot strand buffered frames forever).
  for (const auto& [fd, conn] : conns_) {
    if (conn->kind == ConnKind::kHttp) continue;
    if (!conn->outq.empty() && !conn->connecting) {
      flush_pending_.insert(fd);
      WakeLoop();
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
  }
  // 4. Re-arm listeners paused by EMFILE once their pause elapses.
  for (auto it = paused_listeners_.begin(); it != paused_listeners_.end();) {
    if (steady_now >= it->second) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = it->first;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, it->first, &ev);
      it = paused_listeners_.erase(it);
    } else {
      ++it;
    }
  }
}

void EpollTransport::FirePending() {
  std::vector<PendingDelivery> deliveries;
  std::vector<std::string> peer_ups;
  std::vector<std::pair<std::string, Status>> errors;
  PeerUpCallback peer_up;
  ErrorCallback on_error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deliveries.swap(pending_deliveries_);
    peer_ups.swap(pending_peer_ups_);
    errors.swap(pending_errors_);
    peer_up = peer_up_callback_;
    on_error = error_callback_;
  }
  if (peer_up) {
    for (const std::string& peer : peer_ups) peer_up(peer);
  }
  for (PendingDelivery& delivery : deliveries) {
    delivery.node->OnMessage(delivery.message);
  }
  if (on_error) {
    for (auto& [peer, status] : errors) on_error(peer, status);
  }
}

}  // namespace gsn::network
